#!/usr/bin/env bash
# Local equivalent of the CI gate: lint + tests + parallel-runtime smoke.
# Usage: scripts/check.sh [--fast]   (--fast skips the smoke run)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== lint =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples scripts
    # blocking, mirroring CI (the staged warn-only rollout is over)
    ruff format --check src tests benchmarks examples scripts
else
    echo "ruff not installed; skipping lint + format check (CI will run them)"
fi

echo "== tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

if [[ $fast -eq 0 ]]; then
    echo "== smoke: mbs-repro all --jobs 2 (fresh cache) =="
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner all --jobs 2 --summary \
        --cache-dir "$smoke_dir/cache" --out "$smoke_dir/manifests"
    echo "== smoke: replay + diff (--render-from-cache) =="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner all --render-from-cache --summary \
        --cache-dir "$smoke_dir/cache" --out "$smoke_dir/manifests"
fi

echo "== all checks passed =="
