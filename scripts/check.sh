#!/usr/bin/env bash
# Local equivalent of the CI gate: lint + tests + parallel-runtime smoke.
# Usage: scripts/check.sh [--fast]   (--fast skips the smoke run)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== lint =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples scripts
    # blocking, mirroring CI (the staged warn-only rollout is over)
    ruff format --check src tests benchmarks examples scripts
else
    echo "ruff not installed; skipping lint + format check (CI will run them)"
fi

echo "== tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

if [[ $fast -eq 0 ]]; then
    echo "== smoke: mbs-repro all --jobs 2 (fresh cache) =="
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner all --jobs 2 --summary \
        --cache-dir "$smoke_dir/cache" --out "$smoke_dir/manifests"
    echo "== smoke: replay + diff (--render-from-cache) =="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner all --render-from-cache --summary \
        --cache-dir "$smoke_dir/cache" --out "$smoke_dir/manifests"

    # wait_coord LOG PID -> echoes the coordinator URL once it listens
    wait_coord() {
        local log="$1" pid="$2" url=""
        for _ in $(seq 1 100); do
            url=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' \
                "$log" | head -n1)
            [[ -n "$url" ]] && { echo "$url"; return 0; }
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.2
        done
        echo "coordinator did not start:" >&2; cat "$log" >&2; return 1
    }

    echo "== smoke: queued sweep (coordinator + 2 workers + merge --check) =="
    serve_log="$smoke_dir/serve.log"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner serve --port 0 \
        --cache-dir "$smoke_dir/queue-cache" >"$serve_log" 2>&1 &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    coord=$(wait_coord "$serve_log" "$serve_pid")
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner submit-sweep fig3 --quick \
        --coordinator "$coord"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner work --coordinator "$coord" \
        --cache-dir "$smoke_dir/worker-a-cache" &
    worker_pid=$!
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner work --coordinator "$coord" \
        --cache-dir "$smoke_dir/worker-b-cache"
    wait "$worker_pid"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner submit-sweep fig3 --quick \
        --coordinator "$coord" --wait --out "$smoke_dir/queue-manifests"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner sweep fig3 --quick \
        --cache-dir "$smoke_dir/ref-cache" --out "$smoke_dir/ref-manifests"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner merge "$smoke_dir/queue-manifests" \
        --out "$smoke_dir/merged" --check "$smoke_dir/ref-manifests"
    kill "$serve_pid" 2>/dev/null || true

    echo "== smoke: coordinator restart (--state-dir journal replay) =="
    # half-drain a job, SIGKILL the coordinator, restart it on the same
    # state dir, finish the drain, and re-check byte-identity
    state_dir="$smoke_dir/state"
    serve2_log="$smoke_dir/serve2.log"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner serve --port 0 \
        --state-dir "$state_dir" \
        --cache-dir "$smoke_dir/restart-cache" >"$serve2_log" 2>&1 &
    serve2_pid=$!
    trap 'kill "$serve_pid" "$serve2_pid" 2>/dev/null || true; \
        rm -rf "$smoke_dir"' EXIT
    coord2=$(wait_coord "$serve2_log" "$serve2_pid")
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner submit-sweep fig3 --quick \
        --coordinator "$coord2"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner work --coordinator "$coord2" \
        --max-leases 1 --batch 2 \
        --cache-dir "$smoke_dir/worker-c-cache"
    kill -9 "$serve2_pid" 2>/dev/null || true
    wait "$serve2_pid" 2>/dev/null || true
    serve3_log="$smoke_dir/serve3.log"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner serve --port 0 \
        --state-dir "$state_dir" \
        --cache-dir "$smoke_dir/restart-cache" >"$serve3_log" 2>&1 &
    serve3_pid=$!
    trap 'kill "$serve_pid" "$serve2_pid" "$serve3_pid" 2>/dev/null \
        || true; rm -rf "$smoke_dir"' EXIT
    coord3=$(wait_coord "$serve3_log" "$serve3_pid")
    grep -q "restored 1 job(s)" "$serve3_log" || {
        echo "restarted coordinator did not restore the job:";
        cat "$serve3_log"; exit 1; }
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner work --coordinator "$coord3" \
        --cache-dir "$smoke_dir/worker-d-cache"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner submit-sweep fig3 --quick \
        --coordinator "$coord3" --wait --out "$smoke_dir/restart-manifests"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner merge \
        "$smoke_dir/restart-manifests" --out "$smoke_dir/restart-merged" \
        --check "$smoke_dir/ref-manifests"
    kill "$serve3_pid" 2>/dev/null || true
fi

echo "== all checks passed =="
