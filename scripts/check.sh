#!/usr/bin/env bash
# Local equivalent of the CI gate: lint + tests + parallel-runtime smoke.
# Usage: scripts/check.sh [--fast]   (--fast skips the smoke run)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== lint =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples scripts
    # blocking, mirroring CI (the staged warn-only rollout is over)
    ruff format --check src tests benchmarks examples scripts
else
    echo "ruff not installed; skipping lint + format check (CI will run them)"
fi

echo "== tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

if [[ $fast -eq 0 ]]; then
    echo "== smoke: mbs-repro all --jobs 2 (fresh cache) =="
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner all --jobs 2 --summary \
        --cache-dir "$smoke_dir/cache" --out "$smoke_dir/manifests"
    echo "== smoke: replay + diff (--render-from-cache) =="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner all --render-from-cache --summary \
        --cache-dir "$smoke_dir/cache" --out "$smoke_dir/manifests"

    echo "== smoke: queued sweep (coordinator + 2 workers + merge --check) =="
    serve_log="$smoke_dir/serve.log"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner serve --port 0 \
        --cache-dir "$smoke_dir/queue-cache" >"$serve_log" 2>&1 &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
    coord=""
    for _ in $(seq 1 100); do
        coord=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' \
            "$serve_log" | head -n1)
        [[ -n "$coord" ]] && break
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.2
    done
    if [[ -z "$coord" ]]; then
        echo "coordinator did not start:"; cat "$serve_log"; exit 1
    fi
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner submit-sweep fig3 --quick \
        --coordinator "$coord"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner work --coordinator "$coord" \
        --cache-dir "$smoke_dir/worker-a-cache" &
    worker_pid=$!
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner work --coordinator "$coord" \
        --cache-dir "$smoke_dir/worker-b-cache"
    wait "$worker_pid"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner submit-sweep fig3 --quick \
        --coordinator "$coord" --wait --out "$smoke_dir/queue-manifests"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner sweep fig3 --quick \
        --cache-dir "$smoke_dir/ref-cache" --out "$smoke_dir/ref-manifests"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.experiments.runner merge "$smoke_dir/queue-manifests" \
        --out "$smoke_dir/merged" --check "$smoke_dir/ref-manifests"
    kill "$serve_pid" 2>/dev/null || true
fi

echo "== all checks passed =="
