#!/usr/bin/env python
"""Gate pytest-benchmark results against committed baselines.

CI's ``bench-gate`` job runs the scheduler and micro-kernel benchmark
suites and feeds their ``--benchmark-json`` dumps through this script,
which diffs each benchmark's median against ``benchmarks/baselines.json``
with a *generous* tolerance (default 3x): shared runners are noisy, so
only gross regressions — an accidentally quadratic scheduler, a
traffic-walk explosion — should block a merge.  Raw numbers stay
informational in the continue-on-error ``bench-smoke`` job.

Usage::

    python scripts/bench_compare.py bench-artifacts/scheduler.json \
        bench-artifacts/micro-kernels.json
    python scripts/bench_compare.py --update NEW.json ...   # refresh
    python scripts/bench_compare.py --tolerance 5 ...       # looser gate

Benchmarks without a committed baseline are reported as ``new`` and
pass (commit the refreshed file to start gating them); baselines whose
benchmark disappeared are reported as ``absent`` and pass, so renames
do not block — but both are printed loudly so lost coverage is visible.
Benchmarks whose baseline median sits below the noise floor (default
1 ms) are reported as ``tiny`` and not gated: at microsecond scale the
ratio measures the runner's timer jitter, not the code.

Baselines and results usually come from *different machines* (committed
from a dev box, gated on a shared runner), so with enough gated
benchmarks the comparison is normalized by the median now/baseline
ratio (clamped to [0.2, 5]): a uniformly slower runner scales every
benchmark equally and cancels out, while a single genuinely regressed
benchmark barely moves the median and still trips the gate.
Normalization cannot absolve arbitrarily large slowdowns: a raw ratio
past ``tolerance * 3`` fails regardless (a *uniform* real regression
moves the median with it, so only the hard cap catches it).  Exit
status is 1 when some gated benchmark's normalized ratio exceeds the
tolerance or its raw ratio exceeds the hard cap.
"""
from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines.json"
)
DEFAULT_TOLERANCE = 3.0
DEFAULT_NOISE_FLOOR = 1e-3  # seconds; don't gate sub-millisecond medians
#: Minimum gated benchmarks before machine-speed normalization kicks in
#: (with fewer, the median ratio is dominated by the regression itself).
MIN_BENCHES_TO_NORMALIZE = 5
#: Sanity clamp on the inferred machine-speed factor.
SCALE_CLAMP = (0.2, 5.0)
#: Normalization must not absolve arbitrarily large slowdowns: a raw
#: (unnormalized) ratio past ``tolerance * HARD_CAP_FACTOR`` fails even
#: when the median ratio moved with it (a *uniform* real regression).
HARD_CAP_FACTOR = 3.0


def load_medians(path: Path) -> dict[str, float]:
    """``fullname -> median seconds`` of one pytest-benchmark dump."""
    data = json.loads(path.read_text())
    out = {}
    for bench in data.get("benchmarks", []):
        out[bench["fullname"]] = float(bench["stats"]["median"])
    return out


def update_baselines(baseline_path: Path, medians: dict[str, float]) -> None:
    """Merge fresh medians into the baseline file.

    Merging (not overwriting) lets one suite be refreshed at a time
    without silently dropping the other suites' baselines — a dropped
    baseline would downgrade its benchmark to ungated ``new`` status.
    """
    merged: dict[str, float] = {}
    if baseline_path.exists():
        merged.update(json.loads(baseline_path.read_text())["benchmarks"])
    kept = len(merged.keys() - medians.keys())
    merged.update(medians)
    payload = {
        "comment": (
            "Committed benchmark baselines (median seconds). Regenerate "
            "with: python scripts/bench_compare.py --update <json files>. "
            "bench-gate fails only past a generous runner-noise tolerance."
        ),
        "benchmarks": {
            name: round(median, 9)
            for name, median in sorted(merged.items())
        },
    }
    baseline_path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {len(merged)} baselines to {baseline_path} "
          f"({len(medians)} refreshed, {kept} kept)")


def machine_scale(
    baselines: dict[str, float],
    medians: dict[str, float],
    noise_floor: float,
) -> float:
    """Median now/baseline ratio over the gated benchmarks (clamped).

    Approximates how much faster/slower this machine is than the one
    that committed the baselines; per-benchmark ratios are divided by it
    before gating, so uniform machine speed cancels while an isolated
    regression survives.  Returns 1.0 when too few benchmarks overlap
    for the median to be robust.
    """
    ratios = [
        medians[name] / base
        for name, base in baselines.items()
        if name in medians and base >= noise_floor
    ]
    if len(ratios) < MIN_BENCHES_TO_NORMALIZE:
        return 1.0
    lo, hi = SCALE_CLAMP
    return min(hi, max(lo, statistics.median(ratios)))


def compare(
    baselines: dict[str, float],
    medians: dict[str, float],
    tolerance: float,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> int:
    width = max((len(n) for n in {*baselines, *medians}), default=10)
    scale = machine_scale(baselines, medians, noise_floor)
    if scale != 1.0:
        print(f"  machine-speed normalization: median ratio {scale:.2f}x "
              "divided out before gating")
    if scale > 2.0:
        print("  WARNING: inferred machine factor exceeds a plausible "
              "runner-speed gap — refresh the baselines from this "
              "environment, or suspect a uniform regression",
              file=sys.stderr)
    failures = 0
    for name in sorted({*baselines, *medians}):
        base = baselines.get(name)
        now = medians.get(name)
        if base is None:
            status, detail = "new", "no baseline yet (commit --update)"
        elif now is None:
            status, detail = "absent", "baseline has no current result"
        else:
            raw = now / base if base > 0 else float("inf")
            ratio = raw / scale
            detail = (
                f"{now * 1e3:9.3f} ms vs {base * 1e3:9.3f} ms "
                f"({ratio:5.2f}x normalized, limit {tolerance:.1f}x)"
            )
            if base < noise_floor:
                status = "tiny"
                detail += "  [below noise floor, not gated]"
            elif raw > tolerance * HARD_CAP_FACTOR:
                # normalization must not absolve a slowdown this large
                status = "FAIL"
                detail += f"  [raw {raw:.1f}x past the hard cap]"
                failures += 1
            elif ratio > tolerance:
                status = "FAIL"
                failures += 1
            else:
                status = "ok"
        print(f"  {status:6s} {name:<{width}}  {detail}")
    if failures:
        print(f"\n{failures} gross regression(s) past the {tolerance:.1f}x "
              "tolerance", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff pytest-benchmark JSON dumps against committed "
                    "baselines; fail only on gross regressions.",
    )
    parser.add_argument("results", nargs="+", type=Path,
                        help="pytest-benchmark --benchmark-json files")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed median ratio before failing "
                             f"(default: {DEFAULT_TOLERANCE}x)")
    parser.add_argument("--noise-floor", type=float,
                        default=DEFAULT_NOISE_FLOOR, metavar="S",
                        help="baselines below this many seconds are "
                             "reported but not gated (default: "
                             f"{DEFAULT_NOISE_FLOOR})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline file from the results "
                             "instead of gating")
    args = parser.parse_args(argv)

    medians: dict[str, float] = {}
    for path in args.results:
        if not path.exists():
            print(f"missing results file: {path}", file=sys.stderr)
            return 2
        medians.update(load_medians(path))
    if not medians:
        print("no benchmarks found in the results files", file=sys.stderr)
        return 2

    if args.update:
        update_baselines(args.baseline, medians)
        return 0

    if not args.baseline.exists():
        print(f"missing baseline file {args.baseline}; run with --update "
              "to create it", file=sys.stderr)
        return 2
    baselines = {
        name: float(v)
        for name, v in json.loads(
            args.baseline.read_text()
        )["benchmarks"].items()
    }
    print(f"bench gate: {len(medians)} result(s) vs {len(baselines)} "
          f"baseline(s), tolerance {args.tolerance:.1f}x, noise floor "
          f"{args.noise_floor * 1e3:.1f} ms")
    return compare(baselines, medians, args.tolerance, args.noise_floor)


if __name__ == "__main__":
    raise SystemExit(main())
