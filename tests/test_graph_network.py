"""Unit tests for the Network container."""
import pytest

from repro.graph.blocks import chain_block
from repro.graph.layers import Conv2D
from repro.graph.network import Network
from repro.types import Shape


def conv_block(name, in_shape, out_c):
    layer = Conv2D(name=f"{name}.conv", in_shape=in_shape, out_channels=out_c,
                   kernel=3, padding=1)
    return chain_block(name, in_shape, [layer])


IN = Shape(3, 8, 8)


def test_shape_flow_validation():
    b1 = conv_block("a", IN, 4)
    b2 = conv_block("b", Shape(4, 8, 8), 6)
    net = Network("n", IN, (b1, b2))
    assert net.out_shape == Shape(6, 8, 8)


def test_miswired_blocks_raise():
    b1 = conv_block("a", IN, 4)
    b2 = conv_block("b", Shape(5, 8, 8), 6)
    with pytest.raises(ValueError, match="expects input"):
        Network("n", IN, (b1, b2))


def test_empty_network_raises():
    with pytest.raises(ValueError, match="at least one block"):
        Network("n", IN, ())


def test_invalid_mini_batch():
    with pytest.raises(ValueError, match="mini-batch"):
        Network("n", IN, (conv_block("a", IN, 4),), default_mini_batch=0)


def test_all_layers_order():
    net = Network("n", IN, (conv_block("a", IN, 4),
                            conv_block("b", Shape(4, 8, 8), 6)))
    assert [l.name for l in net.all_layers()] == ["a.conv", "b.conv"]


def test_param_count_sums_blocks():
    net = Network("n", IN, (conv_block("a", IN, 4),
                            conv_block("b", Shape(4, 8, 8), 6)))
    assert net.param_count == 4 * 3 * 9 + 6 * 4 * 9


def test_macs_sum(chain_net):
    assert chain_net.macs_per_sample == sum(
        b.macs_per_sample for b in chain_net.blocks
    )


def test_block_named(chain_net):
    assert chain_net.block_named("head").name == "head"
    with pytest.raises(KeyError):
        chain_net.block_named("nope")


def test_len(chain_net):
    assert len(chain_net) == len(chain_net.blocks)
