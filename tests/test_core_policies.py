"""Unit tests for the Tab. 3 policy constructors."""
import pytest

from repro.core.policies import POLICIES, make_schedule
from repro.core.subbatch import feasible_sub_batch
from repro.types import MIB


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize(
    "fixture", ["chain_net", "residual_net", "inception_net"]
)
def test_every_policy_builds_valid_schedules(policy, fixture, request):
    net = request.getfixturevalue(fixture)
    sched = make_schedule(net, policy, buffer_bytes=1 * MIB)
    assert sched.num_blocks == len(net.blocks)
    assert sched.policy == policy
    assert all(g.iterations >= 1 for g in sched.groups)


def test_unknown_policy_raises(chain_net):
    with pytest.raises(ValueError, match="unknown policy"):
        make_schedule(chain_net, "magic")


class TestBaseline:
    def test_all_blocks_spilled(self, rn50):
        sched = make_schedule(rn50, "baseline")
        assert len(sched.groups) == len(rn50.blocks)
        assert not any(f for g in sched.groups for f in g.block_fused)
        assert not sched.relu_mask
        assert sched.layer_reuse_bytes == 0

    def test_archopt_same_schedule_shape(self, rn50):
        base = make_schedule(rn50, "baseline")
        arch = make_schedule(rn50, "archopt")
        assert [g.blocks for g in base.groups] == [g.blocks for g in arch.groups]


class TestIL:
    def test_layer_reuse_budget_set(self, rn50):
        sched = make_schedule(rn50, "il")
        assert sched.layer_reuse_bytes == sched.buffer_bytes

    def test_fuses_only_fitting_blocks(self, rn50):
        sched = make_schedule(rn50, "il", buffer_bytes=10 * MIB)
        for idx, block in enumerate(rn50.blocks):
            fits = feasible_sub_batch(block, 10 * MIB, 32, True) >= 32
            assert sched.block_fused(idx) == fits

    def test_everything_fuses_with_huge_buffer(self, chain_net):
        sched = make_schedule(chain_net, "il", buffer_bytes=10**12)
        assert len(sched.groups) == 1
        assert all(sched.groups[0].block_fused)
        assert sched.groups[0].iterations == 1


class TestMbsFs:
    def test_single_group_single_sub_batch(self, rn50):
        sched = make_schedule(rn50, "mbs-fs")
        assert len(sched.groups) == 1
        g = sched.groups[0]
        assert g.sub_batch == min(
            feasible_sub_batch(b, sched.buffer_bytes, 32, True)
            for b in rn50.blocks
        )
        assert all(g.block_fused)

    def test_relu_mask_enabled(self, rn50):
        assert make_schedule(rn50, "mbs-fs").relu_mask


class TestMbs:
    def test_mbs1_no_branch_reuse(self, rn50):
        sched = make_schedule(rn50, "mbs1")
        assert not sched.branch_reuse
        assert sched.relu_mask

    def test_mbs2_branch_reuse(self, rn50):
        assert make_schedule(rn50, "mbs2").branch_reuse

    def test_group_sub_batch_is_member_min(self, rn50):
        sched = make_schedule(rn50, "mbs2")
        for g in sched.groups:
            feas = [
                feasible_sub_batch(rn50.blocks[i], sched.buffer_bytes, 32, True)
                for i in g.blocks
            ]
            assert g.sub_batch == min(feas)

    def test_groups_monotone_sub_batch_resnet(self, rn50):
        """Down-sampling should produce non-decreasing sub-batch sizes."""
        sizes = [g.sub_batch for g in make_schedule(rn50, "mbs2").groups]
        assert sizes == sorted(sizes)

    def test_tiny_buffer_spills_early_blocks(self, rn50):
        sched = make_schedule(rn50, "mbs2", buffer_bytes=1 * MIB)
        assert not sched.block_fused(0) or sched.groups[0].sub_batch >= 1
        # at 1 MiB the big early blocks cannot hold one sample
        assert any(
            not f for g in sched.groups for f in g.block_fused
        )

    def test_opt_variants_cover(self, rn50):
        for policy in ("mbs1-opt", "mbs2-opt"):
            sched = make_schedule(rn50, policy)
            assert sched.num_blocks == len(rn50.blocks)


def test_mini_batch_override(rn50):
    sched = make_schedule(rn50, "mbs2", mini_batch=64)
    assert sched.mini_batch == 64
    assert all(g.iterations >= 2 for g in sched.groups[:1])
