"""Loss, optimizer, dataset, and training-loop tests."""
import numpy as np
import pytest

from repro.graph.layers import NormKind
from repro.nn.data import synthetic_dataset
from repro.nn.loss import softmax_cross_entropy
from repro.nn.model import NetworkModel
from repro.nn.optim import SGD
from repro.nn.train import train
from repro.zoo import toy_chain


class TestLoss:
    def test_uniform_logits(self):
        logits = np.zeros((4, 8))
        labels = np.arange(4)
        loss, dlogits, correct = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(4 * np.log(8))
        np.testing.assert_allclose(dlogits.sum(axis=1), 0, atol=1e-12)

    def test_gradient_fd(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = rng.integers(0, 5, 3)
        _, dlogits, _ = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (
                    softmax_cross_entropy(lp, labels)[0]
                    - softmax_cross_entropy(lm, labels)[0]
                ) / (2 * eps)
                assert dlogits[i, j] == pytest.approx(num, abs=1e-5)

    def test_correct_count(self):
        logits = np.array([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0]])
        _, _, correct = softmax_cross_entropy(logits, np.array([0, 1, 1]))
        assert correct == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(5), np.zeros(5, dtype=int))

    def test_numerically_stable_for_large_logits(self):
        logits = np.array([[1000.0, 0.0]])
        loss, dlogits, _ = softmax_cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss) and np.isfinite(dlogits).all()


class TestSGD:
    def make_model(self):
        return NetworkModel(toy_chain(widths=(4,)), seed=0)

    def test_step_moves_against_gradient(self, rng):
        model = self.make_model()
        opt = SGD(model, lr=0.1, momentum=0.0)
        name, p, g = next(iter(model.parameters()))
        before = p.copy()
        g[...] = 1.0
        opt.step(batch_size=1)
        np.testing.assert_allclose(p, before - 0.1)

    def test_batch_size_scaling(self):
        m1, m2 = self.make_model(), self.make_model()
        for m, bs in ((m1, 1), (m2, 4)):
            opt = SGD(m, lr=0.1, momentum=0.0)
            for _, p, g in m.parameters():
                g[...] = bs  # sum-gradient scales with batch
            opt.step(batch_size=bs)
        np.testing.assert_allclose(
            next(iter(m1.parameters()))[1], next(iter(m2.parameters()))[1]
        )

    def test_momentum_accumulates(self):
        model = self.make_model()
        opt = SGD(model, lr=0.1, momentum=0.9)
        name, p, g = next(iter(model.parameters()))
        start = p.copy()
        g[...] = 1.0
        opt.step(1)
        first_move = (p - start).copy()
        g[...] = 1.0
        opt.step(1)
        second_move = p - start - first_move
        np.testing.assert_allclose(second_move, first_move * 1.9)

    def test_lr_decay_schedule(self):
        model = self.make_model()
        opt = SGD(model, lr=1.0, decay_epochs=(2, 4), decay_factor=0.1)
        opt.set_epoch(0)
        assert opt.lr == 1.0
        opt.set_epoch(2)
        assert opt.lr == pytest.approx(0.1)
        opt.set_epoch(4)
        assert opt.lr == pytest.approx(0.01)

    def test_weight_decay_shrinks_params(self):
        model = self.make_model()
        opt = SGD(model, lr=0.1, momentum=0.0, weight_decay=0.5)
        name, p, g = next(iter(model.parameters()))
        p[...] = 1.0
        g[...] = 0.0
        opt.step(1)
        np.testing.assert_allclose(p, 0.95)

    def test_invalid_batch_size(self):
        opt = SGD(self.make_model())
        with pytest.raises(ValueError):
            opt.step(0)


class TestDataset:
    def test_deterministic(self):
        a = synthetic_dataset(train=32, val=16, seed=5)
        b = synthetic_dataset(train=32, val=16, seed=5)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_val, b.y_val)

    def test_shapes_and_classes(self):
        d = synthetic_dataset(train=40, val=24, size=16, channels=2,
                              num_classes=5)
        assert d.x_train.shape == (40, 2, 16, 16)
        assert d.x_val.shape == (24, 2, 16, 16)
        assert d.num_classes == 5
        assert set(np.unique(d.y_train)) <= set(range(5))

    def test_roughly_balanced(self):
        d = synthetic_dataset(train=80, val=40, num_classes=8)
        counts = np.bincount(d.y_train, minlength=8)
        assert counts.min() >= 5

    def test_classes_are_separable_signal(self):
        """Mean images of different classes must differ far above noise."""
        d = synthetic_dataset(train=128, val=8, noise=0.3, num_classes=4)
        means = [
            d.x_train[d.y_train == c].mean(axis=0) for c in range(4)
        ]
        gap = np.abs(means[0] - means[1]).mean()
        assert gap > 0.1


class TestTrainLoop:
    def test_learns_and_records(self):
        data = synthetic_dataset(train=512, val=128, noise=0.6, seed=3)
        net = toy_chain(widths=(16, 32, 64), norm=NormKind.GROUP)
        model = NetworkModel(net, seed=5, dtype=np.float32)
        result = train(model, data, epochs=3, batch=32, lr=0.05, seed=11)
        assert len(result.val_error) == 3
        assert result.val_error[-1] < 0.3  # chance is 0.875
        assert len(result.first_norm_mean) == 3

    def test_mbs_identical_history(self):
        data = synthetic_dataset(train=64, val=32, seed=2)
        net = toy_chain(widths=(8,), norm=NormKind.GROUP)
        a = train(NetworkModel(net, seed=1), data, epochs=2, batch=16,
                  seed=9)
        b = train(NetworkModel(net, seed=1), data, epochs=2, batch=16,
                  sub_batch=5, seed=9)
        np.testing.assert_allclose(a.train_loss, b.train_loss, rtol=1e-10)
        assert a.val_error == b.val_error
