"""Coordinator durability: journal mechanics and crash-recovery replay.

Two layers under test:

- :class:`repro.runtime.journal.Journal` — the on-disk format: fsync'd
  append, sequence numbers, compaction, torn-tail tolerance, loud
  failure on real corruption.
- :meth:`repro.runtime.queue.JobQueue.restore` — replay: a queue
  rebuilt from the journal must match the live queue it mirrors, for
  arbitrary operation sequences (randomized property tests below).

Everything runs on a fake clock and tmp dirs — no coordinator process.
The kill-matrix e2e that SIGKILLs a real coordinator lives in
``test_serve_jobs.py``.
"""

import json
import random

import pytest

from repro.runtime.cache import spec_fingerprint
from repro.runtime.journal import Journal, JournalError
from repro.runtime.queue import DONE, PENDING, POISONED, JobQueue
from repro.runtime.spec import ExperimentSpec, expand_grid


def _produce(x=0, y=1):
    return {"value": x * 10 + y}


SPEC = ExperimentSpec(
    name="jtest",
    title="journal test spec",
    produce=_produce,
    sweep={"x": (0, 1), "y": (1, 2)},
    artifact=("value",),
)

GRID = expand_grid(SPEC.sweep)  # 4 points, deterministic order


def get_test_spec(name):
    if name != SPEC.name:
        raise KeyError(name)
    return SPEC


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def manifest_for(point):
    return {
        "spec": SPEC.name,
        "version": SPEC.version,
        "key": point.key,
        "fingerprint": spec_fingerprint(SPEC),
        "params": point.params,
        "artifact": _produce(**point.params),
        "rendered": "",
    }


def make_journaled_queue(tmp_path, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("lease_timeout_s", 10.0)
    kwargs.setdefault("max_attempts", 3)
    journal = Journal(tmp_path / "state", fsync=False,
                      snapshot_every=kwargs.pop("snapshot_every", 10_000))
    queue = JobQueue(clock=clock, journal=journal, **kwargs)
    return queue, clock, journal


def restore_mirror(tmp_path, clock):
    """Rebuild the queue from disk exactly as journaled (no expiry)."""
    return JobQueue.restore(
        Journal(tmp_path / "state", fsync=False),
        specs=get_test_spec, clock=clock,
        expire_outstanding=False, compact=False,
    )


def normalized(dump):
    """Dump minus lease deadlines.

    Replay re-derives each lease deadline from the *replay-time* clock,
    so ``remaining_s`` legitimately differs between a live queue and
    its reconstruction; a real restore voids every live lease anyway.
    Everything else must match exactly.
    """
    out = json.loads(json.dumps(dump))  # deep copy + JSON-safety check
    for lease in out["leases"]:
        lease["remaining_s"] = None
    return out


# ---------------------------------------------------------------------------
# Journal file format


class TestJournalFormat:
    def test_fresh_dir_loads_empty(self, tmp_path):
        journal = Journal(tmp_path / "state")
        assert journal.load() == (None, [])

    def test_snapshot_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            Journal(tmp_path, snapshot_every=0)

    def test_record_then_load_round_trips_in_order(self, tmp_path):
        journal = Journal(tmp_path, fsync=False)
        journal.record({"e": "a"})
        journal.record({"e": "b"})
        journal.close()
        _, events = Journal(tmp_path).load()
        assert [(e["n"], e["e"]) for e in events] == [(1, "a"), (2, "b")]

    def test_sequence_continues_after_reload(self, tmp_path):
        journal = Journal(tmp_path, fsync=False)
        journal.record({"e": "a"})
        journal.close()
        reopened = Journal(tmp_path, fsync=False)
        reopened.load()
        assert reopened.record({"e": "b"}) == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = Journal(tmp_path, fsync=False)
        journal.record({"e": "a"})
        journal.close()
        with open(journal.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"n": 2, "e": "tr')  # crash mid-append
        _, events = Journal(tmp_path).load()
        assert [e["e"] for e in events] == ["a"]

    def test_corrupt_line_before_tail_is_loud(self, tmp_path):
        journal = Journal(tmp_path, fsync=False)
        journal.record({"e": "a"})
        journal.record({"e": "b"})
        journal.close()
        lines = journal.journal_path.read_text().splitlines()
        lines[0] = lines[0][:5]  # garbage *before* an intact event
        journal.journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt event line"):
            Journal(tmp_path).load()

    def test_event_without_sequence_number_is_loud(self, tmp_path):
        (tmp_path / "journal.jsonl").write_text('{"e": "a"}\n')
        with pytest.raises(JournalError, match="sequence number"):
            Journal(tmp_path).load()

    def test_unreadable_snapshot_is_loud(self, tmp_path):
        (tmp_path / "snapshot.json").write_text("{nope")
        with pytest.raises(JournalError, match="unreadable snapshot"):
            Journal(tmp_path).load()

    def test_wrong_schema_snapshot_is_loud(self, tmp_path):
        (tmp_path / "snapshot.json").write_text(
            json.dumps({"schema": 999, "n": 1, "state": {}})
        )
        with pytest.raises(JournalError, match="schema"):
            Journal(tmp_path).load()

    def test_compact_truncates_journal(self, tmp_path):
        journal = Journal(tmp_path, fsync=False)
        journal.record({"e": "a"})
        journal.compact({"marker": 1})
        journal.close()
        state, events = Journal(tmp_path).load()
        assert state == {"marker": 1}
        assert events == []
        assert journal.journal_path.read_text() == ""

    def test_crash_between_snapshot_and_truncate_is_benign(self, tmp_path):
        # simulate: snapshot renamed into place, but the old journal
        # (events the snapshot already folds in) survived the crash
        journal = Journal(tmp_path, fsync=False)
        journal.record({"e": "a"})
        stale = journal.journal_path.read_text()
        journal.compact({"marker": 1})
        journal.record({"e": "b"})
        journal.close()
        fresh = journal.journal_path.read_text()
        journal.journal_path.write_text(stale + fresh)
        state, events = Journal(tmp_path).load()
        assert state == {"marker": 1}
        assert [e["e"] for e in events] == ["b"]  # "a" skipped by n

    def test_compaction_due_after_snapshot_every_events(self, tmp_path):
        journal = Journal(tmp_path, fsync=False, snapshot_every=2)
        journal.record({"e": "a"})
        assert not journal.compaction_due
        journal.record({"e": "b"})
        assert journal.compaction_due
        journal.compact({})
        assert not journal.compaction_due
        assert journal.compactions == 1


# ---------------------------------------------------------------------------
# Queue replay


class TestQueueReplay:
    def test_replay_matches_live_through_a_full_drain(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path)
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=2)
        queue.complete(lease.lease_id, points[0].index,
                       manifest_for(points[0]))
        queue.fail(lease.lease_id, points[1].index, "boom")
        mirror = restore_mirror(tmp_path, clock)
        assert normalized(mirror.dump_state()) \
            == normalized(queue.dump_state())

    def test_replay_reproduces_expiry_and_poison(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path, max_attempts=1)
        queue.submit(SPEC, GRID[:2])
        queue.lease("w1", max_points=2)
        clock.advance(11.0)
        queue.expire()
        assert queue.points_poisoned == 2
        mirror = restore_mirror(tmp_path, clock)
        assert normalized(mirror.dump_state()) \
            == normalized(queue.dump_state())
        assert mirror.points_poisoned == 2

    def test_replay_reproduces_pre_completed_submit_points(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path)
        hits = {}

        def warm(point):
            if point.index == 0:
                return hits.setdefault(0, manifest_for(point))
            return None

        queue.submit(SPEC, GRID[:2], already_done=warm)
        mirror = restore_mirror(tmp_path, clock)
        assert mirror.jobs["job-1"].points[0].state == DONE
        assert mirror.points_completed == 1
        assert normalized(mirror.dump_state()) \
            == normalized(queue.dump_state())

    def test_snapshot_plus_tail_equals_pure_replay(self, tmp_path):
        # low snapshot_every forces mid-run compactions, so restore
        # exercises the load-snapshot-then-replay-tail path
        queue, clock, journal = make_journaled_queue(
            tmp_path, snapshot_every=3)
        queue.submit(SPEC, GRID)
        while (granted := queue.lease("w", max_points=1)) is not None:
            _, lease, points = granted
            queue.complete(lease.lease_id, points[0].index,
                           manifest_for(points[0]))
        assert journal.compactions >= 1
        mirror = restore_mirror(tmp_path, clock)
        assert normalized(mirror.dump_state()) \
            == normalized(queue.dump_state())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_replay_matches_live_for_random_histories(self, tmp_path, seed):
        """Property: replay(journal) == live queue, whatever happened.

        Drives a journaled queue through a random mix of submits,
        partial leases, completes, fails, heartbeats, and clock jumps
        past the lease timeout, then checks the reconstruction after
        every few steps — i.e. for arbitrary event-log prefixes.
        """
        rng = random.Random(seed)
        queue, clock, _ = make_journaled_queue(
            tmp_path, max_attempts=2,
            snapshot_every=rng.choice([2, 5, 10_000]))
        live = []  # (lease, points) with work possibly outstanding
        for step in range(40):
            op = rng.random()
            if op < 0.15:
                size = rng.randrange(1, len(GRID) + 1)
                queue.submit(SPEC, GRID[:size])
            elif op < 0.45:
                granted = queue.lease(f"w{rng.randrange(3)}",
                                      max_points=rng.randrange(1, 3))
                if granted is not None:
                    live.append((granted[1], list(granted[2])))
            elif op < 0.75 and live:
                lease, points = rng.choice(live)
                if points:
                    point = points.pop()
                    try:
                        if rng.random() < 0.7:
                            queue.complete(lease.lease_id, point.index,
                                           manifest_for(point))
                        else:
                            queue.fail(lease.lease_id, point.index,
                                       "injected")
                    except Exception:
                        pass  # lease expired mid-history: fine
            elif op < 0.85 and live:
                try:
                    queue.heartbeat(rng.choice(live)[0].lease_id)
                except Exception:
                    pass
            else:
                clock.advance(rng.choice([1.0, 11.0]))
                queue.expire()
            if step % 7 == 0:
                mirror = restore_mirror(tmp_path, clock)
                assert normalized(mirror.dump_state()) \
                    == normalized(queue.dump_state()), f"step {step}"
        mirror = restore_mirror(tmp_path, clock)
        assert normalized(mirror.dump_state()) \
            == normalized(queue.dump_state())


# ---------------------------------------------------------------------------
# Restore policy


class TestRestorePolicy:
    def test_fresh_state_dir_yields_working_empty_queue(self, tmp_path):
        journal = Journal(tmp_path / "state", fsync=False)
        queue = JobQueue.restore(journal, specs=get_test_spec,
                                 clock=FakeClock())
        assert queue.jobs == {}
        assert queue.journal is journal
        queue.submit(SPEC, GRID[:1])  # journaling attached and live
        assert journal.events_recorded >= 1

    def test_outstanding_leases_voided_and_points_requeued(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path)
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=2)
        queue.complete(lease.lease_id, points[0].index,
                       manifest_for(points[0]))
        restored = JobQueue.restore(
            Journal(tmp_path / "state", fsync=False),
            specs=get_test_spec, clock=clock,
        )
        job = restored.jobs["job-1"]
        assert job.points[0].state == DONE  # finished work survives
        assert job.points[1].state == PENDING  # in-flight re-queued
        assert job.points[1].attempts == 1  # crash cost the attempt
        assert restored.leases_expired == queue.leases_expired + 1
        # the dead lease is retained for late completes while running
        assert not restored.leases[lease.lease_id].alive

    def test_restore_poisons_point_out_of_attempts(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path, max_attempts=1)
        queue.submit(SPEC, GRID[:1])
        queue.lease("w1")
        restored = JobQueue.restore(
            Journal(tmp_path / "state", fsync=False),
            specs=get_test_spec, clock=clock,
        )
        point = restored.jobs["job-1"].points[0]
        assert point.state == POISONED
        assert "coordinator restart" in point.error
        assert restored.leases == {}  # terminal job: leases pruned

    def test_restore_compacts_into_fresh_snapshot(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path)
        queue.submit(SPEC, GRID)
        journal = Journal(tmp_path / "state", fsync=False)
        JobQueue.restore(journal, specs=get_test_spec, clock=clock)
        assert journal.snapshot_path.exists()
        assert journal.journal_path.read_text() == ""

    def test_unknown_spec_fails_loudly(self, tmp_path):
        queue, clock, _ = make_journaled_queue(tmp_path)
        queue.submit(SPEC, GRID[:1])

        def no_specs(name):
            raise KeyError(name)

        with pytest.raises(ValueError, match="does not register"):
            JobQueue.restore(Journal(tmp_path / "state", fsync=False),
                             specs=no_specs, clock=clock)

    def test_restored_queue_drains_to_byte_identical_manifests(
            self, tmp_path):
        # the end-to-end invariant in miniature: crash mid-drain,
        # restore, finish — completes validate against journaled keys
        queue, clock, _ = make_journaled_queue(tmp_path)
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=2)
        queue.complete(lease.lease_id, points[0].index,
                       manifest_for(points[0]))
        restored = JobQueue.restore(
            Journal(tmp_path / "state", fsync=False),
            specs=get_test_spec, clock=clock,
        )
        while (granted := restored.lease("w2", max_points=4)) is not None:
            _, lease, points = granted
            for point in points:
                restored.complete(lease.lease_id, point.index,
                                  manifest_for(point))
        assert restored.all_terminal
        job = restored.jobs["job-1"]
        assert [p.state for p in job.points] == [DONE] * len(GRID)
        assert restored.points_completed == len(GRID)
