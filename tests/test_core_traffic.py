"""Unit tests for the DRAM traffic model, including hand-computed cases."""
import pytest

from repro.core.policies import make_schedule
from repro.core.traffic import (
    Category,
    Phase,
    TrafficOptions,
    compute_traffic,
)
from repro.graph.blocks import chain_block
from repro.graph.layers import Activation, Conv2D, Norm
from repro.graph.network import Network
from repro.types import MIB, Shape


def tiny_conv_net():
    """input(2x4x4) -> conv 3x3 (4ch) -> norm -> relu, one block."""
    in_shape = Shape(2, 4, 4)
    conv = Conv2D(name="c", in_shape=in_shape, out_channels=4,
                  kernel=3, padding=1)
    norm = Norm(name="n", in_shape=conv.out_shape)
    act = Activation(name="a", in_shape=conv.out_shape)
    block = chain_block("b0", in_shape, [conv, norm, act])
    return Network("tiny", in_shape, (block,), default_mini_batch=4)


class TestBaselineHandComputed:
    """Every byte of the Baseline schedule for the tiny network."""

    N = 4
    IN_B = 2 * 4 * 4 * 2    # input bytes/sample
    OUT_B = 4 * 4 * 4 * 2   # conv/norm/act feature bytes/sample
    W_B = 4 * 2 * 9 * 2     # conv weight bytes
    P_B = 2 * 4 * 2         # norm scale/shift bytes

    @pytest.fixture()
    def report(self):
        net = tiny_conv_net()
        sched = make_schedule(net, "baseline")
        return compute_traffic(net, sched)

    def test_forward_feature_reads(self, report):
        # conv reads input; norm reads conv output twice; act reads once
        expect = self.N * (self.IN_B + 2 * self.OUT_B + self.OUT_B)
        fwd = [r for r in report.records
               if r.phase is Phase.FWD and r.category is Category.FEAT_RD]
        assert sum(r.bytes for r in fwd) == expect

    def test_forward_feature_writes(self, report):
        expect = self.N * 3 * self.OUT_B  # conv, norm, act outputs
        fwd = [r for r in report.records
               if r.phase is Phase.FWD and r.category is Category.FEAT_WR]
        assert sum(r.bytes for r in fwd) == expect

    def test_weight_reads(self, report):
        by_cat = report.by_category()
        assert by_cat[Category.WEIGHT_RD] == 2 * self.W_B  # fwd + bwd

    def test_wgrad_written_once(self, report):
        assert report.by_category()[Category.WGRAD_WR] == self.W_B
        assert Category.WGRAD_RD not in report.by_category()

    def test_backward_grad_flow(self, report):
        by_cat = report.by_category()
        # incoming grads: act, norm, conv (+1 re-read for the second GEMM)
        assert by_cat[Category.GRAD_RD] == self.N * 4 * self.OUT_B
        # outgoing grads: act -> norm tensor, norm -> conv-out tensor
        # (conv is the first layer overall: no input gradient)
        assert by_cat[Category.GRAD_WR] == self.N * 2 * self.OUT_B

    def test_backward_value_reads(self, report):
        by_cat = report.by_category()
        # conv re-reads its input, norm re-reads conv output twice,
        # act (no mask) re-reads its output
        expect = self.N * (self.IN_B + 2 * self.OUT_B + self.OUT_B)
        assert by_cat[Category.CHK_RD] == expect

    def test_norm_params(self, report):
        by_cat = report.by_category()
        assert by_cat[Category.PARAM] == self.P_B + 2 * self.P_B

    def test_no_masks_without_relu_mask(self, report):
        by_cat = report.by_category()
        assert Category.MASK_WR not in by_cat
        assert Category.MASK_RD not in by_cat

    def test_reads_plus_writes_total(self, report):
        assert report.reads() + report.writes() == report.total_bytes


class TestFusedHandComputed:
    """One fully-fused group for the same network (big buffer, MBS)."""

    N = 4
    IN_B = 2 * 4 * 4 * 2
    OUT_B = 4 * 4 * 4 * 2
    W_B = 4 * 2 * 9 * 2

    @pytest.fixture()
    def report(self):
        net = tiny_conv_net()
        sched = make_schedule(net, "mbs2", buffer_bytes=1 * MIB)
        assert sched.groups[0].iterations == 1  # everything fits
        return compute_traffic(net, sched)

    def test_forward_reads_only_input(self, report):
        fwd = [r for r in report.records if r.phase is Phase.FWD]
        feat = sum(r.bytes for r in fwd if r.category is Category.FEAT_RD)
        assert feat == self.N * self.IN_B

    def test_forward_checkpoints(self, report):
        fwd = [r for r in report.records if r.phase is Phase.FWD]
        chk = sum(r.bytes for r in fwd if r.category is Category.CHK_WR)
        # conv output x (norm consumes it in bwd); the block output (act)
        # feeds the loss only, so it is checkpointed as the final output
        assert chk == self.N * 2 * self.OUT_B

    def test_relu_mask_replaces_value_read(self, report):
        by_cat = report.by_category()
        mask_bytes = (4 * 4 * 4 * self.N + 7) // 8
        assert by_cat[Category.MASK_WR] == mask_bytes
        assert by_cat[Category.MASK_RD] == mask_bytes

    def test_fused_cuts_traffic(self, report):
        net = tiny_conv_net()
        base = compute_traffic(net, make_schedule(net, "baseline"))
        assert report.total_bytes < base.total_bytes


class TestIterationScaling:
    def test_weight_traffic_scales_with_iterations(self, rn50):
        opts = TrafficOptions()
        fs = compute_traffic(rn50, make_schedule(rn50, "mbs-fs"), opts)
        m2 = compute_traffic(rn50, make_schedule(rn50, "mbs2"), opts)
        # MBS-FS iterates deep heavy layers far more often
        assert fs.by_category()[Category.WEIGHT_RD] > \
            m2.by_category()[Category.WEIGHT_RD]

    def test_wgrad_accumulation_reads(self, rn50):
        sched = make_schedule(rn50, "mbs-fs")
        rep = compute_traffic(rn50, sched)
        by_cat = rep.by_category()
        iters = sched.groups[0].iterations
        # I writes and I-1 reads of the partial sums
        assert by_cat[Category.WGRAD_RD] == pytest.approx(
            by_cat[Category.WGRAD_WR] * (iters - 1) / iters
        )


class TestReportQueries:
    def test_by_kind_and_block(self, residual_net):
        rep = compute_traffic(residual_net, make_schedule(residual_net, "mbs2"))
        assert set(rep.by_block()) <= {b.name for b in residual_net.blocks}
        assert rep.by_kind()
        assert sum(rep.by_phase().values()) == rep.total_bytes

    def test_schedule_network_mismatch_raises(self, chain_net, residual_net):
        sched = make_schedule(chain_net, "baseline")
        # residual_net happens to have the same block count; force mismatch
        from repro.graph.network import Network
        smaller = Network(
            "sub", chain_net.in_shape, chain_net.blocks[:2],
            default_mini_batch=8,
        )
        with pytest.raises(ValueError, match="covers"):
            compute_traffic(smaller, sched)
