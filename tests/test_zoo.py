"""Zoo networks pinned against published architectures."""
import pytest

from repro.graph.layers import Conv2D, LayerKind, Norm, NormKind
from repro.types import Shape
from repro.zoo import PAPER_NETWORKS, build, resnet
from repro.zoo.common import gn_groups


class TestParamCounts:
    """Exact or banded published trainable-parameter counts."""

    def test_resnet50(self, rn50):
        assert rn50.param_count == 25_557_032

    def test_resnet101(self, rn101):
        assert rn101.param_count == 44_549_160

    def test_resnet152(self, rn152):
        assert rn152.param_count == 60_192_808

    def test_inception_v3(self, incv3):
        assert abs(incv3.param_count - 23_834_568) / 23_834_568 < 0.01

    def test_inception_v4(self, incv4):
        assert 40e6 < incv4.param_count < 46e6

    def test_alexnet(self, alex):
        assert alex.param_count == 62_378_344


class TestResNetStructure:
    def test_block_counts(self, rn50, rn101, rn152):
        # conv1 + pool + bottlenecks + head
        assert len(rn50) == 2 + 16 + 1
        assert len(rn101) == 2 + 33 + 1
        assert len(rn152) == 2 + 50 + 1

    def test_stage_output_shapes(self, rn50):
        assert rn50.block_named("conv2_3").out_shape == Shape(256, 56, 56)
        assert rn50.block_named("conv3_4").out_shape == Shape(512, 28, 28)
        assert rn50.block_named("conv4_6").out_shape == Shape(1024, 14, 14)
        assert rn50.block_named("conv5_3").out_shape == Shape(2048, 7, 7)

    def test_logits_shape(self, rn50):
        assert rn50.out_shape == Shape(1000, 1, 1)

    def test_projection_only_at_stage_starts(self, rn50):
        for block in rn50.blocks:
            if not block.is_module:
                continue
            shortcut = block.branches[1]
            first_of_stage = block.name.endswith("_1")
            assert shortcut.is_identity != first_of_stage

    def test_macs_match_published(self, rn50):
        # ResNet-50 is commonly quoted at ~4.1 GMACs (fused multiply-add)
        assert 3.8e9 < rn50.macs_per_sample < 4.3e9

    def test_default_mini_batch(self, rn50, alex):
        assert rn50.default_mini_batch == 32
        assert alex.default_mini_batch == 64

    def test_unsupported_depth(self):
        with pytest.raises(ValueError, match="unsupported"):
            resnet(20)

    def test_batchnorm_variant(self):
        net = resnet(50, norm=NormKind.BATCH)
        norms = [l for l in net.all_layers() if isinstance(l, Norm)]
        assert norms and all(n.norm is NormKind.BATCH for n in norms)
        assert net.param_count == 25_557_032  # same affine params


class TestInceptionStructure:
    def test_v3_module_output_channels(self, incv3):
        assert incv3.block_named("mixed5b").out_shape == Shape(256, 35, 35)
        assert incv3.block_named("mixed5d").out_shape == Shape(288, 35, 35)
        assert incv3.block_named("mixed6a").out_shape == Shape(768, 17, 17)
        assert incv3.block_named("mixed7a").out_shape == Shape(1280, 8, 8)
        assert incv3.block_named("mixed7c").out_shape == Shape(2048, 8, 8)

    def test_v3_forked_tails(self, incv3):
        block = incv3.block_named("mixed7b")
        forked = [b for b in block.branches if b.children]
        assert len(forked) == 2
        assert all(len(b.children) == 2 for b in forked)

    def test_v4_module_output_channels(self, incv4):
        assert incv4.block_named("mixed5a").out_shape == Shape(384, 35, 35)
        assert incv4.block_named("reductionA").out_shape == Shape(1024, 17, 17)
        assert incv4.block_named("reductionB").out_shape == Shape(1536, 8, 8)
        assert incv4.block_named("inceptionC_3").out_shape == Shape(1536, 8, 8)

    def test_v4_module_counts(self, incv4):
        names = [b.name for b in incv4.blocks]
        assert sum(n.startswith("inceptionA") for n in names) == 4
        assert sum(n.startswith("inceptionB") for n in names) == 7
        assert sum(n.startswith("inceptionC") for n in names) == 3


class TestAlexNet:
    def test_no_norm_layers(self, alex):
        assert not any(l.kind is LayerKind.NORM for l in alex.all_layers())

    def test_conv_biases(self, alex):
        convs = [l for l in alex.all_layers() if isinstance(l, Conv2D)]
        assert len(convs) == 5
        assert all(c.bias for c in convs)

    def test_feature_shapes(self, alex):
        assert alex.block_named("conv1").out_shape == Shape(96, 55, 55)
        assert alex.block_named("pool5").out_shape == Shape(256, 6, 6)

    def test_fc_dominates_params(self, alex):
        fc_params = sum(
            l.param_count for l in alex.all_layers()
            if l.kind is LayerKind.FC
        )
        assert fc_params / alex.param_count > 0.9


class TestToyNetworks:
    def test_toy_inception_fork(self, inception_net):
        mix = inception_net.block_named("mix")
        assert mix.is_module
        assert any(b.children for b in mix.branches)

    def test_toy_residual_has_identity_and_projection(self, residual_net):
        shortcuts = [
            b.branches[1] for b in residual_net.blocks if b.is_module
        ]
        assert any(s.is_identity for s in shortcuts)
        assert any(not s.is_identity for s in shortcuts)


class TestBuild:
    @pytest.mark.parametrize("name", PAPER_NETWORKS)
    def test_build_dispatch(self, name):
        assert build(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown network"):
            build("vgg16")


class TestGnGroups:
    @pytest.mark.parametrize("c,expect", [
        (64, 32), (32, 32), (48, 24), (80, 20), (3, 3), (1, 1), (96, 32),
        (17, 17), (35, 7),
    ])
    def test_divides_and_bounded(self, c, expect):
        g = gn_groups(c)
        assert g == expect
        assert c % g == 0 and g <= 32
