"""Step-time bridge tests: the latency objective can never drift from
the simulator.

The contract mirrors the traffic cost model's: per-block prices from
:mod:`repro.core.steptime` must reassemble into *exactly* the step time
:func:`repro.wavecore.simulator.simulate_step` reports — same walkers,
same per-layer timing, same float association — for every policy, every
buffer size, and both hardware double-buffering modes.
"""
import pytest

from repro.core.cost import LatencyCostModel
from repro.core.policies import POLICIES, make_schedule
from repro.core.schedule import Schedule, make_group
from repro.core.steptime import block_step_time, schedule_step_time
from repro.core.subbatch import per_block_sub_batches
from repro.types import KIB, MIB
from repro.wavecore.config import (
    BASELINE_CONFIG,
    DEFAULT_CONFIG,
    config_for_policy,
)
from repro.wavecore.simulator import simulate_step, step_time
from repro.zoo import build

NETWORKS = ("toy_chain", "toy_residual", "toy_inception",
            "alexnet", "resnet50")
BUFFERS = (16 * KIB, 1 * MIB, 10 * MIB)


@pytest.fixture(scope="module")
def nets():
    return {name: build(name) for name in NETWORKS}


def _singleton_schedule(net, sub_batches, mini_batch, feasible):
    """Every block its own fused group (single-block groups throughout)."""
    groups = tuple(
        make_group((i,), s, mini_batch, feasible)
        for i, s in enumerate(sub_batches)
    )
    return Schedule(
        policy="mbs1", network=net.name, mini_batch=mini_batch,
        buffer_bytes=10 * MIB, branch_reuse=False, relu_mask=True,
        groups=groups, layer_reuse_bytes=10 * MIB,
    )


class TestScheduleStepTime:
    """schedule_step_time == simulate_step(...).time_s, bit-for-bit."""

    @pytest.mark.parametrize("net_name", NETWORKS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_simulator_exactly(self, nets, net_name, policy):
        net = nets[net_name]
        for buf in BUFFERS:
            sched = make_schedule(net, policy, buffer_bytes=buf)
            cfg = config_for_policy(policy, buffer_bytes=buf)
            assert schedule_step_time(net, sched, cfg) == simulate_step(
                net, sched, cfg
            ).time_s, (policy, buf)

    def test_wavecore_entry_point_agrees(self, nets):
        net = nets["toy_residual"]
        sched = make_schedule(net, "mbs2")
        cfg = config_for_policy("mbs2")
        assert step_time(net, sched, cfg) == simulate_step(
            net, sched, cfg
        ).time_s

    def test_default_config_resolves_from_policy(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "baseline")
        # baseline hardware has no weight double buffer; the bridge must
        # pick the same config the simulator picks
        assert schedule_step_time(net, sched) == simulate_step(
            net, sched
        ).time_s

    def test_mismatched_schedule_raises(self, nets):
        sched = make_schedule(nets["resnet50"], "mbs1")
        with pytest.raises(ValueError):
            schedule_step_time(nets["toy_chain"], sched)

    def test_unlimited_bandwidth_matches_and_is_faster(self, nets):
        net = nets["toy_inception"]
        sched = make_schedule(net, "mbs2", buffer_bytes=1 * MIB)
        cfg = config_for_policy("mbs2", buffer_bytes=1 * MIB)
        free = schedule_step_time(net, sched, cfg, unlimited_bandwidth=True)
        assert free == simulate_step(
            net, sched, cfg, unlimited_bandwidth=True
        ).time_s
        assert free <= schedule_step_time(net, sched, cfg)


class TestLatencyCostModel:
    def test_schedule_cost_equals_simulator_every_policy(self, nets):
        for net_name in ("toy_inception", "resnet50"):
            net = nets[net_name]
            for policy in POLICIES:
                for buf in BUFFERS:
                    sched = make_schedule(net, policy, buffer_bytes=buf)
                    cfg = config_for_policy(policy, buffer_bytes=buf)
                    model = LatencyCostModel.for_schedule(net, sched, cfg=cfg)
                    assert model.schedule_cost(sched) == simulate_step(
                        net, sched, cfg
                    ).time_s, (policy, buf)

    def test_group_sums_decompose_the_step_time(self, nets):
        """Group prices reassemble the total up to float association."""
        net = nets["toy_inception"]
        for buf in BUFFERS:
            sched = make_schedule(
                net, "mbs-auto", buffer_bytes=buf, objective="latency"
            )
            model = LatencyCostModel.for_schedule(
                net, sched, cfg=config_for_policy("mbs-auto", buffer_bytes=buf)
            )
            total = 0.0
            for g in sched.groups:
                reuse = sched.branch_reuse_of(g.blocks[0])
                total += model.group_cost(
                    g.blocks, g.sub_batch, reuse, g.block_fused
                )
                if g.blocks[-1] < sched.num_blocks - 1:
                    total += model.boundary_cost(g.blocks[-1], reuse)
            assert total == pytest.approx(
                model.schedule_cost(sched), rel=1e-12
            )

    def test_boundary_cost_is_zero(self, nets):
        model = LatencyCostModel(nets["toy_chain"], 32)
        assert model.boundary_cost(0, True) == 0.0
        assert model.boundary_cost(0, False) == 0.0

    def test_streaming_costs_reassemble_baseline(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "baseline")
        model = LatencyCostModel.for_schedule(net, sched)
        total = 0.0
        for i in range(len(net.blocks)):
            total += model.streaming_cost(i)
        assert total == simulate_step(net, sched).time_s

    def test_schedule_cost_rejects_mismatched_environment(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "mbs2")
        model = LatencyCostModel(net, mini_batch=sched.mini_batch * 2)
        with pytest.raises(ValueError, match="environment"):
            model.schedule_cost(sched)

    def test_memo_is_transparent(self, nets):
        net = nets["toy_residual"]
        model = LatencyCostModel(net, 32, layer_reuse_bytes=10 * MIB)
        blocks = tuple(range(len(net.blocks)))
        first = model.group_cost(blocks, 2, True)
        assert model.group_cost(blocks, 2, True) == first  # memo hit
        fresh = LatencyCostModel(net, 32, layer_reuse_bytes=10 * MIB)
        assert fresh.group_cost(blocks, 2, True) == first


class TestEdgeCases:
    def test_single_layer_single_block_groups(self, nets):
        """Singleton fused groups (and single-layer blocks) price exactly."""
        net = nets["toy_chain"]
        mini_batch = net.default_mini_batch
        feasible = per_block_sub_batches(
            net, 10 * MIB, mini_batch, branch_reuse=False
        )
        assert all(s >= 1 for s in feasible)
        sched = _singleton_schedule(net, feasible, mini_batch, feasible)
        cfg = DEFAULT_CONFIG
        assert schedule_step_time(net, sched, cfg) == simulate_step(
            net, sched, cfg
        ).time_s

    def test_remainder_sub_batch_sequence(self, nets):
        """A sub-batch that does not divide the mini-batch (3,3,...,2)."""
        net = nets["toy_chain"]
        mini_batch = net.default_mini_batch
        assert mini_batch % 3 != 0
        feasible = [3] * len(net.blocks)
        sched = _singleton_schedule(net, feasible, mini_batch, feasible)
        cfg = DEFAULT_CONFIG
        assert schedule_step_time(net, sched, cfg) == simulate_step(
            net, sched, cfg
        ).time_s

    def test_group_larger_than_double_buffer_window(self, nets):
        """Whole-network groups exceed what the per-PE second weight
        register can hide: the fill overlap is per GEMM wave, never
        across layers, so the decomposition must stay exact and double
        buffering must never cost time."""
        net = nets["toy_inception"]
        sched = make_schedule(net, "mbs2", buffer_bytes=40 * MIB)
        assert max(len(g.blocks) for g in sched.groups) > 1
        with_db = schedule_step_time(net, sched, DEFAULT_CONFIG)
        without_db = schedule_step_time(net, sched, BASELINE_CONFIG)
        assert with_db == simulate_step(net, sched, DEFAULT_CONFIG).time_s
        assert without_db == simulate_step(net, sched, BASELINE_CONFIG).time_s
        assert with_db <= without_db

    def test_block_zero_skips_data_gradient(self, nets):
        """The first network block's first layer never propagates a data
        gradient; the per-group price must honor that structural fact."""
        net = nets["toy_chain"]
        sched = make_schedule(net, "baseline")
        model = LatencyCostModel.for_schedule(net, sched)
        per_block = [
            model.streaming_cost(i) for i in range(len(net.blocks))
        ]
        by_block: dict[str, float] = {}
        for lt in simulate_step(net, sched).layers:
            by_block[lt.block] = by_block.get(lt.block, 0.0) + lt.time_s
        assert per_block[0] == pytest.approx(
            by_block[net.blocks[0].name], rel=1e-12
        )
