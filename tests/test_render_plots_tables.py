"""Presentation helpers: network rendering, ASCII plots, tables."""

from repro.experiments.plots import line_plot, sparkline
from repro.experiments.tables import fmt, format_table, gib, mib
from repro.graph.render import render_block, render_network, summary_table


class TestRender:
    def test_network_summary_lines(self, residual_net):
        text = render_network(residual_net)
        assert "toy_residual" in text
        assert text.count("\n") == len(residual_net.blocks)
        assert "module" in text and "chain" in text

    def test_detail_mode_lists_layers(self, residual_net):
        text = render_network(residual_net, detail=True)
        for layer in residual_net.all_layers():
            if layer.kind.value in ("conv", "fc"):
                assert layer.name in text

    def test_block_diagram_shows_branches(self, residual_net):
        module = next(b for b in residual_net.blocks if b.is_module)
        text = render_block(module)
        assert "branch[0]" in text and "branch[1]" in text
        assert "merge: add" in text

    def test_identity_marked(self, residual_net):
        module = residual_net.block_named("res1")
        assert "(identity)" in render_block(module)

    def test_fork_rendered(self, inception_net):
        text = render_block(inception_net.block_named("mix"))
        assert "fork[0]" in text and "fork[1]" in text

    def test_summary_table_fields(self, chain_net):
        rows = summary_table(chain_net)
        assert len(rows) == len(chain_net.blocks)
        assert sum(r["params"] for r in rows) == chain_net.param_count


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLinePlot:
    def test_contains_legend_and_axis(self):
        text = line_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, title="t",
                         y_label="units")
        assert "t" in text
        assert "*=a" in text and "o=b" in text
        assert "[units]" in text

    def test_extremes_labeled(self):
        text = line_plot({"a": [0.0, 10.0]})
        assert "10.000" in text and "0.000" in text

    def test_empty_series(self):
        assert line_plot({}, title="nothing") == "nothing"


class TestTables:
    def test_format_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        assert all("  " in l for l in lines[3:])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_numeric_helpers(self):
        assert fmt(1.23456) == "1.23"
        assert fmt(1.23456, 3) == "1.235"
        assert mib(2 * 2**20) == "2.0"
        assert gib(3 * 2**30) == "3.00"
