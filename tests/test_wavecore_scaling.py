"""Multi-chip weak-scaling model tests."""
import pytest

from repro.wavecore.scaling import (
    InterconnectConfig,
    ring_allreduce_time,
    weak_scaling,
)
from repro.zoo import toy_chain


class TestRingAllreduce:
    def test_single_chip_free(self):
        assert ring_allreduce_time(10**9, 1, InterconnectConfig()) == 0.0

    def test_volume_term_saturates(self):
        """2(P-1)/P approaches 2 payloads; time grows slowly past P=4."""
        link = InterconnectConfig(link_latency_s=0.0)
        t2 = ring_allreduce_time(10**9, 2, link)
        t16 = ring_allreduce_time(10**9, 16, link)
        assert t2 < t16 < 2 * t2

    def test_latency_term_linear_in_chips(self):
        link = InterconnectConfig(link_bandwidth_bytes_per_s=1e18,
                                  link_latency_s=1e-6)
        t4 = ring_allreduce_time(1, 4, link)
        t8 = ring_allreduce_time(1, 8, link)
        assert t8 == pytest.approx(t4 * 14 / 6)

    def test_bandwidth_scaling(self):
        fast = InterconnectConfig(link_bandwidth_bytes_per_s=100e9)
        slow = InterconnectConfig(link_bandwidth_bytes_per_s=10e9)
        assert ring_allreduce_time(10**9, 4, fast) < \
            ring_allreduce_time(10**9, 4, slow)


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return weak_scaling(toy_chain(), chips=(1, 2, 4, 8))

    def test_global_batch_grows(self, points):
        batches = [p.global_batch for p in points]
        assert batches == [32, 64, 128, 256]

    def test_throughput_increases(self, points):
        rates = [p.samples_per_s for p in points]
        assert rates == sorted(rates)

    def test_efficiency_bounded_and_decreasing(self, points):
        effs = [p.scaling_efficiency for p in points]
        assert all(0.0 < e <= 1.0 for e in effs)
        assert effs == sorted(effs, reverse=True)

    def test_single_chip_perfect(self, points):
        assert points[0].scaling_efficiency == pytest.approx(1.0)

    def test_mbs_scales_better_than_baseline_on_big_nets(self, rn50):
        """MBS's shorter step makes the (fixed) all-reduce relatively
        more visible — but absolute throughput must still win."""
        mbs = weak_scaling(rn50, "mbs2", chips=(8,))[0]
        base = weak_scaling(rn50, "baseline", chips=(8,))[0]
        assert mbs.samples_per_s > base.samples_per_s
