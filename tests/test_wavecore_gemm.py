"""Unit tests for Tab. 1 im2col GEMM dimensions."""
import pytest

from repro.graph.layers import Conv2D, FullyConnected
from repro.types import Shape
from repro.wavecore.gemm import GemmDims, GemmPhase, conv_gemm, fc_gemm

CONV = Conv2D(name="c", in_shape=Shape(64, 56, 56), out_channels=128,
              kernel=3, stride=2, padding=1)  # output 128x28x28
FC = FullyConnected(name="f", in_shape=Shape(2048, 1, 1), out_features=1000)


class TestGemmDims:
    def test_macs(self):
        assert GemmDims(10, 20, 30).macs == 6000

    @pytest.mark.parametrize("gh,gw,k", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_invalid(self, gh, gw, k):
        with pytest.raises(ValueError):
            GemmDims(gh, gw, k)


class TestConvGemm:
    def test_forward(self):
        d = conv_gemm(CONV, 4, GemmPhase.FORWARD)
        assert d == GemmDims(gh=4 * 28 * 28, gw=128, k=64 * 9)

    def test_data_grad(self):
        d = conv_gemm(CONV, 4, GemmPhase.DATA_GRAD)
        assert d == GemmDims(gh=4 * 56 * 56, gw=64, k=128 * 9)

    def test_weight_grad(self):
        d = conv_gemm(CONV, 4, GemmPhase.WEIGHT_GRAD)
        assert d == GemmDims(gh=64 * 9, gw=128, k=4 * 28 * 28)

    def test_forward_macs_match_layer(self):
        d = conv_gemm(CONV, 7, GemmPhase.FORWARD)
        assert d.macs == 7 * CONV.macs_per_sample

    def test_all_phases_same_macs(self):
        macs = {
            p: conv_gemm(CONV, 3, p).macs
            for p in (GemmPhase.FORWARD, GemmPhase.WEIGHT_GRAD)
        }
        assert macs[GemmPhase.FORWARD] == macs[GemmPhase.WEIGHT_GRAD]

    def test_asymmetric_kernel(self):
        conv = Conv2D(name="c7", in_shape=Shape(768, 17, 17),
                      out_channels=128, kernel=(1, 7), padding=(0, 3))
        d = conv_gemm(conv, 2, GemmPhase.FORWARD)
        assert d.k == 768 * 7

    def test_invalid_sub_batch(self):
        with pytest.raises(ValueError):
            conv_gemm(CONV, 0, GemmPhase.FORWARD)


class TestFcGemm:
    def test_forward(self):
        assert fc_gemm(FC, 32, GemmPhase.FORWARD) == GemmDims(32, 1000, 2048)

    def test_data_grad(self):
        assert fc_gemm(FC, 32, GemmPhase.DATA_GRAD) == GemmDims(32, 2048, 1000)

    def test_weight_grad(self):
        assert fc_gemm(FC, 32, GemmPhase.WEIGHT_GRAD) == GemmDims(2048, 1000, 32)

    def test_spatial_input_flattened(self):
        fc = FullyConnected(name="f", in_shape=Shape(256, 6, 6),
                            out_features=4096)
        assert fc_gemm(fc, 8, GemmPhase.FORWARD).k == 256 * 36
