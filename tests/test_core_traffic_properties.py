"""Property-based tests over the traffic model (hypothesis)."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import make_schedule
from repro.core.traffic import compute_traffic
from repro.types import KIB, Shape
from repro.zoo import toy_chain, toy_inception, toy_residual


@st.composite
def chain_networks(draw):
    """Random small chain networks with valid shapes."""
    c = draw(st.sampled_from([1, 2, 3]))
    hw = draw(st.sampled_from([8, 12, 16, 32]))
    depth = draw(st.integers(1, 4))
    widths = tuple(
        draw(st.sampled_from([4, 8, 12, 16])) for _ in range(depth)
    )
    classes = draw(st.integers(2, 10))
    batch = draw(st.integers(1, 32))
    return toy_chain(
        in_shape=Shape(c, hw, hw), widths=widths, num_classes=classes,
        mini_batch=batch,
    )


@settings(max_examples=40, deadline=None)
@given(chain_networks(), st.integers(8, 4096))
def test_traffic_positive_and_consistent(net, buffer_kib):
    for policy in ("baseline", "il", "mbs-fs", "mbs2", "mbs-auto"):
        rep = compute_traffic(net, make_schedule(net, policy,
                                                 buffer_bytes=buffer_kib * KIB))
        assert rep.total_bytes > 0
        assert all(r.bytes > 0 for r in rep.records)
        assert rep.reads() + rep.writes() == rep.total_bytes
        assert sum(rep.by_category().values()) == rep.total_bytes


@settings(max_examples=40, deadline=None)
@given(chain_networks(), st.integers(8, 4096))
def test_il_never_exceeds_baseline(net, buffer_kib):
    """IL only removes transfers relative to the conventional flow."""
    base = compute_traffic(net, make_schedule(net, "baseline"))
    il = compute_traffic(net, make_schedule(net, "il",
                                            buffer_bytes=buffer_kib * KIB))
    assert il.total_bytes <= base.total_bytes


@settings(max_examples=25, deadline=None)
@given(st.integers(16, 10240))
def test_mbs2_traffic_monotone_in_buffer_residual(buffer_kib):
    """A larger buffer can only reduce MBS2 traffic on the residual toy."""
    net = toy_residual()
    small = compute_traffic(net, make_schedule(net, "mbs2",
                                               buffer_bytes=buffer_kib * KIB))
    large = compute_traffic(net, make_schedule(net, "mbs2",
                                               buffer_bytes=4 * buffer_kib * KIB))
    assert large.total_bytes <= small.total_bytes


@settings(max_examples=40, deadline=None)
@given(st.sampled_from([toy_residual, toy_inception]),
       st.integers(16, 4096))
def test_auto_never_exceeds_mbs1_or_mbs2(builder, buffer_kib):
    """mbs-auto <= min(mbs1, mbs2) across the *full* buffer range.

    This replaces the old regime-scoped ``mbs2 <= mbs1`` claim: at very
    tight buffers (the ~16 KiB counterexample, included in this range)
    MBS2's larger footprint can force smaller sub-batches and *more*
    traffic than MBS1.  The adaptive policy optimizes the byte-accurate
    cost model, so reuse that doesn't pay is simply not selected and the
    ordering holds everywhere by construction.
    """
    net = builder()
    auto = compute_traffic(net, make_schedule(net, "mbs-auto",
                                              buffer_bytes=buffer_kib * KIB))
    m1 = compute_traffic(net, make_schedule(net, "mbs1",
                                            buffer_bytes=buffer_kib * KIB))
    m2 = compute_traffic(net, make_schedule(net, "mbs2",
                                            buffer_bytes=buffer_kib * KIB))
    assert auto.total_bytes <= min(m1.total_bytes, m2.total_bytes)


@settings(max_examples=30, deadline=None)
@given(chain_networks())
def test_fused_mbs_beats_baseline_when_everything_fits(net):
    """With a huge buffer MBS degenerates to one single-pass group, which
    must dominate the conventional flow."""
    base = compute_traffic(net, make_schedule(net, "baseline"))
    mbs = compute_traffic(net, make_schedule(net, "mbs2",
                                             buffer_bytes=10**12))
    assert mbs.total_bytes < base.total_bytes


@settings(max_examples=30, deadline=None)
@given(chain_networks(), st.integers(8, 4096))
def test_traffic_deterministic(net, buffer_kib):
    sched = make_schedule(net, "mbs2", buffer_bytes=buffer_kib * KIB)
    a = compute_traffic(net, sched).total_bytes
    b = compute_traffic(net, sched).total_bytes
    assert a == b
