"""Top-level package surface and CLI coverage."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_api_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_api_facade_surface_is_pinned():
    """``repro.api`` is the supported surface; its exports are frozen.

    Growing the list is fine (update here); renaming or removing an
    entry is a breaking change and needs a deprecation shim first.
    """
    from repro import api

    assert api.__all__ == [
        "GroupSummary",
        "LeaseGrant",
        "MIB",
        "ScheduleRequest",
        "ScheduleResult",
        "SweepJobRequest",
        "SweepJobStatus",
        "objectives",
        "policies",
        "price",
        "request_fingerprint",
        "sweep",
    ]
    for name in api.__all__:
        assert hasattr(api, name), name
    assert "api" in repro.__all__


def test_api_facade_quick_start():
    """The module docstring's quick-start works as written."""
    from repro import api

    res = api.price("toy_chain", "mbs-auto", buffer_bytes=api.MIB,
                    objective="energy")
    assert res.traffic_bytes > 0
    assert res.step_time_s > 0
    assert res.step_energy_j > 0


def test_top_level_workflow():
    """The README's four-liner works through the top-level namespace."""
    from repro.zoo import toy_chain

    net = toy_chain()
    sched = repro.make_schedule(net, "mbs2", buffer_bytes=repro.MIB)
    traffic = repro.compute_traffic(net, sched)
    report = repro.simulate_step(net, sched)
    assert traffic.total_bytes > 0
    assert report.time_s > 0


class TestScheduleCli:
    def test_schedule_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["schedule", "toy_residual", "mbs2", "1"]) == 0
        out = capsys.readouterr().out
        assert "mbs2 schedule for toy_residual" in out
        assert "DRAM traffic/step" in out

    def test_schedule_usage(self, capsys):
        from repro.experiments.runner import main

        assert main(["schedule"]) == 2

    def test_export_command(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import fig04_grouping
        from repro.experiments.runner import main

        monkeypatch.setattr(
            "repro.experiments.ALL_EXPERIMENTS", {"fig4": fig04_grouping}
        )
        path = str(tmp_path / "out.json")
        assert main(["export", path]) == 0
        assert "wrote 1 experiment results" in capsys.readouterr().out


class TestReportHelpers:
    def test_layer_timing_bound(self):
        from repro.wavecore.report import LayerTiming

        compute_bound = LayerTiming("b", "l", "conv", "forward", 10, 10,
                                    10, 1.0, 0.5)
        assert compute_bound.bound == "compute"
        assert compute_bound.time_s == 1.0
        memory_bound = LayerTiming("b", "l", "norm", "forward", 0, 0,
                                   10, 0.1, 0.5)
        assert memory_bound.bound == "memory"

    def test_energy_share_zero_total(self):
        from repro.wavecore.report import EnergyBreakdown

        e = EnergyBreakdown(0.0, 0.0, 0.0, 0.0)
        assert e.share("dram") == 0.0
