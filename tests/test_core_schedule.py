"""Unit tests for schedule data structures."""
import pytest

from repro.core.schedule import GroupPlan, Schedule, make_group


def plan(blocks, sub_batch=4, iters=8, fused=None):
    fused = fused if fused is not None else (True,) * len(blocks)
    return GroupPlan(blocks=tuple(blocks), sub_batch=sub_batch,
                     iterations=iters, block_fused=tuple(fused))


def schedule(groups, **kw):
    defaults = dict(policy="mbs2", network="toy", mini_batch=32,
                    buffer_bytes=10 << 20, branch_reuse=True, relu_mask=True)
    defaults.update(kw)
    return Schedule(groups=tuple(groups), **defaults)


class TestGroupPlan:
    def test_non_contiguous_raises(self):
        with pytest.raises(ValueError, match="contiguous"):
            plan([0, 2])

    def test_fused_alignment_raises(self):
        with pytest.raises(ValueError, match="align"):
            plan([0, 1], fused=(True,))

    def test_zero_iterations_raises(self):
        with pytest.raises(ValueError, match="positive"):
            plan([0], iters=0)


class TestSchedule:
    def test_partition_must_cover(self):
        with pytest.raises(ValueError, match="partition"):
            schedule([plan([0, 1]), plan([3])])

    def test_group_of_block(self):
        s = schedule([plan([0, 1]), plan([2, 3, 4])])
        assert s.group_of_block(0).blocks == (0, 1)
        assert s.group_of_block(4).blocks == (2, 3, 4)
        with pytest.raises(IndexError):
            s.group_of_block(9)

    def test_boundary_on_chip_inside_group(self):
        s = schedule([plan([0, 1]), plan([2, 3, 4])])
        assert s.boundary_on_chip(0)
        assert not s.boundary_on_chip(1)  # group boundary
        assert s.boundary_on_chip(2)

    def test_boundary_off_chip_when_unfused(self):
        s = schedule([plan([0, 1], fused=(True, False)), plan([2])])
        assert not s.boundary_on_chip(0)

    def test_boundary_edges(self):
        s = schedule([plan([0, 1])])
        assert not s.boundary_on_chip(-1)
        assert not s.boundary_on_chip(1)  # network output

    def test_iterations_of_block(self):
        s = schedule([plan([0], iters=16), plan([1], iters=2)])
        assert s.iterations_of_block(0) == 16
        assert s.iterations_of_block(1) == 2

    def test_describe_lists_groups(self):
        text = schedule([plan([0, 1]), plan([2])]).describe()
        assert "group1" in text and "group2" in text
        assert "sub-batch=4" in text


class TestMakeGroup:
    def test_marks_fused_by_feasibility(self):
        g = make_group((0, 1, 2), sub_batch=4, mini_batch=32,
                       feasible=[8, 2, 4])
        assert g.block_fused == (True, False, True)
        assert g.iterations == 8

    def test_zero_sub_batch_is_single_pass(self):
        g = make_group((0,), sub_batch=0, mini_batch=32, feasible=[0])
        assert g.iterations == 1
        assert g.block_fused == (False,)
