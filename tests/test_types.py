"""Unit tests for shared value types."""
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import ACCUM_BYTES, GIB, KIB, MIB, Shape, WORD_BYTES, ceil_div


class TestShape:
    def test_elems(self):
        assert Shape(3, 224, 224).elems == 3 * 224 * 224

    def test_bytes_default_word(self):
        assert Shape(2, 4, 4).bytes() == 32 * WORD_BYTES

    def test_bytes_custom_word(self):
        assert Shape(2, 4, 4).bytes(word_bytes=4) == 128

    def test_fc_shape_convention(self):
        assert Shape(1000, 1, 1).elems == 1000

    @pytest.mark.parametrize("c,h,w", [(0, 1, 1), (1, 0, 1), (1, 1, 0),
                                       (-1, 2, 2)])
    def test_invalid_dims_raise(self, c, h, w):
        with pytest.raises(ValueError):
            Shape(c, h, w)

    def test_equality_and_hash(self):
        assert Shape(1, 2, 3) == Shape(1, 2, 3)
        assert hash(Shape(1, 2, 3)) == hash(Shape(1, 2, 3))
        assert Shape(1, 2, 3) != Shape(3, 2, 1)

    def test_str(self):
        assert str(Shape(64, 56, 56)) == "64x56x56"


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expect", [
        (0, 1, 0), (1, 1, 1), (5, 2, 3), (6, 2, 3), (7, 2, 4), (32, 3, 11),
    ])
    def test_known_values(self, a, b, expect):
        assert ceil_div(a, b) == expect

    def test_non_positive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)
        with pytest.raises(ValueError):
            ceil_div(4, -1)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)


def test_byte_constants():
    assert KIB == 1024
    assert MIB == 1024 ** 2
    assert GIB == 1024 ** 3
    assert WORD_BYTES == 2
    assert ACCUM_BYTES == 4
