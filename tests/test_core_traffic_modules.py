"""Hand-computed traffic for fused multi-branch modules (Eq. 1/Eq. 2
traffic semantics: branch re-fetches, leaf spills, gradient accumulation)."""
import pytest

from repro.core.policies import make_schedule
from repro.core.traffic import Category, Phase, compute_traffic
from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import Activation, Conv2D
from repro.graph.network import Network
from repro.types import MIB, Shape

IN = Shape(4, 8, 8)
FEAT = IN.bytes()  # 512 B/sample; all tensors below share this shape
N = 4


def conv(name, out_c=4):
    return Conv2D(name=name, in_shape=IN, out_channels=out_c,
                  kernel=3, padding=1)


def residual_net(identity=True):
    """stem conv -> residual module (conv main, identity/conv shortcut)."""
    stem = chain_block("stem", IN, [conv("stem.c")])
    main = Branch((conv("res.m"),))
    shortcut = Branch() if identity else Branch((conv("res.s"),))
    res = Block(
        name="res", in_shape=IN, branches=(main, shortcut),
        merge=MergeKind.ADD,
        post_merge=(Activation(name="res.relu", in_shape=IN),),
    )
    return Network("tiny_res", IN, (stem, res), default_mini_batch=N)


def concat_net():
    stem = chain_block("stem", IN, [conv("stem.c")])
    mix = Block(
        name="mix", in_shape=IN,
        branches=(Branch((conv("mix.a", 2),)), Branch((conv("mix.b", 2),))),
        merge=MergeKind.CONCAT,
    )
    return Network("tiny_mix", IN, (stem, mix), default_mini_batch=N)


def traffic(net, policy, buffer=MIB):
    sched = make_schedule(net, policy, buffer_bytes=buffer)
    assert all(sched.block_fused(i) for i in range(len(net.blocks))), \
        "test requires fully fused schedules"
    return compute_traffic(net, sched)


def by_cat_phase(rep, phase):
    out = {}
    for r in rep.records:
        if r.phase is phase:
            out[r.category] = out.get(r.category, 0) + r.bytes
    return out


class TestResidualIdentityMbs2:
    """Everything on chip: one input read, checkpoints, no spills."""

    @pytest.fixture()
    def fwd(self):
        return by_cat_phase(traffic(residual_net(), "mbs2"), Phase.FWD)

    def test_single_input_read(self, fwd):
        assert fwd[Category.FEAT_RD] == N * FEAT  # the network input only

    def test_checkpoints(self, fwd):
        # stem out (consumed by res conv) + res out (final block output);
        # the pre-merge leaf and merge result never touch DRAM
        assert fwd[Category.CHK_WR] == 2 * N * FEAT

    def test_no_feature_writes(self, fwd):
        assert Category.FEAT_WR not in fwd


class TestResidualIdentityMbs1:
    """MBS1 spills the pre-merge leaf and re-reads the shared input."""

    @pytest.fixture()
    def rep(self):
        return traffic(residual_net(), "mbs1")

    def test_extra_input_read_for_merge(self, rep):
        fwd = by_cat_phase(rep, Phase.FWD)
        # stem block reads net input; res block reads stem output once
        # for the main conv and once more for the identity-merge
        assert fwd[Category.FEAT_RD] == N * FEAT + 2 * N * FEAT

    def test_leaf_spilled_and_reread(self, rep):
        fwd = by_cat_phase(rep, Phase.FWD)
        assert fwd[Category.FEAT_WR] == N * FEAT  # the main-branch leaf
        assert fwd[Category.FEAT_RD] >= N * FEAT

    def test_backward_grad_accumulation_through_dram(self, rep):
        bwd = by_cat_phase(rep, Phase.BWD)
        # the stem->res boundary is on chip (same group), so only the
        # cross-branch accumulation spills: one partial write + one read
        assert bwd[Category.GRAD_WR] == N * FEAT
        assert bwd[Category.GRAD_RD] == N * FEAT


class TestConcat:
    def test_mbs2_assembles_on_chip(self):
        fwd = by_cat_phase(traffic(concat_net(), "mbs2"), Phase.FWD)
        # input read once; stem checkpoint + concat output checkpoint
        assert fwd[Category.FEAT_RD] == N * FEAT
        assert fwd[Category.CHK_WR] == 2 * N * FEAT

    def test_mbs1_refetches_input_per_branch(self):
        m1 = by_cat_phase(traffic(concat_net(), "mbs1"), Phase.FWD)
        m2 = by_cat_phase(traffic(concat_net(), "mbs2"), Phase.FWD)
        assert m1[Category.FEAT_RD] == m2[Category.FEAT_RD] + N * FEAT

    def test_mbs1_consumer_rereads_concat(self):
        """Without provisioning, the concat lives in DRAM, so the next
        consumer (here: backward) must stream it."""
        rep1 = traffic(concat_net(), "mbs1")
        rep2 = traffic(concat_net(), "mbs2")
        assert rep1.total_bytes > rep2.total_bytes


class TestProjectionShortcut:
    def test_mbs1_reads_input_twice(self):
        net = residual_net(identity=False)
        m1 = by_cat_phase(traffic(net, "mbs1"), Phase.FWD)
        m2 = by_cat_phase(traffic(net, "mbs2"), Phase.FWD)
        # MBS1 extra reads: the projection branch re-fetches the shared
        # input (1x) and the ADD merge re-reads both spilled leaves (2x)
        assert m1[Category.FEAT_RD] - m2[Category.FEAT_RD] == 3 * N * FEAT

    def test_bwd_input_values_read_per_consumer(self):
        net = residual_net(identity=False)
        bwd1 = by_cat_phase(traffic(net, "mbs1"), Phase.BWD)
        bwd2 = by_cat_phase(traffic(net, "mbs2"), Phase.BWD)
        # both convs need the stored block input for their weight grads:
        # shared on chip under MBS2, read twice under MBS1
        assert bwd1[Category.CHK_RD] - bwd2[Category.CHK_RD] == N * FEAT
