"""Content-addressed cache: keys, manifests, invalidation, robustness."""
import json

from repro.runtime import (
    ExperimentSpec,
    ResultCache,
    code_fingerprint,
    manifest_bytes,
    task_key,
)
from repro.runtime.cache import build_manifest


def produce_demo(x=1):
    return {"x": x}


SPEC = ExperimentSpec(name="cache_demo", title="t", produce=produce_demo)


def manifest_for(spec=SPEC, params=None, key=None, fp="f" * 16):
    params = params if params is not None else {"x": 1}
    key = key or task_key(spec, params, fingerprint=fp)
    return build_manifest(spec, params, key, fp, {"x": 1}, "rendered\n")


class TestTaskKey:
    def test_stable(self):
        assert task_key(SPEC, {"x": 1}, "fp") == task_key(
            SPEC, {"x": 1}, "fp"
        )

    def test_param_change_changes_key(self):
        assert task_key(SPEC, {"x": 1}, "fp") != task_key(
            SPEC, {"x": 2}, "fp"
        )

    def test_fingerprint_change_changes_key(self):
        assert task_key(SPEC, {"x": 1}, "fp-a") != task_key(
            SPEC, {"x": 1}, "fp-b"
        )

    def test_version_bump_changes_key(self):
        v2 = ExperimentSpec(
            name="cache_demo", title="t", produce=produce_demo, version="2"
        )
        assert task_key(SPEC, {"x": 1}, "fp") != task_key(v2, {"x": 1}, "fp")

    def test_param_order_is_canonical(self):
        assert task_key(SPEC, {"a": 1, "b": 2}, "fp") == task_key(
            SPEC, {"b": 2, "a": 1}, "fp"
        )

    def test_default_fingerprint_is_code_fingerprint(self):
        assert task_key(SPEC, {}) == task_key(
            SPEC, {}, fingerprint=code_fingerprint()
        )


def test_code_fingerprint_shape_and_stability():
    fp = code_fingerprint()
    assert len(fp) == 16
    assert int(fp, 16) >= 0
    assert code_fingerprint() == fp


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        manifest = manifest_for()
        path = cache.store(manifest)
        assert path == cache.path("cache_demo", manifest["key"])
        assert cache.lookup("cache_demo", manifest["key"]) == json.loads(
            manifest_bytes(manifest)
        )

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).lookup("cache_demo", "nothere") is None

    def test_corrupt_manifest_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        manifest = manifest_for()
        path = cache.store(manifest)
        path.write_text("{not json")
        assert cache.lookup("cache_demo", manifest["key"]) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A manifest renamed onto the wrong address must not hit."""
        cache = ResultCache(tmp_path)
        manifest = manifest_for()
        cache.store(manifest)
        other = task_key(SPEC, {"x": 99}, "f" * 16)
        stored = cache.path("cache_demo", manifest["key"])
        stored.rename(cache.path("cache_demo", other))
        assert cache.lookup("cache_demo", other) is None

    def test_env_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MBS_REPRO_CACHE", str(tmp_path / "envroot"))
        assert ResultCache().root == tmp_path / "envroot"

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(manifest_for())
        cache.store(manifest_for(params={"x": 2}))
        assert cache.clear("cache_demo") == 2
        assert list(cache.entries()) == []


def test_manifest_bytes_deterministic():
    """Byte encoding must not depend on dict insertion order."""
    m1 = manifest_for()
    m2 = dict(reversed(list(m1.items())))
    assert manifest_bytes(m1) == manifest_bytes(m2)
    assert manifest_bytes(m1).endswith(b"\n")
