"""Unit tests for the V100 reference device model."""
import pytest

from repro.wavecore.gpu import V100, GpuConfig, _gemm_efficiency, simulate_gpu_step
from repro.zoo import toy_chain


class TestEfficiency:
    def test_bounded_by_max(self):
        for gh, gw, k in [(10**6, 512, 1152), (64, 64, 64), (1, 1, 1)]:
            eff = _gemm_efficiency(gh, gw, k, V100)
            assert 0.0 < eff <= V100.max_efficiency

    def test_occupancy_grows_with_parallelism(self):
        small = _gemm_efficiency(128, 64, 64, V100)
        large = _gemm_efficiency(128 * 200, 64, 64, V100)
        assert large > small

    def test_split_k_rescues_weight_grad_shapes(self):
        # tiny output, huge K: split-K keeps the device busy
        wgrad = _gemm_efficiency(147, 64, 800_000, V100)
        no_split = _gemm_efficiency(147, 64, 200, V100)
        assert wgrad > no_split

    def test_ramp_penalizes_short_k(self):
        short = _gemm_efficiency(10**6, 512, 16, V100)
        deep = _gemm_efficiency(10**6, 512, 4096, V100)
        assert short < deep


class TestStep:
    def test_positive_and_scales_with_batch(self):
        net = toy_chain()
        t32 = simulate_gpu_step(net, mini_batch=32)
        t64 = simulate_gpu_step(net, mini_batch=64)
        assert 0 < t32 < t64

    def test_default_batch_doubles_per_core_batch(self):
        net = toy_chain(mini_batch=16)
        assert simulate_gpu_step(net) == pytest.approx(
            simulate_gpu_step(net, mini_batch=32)
        )

    def test_depth_scaling(self, rn50, rn152):
        assert simulate_gpu_step(rn152) > simulate_gpu_step(rn50)

    def test_launch_overhead_counts(self):
        net = toy_chain()
        fast = GpuConfig(name="x", peak_macs_per_s=V100.peak_macs_per_s,
                         bandwidth_bytes_per_s=V100.bandwidth_bytes_per_s,
                         launch_overhead_s=0.0)
        assert simulate_gpu_step(net, cfg=fast) < simulate_gpu_step(net)
