"""Unit and integration tests for the end-to-end step simulator."""
import pytest

from repro.core.policies import make_schedule
from repro.wavecore.config import config_for_policy
from repro.wavecore.simulator import simulate_step


@pytest.fixture(scope="module")
def rn50_reports(request):
    rn50 = request.getfixturevalue("rn50")
    out = {}
    for policy in ("baseline", "archopt", "il", "mbs-fs", "mbs1", "mbs2"):
        sched_policy = "baseline" if policy == "archopt" else policy
        sched = make_schedule(rn50, sched_policy)
        out[policy] = simulate_step(rn50, sched, config_for_policy(policy))
    return out


# make session fixtures reachable from a module fixture
@pytest.fixture(scope="module")
def rn50(request):
    from repro.zoo import resnet50
    return resnet50()


class TestReportConsistency:
    def test_time_is_sum_of_layer_times(self, rn50, rn50_reports):
        rep = rn50_reports["mbs2"]
        assert rep.time_s == pytest.approx(
            sum(lt.time_s for lt in rep.layers)
        )

    def test_dram_matches_traffic_model(self, rn50, rn50_reports):
        from repro.core.traffic import compute_traffic

        sched = make_schedule(rn50, "mbs2")
        rep = rn50_reports["mbs2"]
        assert rep.dram_bytes == compute_traffic(rn50, sched).total_bytes
        assert rep.chip_dram_bytes == 2 * rep.dram_bytes

    def test_layer_dram_sums_to_total(self, rn50_reports):
        rep = rn50_reports["baseline"]
        assert sum(lt.dram_bytes for lt in rep.layers) == rep.dram_bytes

    def test_utilization_in_range(self, rn50_reports):
        for rep in rn50_reports.values():
            assert 0.0 < rep.utilization <= 1.0

    def test_energy_attached(self, rn50_reports):
        rep = rn50_reports["mbs2"]
        assert rep.energy is not None and rep.energy.total_j > 0

    def test_time_by_kind_covers_total(self, rn50_reports):
        rep = rn50_reports["mbs2"]
        assert sum(rep.time_by_kind().values()) == pytest.approx(rep.time_s)
        assert "conv" in rep.time_by_kind()

    def test_time_by_phase(self, rn50_reports):
        rep = rn50_reports["baseline"]
        phases = rep.time_by_phase()
        assert set(phases) == {"forward", "backward"}
        assert phases["backward"] > phases["forward"]  # two GEMMs per conv


class TestConfigEffects:
    def test_unlimited_bandwidth_zeroes_memory_time(self, rn50):
        sched = make_schedule(rn50, "baseline")
        rep = simulate_step(rn50, sched, config_for_policy("baseline"),
                            unlimited_bandwidth=True)
        assert all(lt.dram_s == 0.0 for lt in rep.layers)

    def test_double_buffering_speeds_up_same_schedule(self, rn50_reports):
        assert rn50_reports["archopt"].time_s < rn50_reports["baseline"].time_s

    def test_memory_bandwidth_matters_for_baseline(self, rn50):
        sched = make_schedule(rn50, "baseline")
        slow = simulate_step(rn50, sched,
                             config_for_policy("baseline", memory="LPDDR4"))
        fast = simulate_step(rn50, sched,
                             config_for_policy("baseline", memory="HBM2x2"))
        assert slow.time_s > fast.time_s


class TestPolicyOrdering:
    """The Fig. 10 orderings for ResNet-50."""

    def test_traffic_ordering(self, rn50_reports):
        r = rn50_reports
        assert r["mbs2"].dram_bytes < r["mbs1"].dram_bytes \
            < r["mbs-fs"].dram_bytes < r["il"].dram_bytes \
            <= r["baseline"].dram_bytes

    def test_time_ordering(self, rn50_reports):
        r = rn50_reports
        assert r["mbs2"].time_s < r["archopt"].time_s < r["baseline"].time_s

    def test_energy_ordering(self, rn50_reports):
        r = rn50_reports
        assert r["mbs2"].energy.total_j < r["archopt"].energy.total_j \
            <= r["baseline"].energy.total_j

    def test_paper_magnitude_traffic_cut(self, rn50_reports):
        cut = rn50_reports["baseline"].dram_bytes / \
            rn50_reports["mbs2"].dram_bytes
        assert 3.0 < cut < 6.0  # paper: ~4.3x for ResNet-50

    def test_paper_magnitude_speedup(self, rn50_reports):
        speed = rn50_reports["baseline"].time_s / rn50_reports["mbs2"].time_s
        assert 1.4 < speed < 2.6  # paper: 1.81x

    def test_dram_energy_share_drops(self, rn50_reports):
        base_share = rn50_reports["baseline"].energy.share("dram")
        mbs_share = rn50_reports["mbs2"].energy.share("dram")
        assert 0.15 < base_share < 0.30  # paper: 21.6%
        assert mbs_share < base_share / 2  # paper: 8.7% for MBS1
