"""Unit tests for layer specs: shapes, parameters, MACs, validation."""
import pytest

from repro.graph.layers import (
    Activation,
    Conv2D,
    EltwiseAdd,
    FullyConnected,
    LayerKind,
    Norm,
    NormKind,
    Pool,
    PoolKind,
)
from repro.types import Shape


class TestConv2D:
    def make(self, **kw):
        defaults = dict(
            name="c", in_shape=Shape(3, 32, 32), out_channels=8,
            kernel=3, stride=1, padding=1,
        )
        defaults.update(kw)
        return Conv2D(**defaults)

    def test_out_shape_same_padding(self):
        assert self.make().out_shape == Shape(8, 32, 32)

    def test_param_count_no_bias(self):
        assert self.make().param_count == 8 * 3 * 3 * 3

    def test_param_count_with_bias(self):
        assert self.make(bias=True).param_count == 8 * 3 * 3 * 3 + 8

    def test_macs(self):
        conv = self.make()
        assert conv.macs_per_sample == 8 * 32 * 32 * 3 * 3 * 3

    def test_int_kernel_normalized_to_pair(self):
        assert self.make(kernel=5, padding=2).kernel == (5, 5)

    def test_kind_and_systolic(self):
        conv = self.make()
        assert conv.kind is LayerKind.CONV
        assert conv.is_systolic

    def test_invalid_out_channels(self):
        with pytest.raises(ValueError):
            self.make(out_channels=0)

    def test_invalid_geometry_raises_at_construction(self):
        with pytest.raises(ValueError):
            self.make(kernel=64, padding=0)

    def test_param_bytes(self):
        assert self.make().param_bytes() == 8 * 27 * 2


class TestFullyConnected:
    def test_out_shape(self):
        fc = FullyConnected(name="f", in_shape=Shape(2048, 1, 1),
                            out_features=1000)
        assert fc.out_shape == Shape(1000, 1, 1)

    def test_param_count_with_bias(self):
        fc = FullyConnected(name="f", in_shape=Shape(512, 1, 1),
                            out_features=10)
        assert fc.param_count == 512 * 10 + 10

    def test_flattens_spatial_input(self):
        fc = FullyConnected(name="f", in_shape=Shape(256, 6, 6),
                            out_features=100, bias=False)
        assert fc.param_count == 256 * 36 * 100
        assert fc.macs_per_sample == 256 * 36 * 100

    def test_invalid_out_features(self):
        with pytest.raises(ValueError):
            FullyConnected(name="f", in_shape=Shape(8, 1, 1), out_features=0)

    def test_is_systolic(self):
        fc = FullyConnected(name="f", in_shape=Shape(8, 1, 1), out_features=4)
        assert fc.is_systolic


class TestNorm:
    def test_shape_preserving(self):
        n = Norm(name="n", in_shape=Shape(64, 8, 8))
        assert n.out_shape == n.in_shape

    def test_param_count_scale_and_shift(self):
        n = Norm(name="n", in_shape=Shape(64, 8, 8))
        assert n.param_count == 128

    def test_group_validation(self):
        with pytest.raises(ValueError):
            Norm(name="n", in_shape=Shape(64, 8, 8), groups=0)

    def test_batch_kind(self):
        n = Norm(name="n", in_shape=Shape(4, 2, 2), norm=NormKind.BATCH)
        assert n.kind is LayerKind.NORM
        assert not n.is_systolic

    def test_no_macs(self):
        assert Norm(name="n", in_shape=Shape(4, 2, 2)).macs_per_sample == 0


class TestActivation:
    def test_identity_shape(self):
        a = Activation(name="a", in_shape=Shape(5, 3, 3))
        assert a.out_shape == a.in_shape
        assert a.kind is LayerKind.ACT
        assert a.param_count == 0


class TestPool:
    def test_max_pool_shape(self):
        p = Pool(name="p", in_shape=Shape(64, 112, 112), pool=PoolKind.MAX,
                 kernel=3, stride=2, padding=1)
        assert p.out_shape == Shape(64, 56, 56)

    def test_global_pool(self):
        p = Pool(name="p", in_shape=Shape(2048, 7, 7), global_pool=True)
        assert p.out_shape == Shape(2048, 1, 1)

    def test_no_params(self):
        p = Pool(name="p", in_shape=Shape(4, 4, 4), kernel=2, stride=2)
        assert p.param_count == 0
        assert not p.is_systolic


class TestEltwiseAdd:
    def test_shape_and_kind(self):
        add = EltwiseAdd(name="s", in_shape=Shape(256, 56, 56))
        assert add.out_shape == add.in_shape
        assert add.kind is LayerKind.ADD
        assert add.param_count == 0
