"""Batch/group normalization: statistics, gradients, MBS-compatibility."""
import numpy as np
import pytest

from repro.nn.norm import (
    batchnorm_backward,
    batchnorm_forward,
    groupnorm_backward,
    groupnorm_forward,
)


def fd_input_grad(fwd, x, dy, eps=1e-6):
    grad = np.zeros_like(x)
    flat, gflat = x.ravel(), grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = (fwd()[0] * dy).sum()
        flat[i] = old - eps
        down = (fwd()[0] * dy).sum()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestBatchNorm:
    def test_normalizes_per_channel(self, rng):
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        y, _ = batchnorm_forward(x, np.ones(4), np.zeros(4))
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_allclose(y.var(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_affine_applied(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        gamma, beta = np.array([2.0, 0.5]), np.array([1.0, -1.0])
        y, _ = batchnorm_forward(x, gamma, beta)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), beta, atol=1e-10)

    def test_backward_fd(self, rng):
        x = rng.normal(size=(3, 2, 4, 4))
        gamma, beta = rng.normal(size=2), rng.normal(size=2)
        y, cache = batchnorm_forward(x, gamma, beta)
        dy = rng.normal(size=y.shape)
        dx, dgamma, dbeta = batchnorm_backward(dy, cache)
        num = fd_input_grad(lambda: batchnorm_forward(x, gamma, beta), x, dy)
        np.testing.assert_allclose(dx, num, atol=1e-4)
        xhat = cache[0]
        np.testing.assert_allclose(dgamma, (dy * xhat).sum(axis=(0, 2, 3)))
        np.testing.assert_allclose(dbeta, dy.sum(axis=(0, 2, 3)))

    def test_couples_samples(self, rng):
        """BN output of sample 0 depends on other samples in the batch —
        the fundamental MBS incompatibility."""
        x = rng.normal(size=(4, 2, 3, 3))
        y_full, _ = batchnorm_forward(x, np.ones(2), np.zeros(2))
        y_half, _ = batchnorm_forward(x[:2], np.ones(2), np.zeros(2))
        assert not np.allclose(y_full[:2], y_half)


class TestGroupNorm:
    def test_normalizes_per_group(self, rng):
        x = rng.normal(5.0, 3.0, size=(4, 6, 5, 5))
        y, _ = groupnorm_forward(x, np.ones(6), np.zeros(6), groups=3)
        yg = y.reshape(4, 3, 2, 5, 5)
        np.testing.assert_allclose(yg.mean(axis=(2, 3, 4)), 0, atol=1e-10)
        np.testing.assert_allclose(yg.var(axis=(2, 3, 4)), 1, atol=1e-3)

    def test_group_divisibility_enforced(self, rng):
        x = rng.normal(size=(1, 5, 2, 2))
        with pytest.raises(ValueError, match="divisible"):
            groupnorm_forward(x, np.ones(5), np.zeros(5), groups=2)

    def test_backward_fd(self, rng):
        x = rng.normal(size=(2, 4, 3, 3))
        gamma, beta = rng.normal(size=4), rng.normal(size=4)
        y, cache = groupnorm_forward(x, gamma, beta, groups=2)
        dy = rng.normal(size=y.shape)
        dx, dgamma, dbeta = groupnorm_backward(dy, cache)
        num = fd_input_grad(
            lambda: groupnorm_forward(x, gamma, beta, groups=2), x, dy
        )
        np.testing.assert_allclose(dx, num, atol=1e-4)
        np.testing.assert_allclose(dbeta, dy.sum(axis=(0, 2, 3)))

    def test_sample_independence(self, rng):
        """GN of one sample is invariant to which batch it travels in —
        the property that makes GN MBS-compatible (paper Sec. 3.1)."""
        x = rng.normal(size=(6, 4, 3, 3))
        gamma, beta = rng.normal(size=4), rng.normal(size=4)
        y_full, _ = groupnorm_forward(x, gamma, beta, groups=2)
        y_sub, _ = groupnorm_forward(x[2:4], gamma, beta, groups=2)
        np.testing.assert_allclose(y_full[2:4], y_sub, atol=1e-12)

    def test_instance_norm_limit(self, rng):
        """groups == channels degenerates to instance normalization."""
        x = rng.normal(size=(2, 3, 4, 4))
        y, _ = groupnorm_forward(x, np.ones(3), np.zeros(3), groups=3)
        np.testing.assert_allclose(y.mean(axis=(2, 3)), 0, atol=1e-10)

    def test_layer_norm_limit(self, rng):
        """groups == 1 normalizes over the whole sample."""
        x = rng.normal(size=(2, 4, 3, 3))
        y, _ = groupnorm_forward(x, np.ones(4), np.zeros(4), groups=1)
        np.testing.assert_allclose(y.mean(axis=(1, 2, 3)), 0, atol=1e-10)
