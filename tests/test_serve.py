"""Scheduling-as-a-service: engine semantics + HTTP integration.

The engine tests inject counting pricers (``workers=0`` runs them on
the default thread executor, in-process) so dedup/batching can be
asserted as *exact execution counts*, not timings.  The HTTP tests
drive a real ``asyncio.start_server`` socket with stdlib
``http.client`` and check the responses are bit-identical to
:func:`repro.api.price`.
"""

import asyncio
import http.client
import json
import time

import pytest

from repro import api
from repro.graph.serialize import network_to_dict
from repro.runtime.cache import ResultCache
from repro.serve import ScheduleEngine, Server
from repro.serve.engine import price_batch_wire, price_wire
from repro.types import KIB, MIB
from repro.zoo import build


def run(coro):
    return asyncio.run(coro)


def _wire(network="toy_chain", **over):
    wire = {"schema": 1, "network": network, "policy": "mbs-auto",
            "buffer_bytes": 64 * KIB, "objective": "traffic"}
    wire.update(over)
    return wire


# ---------------------------------------------------------------------------
# engine semantics (in-process, counting stubs)
# ---------------------------------------------------------------------------

class TestDedup:
    def test_concurrent_identical_requests_execute_dp_exactly_once(self):
        calls = []

        def counting_pricer(wire):
            calls.append(wire)
            time.sleep(0.05)  # long enough for every waiter to pile up
            return price_wire(wire)

        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.005,
                                 pricer=counting_pricer)
            try:
                return await asyncio.gather(
                    *[eng.submit(_wire()) for _ in range(8)])
            finally:
                await eng.aclose()

        outs = run(go())
        assert len(calls) == 1, "identical in-flight queries must share one DP"
        results = [r for r, _ in outs]
        assert all(r == results[0] for r in results)
        assert sum(1 for _, m in outs if m["deduped"]) == 7

    def test_different_requests_do_not_dedup(self):
        calls = []

        def counting_pricer(wire):
            calls.append(wire)
            return price_wire(wire)

        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.005,
                                 pricer=counting_pricer)
            try:
                await asyncio.gather(
                    eng.submit(_wire("toy_chain")),
                    eng.submit(_wire("toy_residual")))
            finally:
                await eng.aclose()

        run(go())
        assert len(calls) == 2

    def test_stats_count_dedup(self):
        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.005)
            try:
                await asyncio.gather(*[eng.submit(_wire())
                                       for _ in range(3)])
                return eng.stats
            finally:
                await eng.aclose()

        stats = run(go())
        assert stats.requests == 3
        assert stats.executions == 1
        assert stats.dedup_hits == 2


class TestBatching:
    def test_buffer_sweep_rides_one_batch_dispatch(self):
        batches, singles = [], []

        def batch_pricer(wires):
            batches.append(len(wires))
            return price_batch_wire(wires)

        def single_pricer(wire):
            singles.append(1)
            return price_wire(wire)

        buffers = (64 * KIB, 256 * KIB, MIB)

        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.02,
                                 pricer=single_pricer,
                                 batch_pricer=batch_pricer)
            try:
                return await asyncio.gather(
                    *[eng.submit(_wire(buffer_bytes=b)) for b in buffers])
            finally:
                await eng.aclose()

        outs = run(go())
        assert batches == [3] and not singles
        for b, (result, meta) in zip(buffers, outs):
            expect = api.price("toy_chain", "mbs-auto",
                               buffer_bytes=b).to_wire()
            assert result == expect, "batched price must be bit-identical"

    def test_mixed_networks_split_into_groups(self):
        batches, singles = [], []

        def batch_pricer(wires):
            batches.append(len(wires))
            return price_batch_wire(wires)

        def single_pricer(wire):
            singles.append(1)
            return price_wire(wire)

        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.02,
                                 pricer=single_pricer,
                                 batch_pricer=batch_pricer)
            try:
                await asyncio.gather(
                    eng.submit(_wire("toy_chain", buffer_bytes=64 * KIB)),
                    eng.submit(_wire("toy_chain", buffer_bytes=MIB)),
                    eng.submit(_wire("toy_residual")))
            finally:
                await eng.aclose()

        run(go())
        assert batches == [2]   # the two toy_chain buffer points
        assert singles == [1]   # toy_residual rides alone


class TestDegradation:
    def test_timeout_returns_degraded_greedy(self):
        def slow_pricer(wire):
            time.sleep(1.0)
            return price_wire(wire)

        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.001,
                                 timeout_s=0.05, pricer=slow_pricer)
            try:
                return await eng.submit(_wire(objective="latency"))
            finally:
                await eng.aclose()

        result, meta = run(go())
        assert meta["degraded"] is True
        assert result["degraded"] is True
        assert result["policy"] == "mbs2"  # the greedy fallback
        exact = api.price("toy_chain", "mbs2", buffer_bytes=64 * KIB)
        assert result["traffic_bytes"] == exact.traffic_bytes

    def test_saturated_queue_sheds_load(self):
        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=10.0,
                                 max_pending=0)
            try:
                return await eng.submit(_wire())
            finally:
                await eng.aclose()

        result, meta = run(go())
        assert meta["degraded"] is True and result["degraded"] is True

    def test_pricer_exception_propagates(self):
        def broken(wire):
            raise RuntimeError("boom")

        async def go():
            eng = ScheduleEngine(workers=0, batch_window_s=0.001,
                                 pricer=broken)
            try:
                with pytest.raises(RuntimeError, match="boom"):
                    await eng.submit(_wire())
                return eng.stats.errors
            finally:
                await eng.aclose()

        assert run(go()) == 1


class TestEngineCache:
    def test_hit_within_and_across_engine_instances(self, tmp_path):
        cache = ResultCache(tmp_path / "serve-cache")

        async def first():
            eng = ScheduleEngine(workers=0, batch_window_s=0.001,
                                 cache=cache)
            try:
                r1, m1 = await eng.submit(_wire())
                r2, m2 = await eng.submit(_wire())
                return r1, m1, r2, m2
            finally:
                await eng.aclose()

        r1, m1, r2, m2 = run(first())
        assert m1["cached"] is False and m2["cached"] is True
        assert r2 == r1

        async def second():
            eng = ScheduleEngine(workers=0,
                                 cache=ResultCache(tmp_path / "serve-cache"))
            try:
                r3, m3 = await eng.submit(_wire())
                return r3, m3, eng.stats.executions
            finally:
                await eng.aclose()

        r3, m3, executions = run(second())
        assert m3["cached"] is True and r3 == r1
        assert executions == 0, "a warm cache must not re-run the DP"

    def test_stale_code_fingerprint_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "serve-cache")

        async def go(eng):
            try:
                return await eng.submit(_wire())
            finally:
                await eng.aclose()

        run(go(ScheduleEngine(workers=0, batch_window_s=0.001,
                              cache=cache)))
        monkeypatch.setattr("repro.serve.engine.serve_fingerprint",
                            lambda: "different-build")
        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache)
        _, meta = run(go(eng))
        assert meta["cached"] is False

    def test_bad_request_rejected_before_any_work(self):
        async def go():
            eng = ScheduleEngine(workers=0)
            try:
                with pytest.raises(ValueError, match="unknown policy"):
                    await eng.submit(_wire(policy="mbs9"))
                return eng.stats.executions
            finally:
                await eng.aclose()

        assert run(go()) == 0


# ---------------------------------------------------------------------------
# HTTP integration (real sockets)
# ---------------------------------------------------------------------------

def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read().decode())
    finally:
        conn.close()


def _post(port, body, path="/v1/schedule"):
    text = body if isinstance(body, str) else json.dumps(body)
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=text,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read().decode())
    finally:
        conn.close()


async def _with_server(fn, **engine_kwargs):
    """Start a server on an ephemeral port, run ``fn(port)`` off-loop."""
    engine_kwargs.setdefault("workers", 0)
    engine_kwargs.setdefault("batch_window_s", 0.002)
    server = Server(ScheduleEngine(**engine_kwargs))
    await server.start()
    loop = asyncio.get_running_loop()
    try:
        return await loop.run_in_executor(None, fn, server.port)
    finally:
        await server.aclose()


class TestHttp:
    def test_healthz(self):
        status, body = run(_with_server(lambda p: _get(p, "/healthz")))
        assert (status, body) == (200, {"ok": True})

    def test_policies_and_objectives(self):
        def fn(port):
            return _get(port, "/v1/policies"), _get(port, "/v1/objectives")

        (st_p, pol), (st_o, obj) = run(_with_server(fn))
        assert st_p == st_o == 200
        assert tuple(pol["policies"]) == api.policies()
        assert tuple(obj["objectives"]) == api.objectives()

    def test_schedule_response_bit_identical_to_facade(self):
        cases = [
            _wire(net, buffer_bytes=buf, objective=obj)
            for net in ("toy_chain", "toy_residual", "toy_inception")
            for buf in (64 * KIB, MIB)
            for obj in api.objectives()
        ]

        def fn(port):
            return [_post(port, c) for c in cases]

        responses = run(_with_server(fn))
        for case, (status, body) in zip(cases, responses):
            assert status == 200, body
            expect = api.price(api.ScheduleRequest.from_wire(case))
            assert body["result"] == expect.to_wire(), case
            assert body["schema"] == 1
            assert body["degraded"] is False

    def test_inline_graph_request(self):
        graph = network_to_dict(build("toy_residual"))
        wire = {"schema": 1, "graph": graph, "policy": "mbs-auto",
                "buffer_bytes": 64 * KIB}

        status, body = run(_with_server(lambda p: _post(p, wire)))
        assert status == 200
        expect = api.price("toy_residual", "mbs-auto",
                           buffer_bytes=64 * KIB).to_wire()
        assert body["result"] == expect

    def test_cache_hit_across_connections(self, tmp_path):
        cache = ResultCache(tmp_path / "serve-cache")

        def fn(port):
            return _post(port, _wire()), _post(port, _wire())

        (s1, b1), (s2, b2) = run(_with_server(fn, cache=cache))
        assert s1 == s2 == 200
        assert b1["cached"] is False
        assert b2["cached"] is True, "second connection must hit the cache"
        assert b2["result"] == b1["result"]

    def test_timeout_degrades_over_http(self):
        def slow_pricer(wire):
            time.sleep(1.0)
            return price_wire(wire)

        status, body = run(_with_server(
            lambda p: _post(p, _wire()),
            timeout_s=0.05, pricer=slow_pricer))
        assert status == 200
        assert body["degraded"] is True
        assert body["result"]["policy"] == "mbs2"

    def test_malformed_json_is_400(self):
        status, body = run(_with_server(lambda p: _post(p, "{nope")))
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_network_is_400(self):
        status, body = run(_with_server(
            lambda p: _post(p, _wire("resnet5"))))
        assert status == 400
        assert "unknown network" in body["error"]

    def test_schema_violation_is_400(self):
        status, body = run(_with_server(
            lambda p: _post(p, {"schema": 1, "network": "toy_chain",
                                "buffer_bytes": -1})))
        assert status == 400
        assert "buffer_bytes" in body["error"]

    def test_non_object_body_is_400(self):
        status, body = run(_with_server(lambda p: _post(p, "[1, 2]")))
        assert status == 400

    def test_unknown_path_is_404(self):
        status, _ = run(_with_server(lambda p: _get(p, "/v2/schedule")))
        assert status == 404

    def test_wrong_method_is_405(self):
        def fn(port):
            return _get(port, "/v1/schedule"), _post(port, {}, "/healthz")

        (s1, _), (s2, _) = run(_with_server(fn))
        assert s1 == 405 and s2 == 405

    def test_stats_endpoint(self, tmp_path):
        def fn(port):
            _post(port, _wire())
            _post(port, _wire())
            return _get(port, "/v1/stats")

        status, stats = run(_with_server(
            fn, cache=ResultCache(tmp_path / "serve-cache")))
        assert status == 200
        assert stats["requests"] == 2
        assert stats["executions"] == 1
        assert stats["cache_hits"] == 1  # the second, sequential request

    def test_keep_alive_reuses_connection(self):
        def fn(port):
            conn = http.client.HTTPConnection("127.0.0.1", port,
                                              timeout=30)
            try:
                out = []
                for _ in range(3):
                    conn.request("POST", "/v1/schedule",
                                 body=json.dumps(_wire()),
                                 headers={"Content-Type":
                                          "application/json"})
                    resp = conn.getresponse()
                    out.append((resp.status,
                                json.loads(resp.read().decode())))
                return out
            finally:
                conn.close()

        for status, body in run(_with_server(fn)):
            assert status == 200 and "result" in body


class TestCliServe:
    def test_bad_flags_are_usage_errors(self, capsys):
        from repro.experiments.runner import main

        assert main(["serve", "--timeout", "0"]) == 2
        assert main(["serve", "--workers", "-1"]) == 2
        assert main(["serve", "--cache-max-entries", "-1"]) == 2
        assert main(["serve", "--cache-max-bytes", "-1"]) == 2
        assert main(["serve", "--bogus"]) == 2

    def test_serve_in_subcommands(self):
        from repro.experiments.runner import SUBCOMMANDS

        assert "serve" in SUBCOMMANDS


class TestCacheEviction:
    def _fill(self, eng, n):
        async def go():
            try:
                for i in range(n):
                    await eng.submit(_wire(buffer_bytes=(i + 1) * 32 * KIB))
            finally:
                await eng.aclose()

        run(go())

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache)
        self._fill(eng, 5)
        assert len(list(cache.entries("serve"))) == 5
        assert eng.stats.evictions == 0

    def test_max_entries_bounds_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache,
                             cache_max_entries=3)
        self._fill(eng, 5)
        assert len(list(cache.entries("serve"))) == 3
        assert eng.stats.evictions == 2

    def test_lru_keeps_recently_used_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache,
                             cache_max_entries=2)

        async def go():
            try:
                _, m1 = await eng.submit(_wire(buffer_bytes=32 * KIB))
                await eng.submit(_wire(buffer_bytes=64 * KIB))
                # touch the first entry so the second becomes the LRU
                _, m2 = await eng.submit(_wire(buffer_bytes=32 * KIB))
                await eng.submit(_wire(buffer_bytes=96 * KIB))
                # first must still hit; second was evicted
                _, m3 = await eng.submit(_wire(buffer_bytes=32 * KIB))
                _, m4 = await eng.submit(_wire(buffer_bytes=64 * KIB))
                return m1, m2, m3, m4
            finally:
                await eng.aclose()

        m1, m2, m3, m4 = run(go())
        assert m1["cached"] is False and m2["cached"] is True
        assert m3["cached"] is True, "recently-used entry must survive"
        assert m4["cached"] is False, "LRU entry must have been evicted"
        assert eng.stats.evictions >= 1

    def test_max_bytes_bounds_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        probe = ScheduleEngine(workers=0, batch_window_s=0.001,
                               cache=cache)
        self._fill(probe, 1)
        size = next(cache.entries("serve")).stat().st_size
        cache.clear("serve")

        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache,
                             cache_max_bytes=2 * size + size // 2)
        self._fill(eng, 4)
        paths = list(cache.entries("serve"))
        assert sum(p.stat().st_size for p in paths) <= 2 * size + size // 2
        assert eng.stats.evictions >= 1

    def test_restart_seeds_lru_from_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache)
        self._fill(eng, 5)
        # a bounded restart trims the inherited store immediately
        eng2 = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache,
                              cache_max_entries=2)
        assert len(list(cache.entries("serve"))) == 2
        assert eng2.stats.evictions == 3
        run(eng2.aclose())

    def test_stats_wire_reports_evictions(self, tmp_path):
        cache = ResultCache(tmp_path)
        eng = ScheduleEngine(workers=0, batch_window_s=0.001, cache=cache,
                             cache_max_entries=1)
        self._fill(eng, 3)
        wire = eng.stats.to_wire()
        assert wire["evictions"] == 2

    def test_stats_endpoint_reports_evictions(self, tmp_path):
        def fn(port):
            for i in range(3):
                _post(port, _wire(buffer_bytes=(i + 1) * 32 * KIB))
            return _get(port, "/v1/stats")

        status, stats = run(_with_server(
            fn, cache=ResultCache(tmp_path / "serve-cache"),
            cache_max_entries=2))
        assert status == 200
        assert stats["evictions"] == 1
