"""Integration tests asserting the paper's figure *shapes*.

Each test names the claim it reproduces.  Absolute values come from our
simulator, so the assertions are on orderings, crossovers, and rough
magnitudes — what EXPERIMENTS.md reports side by side with the paper.
"""
import pytest

from repro.experiments import (
    fig10_main,
    fig11_buffer_sweep,
    fig12_memory_types,
    fig13_gpu_comparison,
    fig14_utilization,
    headline,
)


@pytest.fixture(scope="module")
def fig10():
    return fig10_main.run()


@pytest.fixture(scope="module")
def fig11():
    return fig11_buffer_sweep.run()


@pytest.fixture(scope="module")
def fig12():
    return fig12_memory_types.run()


@pytest.fixture(scope="module")
def fig14():
    return fig14_utilization.run()


DEEP = ("resnet50", "resnet101", "resnet152", "inception_v3", "inception_v4")


class TestFig10Traffic:
    def test_mbs_ladder_on_deep_cnns(self, fig10):
        """Fig. 10c ordering: baseline ≥ IL > MBS-FS > MBS1 ≥ MBS2."""
        for net in DEEP:
            cells = fig10["grid"][net]
            t = {p: cells[p]["dram_bytes"] for p in cells}
            assert t["baseline"] >= t["il"] > t["mbs-fs"] > t["mbs1"] >= t["mbs2"]

    def test_traffic_cut_magnitudes(self, fig10):
        """Paper: MBS2 saves 71–78% of DRAM traffic on deep CNNs."""
        for net in DEEP:
            cells = fig10["grid"][net]
            saving = 1 - cells["mbs2"]["dram_bytes"] / cells["archopt"]["dram_bytes"]
            assert 0.65 < saving < 0.85

    def test_alexnet_mbs_fs_backfires(self, fig10):
        """Paper: AlexNet MBS-FS increases traffic 2.6× (FC weight re-reads)."""
        cells = fig10["grid"]["alexnet"]
        ratio = cells["mbs-fs"]["dram_bytes"] / cells["baseline"]["dram_bytes"]
        assert ratio > 1.5

    def test_alexnet_mbs1_equals_mbs2(self, fig10):
        """Paper Fig. 10: AlexNet has no branch modules, so MBS1 == MBS2."""
        cells = fig10["grid"]["alexnet"]
        assert cells["mbs1"]["dram_bytes"] == cells["mbs2"]["dram_bytes"]


class TestFig10Time:
    def test_speedup_ladder(self, fig10):
        for net in DEEP:
            cells = fig10["grid"][net]
            t = {p: cells[p]["time_s"] for p in cells}
            assert t["baseline"] > t["archopt"] >= t["il"]
            assert t["il"] > t["mbs1"] >= t["mbs2"]

    def test_archopt_gain_band(self, fig10):
        """Paper: ArchOpt improves 9–28% over Baseline."""
        for net in fig10["grid"]:
            cells = fig10["grid"][net]
            gain = cells["baseline"]["time_s"] / cells["archopt"]["time_s"]
            assert 1.05 < gain < 1.6

    def test_mbs_fs_hurts_alexnet(self, fig10):
        """Paper: AlexNet shows a performance *loss* with MBS-FS."""
        cells = fig10["grid"]["alexnet"]
        assert cells["mbs-fs"]["time_s"] > cells["il"]["time_s"]

    def test_inception_mbs1_gain_over_fs(self, fig10):
        """Grouping recovers the serialization losses on Inceptions."""
        for net in ("inception_v3", "inception_v4"):
            cells = fig10["grid"][net]
            assert cells["mbs1"]["time_s"] < cells["mbs-fs"]["time_s"]


class TestFig10Energy:
    def test_energy_savings_band(self, fig10):
        """Paper: MBS2 saves 24–30% energy on deep CNNs."""
        for net in DEEP:
            cells = fig10["grid"][net]
            saving = 1 - cells["mbs2"]["energy_j"] / cells["baseline"]["energy_j"]
            assert 0.10 < saving < 0.45

    def test_archopt_conserves_little(self, fig10):
        """Paper: ArchOpt saves only ~2% (static energy only)."""
        for net in DEEP:
            cells = fig10["grid"][net]
            saving = 1 - cells["archopt"]["energy_j"] / cells["baseline"]["energy_j"]
            assert saving < 0.08


class TestFig11:
    def test_mbs_insensitive_to_buffer(self, fig11):
        """Paper: MBS1/MBS2 vary little from 5 to 40 MiB."""
        for policy in ("mbs1", "mbs2"):
            times = [
                fig11["normalized"][(policy, b)]["time"]
                for b in (5, 10, 20, 30, 40)
            ]
            assert max(times) / min(times) < 1.25

    def test_il_needs_buffer(self, fig11):
        il_times = [
            fig11["normalized"][("il", b)]["time"] for b in (5, 10, 20, 30, 40)
        ]
        assert il_times[0] > il_times[-1]

    def test_small_buffer_mbs_beats_big_buffer_il(self, fig11):
        """Paper: MBS2 at 5 MiB outperforms IL at 40 MiB, in both time
        and traffic."""
        mbs_small = fig11["normalized"][("mbs2", 5)]
        il_big = fig11["normalized"][("il", 40)]
        assert mbs_small["time"] < il_big["time"]
        assert mbs_small["traffic"] < il_big["traffic"]

    def test_il_traffic_at_40mib_still_high(self, fig11):
        """Paper: even 40 MiB leaves IL above half the 5-MiB traffic."""
        assert fig11["normalized"][("il", 40)]["traffic"] > 0.4


class TestFig12:
    def test_baseline_is_bandwidth_bound(self, fig12):
        """Paper: Baseline loses ~40% moving HBM2x2 → LPDDR4."""
        drop = (
            fig12["cells"][("baseline", "LPDDR4")]["time_s"]
            / fig12["cells"][("baseline", "HBM2x2")]["time_s"]
        )
        assert drop > 1.3

    def test_mbs2_tolerates_cheap_memory(self, fig12):
        """Paper: MBS2 drops <15% on LPDDR4 and ~4% on GDDR5."""
        cells = fig12["cells"]
        lp = cells[("mbs2", "LPDDR4")]["time_s"] / cells[("mbs2", "HBM2x2")]["time_s"]
        gd = cells[("mbs2", "GDDR5")]["time_s"] / cells[("mbs2", "HBM2x2")]["time_s"]
        assert lp < 1.2
        assert gd < 1.1

    def test_mbs2_lpddr4_beats_baseline_hbm2x2(self, fig12):
        """The paper's cost argument: cheap-memory MBS beats the
        expensive-memory conventional design."""
        assert fig12["speedup"][("mbs2", "LPDDR4")] > 1.0

    def test_conv_dominates_time(self, fig12):
        by_kind = fig12["cells"][("mbs2", "HBM2x2")]["by_kind"]
        assert by_kind["conv"] > by_kind.get("norm", 0)


class TestFig13:
    @pytest.fixture(scope="class")
    def fig13(self):
        return fig13_gpu_comparison.run()

    def test_wavecore_beats_v100(self, fig13):
        """Paper: WaveCore+MBS2 outperforms V100 on every memory type."""
        for net, row in fig13["rows"].items():
            for mem, speedup in row["speedup"].items():
                assert speedup > 1.0, (net, mem)

    def test_gap_widens_with_depth(self, fig13):
        """Paper: the performance gap grows as networks deepen."""
        s = {n: fig13["rows"][n]["speedup"]["LPDDR4"] for n in fig13["rows"]}
        assert s["resnet50"] < s["resnet101"] < s["resnet152"]


class TestFig14:
    def test_paper_averages(self, fig14):
        """Paper averages: 53.8 / 81.5 / 66.7 / 78.6 / 78.6 (±6pp here)."""
        avg = fig14["average"]
        assert avg["baseline"] == pytest.approx(0.538, abs=0.06)
        assert avg["archopt"] == pytest.approx(0.815, abs=0.06)
        assert avg["mbs-fs"] == pytest.approx(0.667, abs=0.06)
        assert avg["mbs1"] == pytest.approx(0.786, abs=0.06)
        assert avg["mbs2"] == pytest.approx(0.786, abs=0.06)

    def test_orderings(self, fig14):
        avg = fig14["average"]
        assert avg["baseline"] < avg["mbs-fs"] < avg["mbs1"]
        assert avg["mbs1"] <= avg["archopt"]

    def test_mbs_within_3pp_of_full_batch(self, fig14):
        """Paper: MBS utilization is within ~3% of conventional batches."""
        avg = fig14["average"]
        assert avg["archopt"] - avg["mbs1"] < 0.05


class TestHeadline:
    @pytest.fixture(scope="class")
    def numbers(self):
        return headline.run()

    def test_four_x_traffic_cut(self, numbers):
        """Abstract: 'reduce DRAM traffic by 75%' / Sec. 3: '4.0×'."""
        assert numbers["average"]["traffic_cut_x"] == pytest.approx(4.0, abs=0.6)
        assert numbers["average"]["traffic_saving"] == pytest.approx(0.75, abs=0.05)

    def test_performance_improvement(self, numbers):
        """Abstract: 53% performance improvement (we land higher but in
        the same regime: MBS roughly halves step time)."""
        assert numbers["average"]["perf_improvement"] > 0.4

    def test_energy_saving(self, numbers):
        """Abstract: 26% system-energy saving."""
        assert numbers["average"]["energy_saving"] == pytest.approx(0.26, abs=0.08)
