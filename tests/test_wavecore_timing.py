"""Unit tests for per-layer timing and DRAM attribution."""
import pytest

from repro.core.policies import make_schedule
from repro.core.traffic import Phase, compute_traffic
from repro.graph.layers import Activation, Conv2D, Norm, Pool, PoolKind
from repro.types import Shape
from repro.wavecore.config import DEFAULT_CONFIG
from repro.wavecore.gemm import GemmPhase, conv_gemm
from repro.wavecore.tiling import gemm_cycles
from repro.wavecore.timing import (
    gbuf_bytes_for_layer,
    layer_compute,
    per_layer_dram,
)

CONV = Conv2D(name="c", in_shape=Shape(16, 14, 14), out_channels=32,
              kernel=3, padding=1)


class TestLayerCompute:
    def test_forward_is_one_gemm(self):
        comp = layer_compute(CONV, Phase.FWD, 8, 0, DEFAULT_CONFIG)
        expect = gemm_cycles(conv_gemm(CONV, 8, GemmPhase.FORWARD),
                             DEFAULT_CONFIG)
        assert comp.cycles == expect.cycles
        assert comp.macs == expect.macs

    def test_backward_is_two_gemms(self):
        comp = layer_compute(CONV, Phase.BWD, 8, 0, DEFAULT_CONFIG)
        dg = gemm_cycles(conv_gemm(CONV, 8, GemmPhase.DATA_GRAD),
                         DEFAULT_CONFIG)
        wg = gemm_cycles(conv_gemm(CONV, 8, GemmPhase.WEIGHT_GRAD),
                         DEFAULT_CONFIG)
        assert comp.cycles == dg.cycles + wg.cycles

    def test_skip_data_grad(self):
        comp = layer_compute(CONV, Phase.BWD, 8, 0, DEFAULT_CONFIG,
                             skip_data_grad=True)
        wg = gemm_cycles(conv_gemm(CONV, 8, GemmPhase.WEIGHT_GRAD),
                         DEFAULT_CONFIG)
        assert comp.cycles == wg.cycles

    def test_sub_batch_iterations_cover_mini_batch(self):
        full = layer_compute(CONV, Phase.FWD, 8, 0, DEFAULT_CONFIG)
        split = layer_compute(CONV, Phase.FWD, 8, 3, DEFAULT_CONFIG)
        # 3+3+2: same total MACs, more overhead cycles
        assert split.macs == full.macs
        assert split.cycles >= full.cycles

    def test_vector_layer_time(self):
        act = Activation(name="a", in_shape=Shape(16, 14, 14))
        comp = layer_compute(act, Phase.FWD, 8, 0, DEFAULT_CONFIG)
        assert comp.cycles == 0
        expect = 8 * 16 * 14 * 14 / (DEFAULT_CONFIG.vector_lanes *
                                     DEFAULT_CONFIG.clock_hz)
        assert comp.vector_s == pytest.approx(expect)

    def test_norm_double_pass(self):
        norm = Norm(name="n", in_shape=Shape(16, 14, 14))
        fwd = layer_compute(norm, Phase.FWD, 8, 0, DEFAULT_CONFIG)
        bwd = layer_compute(norm, Phase.BWD, 8, 0, DEFAULT_CONFIG)
        assert bwd.vector_s == pytest.approx(fwd.vector_s * 1.5)  # 3 vs 2


class TestDramAttribution:
    def test_totals_preserved(self, rn50):
        sched = make_schedule(rn50, "mbs2")
        traffic = compute_traffic(rn50, sched)
        dram_map = per_layer_dram(rn50, traffic)
        assert sum(dram_map.values()) == traffic.total_bytes

    def test_keys_reference_real_layers(self, residual_net):
        sched = make_schedule(residual_net, "baseline")
        traffic = compute_traffic(residual_net, sched)
        dram_map = per_layer_dram(residual_net, traffic)
        valid = {
            (b.name, l.name)
            for b in residual_net.blocks for l in b.all_layers()
        }
        for (block, layer, phase) in dram_map:
            assert (block, layer) in valid


class TestGbuf:
    def test_conv_gbuf_exceeds_operand_sizes(self):
        nbytes = gbuf_bytes_for_layer(CONV, Phase.FWD, 8, 0, DEFAULT_CONFIG)
        a_min = 8 * 14 * 14 * 16 * 9 * 2  # im2col-expanded A
        assert nbytes >= a_min

    def test_vector_layer_gbuf(self):
        pool = Pool(name="p", in_shape=Shape(16, 14, 14), pool=PoolKind.MAX,
                    kernel=2, stride=2)
        nbytes = gbuf_bytes_for_layer(pool, Phase.FWD, 8, 0, DEFAULT_CONFIG)
        assert nbytes == 2 * 8 * 16 * 7 * 7 * 2
