"""Unit tests for the analytic systolic cycle model."""
import pytest

from repro.wavecore.config import WaveCoreConfig
from repro.wavecore.gemm import GemmDims
from repro.wavecore.tiling import gemm_cycles, gemm_utilization


def cfg(rows=4, cols=4, m=8, db=True):
    return WaveCoreConfig(
        array_rows=rows, array_cols=cols,
        accum_buffer_bytes=m * cols * 4, weight_double_buffer=db,
    )


class TestHandComputed:
    def test_single_wave_single_tile_db(self):
        # gh=8(m), gw=4(n), k<=4: one wave of max(8,4)=8, overhead 2*4+4-1
        t = gemm_cycles(GemmDims(8, 4, 4), cfg())
        assert t.cycles == 8 + (2 * 4 + 4 - 1)

    def test_single_wave_single_tile_conventional(self):
        # wave costs 8+4; overhead 4+4-1
        t = gemm_cycles(GemmDims(8, 4, 4), cfg(db=False))
        assert t.cycles == 12 + 7

    def test_multi_wave(self):
        # k=10 → 3 waves; db: 3*max(8,4)=24; overhead 11
        assert gemm_cycles(GemmDims(8, 4, 10), cfg()).cycles == 24 + 11

    def test_row_remainder(self):
        # gh=10 → tile of 8 + tile of 2; db: max(8,4)+max(2,4)=12;
        # last-wave refund: max(0, 4-2)=2 → overhead 11-2=9
        assert gemm_cycles(GemmDims(10, 4, 4), cfg()).cycles == 12 + 9

    def test_column_tiles(self):
        # gw=10 → 3 column tiles, each one wave of 8 (db)
        assert gemm_cycles(GemmDims(8, 10, 4), cfg()).cycles == 3 * 8 + 11

    def test_utilization_perfect_shape(self):
        # aligned dims and m >> k: utilization approaches 1
        big = cfg(rows=4, cols=4, m=64)
        t = gemm_cycles(GemmDims(4096, 4, 64), big)
        assert t.utilization > 0.95


class TestProperties:
    @pytest.mark.parametrize("dims", [
        GemmDims(100, 7, 13), GemmDims(3, 3, 3), GemmDims(257, 128, 129),
        GemmDims(1, 1, 1), GemmDims(1000, 64, 576),
    ])
    def test_double_buffering_never_slower(self, dims):
        assert gemm_cycles(dims, cfg()).cycles <= \
            gemm_cycles(dims, cfg(db=False)).cycles

    @pytest.mark.parametrize("dims", [
        GemmDims(100, 7, 13), GemmDims(257, 128, 129), GemmDims(1, 1, 1),
    ])
    def test_utilization_bounded(self, dims):
        for db in (True, False):
            u = gemm_utilization(dims, cfg(db=db))
            assert 0.0 < u <= 1.0

    def test_narrow_gw_halves_utilization(self):
        full = gemm_utilization(GemmDims(4096, 4, 64), cfg(m=64))
        narrow = gemm_utilization(GemmDims(4096, 2, 64), cfg(m=64))
        assert narrow == pytest.approx(full / 2, rel=0.01)

    def test_short_k_wastes_rows(self):
        full = gemm_utilization(GemmDims(4096, 4, 64), cfg(m=64))
        short = gemm_utilization(GemmDims(4096, 4, 32), cfg(m=64))
        # half the array rows idle on the partial wave... k=32 vs rows=4:
        # both are multiples of 4; instead compare k=2 (half of rows=4)
        really_short = gemm_utilization(GemmDims(4096, 4, 2), cfg(m=64))
        assert really_short < full / 1.9

    def test_small_sub_batch_hurts_mbs_like_shapes(self):
        """The Fig. 14 effect: short tiles under-fill the wave pipeline."""
        c = cfg(rows=128, cols=128, m=256)
        big = gemm_utilization(GemmDims(6272, 128, 1152), c)   # s=32 deep conv
        small = gemm_utilization(GemmDims(98, 128, 1152), c)   # s=2
        assert small < big


class TestPaperScaleNumbers:
    def test_default_config_wave_cost(self):
        """m=256, k=128: conventional per-wave efficiency cap is 2/3."""
        c = WaveCoreConfig(weight_double_buffer=False)
        dims = GemmDims(256 * 40, 128, 128 * 6)
        u = gemm_utilization(dims, c)
        assert u == pytest.approx(2 / 3, abs=0.02)

    def test_default_config_db_removes_gap(self):
        c = WaveCoreConfig(weight_double_buffer=True)
        dims = GemmDims(256 * 40, 128, 128 * 6)
        assert gemm_utilization(dims, c) > 0.98
