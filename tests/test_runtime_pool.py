"""Sweep engine: caching, invalidation, determinism, failure isolation.

The produce-fns live at module level so they pickle by reference into
pool workers.  Cross-process assertions use sentinel files (worker-side
counters don't propagate back to the test process).
"""
import time
from pathlib import Path

from repro.runtime import (
    ExperimentSpec,
    ResultCache,
    Task,
    manifest_bytes,
    run_tasks,
)


def produce_sum(x=1, y=2):
    return {"sum": x + y, "x": x, "y": y}


def render_sum(res):
    print(f"sum is {res['sum']}")


def produce_touch(out_dir="", x=1):
    """Leaves one file per invocation — visible across processes."""
    stamp = Path(out_dir) / f"ran-{x}-{time.monotonic_ns()}"
    stamp.touch()
    return {"x": x}


def produce_boom(x=1):
    raise RuntimeError("deliberate failure")


def produce_sleep(seconds=30.0):
    time.sleep(seconds)
    return {"slept": seconds}


def spec_sum(**kw):
    base = dict(name="pool_sum", title="t", produce=produce_sum,
                render=render_sum, artifact=("sum",))
    base.update(kw)
    return ExperimentSpec(**base)


class TestInlineEngine:
    def test_miss_runs_and_persists(self, tmp_path):
        cache = ResultCache(tmp_path)
        (r,) = run_tasks([Task(spec_sum())], cache=cache)
        assert r.status == "ran"
        assert r.artifact == {"sum": 3, "x": 1, "y": 2}
        assert r.rendered == "sum is 3\n"
        assert cache.lookup("pool_sum", r.key) is not None

    def test_second_run_is_cached_without_rerunning(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        marks.mkdir()
        spec = ExperimentSpec(name="pool_touch", title="t",
                              produce=produce_touch)
        task = Task(spec, {"out_dir": str(marks)})
        (first,) = run_tasks([task], cache=cache)
        (second,) = run_tasks([task], cache=cache)
        assert (first.status, second.status) == ("ran", "cached")
        assert len(list(marks.iterdir())) == 1
        assert second.manifest == first.manifest

    def test_no_cache_recomputes_but_still_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        marks.mkdir()
        spec = ExperimentSpec(name="pool_touch", title="t",
                              produce=produce_touch)
        task = Task(spec, {"out_dir": str(marks)})
        run_tasks([task], cache=cache)
        (again,) = run_tasks([task], cache=cache, use_cache=False)
        assert again.status == "ran"
        assert len(list(marks.iterdir())) == 2

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_tasks([Task(spec_sum())], cache=cache)
        (r,) = run_tasks([Task(spec_sum(), {"x": 7})], cache=cache)
        assert r.status == "ran"
        assert r.artifact["sum"] == 9

    def test_fingerprint_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        (a,) = run_tasks([Task(spec_sum())], cache=cache, fingerprint="v1")
        (b,) = run_tasks([Task(spec_sum())], cache=cache, fingerprint="v1")
        (c,) = run_tasks([Task(spec_sum())], cache=cache, fingerprint="v2")
        assert (a.status, b.status, c.status) == ("ran", "cached", "ran")
        assert a.key == b.key != c.key

    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        (a,) = run_tasks([Task(spec_sum())], cache=cache)
        (b,) = run_tasks([Task(spec_sum(version="2"))], cache=cache)
        assert (a.status, b.status) == ("ran", "ran")

    def test_artifact_schema_violation_is_error(self, tmp_path):
        spec = spec_sum(artifact=("sum", "not_there"))
        (r,) = run_tasks([Task(spec)], cache=ResultCache(tmp_path))
        assert r.status == "error"
        assert "not_there" in r.error
        assert r.manifest is None

    def test_producer_exception_is_isolated(self, tmp_path):
        cache = ResultCache(tmp_path)
        boom = ExperimentSpec(name="pool_boom", title="t",
                              produce=produce_boom)
        results = run_tasks(
            [Task(spec_sum()), Task(boom), Task(spec_sum(), {"x": 3})],
            cache=cache,
        )
        assert [r.status for r in results] == ["ran", "error", "ran"]
        assert "deliberate failure" in results[1].error


class TestProcessPool:
    def test_results_keep_input_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [Task(spec_sum(), {"x": x}) for x in range(6)]
        results = run_tasks(tasks, jobs=3, cache=cache)
        assert [r.artifact["x"] for r in results] == list(range(6))
        assert all(r.status == "ran" for r in results)

    def test_worker_error_does_not_poison_run(self, tmp_path):
        boom = ExperimentSpec(name="pool_boom", title="t",
                              produce=produce_boom)
        results = run_tasks(
            [Task(boom), Task(spec_sum(), {"x": 5})],
            jobs=2, cache=ResultCache(tmp_path),
        )
        assert results[0].status == "error"
        assert "deliberate failure" in results[0].error
        assert results[1].status == "ran"

    def test_timeout_marks_task_and_spares_others(self, tmp_path):
        slow = ExperimentSpec(name="pool_slow", title="t",
                              produce=produce_sleep, timeout_s=0.5)
        results = run_tasks(
            [Task(slow, {"seconds": 3.0}), Task(spec_sum())],
            jobs=2, cache=ResultCache(tmp_path),
        )
        assert results[0].status == "timeout"
        assert "timed out" in results[0].error
        assert results[1].status == "ran"

    def test_pool_hits_cache_populated_serially(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marks = tmp_path / "marks"
        marks.mkdir()
        spec = ExperimentSpec(name="pool_touch", title="t",
                              produce=produce_touch)
        tasks = [Task(spec, {"out_dir": str(marks), "x": x})
                 for x in range(4)]
        run_tasks(tasks, jobs=1, cache=cache)
        results = run_tasks(tasks, jobs=4, cache=cache)
        assert all(r.status == "cached" for r in results)
        assert len(list(marks.iterdir())) == 4  # nothing re-ran


class TestDeterminism:
    def test_serial_and_parallel_manifests_byte_identical(self, tmp_path):
        """Real specs: --jobs 1 and --jobs 4 agree to the byte."""
        from repro.experiments import ALL_EXPERIMENTS  # noqa: F401
        from repro.runtime import get_spec

        specs = [get_spec(n) for n in ("fig3", "fig4", "tab2", "precision")]
        serial_cache = ResultCache(tmp_path / "serial")
        pool_cache = ResultCache(tmp_path / "pool")
        tasks = [Task(s, {}, quick=True) for s in specs]
        serial = run_tasks(tasks, jobs=1, cache=serial_cache)
        parallel = run_tasks(tasks, jobs=4, cache=pool_cache)
        for a, b in zip(serial, parallel):
            assert a.status == "ran" and b.status == "ran"
            assert a.key == b.key
            assert manifest_bytes(a.manifest) == manifest_bytes(b.manifest)
