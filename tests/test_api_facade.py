"""The ``repro.api`` facade: bit-exactness, wire codecs, shims.

The facade's contract is that it is *the same computation* as the
internal entry points — not a parallel reimplementation — so every
cost it returns must equal ``make_schedule`` + ``compute_traffic`` +
``simulate_step`` bit for bit, across the whole zoo and every
objective.
"""

import dataclasses
import json
import warnings

import pytest

from repro import api
from repro.core.policies import HARDWARE_OBJECTIVES, OBJECTIVES, make_schedule
from repro.core.traffic import compute_traffic
from repro.graph.serialize import network_to_dict
from repro.types import KIB, MIB
from repro.wavecore.config import config_for_policy
from repro.wavecore.simulator import simulate_step
from repro.zoo import build

ZOO = (
    "toy_chain", "toy_residual", "toy_inception",
    "alexnet", "resnet18", "resnet34", "resnet50", "resnet101",
    "resnet152", "inception_v3", "inception_v4",
)
BUFFERS = (64 * KIB, MIB)


@pytest.mark.parametrize("objective", OBJECTIVES)
@pytest.mark.parametrize("name", ZOO)
def test_price_bit_identical_to_internals(name, objective):
    """The acceptance matrix: every zoo network × objective × buffer."""
    net = build(name)
    for buffer_bytes in BUFFERS:
        cfg = config_for_policy("mbs-auto", buffer_bytes=buffer_bytes)
        sched = make_schedule(
            net, "mbs-auto", buffer_bytes=buffer_bytes,
            objective=objective,
            cfg=cfg if objective in HARDWARE_OBJECTIVES else None,
        )
        rep = compute_traffic(net, sched)
        step = simulate_step(net, sched, cfg, traffic=rep)

        res = api.price(name, "mbs-auto", buffer_bytes=buffer_bytes,
                        objective=objective)
        assert res.traffic_bytes == rep.total_bytes
        assert res.step_time_s == step.time_s
        assert res.step_energy_j == step.energy.total_j
        assert res.energy_dram_share == step.energy.share("dram")
        got = [(g.first_block, g.last_block, g.sub_batch, g.iterations)
               for g in res.groups]
        want = [(g.blocks[0], g.blocks[-1], g.sub_batch, g.iterations)
                for g in sched.groups]
        assert got == want


def test_price_accepts_all_network_spellings():
    """Zoo name, built Network, wire dict, and ScheduleRequest agree."""
    net = build("toy_residual")
    by_name = api.price("toy_residual", buffer_bytes=64 * KIB)
    by_net = api.price(net, buffer_bytes=64 * KIB)
    by_wire = api.price(network_to_dict(net), buffer_bytes=64 * KIB)
    by_req = api.price(api.ScheduleRequest(
        network="toy_residual", buffer_bytes=64 * KIB))
    assert by_name == by_net == by_wire == by_req


def test_sweep_matches_per_point_price():
    buffers = [64 * KIB, 256 * KIB, MIB]
    swept = api.sweep("toy_inception", "mbs-auto", buffers)
    for buf, res in zip(buffers, swept):
        assert res == api.price("toy_inception", "mbs-auto",
                                buffer_bytes=buf)


def test_sweep_hardware_objective_matches_per_point():
    buffers = [64 * KIB, MIB]
    cfg = config_for_policy("mbs-auto", buffer_bytes=buffers[0])
    swept = api.sweep("toy_chain", "mbs-auto", buffers,
                      objective="energy", hardware=cfg)
    for buf, res in zip(buffers, swept):
        assert res.traffic_bytes == api.price(
            "toy_chain", "mbs-auto", buffer_bytes=buf,
            objective="energy", hardware=cfg,
        ).traffic_bytes


def test_sweep_needs_buffer_sizes():
    with pytest.raises(ValueError, match="at least one buffer"):
        api.sweep("toy_chain", "mbs-auto", [])


class TestWireCodecs:
    def test_request_round_trip(self):
        req = api.ScheduleRequest(network="resnet50", policy="mbs-auto",
                                  buffer_bytes=MIB, objective="latency")
        assert api.ScheduleRequest.from_wire(req.to_wire()) == req

    def test_request_with_inline_graph_round_trips(self):
        wire_graph = network_to_dict(build("toy_chain"))
        req = api.ScheduleRequest(graph=wire_graph)
        clone = api.ScheduleRequest.from_wire(
            json.loads(json.dumps(req.to_wire())))
        assert clone.resolve_network() == build("toy_chain")

    def test_result_round_trip_through_json(self):
        res = api.price("toy_chain", buffer_bytes=64 * KIB)
        wire = json.loads(json.dumps(res.to_wire()))
        clone = api.ScheduleResult.from_wire(wire)
        assert clone == res  # `schedule` is compare-excluded
        assert clone.schedule is None and res.schedule is not None
        assert clone.to_wire() == res.to_wire()

    def test_result_wire_is_versioned(self):
        assert api.price("toy_chain").to_wire()["schema"] == 1

    def test_describe_matches_cli_text(self, capsys):
        from repro.experiments.runner import main

        assert main(["schedule", "toy_residual", "mbs-auto", "1"]) == 0
        cli_out = capsys.readouterr().out
        res = api.price("toy_residual", "mbs-auto", buffer_bytes=MIB)
        assert cli_out == res.describe() + "\n"

    def test_cli_json_is_the_wire_object(self, capsys):
        from repro.experiments.runner import main

        assert main(["schedule", "toy_chain", "mbs-auto", "1",
                     "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == api.price("toy_chain", "mbs-auto",
                                    buffer_bytes=MIB).to_wire()


class TestRequestValidation:
    def test_requires_exactly_one_network_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            api.ScheduleRequest()
        with pytest.raises(ValueError, match="exactly one"):
            api.ScheduleRequest(network="toy_chain",
                                graph={"schema": 1})

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            api.ScheduleRequest.from_wire(
                {"schema": 1, "network": "toy_chain", "policy": "mbs9"})

    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            api.ScheduleRequest.from_wire(
                {"schema": 1, "network": "toy_chain",
                 "objective": "joules"})

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown request key"):
            api.ScheduleRequest.from_wire(
                {"schema": 1, "network": "toy_chain", "buffres": 1})

    def test_rejects_bad_buffer(self):
        for bad in (0, -1, True, "big"):
            with pytest.raises(ValueError, match="buffer_bytes"):
                api.ScheduleRequest.from_wire(
                    {"schema": 1, "network": "toy_chain",
                     "buffer_bytes": bad})

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="unsupported request schema"):
            api.ScheduleRequest.from_wire(
                {"schema": 2, "network": "toy_chain"})

    def test_unknown_zoo_name_is_value_error(self):
        with pytest.raises(ValueError, match="unknown network"):
            api.price("resnet5")


class TestFrozenTypes:
    def test_request_is_frozen(self):
        req = api.ScheduleRequest(network="toy_chain")
        with pytest.raises(dataclasses.FrozenInstanceError):
            req.policy = "mbs2"

    def test_result_is_frozen(self):
        res = api.price("toy_chain")
        with pytest.raises(dataclasses.FrozenInstanceError):
            res.traffic_bytes = 0


class TestDeprecationShims:
    def test_old_spelling_works_and_warns_once(self):
        api._reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = api.price(net="toy_chain", buffer_bytes=64 * KIB)
            second = api.price(net="toy_chain", buffer_bytes=64 * KIB)
        deps = [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1
        assert "'net' is deprecated" in str(deps[0].message)
        assert first == second == api.price("toy_chain",
                                            buffer_bytes=64 * KIB)

    def test_cfg_spelling_maps_to_hardware(self):
        api._reset_deprecation_warnings()
        cfg = config_for_policy("mbs-auto", buffer_bytes=64 * KIB)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = api.price("toy_chain", buffer_bytes=64 * KIB, cfg=cfg)
        assert old == api.price("toy_chain", buffer_bytes=64 * KIB,
                                hardware=cfg)

    def test_both_spellings_is_an_error(self):
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                api.price(network="toy_chain", net="toy_chain")

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.price("toy_chain", buffer=MIB)


class TestServingHelpers:
    def test_fingerprint_same_for_name_and_graph(self):
        """A zoo name and its exported graph share cache entries."""
        name_req = api.ScheduleRequest(network="toy_chain")
        graph_req = api.ScheduleRequest(
            graph=network_to_dict(build("toy_chain")))
        assert api.request_fingerprint(name_req) == api.request_fingerprint(
            graph_req
        )

    def test_fingerprint_varies_with_request(self):
        base = api.ScheduleRequest(network="toy_chain")
        keys = {
            api.request_fingerprint(base),
            api.request_fingerprint(
                dataclasses.replace(base, buffer_bytes=MIB)),
            api.request_fingerprint(
                dataclasses.replace(base, objective="latency")),
            api.request_fingerprint(
                dataclasses.replace(base, policy="mbs2")),
            api.request_fingerprint(
                dataclasses.replace(base, network="toy_residual")),
        }
        assert len(keys) == 5

    def test_degraded_result_is_greedy_and_flagged(self):
        req = api.ScheduleRequest(network="toy_residual",
                                  buffer_bytes=64 * KIB,
                                  objective="latency")
        res = api.degraded_result(req)
        assert res.degraded is True
        assert res.policy == "mbs2"
        # the costs are still the exact evaluator numbers
        exact = api.price("toy_residual", "mbs2", buffer_bytes=64 * KIB)
        assert res.traffic_bytes == exact.traffic_bytes
