"""Trace hooks and the analytic-vs-executed traffic cross-check."""
import numpy as np
import pytest

from repro.graph.layers import NormKind
from repro.nn.executor import compute_gradients
from repro.nn.model import NetworkModel
from repro.trace import crosscheck_baseline, trace_training_step
from repro.types import Shape
from repro.zoo import toy_chain, toy_residual


def make(norm=NormKind.GROUP, widths=(8, 12)):
    return toy_chain(in_shape=Shape(3, 16, 16), widths=widths,
                     num_classes=5, norm=norm, mini_batch=6)


class TestHooks:
    def test_events_cover_both_phases(self, rng):
        net = make()
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(6, 3, 16, 16))
        y = rng.integers(0, 5, 6)
        events = trace_training_step(model, x, y)
        phases = {e.phase for e in events}
        assert phases == {"forward", "backward"}
        n_layers = len(net.all_layers())
        assert len(events) == 2 * n_layers

    def test_tracing_does_not_perturb_numerics(self, rng):
        net = make()
        x = rng.normal(size=(6, 3, 16, 16))
        y = rng.integers(0, 5, 6)
        plain = NetworkModel(net, seed=0)
        plain.zero_grads()
        compute_gradients(plain, x, y)
        traced = NetworkModel(net, seed=0)
        traced.zero_grads()
        trace_training_step(traced, x, y)
        np.testing.assert_array_equal(
            plain.gradient_vector(), traced.gradient_vector()
        )

    def test_wrappers_restored_after_trace(self, rng):
        net = make()
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(2, 3, 16, 16))
        y = rng.integers(0, 5, 2)
        trace_training_step(model, x, y)
        for module in model.modules():
            assert not module.forward.__name__.startswith("traced")

    def test_event_volumes_match_shapes(self, rng):
        net = make()
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(6, 3, 16, 16))
        y = rng.integers(0, 5, 6)
        events = trace_training_step(model, x, y)
        first_fwd = next(e for e in events if e.phase == "forward")
        assert first_fwd.in_elems == 6 * 3 * 16 * 16


class TestCrossCheck:
    @pytest.mark.parametrize("norm", [NormKind.GROUP, None])
    @pytest.mark.parametrize("widths", [(8,), (8, 12), (4, 8, 8)])
    def test_exact_agreement_on_chains(self, norm, widths, rng):
        net = make(norm=norm, widths=widths)
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(6, 3, 16, 16))
        y = rng.integers(0, 5, 6)
        events = trace_training_step(model, x, y)
        analytic, traced = crosscheck_baseline(net, events, mini_batch=6)
        assert analytic == traced

    def test_module_networks_rejected(self, rng):
        net = toy_residual()
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(4, 3, 32, 32))
        y = rng.integers(0, 8, 4)
        events = trace_training_step(model, x, y)
        with pytest.raises(ValueError, match="chain network"):
            crosscheck_baseline(net, events, mini_batch=4)
