"""Unit tests for spatial shape arithmetic."""
import pytest

from repro.graph.shapes import conv_out_shape, pool_out_shape, window_out
from repro.types import Shape


class TestWindowOut:
    @pytest.mark.parametrize("size,k,s,p,expect", [
        (224, 7, 2, 3, 112),   # ResNet conv1
        (112, 3, 2, 1, 56),    # ResNet pool1
        (56, 3, 1, 1, 56),     # same-padded 3x3
        (299, 3, 2, 0, 149),   # Inception stem
        (227, 11, 4, 0, 55),   # AlexNet conv1
        (8, 1, 1, 0, 8),       # 1x1
    ])
    def test_known_layers(self, size, k, s, p, expect):
        assert window_out(size, k, s, p) == expect

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            window_out(2, 5, 1, 0)


class TestConvOutShape:
    def test_resnet_conv1(self):
        out = conv_out_shape(Shape(3, 224, 224), 64, (7, 7), (2, 2), (3, 3))
        assert out == Shape(64, 112, 112)

    def test_asymmetric_kernel(self):
        out = conv_out_shape(Shape(768, 17, 17), 128, (1, 7), (1, 1), (0, 3))
        assert out == Shape(128, 17, 17)
        out = conv_out_shape(Shape(768, 17, 17), 128, (7, 1), (1, 1), (3, 0))
        assert out == Shape(128, 17, 17)

    def test_channels_independent_of_input_channels(self):
        out = conv_out_shape(Shape(64, 10, 10), 32, (3, 3), (1, 1), (1, 1))
        assert out.c == 32


class TestPoolOutShape:
    def test_resnet_pool1(self):
        assert pool_out_shape(
            Shape(64, 112, 112), (3, 3), (2, 2), (1, 1)
        ) == Shape(64, 56, 56)

    def test_preserves_channels(self):
        assert pool_out_shape(Shape(17, 8, 8), (2, 2), (2, 2), (0, 0)).c == 17
