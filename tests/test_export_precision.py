"""JSON export and the precision ablation."""
import json

import pytest

from repro.experiments import ablation_precision
from repro.experiments.export import _jsonify


class TestPrecisionAblation:
    @pytest.fixture(scope="class")
    def res(self):
        return ablation_precision.run(networks=("resnet50",))

    def test_fp32_doubles_baseline_feature_traffic_roughly(self, res):
        cells = res["rows"]["resnet50"]
        ratio = cells[4]["baseline_bytes"] / cells[2]["baseline_bytes"]
        assert 1.7 < ratio < 2.1  # masks/indices don't scale with words

    def test_fp32_shrinks_sub_batches(self, res):
        cells = res["rows"]["resnet50"]
        assert cells[4]["min_sub_batch"] <= cells[2]["min_sub_batch"]

    def test_mbs_still_wins_at_fp32(self, res):
        cells = res["rows"]["resnet50"]
        assert cells[4]["cut"] > 2.5


class TestJsonify:
    def test_primitives_pass_through(self):
        assert _jsonify({"a": 1, "b": [1.5, None, True]}) == {
            "a": 1, "b": [1.5, None, True]
        }

    def test_dataclasses_expand(self):
        from repro.wavecore.report import EnergyBreakdown
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        out = _jsonify(e)
        assert out == {"dram_j": 1.0, "gbuf_j": 2.0, "compute_j": 3.0,
                       "static_j": 4.0}

    def test_enum_keys_and_values(self):
        from repro.core.traffic import Category
        out = _jsonify({Category.FEAT_RD: 10})
        assert out == {"feature_read": 10}

    def test_tuple_keys_flatten(self):
        out = _jsonify({("mbs2", 5): 1.0})
        assert out == {"mbs2/5": 1.0}

    def test_numpy_values(self):
        import numpy as np
        assert _jsonify(np.float64(2.5)) == 2.5
        assert _jsonify(np.arange(3)) == [0, 1, 2]

    def test_experiment_result_serializes(self, tmp_path):
        from repro.experiments import fig04_grouping
        res = _jsonify(fig04_grouping.run())
        text = json.dumps(res, default=repr)
        assert "groups" in json.loads(text)


def test_export_all_writes_file(tmp_path, monkeypatch):
    """End-to-end export with a stubbed registry (fast)."""
    import repro.experiments.export as export_mod
    from repro.experiments import fig04_grouping, tab02_area

    monkeypatch.setattr(
        "repro.experiments.ALL_EXPERIMENTS",
        {"fig4": fig04_grouping, "tab2": tab02_area},
    )
    path = tmp_path / "results.json"
    results = export_mod.export_all(str(path))
    assert set(results) == {"fig4", "tab2"}
    loaded = json.loads(path.read_text())
    assert loaded["tab2"]["area"]["pe_array_mm2"] > 0


def test_word_size_scales_module_leaf_traffic():
    """Regression: fp32 must scale ADD-merge leaf spills too (MBS1)."""
    from repro.core.policies import make_schedule
    from repro.core.traffic import TrafficOptions, compute_traffic
    from repro.zoo import toy_residual

    net = toy_residual()
    t2 = compute_traffic(
        net, make_schedule(net, "mbs1", word_bytes=2),
        TrafficOptions(word_bytes=2),
    ).total_bytes
    t4 = compute_traffic(
        net, make_schedule(net, "mbs1", word_bytes=4),
        TrafficOptions(word_bytes=4),
    ).total_bytes
    assert 1.7 < t4 / t2 < 2.1
