"""Cross-objective property harness: the three headline objectives —
traffic (Fig. 10), step time (Fig. 10/13), and energy (Sec. 6) — locked
together, zoo-wide.

The adaptive DP optimizes whichever cost model it is handed, and every
walker-backed model is bit-exact against the evaluator it mirrors, so
three properties must hold *simultaneously* at every buffer size:

* **energy dominance** — ``mbs-auto(energy)`` joules never exceed
  ``min(mbs1, mbs2, mbs-auto, mbs-auto(latency))``: its DP searches a
  superset of all their partitions under the exact energy model;
* **lexicographic tie-break** — ``mbs-auto(latency+traffic)`` matches
  ``mbs-auto(latency)``'s step time (the composite's primary arithmetic
  is bit-identical to the latency-only DP's) while never spending more
  DRAM bytes (the int-valued secondary breaks exact primary ties);
* **prediction exactness** — every objective's schedule-level cost
  equals the simulator's report bit-for-bit, for every policy.

One grid drives all of it: every zoo network × every power-of-4 buffer
from 16 KiB to 4 MiB — the tight-buffer regime where the objectives
genuinely diverge.
"""
import pytest

from repro.core.cost import (
    EnergyCostModel,
    LatencyCostModel,
    LexCost,
    LexicographicCostModel,
    MemoizedCostModel,
    TrafficCostModel,
)
from repro.core.grouping import AdaptiveGroup, adaptive_grouping, split_segments
from repro.core.policies import (
    OBJECTIVES,
    POLICIES,
    SweepCaches,
    make_schedule,
    sweep_schedules,
)
from repro.core.subbatch import per_block_sub_batches
from repro.core.traffic import compute_traffic
from repro.types import KIB
from repro.wavecore.config import config_for_policy
from repro.wavecore.simulator import simulate_step
from repro.zoo import PAPER_NETWORKS, build

#: Acceptance grid: every power-of-4 buffer from 16 KiB to 4 MiB.
BUFFERS = tuple(16 * KIB * 4**i for i in range(5))

#: Zoo-wide: the paper's deep CNNs plus the structural stress cases.
NETWORKS = tuple(PAPER_NETWORKS) + (
    "resnet18", "resnet34", "toy_chain", "toy_residual", "toy_inception",
)

#: The schedules every property compares (label -> policy, objective).
CONTENDERS = (
    ("mbs1", "mbs1", "traffic"),
    ("mbs2", "mbs2", "traffic"),
    ("auto", "mbs-auto", "traffic"),
    ("lat", "mbs-auto", "latency"),
    ("lex", "mbs-auto", "latency+traffic"),
    ("en", "mbs-auto", "energy"),
)


@pytest.fixture(scope="module")
def nets():
    return {name: build(name) for name in
            set(NETWORKS) | {"toy_inception", "resnet50"}}


def _contenders(net, buf):
    """All six schedules plus the shared evaluation hardware config."""
    cfg = config_for_policy("mbs-auto", buffer_bytes=buf)
    scheds = {
        label: make_schedule(
            net, policy, buffer_bytes=buf, objective=objective,
            cfg=cfg if objective != "traffic" else None,
        )
        for label, policy, objective in CONTENDERS
    }
    return scheds, cfg


class TestEnergyDominance:
    """Acceptance: joules of mbs-auto(energy) <= every other contender."""

    @pytest.mark.parametrize("net_name", NETWORKS)
    def test_never_costlier_than_any_contender(self, nets, net_name):
        net = nets[net_name]
        for buf in BUFFERS:
            scheds, cfg = _contenders(net, buf)
            joules = {
                label: simulate_step(net, s, cfg).energy.total_j
                for label, s in scheds.items()
            }
            bound = min(joules[l] for l in ("mbs1", "mbs2", "auto", "lat"))
            assert joules["en"] <= bound * (1 + 1e-12), \
                (net_name, buf, joules)

    def test_energy_schedules_fit_the_buffer(self, nets):
        from repro.core.occupancy import validate_schedule_occupancy
        from repro.types import MIB

        for name in ("resnet50", "inception_v3"):
            net = nets[name]
            for buf in (64 * KIB, 1 * MIB, 10 * MIB):
                sched = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                      objective="energy")
                assert validate_schedule_occupancy(net, sched) == []

    def test_energy_objective_genuinely_diverges(self, nets):
        """Somewhere on the grid the joules-optimal schedule differs
        from both the bytes-optimal and the seconds-optimal one —
        energy is a third axis, not a relabeling (toy_inception@64 KiB:
        the energy DP trades a slower step for far fewer DRAM joules
        than the latency optimum, and more bytes than the traffic
        optimum buys it a cheaper step overall)."""
        net = nets["toy_inception"]
        diverged_from_traffic = diverged_from_latency = False
        for buf in BUFFERS:
            scheds, cfg = _contenders(net, buf)
            joules = {
                label: simulate_step(net, scheds[label], cfg).energy.total_j
                for label in ("auto", "lat", "en")
            }
            if joules["en"] < joules["auto"] * (1 - 1e-9):
                diverged_from_traffic = True
            if joules["en"] < joules["lat"] * (1 - 1e-9):
                diverged_from_latency = True
        assert diverged_from_traffic and diverged_from_latency

    def test_objective_recorded_on_schedule(self, nets):
        sched = make_schedule(nets["toy_chain"], "mbs-auto",
                              objective="energy")
        assert sched.objective == "energy"
        assert "objective=energy" in sched.describe()


class TestLexicographicTieBreak:
    """Acceptance: mbs-auto(latency+traffic) == mbs-auto(latency) in
    seconds, <= in bytes, zoo-wide."""

    @pytest.mark.parametrize("net_name", NETWORKS)
    def test_time_matches_and_bytes_never_exceed(self, nets, net_name):
        net = nets[net_name]
        for buf in BUFFERS:
            scheds, cfg = _contenders(net, buf)
            t_lat = simulate_step(net, scheds["lat"], cfg).time_s
            t_lex = simulate_step(net, scheds["lex"], cfg).time_s
            # the composite's primary arithmetic is bit-identical to the
            # latency-only DP's; the 1e-12 slack covers only the float
            # reassociation between a DP total and a simulated total
            assert t_lex == pytest.approx(t_lat, rel=1e-12), (net_name, buf)
            b_lat = compute_traffic(net, scheds["lat"]).total_bytes
            b_lex = compute_traffic(net, scheds["lex"]).total_bytes
            assert b_lex <= b_lat, (net_name, buf, b_lex, b_lat)

    def test_still_never_slower_than_fixed_policies(self, nets):
        """The tie-break must not cost time: the composite inherits the
        latency objective's dominance over mbs1/mbs2/mbs-auto."""
        net = nets["toy_inception"]
        for buf in BUFFERS:
            scheds, cfg = _contenders(net, buf)
            t = {label: simulate_step(net, s, cfg).time_s
                 for label, s in scheds.items()}
            bound = min(t["mbs1"], t["mbs2"], t["auto"])
            assert t["lex"] <= bound * (1 + 1e-12), (buf, t)

    def test_tiebreak_mechanism_strictly_fires_on_ties(self):
        """With stub models that tie in the primary but differ in the
        secondary, the lexicographic DP must pick the cheaper-secondary
        partition the primary-only DP walks straight past (the zoo's
        timing model happens to price ties byte-equally today, so the
        mechanism is pinned synthetically)."""

        class FlatTime:
            """Every candidate costs the same seconds per block."""

            def group_cost(self, blocks, sub_batch, branch_reuse,
                           block_fused=None):
                return float(len(blocks))

            def boundary_cost(self, idx, branch_reuse):
                return 0.0

        class SpillBytes:
            """Streaming spills 10 bytes per block, fusing only 1."""

            def group_cost(self, blocks, sub_batch, branch_reuse,
                           block_fused=None):
                return len(blocks) * (10 if sub_batch == 0 else 1)

            def boundary_cost(self, idx, branch_reuse):
                return 0

        kwargs = dict(
            blocks=(0, 1, 2), feasible_reuse=(1, 1, 1),
            feasible_noreuse=(1, 1, 1), mini_batch=4,
        )
        primary_only = adaptive_grouping(cost_model=FlatTime(), **kwargs)
        # the primary-only DP keeps the first candidate on ties: the
        # streaming singleton probed before any fused window
        assert all(g.sub_batch == 0 for g in primary_only)
        lex = adaptive_grouping(
            cost_model=LexicographicCostModel(FlatTime(), SpillBytes()),
            **kwargs,
        )
        # same primary cost (3.0 either way), 10x cheaper secondary:
        # every block now fuses instead of spilling
        assert all(isinstance(g, AdaptiveGroup) and g.sub_batch == 1
                   and g.branch_reuse is False for g in lex)

    def test_objective_recorded_on_schedule(self, nets):
        sched = make_schedule(nets["toy_chain"], "mbs-auto",
                              objective="latency+traffic")
        assert sched.objective == "latency+traffic"
        assert "objective=latency+traffic" in sched.describe()


class TestPredictionExactness:
    """Every objective's schedule-level prediction == the simulator's
    report, bit-for-bit, for every policy."""

    @pytest.mark.parametrize("net_name", ("toy_inception", "resnet50"))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_models_match_simulator(self, nets, net_name, policy):
        net = nets[net_name]
        for buf in (16 * KIB, 1024 * KIB):
            sched = make_schedule(net, policy, buffer_bytes=buf)
            cfg = config_for_policy(policy, buffer_bytes=buf)
            rep = simulate_step(net, sched, cfg)
            traffic = TrafficCostModel.for_schedule(net, sched)
            latency = LatencyCostModel.for_schedule(net, sched, cfg=cfg)
            energy = EnergyCostModel.for_schedule(net, sched, cfg=cfg)
            assert traffic.schedule_cost(sched) == rep.dram_bytes
            assert latency.schedule_cost(sched) == rep.time_s
            assert energy.schedule_cost(sched) == rep.energy.total_j
            lex = LexicographicCostModel(latency, traffic)
            assert lex.schedule_cost(sched) == LexCost(
                rep.time_s, rep.dram_bytes
            )

    def test_exactness_on_adaptive_schedules_of_every_objective(self, nets):
        """The models must stay exact on the schedule *shapes* the new
        objectives emit (mixed modes, streaming singletons)."""
        net = nets["toy_inception"]
        for buf in (16 * KIB, 64 * KIB, 1024 * KIB):
            scheds, cfg = _contenders(net, buf)
            for label in ("lat", "lex", "en"):
                sched = scheds[label]
                rep = simulate_step(net, sched, cfg)
                assert TrafficCostModel.for_schedule(
                    net, sched
                ).schedule_cost(sched) == rep.dram_bytes, (label, buf)
                assert LatencyCostModel.for_schedule(
                    net, sched, cfg=cfg
                ).schedule_cost(sched) == rep.time_s, (label, buf)
                assert EnergyCostModel.for_schedule(
                    net, sched, cfg=cfg
                ).schedule_cost(sched) == rep.energy.total_j, (label, buf)

    def test_energy_group_sums_decompose_the_step_energy(self, nets):
        """Per-group joules reassemble the total up to float association
        (the int-valued byte/MAC shares are exact; only the final
        per-component multiplies reassociate)."""
        net = nets["toy_inception"]
        for buf in (16 * KIB, 1024 * KIB):
            cfg = config_for_policy("mbs-auto", buffer_bytes=buf)
            sched = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                  objective="energy", cfg=cfg)
            model = EnergyCostModel.for_schedule(net, sched, cfg=cfg)
            total = 0.0
            for g in sched.groups:
                reuse = sched.branch_reuse_of(g.blocks[0])
                total += model.group_cost(
                    g.blocks, g.sub_batch, reuse, g.block_fused
                )
                if g.blocks[-1] < sched.num_blocks - 1:
                    total += model.boundary_cost(g.blocks[-1], reuse)
            assert total == pytest.approx(
                model.schedule_cost(sched), rel=1e-12
            )

    def test_energy_streaming_costs_reassemble_baseline(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "baseline")
        model = EnergyCostModel.for_schedule(net, sched)
        total = 0.0
        for i in range(len(net.blocks)):
            total += model.streaming_cost(i)
        assert total == pytest.approx(
            simulate_step(net, sched).energy.total_j, rel=1e-12
        )

    def test_energy_schedule_cost_rejects_mismatched_environment(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "mbs2")
        model = EnergyCostModel(net, mini_batch=sched.mini_batch * 2)
        with pytest.raises(ValueError, match="environment"):
            model.schedule_cost(sched)

    def test_energy_boundary_cost_is_zero(self, nets):
        model = EnergyCostModel(nets["toy_chain"], 32)
        assert model.boundary_cost(0, True) == 0.0
        assert model.boundary_cost(0, False) == 0.0

    def test_energy_memo_is_transparent(self, nets):
        from repro.types import MIB

        net = nets["toy_residual"]
        model = EnergyCostModel(net, 32, layer_reuse_bytes=10 * MIB)
        blocks = tuple(range(len(net.blocks)))
        first = model.group_cost(blocks, 2, True)
        assert model.group_cost(blocks, 2, True) == first  # memo hit
        fresh = EnergyCostModel(net, 32, layer_reuse_bytes=10 * MIB)
        assert fresh.group_cost(blocks, 2, True) == first


class TestLexCostValue:
    """The ordered value type the composite DP accumulates."""

    def test_addition_is_componentwise(self):
        a, b = LexCost(1.0, 10), LexCost(2.0, 1)
        assert a + b == LexCost(3.0, 11)

    def test_zero_identity_preserves_bits(self):
        c = LexCost(0.1 + 0.2, 7)  # a value with float dirt on purpose
        assert (0.0 + c).primary == c.primary
        assert (0.0 + c).secondary == c.secondary
        assert (c - 0.0).primary == c.primary

    def test_nonzero_scalar_arithmetic_is_refused(self):
        """A bare nonzero float has no lexicographic meaning; letting it
        through would silently skew one (or both) axes."""
        with pytest.raises(TypeError):
            LexCost(1.0, 2) + 5.0
        with pytest.raises(TypeError):
            LexCost(1.0, 2) - 5.0

    def test_grouping_problem_accepts_lex_model(self, nets):
        """The generic optimizers (GroupingProblem / exhaustive DP) must
        work with a composite model too — docs tell users to bind any
        CostModel into a GroupingProblem."""
        from repro.core.grouping import GroupingProblem, exhaustive_grouping

        net = nets["toy_chain"]
        mb = net.default_mini_batch
        model = LexicographicCostModel(
            LatencyCostModel(net, mb), TrafficCostModel(net, mb)
        )
        problem = GroupingProblem(
            feasible=(1,) * len(net.blocks), mini_batch=mb,
            cost_model=model,
        )
        groups = exhaustive_grouping(problem)
        assert [i for g in groups for i in range(g[0], g[1] + 1)] == \
            list(range(len(net.blocks)))
        total = problem.partition_cost(groups)  # exercises the -= 0.0 edge
        assert isinstance(total, LexCost)
        lat_only = GroupingProblem(
            feasible=(1,) * len(net.blocks), mini_batch=mb,
            cost_model=LatencyCostModel(net, mb),
        )
        # the composite's primary optimum matches the primary-only DP's
        assert total.primary == lat_only.partition_cost(
            exhaustive_grouping(lat_only)
        )

    def test_strict_lexicographic_order(self):
        assert LexCost(1.0, 99) < LexCost(2.0, 0)
        assert LexCost(1.0, 1) < LexCost(1.0, 2)
        assert not LexCost(1.0, 2) < LexCost(1.0, 2)
        assert LexCost(2.0, 0) > LexCost(1.0, 99)

    def test_infinity_sentinel(self):
        assert LexCost(1e300, 1e300) < float("inf")
        assert not LexCost(float("inf"), 0.0) < float("inf")

    def test_subtraction_supports_greedy_gains(self):
        gain = LexCost(3.0, 5) - LexCost(1.0, 2)
        assert gain == LexCost(2.0, 3)
        assert gain > 0.0


def _exact_model(net, sched, cfg):
    """The evaluator-grade model of a schedule's recorded objective."""
    if sched.objective == "latency":
        return LatencyCostModel.for_schedule(net, sched, cfg=cfg)
    if sched.objective == "energy":
        return EnergyCostModel.for_schedule(net, sched, cfg=cfg)
    if sched.objective == "latency+traffic":
        return LexicographicCostModel(
            LatencyCostModel.for_schedule(net, sched, cfg=cfg),
            TrafficCostModel.for_schedule(net, sched),
        )
    return TrafficCostModel.for_schedule(net, sched)


class TestSweepMemoBitExactness:
    """Acceptance: the batch sweep API (group prices memoized across
    points) emits exactly the schedules of naive per-point calls, for
    every policy and every objective, across the acceptance buffer grid.

    This is the correctness contract of the whole memoization stack:
    per-block walker memos, the cross-sweep group-price store, and the
    canonicalized reuse-budget keying must all be invisible in the
    output."""

    @pytest.mark.parametrize("net_name", NETWORKS)
    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_swept_equals_per_point_mbs_auto(self, nets, net_name, objective):
        net = nets[net_name]
        cfg = (config_for_policy("mbs-auto", buffer_bytes=BUFFERS[0])
               if objective != "traffic" else None)
        naive = [
            make_schedule(net, "mbs-auto", buffer_bytes=buf,
                          objective=objective, cfg=cfg)
            for buf in BUFFERS
        ]
        caches = SweepCaches()
        swept = sweep_schedules(net, "mbs-auto", BUFFERS,
                                objective=objective, cfg=cfg, caches=caches)
        assert swept == naive
        # dense-enough grids genuinely share work; an always-cold store
        # would still be correct but defeat the point of the sweep API
        assert caches.hits + caches.misses > 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_swept_equals_per_point_fixed_policies(self, nets, policy):
        net = nets["toy_inception"]
        bufs = (16 * KIB, 1024 * KIB)
        naive = [make_schedule(net, policy, buffer_bytes=b) for b in bufs]
        assert sweep_schedules(net, policy, bufs) == naive

    def test_repeated_point_is_all_hits(self, nets):
        """Re-visiting a buffer size must add zero misses: every group
        probe of the second pass is answered by the shared store."""
        net = nets["toy_inception"]
        caches = SweepCaches()
        first = sweep_schedules(net, "mbs-auto", (64 * KIB,), caches=caches)
        misses_after_first = caches.misses
        again = sweep_schedules(net, "mbs-auto", (64 * KIB,), caches=caches)
        assert again == first
        assert caches.misses == misses_after_first
        assert caches.hits > 0

    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_memoized_group_prices_match_inner(self, nets, objective):
        """MemoizedCostModel is bit-transparent over every walker-backed
        model: identical values on first (miss) and repeat (hit) probes."""
        net = nets["toy_inception"]
        buf = 64 * KIB
        sched = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                              objective=objective)
        cfg = config_for_policy("mbs-auto", buffer_bytes=buf)
        inner = _exact_model(net, sched, cfg)
        memo = MemoizedCostModel(inner)
        for g in sched.groups:
            reuse = bool(sched.branch_reuse_of(g.blocks[0]))
            exact = inner.group_cost(g.blocks, g.sub_batch, reuse,
                                     g.block_fused)
            assert memo.group_cost(g.blocks, g.sub_batch, reuse,
                                   g.block_fused) == exact
            assert memo.group_cost(g.blocks, g.sub_batch, reuse,
                                   g.block_fused) == exact
        assert memo.hits == memo.misses == len(sched.groups)


class _CountingModel:
    """Stub inner model that counts how often it is actually priced."""

    relu_mask = True

    def __init__(self):
        self.calls = 0

    def group_cost(self, blocks, sub_batch, branch_reuse, block_fused=None):
        self.calls += 1
        return float(len(blocks) * (sub_batch + 1))

    def boundary_cost(self, idx, branch_reuse):
        return 0.0


class TestMemoCounters:
    """Hit/miss bookkeeping of the memo layers, pinned on stubs."""

    def test_hit_and_miss_counts(self):
        memo = MemoizedCostModel(_CountingModel())
        assert memo.group_cost((0, 1), 2, True) == 6.0
        assert (memo.hits, memo.misses) == (0, 1)
        assert memo.group_cost((0, 1), 2, True) == 6.0
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.inner.calls == 1

    def test_key_distinguishes_every_pricing_fact(self):
        memo = MemoizedCostModel(_CountingModel())
        memo.group_cost((0, 1), 2, True)
        memo.group_cost((0, 1), 1, True)      # sub-batch differs
        memo.group_cost((0, 1), 2, False)     # provisioning differs
        memo.group_cost((0, 2), 2, True)      # members differ
        memo.group_cost((0, 1), 2, True, block_fused=(True, False))
        assert memo.hits == 0 and memo.misses == 5

    def test_shared_store_spans_model_instances(self):
        store = {}
        first = MemoizedCostModel(_CountingModel(), store=store)
        first.group_cost((3, 4), 2, True)
        second = MemoizedCostModel(_CountingModel(), store=store)
        assert second.group_cost((3, 4), 2, True) == 6.0
        assert second.hits == 1 and second.misses == 0
        assert second.inner.calls == 0  # never re-priced

    def test_streaming_cost_is_the_spilled_group_probe(self):
        memo = MemoizedCostModel(_CountingModel())
        assert memo.streaming_cost(5) == memo.group_cost(
            (5,), 0, False, block_fused=(False,)
        )
        assert memo.hits == 1  # the second probe hit the first's entry

    def test_sweep_caches_accumulate_search_counters(self, nets=None):
        net = build("toy_inception")
        caches = SweepCaches()
        sweep_schedules(net, "mbs-auto", (32 * KIB, 64 * KIB),
                        caches=caches)
        assert caches.misses > 0
        total = caches.hits + caches.misses
        assert total > caches.misses  # cross-point sharing happened


class TestPrunedDPExactness:
    """The admissible-floor early exit must be invisible: pruned and
    unpruned scans pick the identical partition on real windows under
    every cost-value type (int bytes, float joules, LexCost)."""

    def _models(self, net, mb, buf, cfg):
        return (
            TrafficCostModel(net, mb, relu_mask=True, layer_reuse_bytes=buf),
            EnergyCostModel(net, mb, relu_mask=True, layer_reuse_bytes=buf,
                            cfg=cfg),
            LexicographicCostModel(
                LatencyCostModel(net, mb, relu_mask=True,
                                 layer_reuse_bytes=buf, cfg=cfg),
                TrafficCostModel(net, mb, relu_mask=True,
                                 layer_reuse_bytes=buf),
            ),
        )

    @pytest.mark.parametrize("net_name",
                             ("toy_inception", "toy_residual", "resnet50"))
    def test_prune_true_equals_prune_false(self, nets, net_name):
        net = nets[net_name]
        mb = net.default_mini_batch
        for buf in (16 * KIB, 256 * KIB):
            cfg = config_for_policy("mbs-auto", buffer_bytes=buf)
            feas_reuse = per_block_sub_batches(net, buf, mb,
                                               branch_reuse=True)
            feas_plain = per_block_sub_batches(net, buf, mb,
                                               branch_reuse=False)
            for seg in split_segments(feas_plain):
                if isinstance(seg, int):
                    continue
                start, end = seg
                blocks = tuple(range(start, end + 1))
                kwargs = dict(
                    blocks=blocks,
                    feasible_reuse=tuple(feas_reuse[start:end + 1]),
                    feasible_noreuse=tuple(feas_plain[start:end + 1]),
                    mini_batch=mb,
                )
                for model in self._models(net, mb, buf, cfg):
                    pruned = adaptive_grouping(cost_model=model, **kwargs)
                    full = adaptive_grouping(cost_model=model, prune=False,
                                             **kwargs)
                    assert pruned == full, (net_name, buf, blocks[:3])

    def test_degenerate_single_block_window(self):
        """Regression: a 1-block window must backtrack cleanly — every
        prefix needs a typed AdaptiveGroup choice, and the floor-pruning
        machinery (which needs n > 1) must not disturb it."""
        model = _CountingModel()
        for feas in ((1,), (4,)):
            groups = adaptive_grouping(
                blocks=(7,), feasible_reuse=feas, feasible_noreuse=feas,
                mini_batch=8, cost_model=model,
            )
            assert len(groups) == 1
            g = groups[0]
            assert isinstance(g, AdaptiveGroup)
            assert (g.start, g.end) == (0, 0)
            # the stub prices streaming cheapest (sub_batch 0 term)
            assert g.branch_reuse is None and g.sub_batch == 0


class TestReluMaskAuto:
    """``relu_mask="auto"``: price both settings, keep the cheaper —
    never worse than the fixed ``relu_mask=True`` default, under the
    exact model of whichever objective is being optimized."""

    @pytest.mark.parametrize("net_name",
                             ("toy_inception", "toy_residual", "resnet50"))
    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_never_worse_than_fixed_true(self, nets, net_name, objective):
        net = nets[net_name]
        for buf in (16 * KIB, 64 * KIB, 1024 * KIB):
            cfg = (config_for_policy("mbs-auto", buffer_bytes=buf)
                   if objective != "traffic" else None)
            auto = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                 objective=objective, cfg=cfg,
                                 relu_mask="auto")
            fixed = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                  objective=objective, cfg=cfg,
                                  relu_mask=True)
            eval_cfg = cfg or config_for_policy("mbs-auto", buffer_bytes=buf)
            cost_auto = _exact_model(net, auto, eval_cfg).schedule_cost(auto)
            cost_true = _exact_model(net, fixed, eval_cfg).schedule_cost(fixed)
            # LexCost defines only strict order: auto <= true iff not <
            assert not cost_true < cost_auto, (net_name, objective, buf)

    def test_ties_keep_the_paper_default(self, nets):
        """When both settings price identically the schedule records
        ``relu_mask=True`` (the True candidate is priced first and only
        a strictly cheaper alternative replaces it)."""
        net = nets["toy_chain"]
        auto = make_schedule(net, "mbs-auto", relu_mask="auto")
        fixed = make_schedule(net, "mbs-auto", relu_mask=True)
        if TrafficCostModel.for_schedule(net, auto).schedule_cost(auto) == \
                TrafficCostModel.for_schedule(net, fixed).schedule_cost(fixed):
            assert auto.relu_mask is True

    def test_explicit_bool_is_forced(self, nets):
        net = nets["toy_chain"]
        assert make_schedule(net, "mbs-auto",
                             relu_mask=False).relu_mask is False
        assert make_schedule(net, "mbs-auto",
                             relu_mask=True).relu_mask is True

    def test_rejected_for_fixed_policies(self, nets):
        net = nets["toy_chain"]
        with pytest.raises(ValueError, match="fixed by the paper"):
            make_schedule(net, "mbs2", relu_mask=False)
        with pytest.raises(ValueError, match="fixed by the paper"):
            make_schedule(net, "baseline", relu_mask="auto")

    def test_rejects_non_bool_non_auto(self, nets):
        net = nets["toy_chain"]
        with pytest.raises(ValueError, match="True, False, or 'auto'"):
            make_schedule(net, "mbs-auto", relu_mask="yes")
        with pytest.raises(ValueError, match="True, False, or 'auto'"):
            make_schedule(net, "mbs-auto", relu_mask=1)
