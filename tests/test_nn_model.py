"""Graph-interpreter model: structure, shapes, gradient plumbing."""
import numpy as np
import pytest

from repro.graph.layers import NormKind
from repro.nn.layers import NNConv, NNNorm, build_layer
from repro.nn.loss import softmax_cross_entropy
from repro.nn.model import NetworkModel
from repro.types import Shape
from repro.zoo import toy_chain, toy_inception, toy_residual


class TestBuildLayer:
    def test_dispatch(self, chain_net, rng):
        for spec in chain_net.all_layers():
            module = build_layer(spec, rng)
            assert module.spec is spec

    def test_unknown_spec_raises(self, rng):
        with pytest.raises(TypeError):
            build_layer(object(), rng)

    def test_conv_param_shapes(self, rng):
        from repro.graph.layers import Conv2D
        spec = Conv2D(name="c", in_shape=Shape(3, 8, 8), out_channels=5,
                      kernel=3, padding=1, bias=True)
        conv = NNConv(spec, rng)
        assert conv.params["w"].shape == (5, 3, 3, 3)
        assert conv.params["b"].shape == (5,)

    def test_grad_accumulation(self, rng):
        from repro.graph.layers import Conv2D
        spec = Conv2D(name="c", in_shape=Shape(2, 4, 4), out_channels=3,
                      kernel=3, padding=1)
        conv = NNConv(spec, rng)
        x = rng.normal(size=(2, 2, 4, 4))
        y = conv.forward(x)
        conv.backward(np.ones_like(y))
        once = conv.grads["w"].copy()
        conv.forward(x)
        conv.backward(np.ones_like(y))
        np.testing.assert_allclose(conv.grads["w"], 2 * once)
        conv.zero_grads()
        assert not conv.grads["w"].any()


@pytest.mark.parametrize("builder", [toy_chain, toy_residual, toy_inception])
class TestModelStructure:
    def test_forward_shape(self, builder, rng):
        net = builder()
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(3, *vars(net.in_shape).values()))
        logits = model.forward(x)
        assert logits.shape == (3, net.out_shape.elems)

    def test_param_count_matches_graph(self, builder):
        net = builder()
        model = NetworkModel(net, seed=0)
        assert model.param_count() == net.param_count

    def test_backward_runs_and_populates_grads(self, builder, rng):
        net = builder()
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(4, *vars(net.in_shape).values()))
        y = rng.integers(0, net.out_shape.elems, 4)
        logits = model.forward(x)
        _, dlogits, _ = softmax_cross_entropy(logits, y)
        model.backward(dlogits)
        g = model.gradient_vector()
        assert g.shape[0] == net.param_count
        assert np.abs(g).max() > 0

    def test_deterministic_init(self, builder, rng):
        net = builder()
        a = NetworkModel(net, seed=7)
        b = NetworkModel(net, seed=7)
        x = rng.normal(size=(2, *vars(net.in_shape).values()))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_different_seeds_differ(self, builder, rng):
        net = builder()
        a = NetworkModel(net, seed=1)
        b = NetworkModel(net, seed=2)
        x = rng.normal(size=(2, *vars(net.in_shape).values()))
        assert not np.allclose(a.forward(x), b.forward(x))


class TestProbes:
    def test_norm_output_means_recorded(self, rng):
        net = toy_chain(norm=NormKind.GROUP)
        model = NetworkModel(net, seed=0)
        x = rng.normal(size=(2, 3, 32, 32))
        model.forward(x)
        means = model.norm_output_means()
        norm_names = {
            m.spec.name for m in model.modules() if isinstance(m, NNNorm)
        }
        assert set(means) == norm_names
        assert all(np.isfinite(v) for v in means.values())

    def test_pre_activation_means_for_unnormalized(self, rng):
        net = toy_chain(norm=None)
        model = NetworkModel(net, seed=0)
        model.forward(rng.normal(size=(2, 3, 32, 32)))
        assert model.norm_output_means() == {}
        assert model.pre_activation_means()


class TestResidualSemantics:
    def test_identity_shortcut_adds_input(self, rng):
        """Zeroing the main branch's last norm gamma makes the residual
        block an identity + ReLU."""
        net = toy_residual()
        model = NetworkModel(net, seed=0)
        # find the second residual exec block (identity shortcut)
        block = model.blocks[2]
        main = block.branches[0]
        last_norm = [m for m in main.modules() if isinstance(m, NNNorm)][-1]
        last_norm.params["gamma"][...] = 0.0
        x = rng.normal(size=(2, 32, 16, 16))
        y = block.forward(x, training=True)
        beta_lift = last_norm.params["beta"]
        np.testing.assert_allclose(
            y, np.maximum(x + beta_lift[None, :, None, None], 0.0), atol=1e-12
        )
