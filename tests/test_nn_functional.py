"""Kernel correctness: brute-force references and finite differences."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def conv2d_reference(x, w, bias, stride, padding):
    """Naive loop convolution for small cases."""
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    ph, pw = (padding, padding) if isinstance(padding, int) else padding
    n, ci, hi, wi = x.shape
    co, _, r, s = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    ho = (hi + 2 * ph - r) // sh + 1
    wo = (wi + 2 * pw - s) // sw + 1
    y = np.zeros((n, co, ho, wo))
    for b in range(n):
        for o in range(co):
            for i in range(ho):
                for j in range(wo):
                    patch = xp[b, :, i * sh : i * sh + r, j * sw : j * sw + s]
                    y[b, o, i, j] = (patch * w[o]).sum()
            if bias is not None:
                y[b, o] += bias[o]
    return y


CONV_CASES = [
    # (ci, co, hi, wi, r, s, stride, padding)
    (2, 3, 6, 6, 3, 3, 1, 1),
    (1, 2, 5, 5, 3, 3, 2, 1),
    (3, 4, 8, 8, 1, 1, 1, 0),
    (2, 2, 7, 7, 5, 5, 1, 2),
    (2, 3, 9, 9, 3, 3, 3, 1),   # stride with uncovered border pixels
    (2, 2, 8, 8, 7, 7, 2, 3),   # ResNet-conv1-like geometry
    (2, 3, 6, 8, 1, 3, 1, (0, 1)),  # asymmetric inception kernel
    (2, 3, 8, 6, 3, 1, 1, (1, 0)),
]


class TestConvForward:
    @pytest.mark.parametrize("ci,co,hi,wi,r,s,stride,padding", CONV_CASES)
    def test_matches_reference(self, ci, co, hi, wi, r, s, stride, padding,
                               rng):
        x = rng.normal(size=(2, ci, hi, wi))
        w = rng.normal(size=(co, ci, r, s))
        bias = rng.normal(size=co)
        got = F.conv2d_forward(x, w, bias, stride, padding)
        np.testing.assert_allclose(
            got, conv2d_reference(x, w, bias, stride, padding), atol=1e-10
        )

    def test_linearity(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        y1 = F.conv2d_forward(2.5 * x, w, None, 1, 1)
        y2 = 2.5 * F.conv2d_forward(x, w, None, 1, 1)
        np.testing.assert_allclose(y1, y2, atol=1e-10)


def finite_diff(f, x, dy, eps=1e-6):
    """Numerical gradient of sum(f(x)*dy) w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = (f() * dy).sum()
        flat[i] = old - eps
        down = (f() * dy).sum()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestConvBackward:
    @pytest.mark.parametrize("ci,co,hi,wi,r,s,stride,padding", CONV_CASES)
    def test_gradients_by_finite_difference(self, ci, co, hi, wi, r, s,
                                            stride, padding, rng):
        x = rng.normal(size=(2, ci, hi, wi))
        w = rng.normal(size=(co, ci, r, s))
        b = rng.normal(size=co)
        y = F.conv2d_forward(x, w, b, stride, padding)
        dy = rng.normal(size=y.shape)
        dx, dw, db = F.conv2d_backward(x, w, dy, stride, padding, True)

        num_dx = finite_diff(
            lambda: F.conv2d_forward(x, w, b, stride, padding), x, dy
        )
        np.testing.assert_allclose(dx, num_dx, atol=1e-4)
        num_dw = finite_diff(
            lambda: F.conv2d_forward(x, w, b, stride, padding), w, dy
        )
        np.testing.assert_allclose(dw, num_dw, atol=1e-4)
        np.testing.assert_allclose(db, dy.sum(axis=(0, 2, 3)), atol=1e-10)

    def test_oversized_padding_rejected(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(1, 1, 3, 3))
        y = F.conv2d_forward(x, w, None, 1, 5)
        dy = rng.normal(size=y.shape)
        with pytest.raises(ValueError, match="padding"):
            F.conv2d_backward(x, w, dy, 1, 5, False)


class TestPooling:
    def test_maxpool_forward_known(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y, _ = F.maxpool_forward(x, 2, 2, 0)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y, cache = F.maxpool_forward(x, 2, 2, 0)
        dy = np.ones_like(y)
        dx = F.maxpool_backward(dy, cache)
        expect = np.zeros((4, 4))
        expect[1, 1] = expect[1, 3] = expect[3, 1] = expect[3, 3] = 1
        np.testing.assert_array_equal(dx[0, 0], expect)

    @pytest.mark.parametrize("k,s,p", [(2, 2, 0), (3, 2, 1), (3, 1, 1)])
    def test_maxpool_fd(self, k, s, p, rng):
        x = rng.normal(size=(2, 2, 6, 6))
        y, cache = F.maxpool_forward(x, k, s, p)
        dy = rng.normal(size=y.shape)
        dx = F.maxpool_backward(dy, cache)
        num = finite_diff(lambda: F.maxpool_forward(x, k, s, p)[0], x, dy)
        np.testing.assert_allclose(dx, num, atol=1e-4)

    @pytest.mark.parametrize("k,s,p", [(2, 2, 0), (3, 1, 1)])
    def test_avgpool_fd(self, k, s, p, rng):
        x = rng.normal(size=(2, 2, 6, 6))
        y, cache = F.avgpool_forward(x, k, s, p)
        dy = rng.normal(size=y.shape)
        dx = F.avgpool_backward(dy, cache)
        num = finite_diff(lambda: F.avgpool_forward(x, k, s, p)[0], x, dy)
        np.testing.assert_allclose(dx, num, atol=1e-4)

    def test_global_avgpool_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        y, shape = F.global_avgpool_forward(x)
        np.testing.assert_allclose(y[..., 0, 0], x.mean(axis=(2, 3)))
        dy = rng.normal(size=y.shape)
        dx = F.global_avgpool_backward(dy, shape)
        np.testing.assert_allclose(dx, np.broadcast_to(dy / 16, x.shape))

    def test_maxpool_padding_never_wins(self, rng):
        """-inf padding means border maxima come from real pixels."""
        x = -np.abs(rng.normal(size=(1, 1, 4, 4))) - 1
        y, _ = F.maxpool_forward(x, 3, 2, 1)
        assert np.isfinite(y).all()
        assert (y < 0).all()


class TestRelu:
    def test_forward_and_mask(self):
        x = np.array([[-1.0, 2.0], [0.0, -3.0]])
        y, mask = F.relu_forward(x)
        np.testing.assert_array_equal(y, [[0, 2], [0, 0]])
        np.testing.assert_array_equal(mask, [[False, True], [False, False]])

    @given(st.integers(1, 5), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_backward_masks_gradient(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        x = rng.normal(size=(n, m))
        _, mask = F.relu_forward(x)
        dy = rng.normal(size=(n, m))
        dx = F.relu_backward(dy, mask)
        np.testing.assert_allclose(dx, dy * (x > 0))
