"""The CI bench-gate comparator: generous tolerance, loud reporting."""
import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts/bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _results_file(tmp_path, name, medians):
    payload = {
        "benchmarks": [
            {"fullname": full, "stats": {"median": median}}
            for full, median in medians.items()
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def baseline(tmp_path):
    path = tmp_path / "baselines.json"
    path.write_text(json.dumps({
        "comment": "test baselines",
        "benchmarks": {"bench.py::test_a": 0.010, "bench.py::test_b": 0.100},
    }))
    return path


class TestGate:
    def test_within_tolerance_passes(self, tmp_path, baseline, capsys):
        results = _results_file(
            tmp_path, "r.json",
            {"bench.py::test_a": 0.025, "bench.py::test_b": 0.09},
        )
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        assert rc == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_gross_regression_fails(self, tmp_path, baseline, capsys):
        results = _results_file(
            tmp_path, "r.json",
            {"bench.py::test_a": 0.031, "bench.py::test_b": 0.09},
        )
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path, baseline):
        results = _results_file(
            tmp_path, "r.json",
            {"bench.py::test_a": 0.031, "bench.py::test_b": 0.09},
        )
        rc = bench_compare.main([
            str(results), "--baseline", str(baseline), "--tolerance", "5",
        ])
        assert rc == 0

    def test_new_and_absent_benchmarks_pass_loudly(
            self, tmp_path, baseline, capsys):
        results = _results_file(
            tmp_path, "r.json",
            {"bench.py::test_a": 0.01, "bench.py::test_new": 1.0},
        )
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "new" in out and "absent" in out

    def test_multiple_results_files_merge(self, tmp_path, baseline):
        r1 = _results_file(tmp_path, "r1.json", {"bench.py::test_a": 0.01})
        r2 = _results_file(tmp_path, "r2.json", {"bench.py::test_b": 0.5})
        rc = bench_compare.main(
            [str(r1), str(r2), "--baseline", str(baseline)]
        )
        assert rc == 1  # test_b regressed 5x, merged from the second file

    def test_sub_millisecond_baselines_are_not_gated(self, tmp_path, capsys):
        """Microsecond-scale medians measure timer jitter, not code:
        they are reported as tiny and never fail the gate."""
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "benchmarks": {"bench.py::test_us": 2e-6},
        }))
        results = _results_file(
            tmp_path, "r.json", {"bench.py::test_us": 2e-4}  # 100x "slower"
        )
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tiny" in out and "not gated" in out

    def test_noise_floor_flag_overrides(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "benchmarks": {"bench.py::test_us": 2e-6},
        }))
        results = _results_file(
            tmp_path, "r.json", {"bench.py::test_us": 2e-4}
        )
        rc = bench_compare.main([
            str(results), "--baseline", str(baseline), "--noise-floor", "0",
        ])
        assert rc == 1  # gated once the floor is lowered


class TestBadInputs:
    def test_missing_results_file(self, tmp_path, baseline, capsys):
        rc = bench_compare.main(
            [str(tmp_path / "nope.json"), "--baseline", str(baseline)]
        )
        assert rc == 2

    def test_missing_baseline_file(self, tmp_path, capsys):
        results = _results_file(
            tmp_path, "r.json", {"bench.py::test_a": 0.01}
        )
        rc = bench_compare.main(
            [str(results), "--baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 2
        assert "--update" in capsys.readouterr().err

    def test_empty_results(self, tmp_path, baseline):
        results = _results_file(tmp_path, "r.json", {})
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        assert rc == 2


class TestUpdate:
    def test_update_writes_sorted_baselines(self, tmp_path):
        results = _results_file(
            tmp_path, "r.json",
            {"bench.py::test_b": 0.2, "bench.py::test_a": 0.1},
        )
        baseline = tmp_path / "new-baselines.json"
        rc = bench_compare.main([
            str(results), "--baseline", str(baseline), "--update",
        ])
        assert rc == 0
        data = json.loads(baseline.read_text())
        assert list(data["benchmarks"]) == [
            "bench.py::test_a", "bench.py::test_b",
        ]
        # round trip: freshly updated baselines always gate green
        assert bench_compare.main(
            [str(results), "--baseline", str(baseline)]
        ) == 0

    def test_uniform_runner_slowdown_is_normalized_away(self, tmp_path):
        """Baselines come from a different machine: a CI runner that is
        uniformly 4x slower must not fail the gate."""
        names = [f"bench.py::test_{i}" for i in range(6)]
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "benchmarks": {n: 0.010 for n in names},
        }))
        results = _results_file(
            tmp_path, "r.json", {n: 0.040 for n in names}
        )
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        assert rc == 0

    def test_isolated_regression_survives_normalization(self, tmp_path):
        names = [f"bench.py::test_{i}" for i in range(6)]
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "benchmarks": {n: 0.010 for n in names},
        }))
        medians = {n: 0.010 for n in names}
        medians[names[0]] = 0.200  # one benchmark 20x slower
        results = _results_file(tmp_path, "r.json", medians)
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        assert rc == 1

    def test_uniform_slowdown_past_hard_cap_still_fails(self, tmp_path,
                                                        capsys):
        """Normalization cancels machine speed, not arbitrary uniform
        regressions: raw ratios past tolerance * hard-cap factor fail
        even when the median moved with them."""
        names = [f"bench.py::test_{i}" for i in range(6)]
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "benchmarks": {n: 0.010 for n in names},
        }))
        results = _results_file(
            tmp_path, "r.json", {n: 0.120 for n in names}  # uniform 12x
        )
        rc = bench_compare.main([str(results), "--baseline", str(baseline)])
        out = capsys.readouterr()
        assert rc == 1
        assert "hard cap" in out.out
        assert "WARNING" in out.err

    def test_update_merges_instead_of_clobbering(self, tmp_path, baseline):
        """Refreshing one suite must keep the other suites' baselines
        (a dropped baseline silently un-gates its benchmark)."""
        results = _results_file(
            tmp_path, "r.json", {"bench.py::test_a": 0.5}
        )
        rc = bench_compare.main([
            str(results), "--baseline", str(baseline), "--update",
        ])
        assert rc == 0
        data = json.loads(baseline.read_text())["benchmarks"]
        assert data["bench.py::test_a"] == 0.5  # refreshed
        assert data["bench.py::test_b"] == 0.100  # kept, not dropped

    def test_committed_baselines_cover_both_suites(self):
        committed = json.loads(
            (_SCRIPT.parent.parent / "benchmarks/baselines.json").read_text()
        )["benchmarks"]
        assert any("bench_scheduler" in name for name in committed)
        assert any("bench_micro_kernels" in name for name in committed)
        assert any("latency" in name for name in committed)
