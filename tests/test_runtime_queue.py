"""Work-queue state machine: leases, expiry, retries, quarantine.

Everything here drives :class:`repro.runtime.queue.JobQueue` directly
with a fake clock — no HTTP, no threads, no sleeps — so the timing
semantics (lease deadlines, heartbeat extension, poison after
``max_attempts``) are asserted deterministically.
"""

import pytest

from repro.runtime.cache import spec_fingerprint, task_key
from repro.runtime.queue import (
    DONE,
    LEASED,
    PENDING,
    POISONED,
    ExpiredLease,
    JobQueue,
    RejectedManifest,
    UnknownJob,
    UnknownLease,
    format_point_line,
    point_label,
)
from repro.runtime.spec import ExperimentSpec, expand_grid


def _produce(x=0, y=1):
    return {"value": x * 10 + y}


SPEC = ExperimentSpec(
    name="qtest",
    title="queue test spec",
    produce=_produce,
    sweep={"x": (0, 1), "y": (1, 2)},
    artifact=("value",),
)

GRID = expand_grid(SPEC.sweep)  # 4 points, deterministic order


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_queue(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("lease_timeout_s", 10.0)
    kwargs.setdefault("max_attempts", 3)
    return JobQueue(clock=clock, **kwargs), clock


def manifest_for(point):
    return {
        "spec": SPEC.name,
        "version": SPEC.version,
        "key": point.key,
        "fingerprint": spec_fingerprint(SPEC),
        "params": point.params,
        "artifact": _produce(**point.params),
        "rendered": "",
    }


class TestSubmit:
    def test_grid_points_resolved_in_order_with_task_keys(self):
        queue, _ = make_queue()
        job = queue.submit(SPEC, GRID)
        assert [p.overrides for p in job.points] == GRID
        for point in job.points:
            assert point.params == SPEC.resolve_params(point.overrides)
            assert point.key == task_key(SPEC, point.params)
            assert point.state == PENDING
        assert job.state == "running"
        assert job.counts() == {"pending": 4, "leased": 0, "done": 0,
                                "poisoned": 0}

    def test_already_done_pre_completes_points(self):
        queue, _ = make_queue()
        done_keys = {task_key(SPEC, SPEC.resolve_params(GRID[0])),
                     task_key(SPEC, SPEC.resolve_params(GRID[2]))}

        def lookup(point):
            if point.key in done_keys:
                return {"spec": SPEC.name, "key": point.key}
            return None

        job = queue.submit(SPEC, GRID, already_done=lookup)
        assert job.counts()["done"] == 2
        assert queue.points_completed == 2

    def test_already_done_rejects_key_mismatch(self):
        queue, _ = make_queue()
        job = queue.submit(
            SPEC, GRID,
            already_done=lambda p: {"spec": SPEC.name, "key": "stale"},
        )
        assert job.counts()["done"] == 0

    def test_unknown_override_raises(self):
        queue, _ = make_queue()
        with pytest.raises(KeyError):
            queue.submit(SPEC, [{"nope": 1}])

    def test_unknown_job(self):
        queue, _ = make_queue()
        with pytest.raises(UnknownJob):
            queue.job("job-404")

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="lease_timeout_s"):
            JobQueue(lease_timeout_s=0)
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(max_attempts=0)


class TestLease:
    def test_grant_marks_points_and_counts_attempts(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID)
        job, lease, points = queue.lease("w1", max_points=2)
        assert [p.index for p in points] == [0, 1]
        assert all(p.state == LEASED for p in points)
        assert all(p.attempts == 1 for p in points)
        assert lease.indexes == (0, 1)
        assert queue.leases_granted == 1

    def test_batches_never_overlap(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID)
        _, _, batch1 = queue.lease("w1", max_points=3)
        _, _, batch2 = queue.lease("w2", max_points=3)
        assert {p.index for p in batch1} == {0, 1, 2}
        assert {p.index for p in batch2} == {3}
        assert queue.lease("w3") is None

    def test_fifo_across_jobs(self):
        queue, _ = make_queue()
        first = queue.submit(SPEC, GRID[:1])
        second = queue.submit(SPEC, GRID[1:2])
        job, _, _ = queue.lease("w1")
        assert job.job_id == first.job_id
        job, _, _ = queue.lease("w1")
        assert job.job_id == second.job_id

    def test_lease_pinned_to_one_job(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID[:1])
        second = queue.submit(SPEC, GRID[1:3])
        job, _, points = queue.lease("w1", max_points=5,
                                     job_id=second.job_id)
        assert job.job_id == second.job_id
        assert len(points) == 2

    def test_max_points_validation(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID)
        with pytest.raises(ValueError, match="max_points"):
            queue.lease("w1", max_points=0)


class TestExpiry:
    def test_expired_lease_requeues_points(self):
        queue, clock = make_queue(lease_timeout_s=10.0)
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=4)
        clock.advance(10.5)
        assert queue.expire() == 1
        assert all(p.state == PENDING for p in points)
        assert all(p.attempts == 1 for p in points)
        assert queue.leases_expired == 1
        # the re-queued points are leasable again, attempts now 2
        _, _, again = queue.lease("w2", max_points=4)
        assert [p.index for p in again] == [0, 1, 2, 3]
        assert all(p.attempts == 2 for p in again)

    def test_heartbeat_extends_deadline(self):
        queue, clock = make_queue(lease_timeout_s=10.0)
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=4)
        for _ in range(5):
            clock.advance(8.0)
            queue.heartbeat(lease.lease_id)
        clock.advance(8.0)  # 48s of work, never a 10s gap
        queue.expire()
        assert all(p.state == LEASED for p in points)

    def test_heartbeat_after_expiry_raises(self):
        queue, clock = make_queue(lease_timeout_s=10.0)
        queue.submit(SPEC, GRID)
        _, lease, _ = queue.lease("w1")
        clock.advance(11.0)
        with pytest.raises(ExpiredLease):
            queue.heartbeat(lease.lease_id)

    def test_unknown_lease_raises(self):
        queue, _ = make_queue()
        with pytest.raises(UnknownLease):
            queue.heartbeat("lease-404")

    def test_lease_drives_expiry_lazily(self):
        # no explicit expire() call: the next lease() request reaps
        queue, clock = make_queue(lease_timeout_s=10.0)
        queue.submit(SPEC, GRID[:1])
        queue.lease("w1")
        clock.advance(11.0)
        job, lease, points = queue.lease("w2")
        assert lease.worker == "w2"
        assert points[0].attempts == 2


class TestRetryAndPoison:
    def test_point_poisoned_after_max_attempts_expiries(self):
        queue, clock = make_queue(lease_timeout_s=10.0, max_attempts=3)
        job = queue.submit(SPEC, GRID[:1])
        for attempt in range(3):
            granted = queue.lease("w1")
            assert granted is not None, f"attempt {attempt} not leasable"
            clock.advance(11.0)
            queue.expire()
        point = job.points[0]
        assert point.state == POISONED
        assert point.attempts == 3
        assert "expired" in point.error
        assert queue.lease("w1") is None
        assert queue.points_poisoned == 1
        assert job.state == "failed"
        assert queue.all_terminal

    def test_worker_reported_failure_requeues_then_poisons(self):
        queue, _ = make_queue(max_attempts=2)
        job = queue.submit(SPEC, GRID[:1])
        _, lease, _ = queue.lease("w1")
        queue.fail(lease.lease_id, 0, "boom")
        assert job.points[0].state == PENDING
        assert job.points[0].error == "boom"
        _, lease, _ = queue.lease("w1")
        queue.fail(lease.lease_id, 0, "boom again")
        assert job.points[0].state == POISONED
        assert queue.points_failed == 2
        assert job.state == "failed"

    def test_per_job_max_attempts_overrides_default(self):
        queue, _ = make_queue(max_attempts=3)
        job = queue.submit(SPEC, GRID[:1], max_attempts=1)
        _, lease, _ = queue.lease("w1")
        queue.fail(lease.lease_id, 0, "boom")
        assert job.points[0].state == POISONED

    def test_fail_is_noop_after_expiry_reassignment(self):
        # worker A's late failure report must not clobber worker B's
        # live lease on the same point
        queue, clock = make_queue(lease_timeout_s=10.0)
        job = queue.submit(SPEC, GRID[:1])
        _, lease_a, _ = queue.lease("wA")
        clock.advance(11.0)
        _, lease_b, _ = queue.lease("wB")
        queue.fail(lease_a.lease_id, 0, "late report")
        assert job.points[0].state == LEASED
        assert job.points[0].lease_id == lease_b.lease_id


class TestComplete:
    def test_complete_marks_done(self):
        queue, _ = make_queue()
        job = queue.submit(SPEC, GRID[:1])
        _, lease, points = queue.lease("w1")
        point = queue.complete(lease.lease_id, 0, manifest_for(points[0]))
        assert point.state == DONE
        assert queue.points_completed == 1
        assert job.state == "done"
        assert queue.all_terminal

    def test_complete_is_idempotent(self):
        # two-point job: the job stays running after the first complete,
        # so the lease is retained and the duplicate short-circuits
        queue, _ = make_queue()
        queue.submit(SPEC, GRID[:2])
        _, lease, points = queue.lease("w1", max_points=1)
        queue.complete(lease.lease_id, 0, manifest_for(points[0]))
        queue.complete(lease.lease_id, 0, manifest_for(points[0]))
        assert queue.points_completed == 1

    def test_late_complete_after_expiry_is_accepted(self):
        # valid finished work is never discarded: the manifest lands
        # even though the lease expired and the point was re-queued
        queue, clock = make_queue(lease_timeout_s=10.0)
        job = queue.submit(SPEC, GRID[:1])
        _, lease, points = queue.lease("w1")
        clock.advance(11.0)
        queue.expire()
        assert job.points[0].state == PENDING
        point = queue.complete(lease.lease_id, 0, manifest_for(points[0]))
        assert point.state == DONE

    def test_key_mismatch_rejected(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID[:1])
        _, lease, points = queue.lease("w1")
        bad = dict(manifest_for(points[0]), key="0" * 24)
        with pytest.raises(RejectedManifest, match="out of sync"):
            queue.complete(lease.lease_id, 0, bad)
        assert queue.manifests_rejected == 1
        assert points[0].state == LEASED

    def test_wrong_spec_rejected(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID[:1])
        _, lease, points = queue.lease("w1")
        bad = dict(manifest_for(points[0]), spec="other")
        with pytest.raises(RejectedManifest):
            queue.complete(lease.lease_id, 0, bad)

    def test_index_outside_lease_rejected(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=1)
        with pytest.raises(ValueError, match="not part of lease"):
            queue.complete(lease.lease_id, 3, manifest_for(points[0]))


class TestSubmitOverrideValidation:
    def test_none_means_inherit(self):
        queue, _ = make_queue(lease_timeout_s=42.0, max_attempts=7)
        job = queue.submit(SPEC, GRID, lease_timeout_s=None,
                           max_attempts=None)
        assert job.lease_timeout_s == 42.0
        assert job.max_attempts == 7

    @pytest.mark.parametrize("bad", [0, 0.0, -1.0])
    def test_zero_or_negative_lease_timeout_rejected(self, bad):
        # `or`-style defaulting used to coerce 0 to the queue default
        # and accept negatives the constructor would reject
        queue, _ = make_queue()
        with pytest.raises(ValueError, match="lease_timeout_s"):
            queue.submit(SPEC, GRID, lease_timeout_s=bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_max_attempts_rejected(self, bad):
        queue, _ = make_queue()
        with pytest.raises(ValueError, match="max_attempts"):
            queue.submit(SPEC, GRID, max_attempts=bad)

    def test_explicit_overrides_still_apply(self):
        queue, _ = make_queue()
        job = queue.submit(SPEC, GRID, lease_timeout_s=5.0,
                           max_attempts=1)
        assert job.lease_timeout_s == 5.0
        assert job.max_attempts == 1


class TestLeasePruning:
    """Terminal jobs must not pin their leases forever (the old leak)."""

    def test_leases_pruned_when_job_completes(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=4)
        for point in points:
            queue.complete(lease.lease_id, point.index,
                           manifest_for(point))
        assert queue.leases == {}
        assert queue.stats()["leases_live"] == 0

    def test_expired_lease_retained_while_job_running(self):
        # the late-complete path needs the dead lease object — it must
        # survive expiry until the job is terminal
        queue, clock = make_queue(lease_timeout_s=10.0)
        queue.submit(SPEC, GRID)
        _, lease, points = queue.lease("w1", max_points=2)
        clock.advance(11.0)
        queue.expire()
        assert lease.lease_id in queue.leases
        assert not queue.leases[lease.lease_id].alive
        # late complete via the dead lease still lands
        done = queue.complete(lease.lease_id, 0, manifest_for(points[0]))
        assert done.state == DONE

    def test_dead_leases_dropped_at_job_terminal(self):
        queue, clock = make_queue(lease_timeout_s=10.0, max_attempts=3)
        queue.submit(SPEC, GRID)
        # burn a lease per expiry cycle, then drain with a final one
        _, stale, _ = queue.lease("w1", max_points=4)
        clock.advance(11.0)
        queue.expire()
        _, fresh, points = queue.lease("w2", max_points=4)
        assert stale.lease_id in queue.leases  # still running: retained
        for point in points:
            queue.complete(fresh.lease_id, point.index,
                           manifest_for(point))
        assert queue.leases == {}  # terminal: stale + fresh both pruned

    def test_late_complete_after_terminal_is_unknown_lease(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID[:1])
        _, lease, points = queue.lease("w1")
        queue.complete(lease.lease_id, 0, manifest_for(points[0]))
        with pytest.raises(UnknownLease):
            queue.complete(lease.lease_id, 0, manifest_for(points[0]))

    def test_poisoned_job_prunes_leases_too(self):
        queue, clock = make_queue(lease_timeout_s=10.0, max_attempts=1)
        job = queue.submit(SPEC, GRID[:1])
        queue.lease("w1")
        clock.advance(11.0)
        queue.expire()
        assert job.points[0].state == POISONED
        assert queue.leases == {}

    def test_long_lived_queue_lease_count_stays_bounded(self):
        # the regression the satellite fix targets: many jobs drained
        # over one coordinator lifetime must not accumulate leases
        queue, _ = make_queue()
        for start in range(0, 4, 2):
            queue.submit(SPEC, GRID[start:start + 2])
        while (granted := queue.lease("w", max_points=1)) is not None:
            _, lease, points = granted
            queue.complete(lease.lease_id, points[0].index,
                           manifest_for(points[0]))
        assert queue.all_terminal
        assert queue.stats()["leases_live"] == 0
        assert queue.leases_granted == 4


class TestTerminalStates:
    def test_empty_queue_is_not_terminal(self):
        queue, _ = make_queue()
        assert not queue.all_terminal

    def test_stats_shape(self):
        queue, _ = make_queue()
        queue.submit(SPEC, GRID)
        stats = queue.stats()
        assert stats == {
            "jobs": 1, "leases_live": 0, "leases_granted": 0,
            "leases_expired": 0, "points_completed": 0,
            "points_failed": 0, "points_poisoned": 0,
            "manifests_rejected": 0,
        }


class TestPointFormatting:
    def test_point_label_insertion_order(self):
        assert point_label({"b": 2, "a": "x"}) == "b=2, a='x'"
        assert point_label({}) == "(base)"

    def test_format_point_line_statuses_align(self):
        ran = format_point_line("fig3", {"x": 1}, "ran")
        skipped = format_point_line("fig3", {"x": 1}, "skipped")
        assert ran == "  [    ran] fig3: x=1"
        assert skipped == "  [skipped] fig3: x=1"
