"""Smoke tests: every shipped example runs end to end."""
import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "DRAM traffic/step" in out
    assert "speedup" in out


def test_custom_network_runs(capsys):
    module = load("custom_network")
    net = module.build_custom_net()
    assert net.param_count > 0
    module.main()
    out = capsys.readouterr().out
    assert "mbs2" in out and "MiB DRAM" in out


def test_design_space_runs(capsys):
    load("accelerator_design_space").main()
    out = capsys.readouterr().out
    assert "LPDDR4" in out and "frontier" in out


def test_training_equivalence_runs(capsys):
    load("training_equivalence").main()
    out = capsys.readouterr().out
    assert "identical trajectories" in out
    assert "max |grad diff| = 0.00e+00" in out or "e-16" in out


def test_train_mbs_cnn_runs(capsys):
    load("train_mbs_cnn").main()
    out = capsys.readouterr().out
    assert "checkpoint saved" in out
    assert "matches the trained model: True" in out


def test_parallel_experiments_runs(capsys):
    load("parallel_experiments").main()
    out = capsys.readouterr().out
    assert "6/6 cache hits" in out
    assert "cache keys stable" in out
