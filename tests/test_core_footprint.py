"""Unit tests for per-sample space (Eq. 1 / Eq. 2)."""
import pytest

from repro.core.footprint import block_space_per_sample, layer_live_bytes
from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import Activation, Conv2D, Norm
from repro.types import Shape

IN = Shape(8, 16, 16)


def conv(name, in_shape, out_c, k=1, s=1, p=0):
    return Conv2D(name=name, in_shape=in_shape, out_channels=out_c,
                  kernel=k, stride=s, padding=p)


class TestLayerLive:
    def test_conv_holds_in_and_out(self):
        c = conv("c", IN, 4)
        assert layer_live_bytes(c) == IN.bytes() + Shape(4, 16, 16).bytes()

    def test_activation_in_place(self):
        a = Activation(name="a", in_shape=IN)
        assert layer_live_bytes(a) == IN.bytes()

    def test_norm_holds_both(self):
        n = Norm(name="n", in_shape=IN)
        assert layer_live_bytes(n) == 2 * IN.bytes()


class TestChainSpace:
    def test_chain_is_max_layer_live(self):
        layers = [conv("a", IN, 4), conv("b", Shape(4, 16, 16), 32)]
        blk = chain_block("c", IN, layers)
        expect = max(layer_live_bytes(l) for l in layers)
        assert block_space_per_sample(blk, True) == expect
        assert block_space_per_sample(blk, False) == expect

    def test_branch_reuse_irrelevant_for_chains(self, chain_net):
        for blk in chain_net.blocks:
            assert block_space_per_sample(blk, True) == \
                block_space_per_sample(blk, False)


class TestResidualSpace:
    def make(self, shortcut_identity=True):
        main = Branch((
            conv("m1", IN, 8, k=3, p=1),
            conv("m2", IN, 8, k=3, p=1),
        ))
        shortcut = Branch() if shortcut_identity else Branch((conv("s", IN, 8),))
        return Block(name="res", in_shape=IN, branches=(main, shortcut),
                     merge=MergeKind.ADD,
                     post_merge=(Activation(name="r", in_shape=IN),))

    def test_eq1_exceeds_plain_live(self):
        blk = self.make()
        assert block_space_per_sample(blk, True) > \
            block_space_per_sample(blk, False)

    def test_eq1_holds_block_input_past_first_layer(self):
        blk = self.make()
        # second main layer: in + out + retained block input
        expect_candidate = 3 * IN.bytes()
        assert block_space_per_sample(blk, True) >= expect_candidate

    def test_merge_holds_all_leaves(self):
        blk = self.make(shortcut_identity=False)
        # ADD merge: main leaf + shortcut leaf live simultaneously
        assert block_space_per_sample(blk, True) >= 2 * IN.bytes()

    def test_without_branch_reuse_is_max_layer_live(self):
        blk = self.make()
        expect = max(layer_live_bytes(l) for l in blk.all_layers())
        assert block_space_per_sample(blk, False) == expect


class TestInceptionSpace:
    def test_eq2_reserves_concat_output(self, inception_net):
        mix = inception_net.block_named("mix")
        with_reuse = block_space_per_sample(mix, True)
        without = block_space_per_sample(mix, False)
        assert with_reuse > without
        # Eq. 2 reserves at least the block output alongside a layer
        assert with_reuse >= mix.out_shape.bytes()


@pytest.mark.parametrize(
    "fixture", ["rn50", "incv3", "incv4", "alex"]
)
def test_reuse_space_dominates_everywhere(fixture, request):
    """space(Eq.1/2) >= space(plain) >= max layer live, for all blocks."""
    net = request.getfixturevalue(fixture)
    for blk in net.blocks:
        plain = block_space_per_sample(blk, False)
        reuse = block_space_per_sample(blk, True)
        floor = max(layer_live_bytes(l) for l in blk.all_layers())
        assert reuse >= plain >= floor > 0


def test_resnet50_early_block_magnitude(rn50):
    """Fig. 4: early ResNet-50 residual blocks need ~3-5 MB per sample."""
    space = block_space_per_sample(rn50.block_named("conv2_1"), True)
    assert 2.5e6 < space < 6e6
