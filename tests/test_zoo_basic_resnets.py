"""Basic-block ResNets (18/34) pinned against published counts."""
import pytest

from repro.core.policies import make_schedule
from repro.core.traffic import compute_traffic
from repro.types import Shape
from repro.zoo import build, resnet18, resnet34


@pytest.fixture(scope="module")
def rn18():
    return resnet18()


@pytest.fixture(scope="module")
def rn34():
    return resnet34()


def test_published_param_counts(rn18, rn34):
    assert rn18.param_count == 11_689_512
    assert rn34.param_count == 21_797_672


def test_published_macs(rn18, rn34):
    assert 1.7e9 < rn18.macs_per_sample < 1.9e9   # ~1.8 GMACs
    assert 3.5e9 < rn34.macs_per_sample < 3.8e9   # ~3.7 GMACs


def test_block_counts(rn18, rn34):
    assert len(rn18) == 2 + 8 + 1
    assert len(rn34) == 2 + 16 + 1


def test_basic_block_structure(rn18):
    block = rn18.block_named("conv2_1")
    convs = [l for l in block.branches[0].layers if l.kind.value == "conv"]
    assert len(convs) == 2  # basic blocks: two 3x3 convs
    assert all(c.kernel == (3, 3) for c in convs)
    assert block.branches[1].is_identity  # 64 -> 64, no projection


def test_stage_shapes(rn18):
    assert rn18.block_named("conv2_2").out_shape == Shape(64, 56, 56)
    assert rn18.block_named("conv5_2").out_shape == Shape(512, 7, 7)


def test_build_dispatch():
    assert build("resnet18").param_count == 11_689_512
    assert build("resnet34").param_count == 21_797_672


def test_mbs_schedules_and_saves_traffic(rn18):
    base = compute_traffic(rn18, make_schedule(rn18, "baseline")).total_bytes
    mbs = compute_traffic(rn18, make_schedule(rn18, "mbs2")).total_bytes
    assert mbs < base / 2.5  # shallower nets still cut traffic hard
