"""Cycle-level functional systolic array: correctness and exact cycle
agreement with the analytic model (hypothesis-driven)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic import SystolicArray, run_gemm
from repro.wavecore.config import WaveCoreConfig
from repro.wavecore.gemm import GemmDims
from repro.wavecore.tiling import gemm_cycles


def analytic(m, n, k, rows, cols, tile_rows, db):
    cfg = WaveCoreConfig(
        array_rows=rows, array_cols=cols,
        accum_buffer_bytes=tile_rows * cols * 4,
        weight_double_buffer=db,
    )
    return gemm_cycles(GemmDims(m, n, k), cfg).cycles


class TestArrayMechanics:
    def test_single_dot_product(self):
        arr = SystolicArray(2, 1)
        arr.begin_weight_load(0, np.array([[2.0], [3.0]]))
        arr.step()
        arr.step()  # load complete after `rows` cycles
        # inject a=(5, 7) skewed
        arr.step(np.array([5.0, 0.0]), np.array([0, 0], dtype=np.int8),
                 np.array([True, False]))
        arr.step(np.array([0.0, 7.0]), np.array([0, 0], dtype=np.int8),
                 np.array([False, True]))
        out, valid = arr.step()
        assert valid[0]
        assert out[0] == 5 * 2 + 7 * 3

    def test_bank_select(self):
        arr = SystolicArray(1, 1)
        arr.begin_weight_load(0, np.array([[10.0]]))
        arr.step()
        arr.begin_weight_load(1, np.array([[100.0]]))
        arr.step()
        arr.step(np.array([3.0]), np.array([0], dtype=np.int8))
        out0, _ = arr.step(np.array([3.0]), np.array([1], dtype=np.int8))
        out1, _ = arr.step()
        assert out0[0] == 30.0
        assert out1[0] == 300.0

    def test_weight_block_shape_validated(self):
        arr = SystolicArray(2, 2)
        with pytest.raises(ValueError):
            arr.begin_weight_load(0, np.zeros((3, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 1)


class TestGemmCorrectness:
    @pytest.mark.parametrize("db", [True, False])
    @pytest.mark.parametrize("m,k,n,rows,cols,tile", [
        (10, 7, 5, 4, 3, 8),
        (16, 16, 8, 4, 4, 8),
        (5, 3, 2, 2, 2, 4),
        (33, 17, 9, 4, 4, 12),
        (1, 1, 1, 2, 2, 4),
    ])
    def test_matches_numpy(self, m, k, n, rows, cols, tile, db, rng):
        a = rng.integers(-5, 6, (m, k)).astype(float)
        b = rng.integers(-5, 6, (k, n)).astype(float)
        run = run_gemm(a, b, rows, cols, tile, double_buffer=db)
        np.testing.assert_allclose(run.result, a @ b)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            run_gemm(np.zeros((3, 4)), np.zeros((5, 2)), 2, 2, 4)

    def test_tiny_tiles_still_correct(self, rng):
        a = rng.normal(size=(8, 4))
        b = rng.normal(size=(4, 4))
        run = run_gemm(a, b, 4, 4, 3, double_buffer=True)
        np.testing.assert_allclose(run.result, a @ b)


class TestCycleAgreement:
    @pytest.mark.parametrize("db", [True, False])
    @pytest.mark.parametrize("m,k,n,rows,cols,tile", [
        (10, 7, 5, 4, 3, 8),
        (16, 16, 8, 4, 4, 8),
        (40, 23, 11, 5, 4, 16),
        (8, 4, 4, 4, 4, 7),
    ])
    def test_exact(self, m, k, n, rows, cols, tile, db, rng):
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        run = run_gemm(a, b, rows, cols, tile, double_buffer=db)
        assert run.cycles == analytic(m, n, k, rows, cols, tile, db)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 24),  # m
        st.integers(1, 12),  # k
        st.integers(1, 10),  # n
        st.integers(2, 5),   # rows
        st.integers(2, 5),   # cols
        st.integers(1, 14),  # tile rows
        st.booleans(),
    )
    def test_property(self, m, k, n, rows, cols, tile, db):
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = rng.integers(-3, 4, (m, k)).astype(float)
        b = rng.integers(-3, 4, (k, n)).astype(float)
        run = run_gemm(a, b, rows, cols, tile, double_buffer=db)
        np.testing.assert_allclose(run.result, a @ b)
        assert run.cycles == analytic(m, n, k, rows, cols, tile, db)

    def test_db_faster_on_multiwave(self, rng):
        a = rng.normal(size=(32, 20))
        b = rng.normal(size=(20, 8))
        fast = run_gemm(a, b, 4, 4, 16, double_buffer=True)
        slow = run_gemm(a, b, 4, 4, 16, double_buffer=False)
        assert fast.cycles < slow.cycles
        assert fast.utilization > slow.utilization
