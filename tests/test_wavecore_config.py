"""Unit tests for accelerator and memory configuration (Tab. 2 / Tab. 4)."""
import pytest

from repro.types import GIB, MIB
from repro.wavecore.config import (
    BASELINE_CONFIG,
    DEFAULT_CONFIG,
    GDDR5,
    HBM2,
    HBM2_X2,
    LPDDR4,
    MEMORY_CONFIGS,
    WaveCoreConfig,
    config_for_policy,
)


class TestMemoryPresets:
    def test_tab4_bandwidths(self):
        assert HBM2.bandwidth_bytes_per_s == 300 * GIB
        assert HBM2_X2.bandwidth_bytes_per_s == 600 * GIB
        assert GDDR5.bandwidth_bytes_per_s == 384 * GIB
        assert LPDDR4.bandwidth_bytes_per_s == pytest.approx(239.2 * GIB)

    def test_tab4_relative_bandwidth(self):
        # paper: GDDR5 is 64% and LPDDR4 40% of HBM2x2
        assert GDDR5.bandwidth_bytes_per_s / HBM2_X2.bandwidth_bytes_per_s \
            == pytest.approx(0.64)
        assert LPDDR4.bandwidth_bytes_per_s / HBM2_X2.bandwidth_bytes_per_s \
            == pytest.approx(0.399, abs=0.01)

    def test_registry(self):
        assert set(MEMORY_CONFIGS) == {"HBM2", "HBM2x2", "GDDR5", "LPDDR4"}


class TestWaveCoreConfig:
    def test_tile_rows_from_accum_buffer(self):
        # 128 KiB accumulation part / (128 cols * 4 B) = 256 rows
        assert DEFAULT_CONFIG.tile_rows == 256

    def test_pe_count(self):
        assert DEFAULT_CONFIG.pe_count == 128 * 128

    def test_peak_macs(self):
        assert DEFAULT_CONFIG.peak_macs_per_s == pytest.approx(
            128 * 128 * 0.7e9
        )

    def test_core_bandwidth_is_half_chip(self):
        assert DEFAULT_CONFIG.core_bandwidth == HBM2.bandwidth_bytes_per_s / 2

    def test_with_memory_by_name(self):
        cfg = DEFAULT_CONFIG.with_memory("LPDDR4")
        assert cfg.memory is LPDDR4
        assert DEFAULT_CONFIG.memory is HBM2  # frozen original untouched

    def test_with_buffer(self):
        cfg = DEFAULT_CONFIG.with_buffer(5 * MIB)
        assert cfg.global_buffer_bytes == 5 * MIB

    def test_with_double_buffer(self):
        assert not DEFAULT_CONFIG.with_double_buffer(False).weight_double_buffer


class TestConfigForPolicy:
    def test_baseline_lacks_double_buffering(self):
        assert not config_for_policy("baseline").weight_double_buffer
        assert not BASELINE_CONFIG.weight_double_buffer

    @pytest.mark.parametrize("policy", ["archopt", "il", "mbs-fs", "mbs1",
                                        "mbs2"])
    def test_others_have_double_buffering(self, policy):
        assert config_for_policy(policy).weight_double_buffer

    def test_memory_and_buffer_overrides(self):
        cfg = config_for_policy("mbs2", memory="GDDR5", buffer_bytes=5 * MIB)
        assert cfg.memory is GDDR5
        assert cfg.global_buffer_bytes == 5 * MIB
