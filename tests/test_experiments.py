"""Experiment drivers produce well-formed artifacts (cheap checks).

The expensive paper-shape assertions live in test_paper_claims.py; here
we verify each driver runs and returns the structure its figure needs.
"""
import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    ablation_grouping,
    fig03_footprint,
    fig04_grouping,
    fig11_buffer_sweep,
    fig12_memory_types,
    fig13_gpu_comparison,
    fig14_utilization,
    headline,
    latency_sweep,
    tab02_area,
)


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {
        "fig3", "fig4", "fig6", "fig10", "fig11", "fig12", "fig13",
        "fig14", "tab2", "ablation", "precision", "headline", "scaling",
        "latency_sweep", "energy_sweep",
    }


def test_modules_register_specs():
    """Every driver module registers a matching runtime spec."""
    from repro.runtime import get_spec

    for name, module in ALL_EXPERIMENTS.items():
        spec = get_spec(name)
        assert spec.produce is module.run
        assert spec.render is module.render
        assert spec.module == module.__name__


class TestFig3:
    def test_sorted_descending(self):
        res = fig03_footprint.run()
        sizes = [s.inter_layer_bytes for s in res["layers"]]
        assert sizes == sorted(sizes, reverse=True)

    def test_reusable_fraction_small(self):
        res = fig03_footprint.run()
        assert 0.0 < res["reusable_fraction"] < 0.15


class TestFig4:
    def test_groups_cover_blocks(self):
        res = fig04_grouping.run()
        covered = sorted(i for g in res["groups"] for i in g["blocks"])
        assert covered == list(range(len(res["blocks"])))

    def test_sequences_sum_to_mini_batch(self):
        res = fig04_grouping.run()
        for g in res["groups"]:
            assert sum(g["sequence"]) == res["mini_batch"]

    def test_iterations_shrink_with_depth(self):
        res = fig04_grouping.run()
        iters = [g["iterations"] for g in res["groups"]]
        assert iters == sorted(iters, reverse=True)


class TestFig11:
    def test_reference_cell_is_one(self):
        res = fig11_buffer_sweep.run()
        assert res["normalized"][("il", 5)]["time"] == pytest.approx(1.0)
        assert res["normalized"][("il", 5)]["traffic"] == pytest.approx(1.0)


class TestFig12:
    def test_kind_breakdown_sums(self):
        res = fig12_memory_types.run()
        for cell in res["cells"].values():
            assert sum(cell["by_kind"].values()) == pytest.approx(
                cell["time_s"]
            )


class TestFig13:
    def test_speedups_defined_for_all_memories(self):
        res = fig13_gpu_comparison.run(networks=("resnet50",))
        row = res["rows"]["resnet50"]
        assert set(row["speedup"]) == {"HBM2x2", "HBM2", "GDDR5", "LPDDR4"}
        assert row["v100_s"] > 0


class TestFig14:
    def test_average_consistent(self):
        res = fig14_utilization.run(networks=("resnet50", "alexnet"))
        for policy, avg in res["average"].items():
            grid_avg = (
                res["grid"]["resnet50"][policy]
                + res["grid"]["alexnet"][policy]
            ) / 2
            assert avg == pytest.approx(grid_avg)


class TestTab2:
    def test_paper_values(self):
        res = tab02_area.run()
        assert res["area"].total_mm2 == pytest.approx(534.0, abs=1.0)
        assert res["tops_fp16"] == pytest.approx(45.9, abs=1.0)
        assert res["buffer_mib"] == 20.0


class TestAblation:
    def test_gap_small_and_nonnegative(self):
        res = ablation_grouping.run(networks=("resnet50",))
        for policy_res in res["rows"]["resnet50"].values():
            assert policy_res["optimal"] <= policy_res["greedy"]
            assert 0.0 <= policy_res["gap"] < 0.05


class TestHeadline:
    def test_averages_present(self):
        res = headline.run(networks=("resnet50",))
        avg = res["average"]
        assert set(avg) == {
            "traffic_saving", "traffic_cut_x", "speedup_vs_baseline",
            "perf_improvement", "energy_saving",
            "auto_traffic_cut_x", "auto_vs_mbs2_x",
            "auto_lat_speedup_x", "auto_lat_time_gain_x",
            "auto_en_saving", "auto_en_vs_mbs2_x",
        }

    def test_energy_objective_never_worse_than_mbs2(self):
        res = headline.run(networks=("resnet50",))
        v = res["per_network"]["resnet50"]
        assert v["auto_en_vs_mbs2_x"] >= 1.0 - 1e-12
        assert v["auto_en_saving"] >= v["energy_saving"] - 1e-12

    def test_latency_objective_never_slower_than_byte_objective(self):
        res = headline.run(networks=("resnet50",))
        v = res["per_network"]["resnet50"]
        assert v["auto_lat_time_gain_x"] >= 1.0 - 1e-12
        assert v["auto_lat_speedup_x"] >= v["speedup_vs_baseline"] - 1e-12


class TestLatencySweep:
    def test_cells_cover_grid_and_divergence_bounds(self):
        res = latency_sweep.run("resnet50", buffers_mib=(1, 5))
        labels = set(latency_sweep.POLICY_SPECS)
        assert {k[0] for k in res["cells"]} == labels
        assert {k[1] for k in res["cells"]} == {1, 5}
        for buf in (1, 5):
            d = res["divergence"][buf]
            # the latency objective can only gain time, and pays bytes
            assert d["time_gain"] >= 1.0 - 1e-12
            assert d["traffic_cost"] >= 1.0 - 1e-12

    def test_latency_objective_rejects_unlimited_bandwidth(self):
        """The DP prices bandwidth-limited time; reporting under
        unlimited bandwidth would be a different metric entirely."""
        from repro.experiments.common import evaluate

        with pytest.raises(ValueError, match="unlimited_bandwidth"):
            evaluate("toy_chain", "mbs-auto", objective="latency",
                     unlimited_bandwidth=True)

    def test_latency_auto_is_fastest_policy_everywhere(self):
        res = latency_sweep.run("resnet50", buffers_mib=(1, 10))
        for buf in (1, 10):
            lat = res["cells"][("mbs-auto:lat", buf)]["time_s"]
            for label in ("mbs1", "mbs2", "mbs-auto"):
                assert lat <= res["cells"][(label, buf)]["time_s"] * (
                    1 + 1e-12
                ), (label, buf)

    def test_tiebreak_strips_bytes_never_adds_them(self):
        res = latency_sweep.run("resnet50", buffers_mib=(1, 10))
        for buf in (1, 10):
            d = res["divergence"][buf]
            assert d["tiebreak_bytes"] <= 1.0
            lat = res["cells"][("mbs-auto:lat", buf)]
            lex = res["cells"][("mbs-auto:lat+tra", buf)]
            assert lex["time_s"] == pytest.approx(lat["time_s"], rel=1e-12)


class TestEnergySweep:
    def test_cells_cover_grid_and_dominance_bounds(self):
        from repro.experiments import energy_sweep

        res = energy_sweep.run("resnet50", buffers_mib=(1, 5))
        labels = set(energy_sweep.POLICY_SPECS)
        assert {k[0] for k in res["cells"]} == labels
        assert {k[1] for k in res["cells"]} == {1, 5}
        for buf in (1, 5):
            # the energy objective can only gain joules vs every other
            # policy: its DP searches a superset of their partitions
            assert res["dominance"][buf]["energy_gain"] >= 1.0 - 1e-12

    def test_savings_relative_to_baseline(self):
        from repro.experiments import energy_sweep

        res = energy_sweep.run("resnet50", buffers_mib=(10,))
        base = res["cells"][("baseline", 10)]["energy_j"]
        for label in ("mbs2", "mbs-auto:en"):
            cell = res["cells"][(label, 10)]["energy_j"]
            assert res["savings"][(label, 10)] == pytest.approx(
                1.0 - cell / base
            )

    def test_energy_objective_rejects_unlimited_bandwidth(self):
        from repro.experiments.common import evaluate

        with pytest.raises(ValueError, match="unlimited_bandwidth"):
            evaluate("toy_chain", "mbs-auto", objective="energy",
                     unlimited_bandwidth=True)


class TestRunnerCli:
    def test_unknown_artifact(self, capsys):
        from repro.experiments.runner import main
        assert main(["nope"]) == 2

    def test_help(self, capsys):
        from repro.experiments.runner import main
        assert main([]) == 0
        assert "Artifacts" in capsys.readouterr().out

    def test_dispatch_fig3(self, capsys):
        from repro.experiments.runner import main
        assert main(["fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out
