"""ExperimentSpec parameter resolution, registry, and grid expansion."""
import pytest

from repro.runtime import ExperimentSpec, expand_grid, get_spec, register
from repro.runtime import spec as spec_mod


def produce_demo(x=1, y="a", flag=True):
    return {"x": x, "y": y, "flag": flag}


def make_spec(**kw):
    defaults = dict(name="demo", title="demo spec", produce=produce_demo)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


class TestResolveParams:
    def test_signature_defaults_become_explicit(self):
        assert make_spec().resolve_params() == {
            "x": 1, "y": "a", "flag": True
        }

    def test_layering(self):
        spec = make_spec(defaults={"x": 5}, quick={"y": "q"})
        assert spec.resolve_params() == {"x": 5, "y": "a", "flag": True}
        assert spec.resolve_params(quick=True)["y"] == "q"
        assert spec.resolve_params({"y": "z"}, quick=True)["y"] == "z"

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            make_spec().resolve_params({"nope": 1})

    def test_resolution_never_mutates_spec(self):
        spec = make_spec(defaults={"x": 5})
        spec.resolve_params({"x": 9})
        assert spec.resolve_params()["x"] == 5


class TestRegistry:
    def test_reregister_same_module_is_idempotent(self):
        register(make_spec(name="demo_idem"))
        register(make_spec(name="demo_idem", defaults={"x": 2}))
        assert get_spec("demo_idem").defaults == {"x": 2}

    def test_conflicting_module_rejected(self):
        register(make_spec(name="demo_conflict"))
        foreign = ExperimentSpec(
            name="demo_conflict", title="imposter", produce=print
        )
        with pytest.raises(ValueError, match="already registered"):
            register(foreign)

    def test_unknown_lookup_names_candidates(self):
        with pytest.raises(KeyError, match="registered:"):
            get_spec("never_registered")

    def test_real_specs_are_registered(self):
        import repro.experiments  # noqa: F401  (triggers registration)

        names = spec_mod.spec_names()
        for expected in ("fig3", "fig10", "tab2", "headline"):
            assert expected in names

    def test_artifact_schema_check(self):
        spec = make_spec(artifact=("x", "missing"))
        assert spec.missing_artifact_keys({"x": 1}) == ["missing"]


class TestExpandGrid:
    def test_empty_axes_single_point(self):
        assert expand_grid({}) == [{}]

    def test_cartesian_product_in_order(self):
        grid = expand_grid({"a": (1, 2), "b": ("x", "y")})
        assert grid == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_order_is_deterministic_across_calls(self):
        axes = {"m": (16, 32, 64), "p": ("mbs1", "mbs2")}
        assert expand_grid(axes) == expand_grid(dict(axes))
