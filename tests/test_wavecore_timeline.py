"""Group execution timelines."""
import pytest

from repro.core.policies import make_schedule
from repro.wavecore.config import config_for_policy
from repro.wavecore.simulator import simulate_step
from repro.wavecore.timeline import build_timeline, render_timeline


@pytest.fixture(scope="module")
def rn50():
    from repro.zoo import resnet50
    return resnet50()


@pytest.fixture(scope="module")
def timeline(rn50):
    sched = make_schedule(rn50, "mbs2")
    return sched, build_timeline(rn50, sched)


def test_total_matches_simulated_step(rn50, timeline):
    sched, segments = timeline
    rep = simulate_step(rn50, sched, config_for_policy("mbs2"))
    assert segments[-1].end_s == pytest.approx(rep.time_s)


def test_segment_count(rn50, timeline):
    sched, segments = timeline
    assert len(segments) == 2 * len(sched.groups)


def test_contiguous_and_ordered(timeline):
    _, segments = timeline
    for prev, cur in zip(segments, segments[1:]):
        assert cur.start_s == pytest.approx(prev.end_s)
        assert cur.duration_s >= 0


def test_backward_reverses_group_order(timeline):
    sched, segments = timeline
    g = len(sched.groups)
    fwd = [s.group_index for s in segments[:g]]
    bwd = [s.group_index for s in segments[g:]]
    assert fwd == list(range(g))
    assert bwd == list(reversed(range(g)))


def test_backward_dominates(timeline):
    _, segments = timeline
    fwd = sum(s.duration_s for s in segments if s.phase == "forward")
    bwd = sum(s.duration_s for s in segments if s.phase == "backward")
    assert bwd > fwd  # two GEMMs per conv in backward


def test_render(timeline):
    _, segments = timeline
    text = render_timeline(segments)
    assert "training step timeline" in text
    assert text.count("\n") == len(segments)
    assert "G1 for" in text


def test_render_empty():
    assert "empty" in render_timeline([])
