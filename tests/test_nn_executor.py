"""The paper's central numerical claim: MBS serialization is exact w/ GN."""
import numpy as np
import pytest

from repro.graph.layers import NormKind
from repro.nn.executor import compute_gradients, evaluate, mbs_gradients
from repro.nn.model import NetworkModel
from repro.zoo import toy_chain, toy_inception, toy_residual


def data(rng, n=10, classes=8):
    return rng.normal(size=(n, 3, 32, 32)), rng.integers(0, classes, n)


@pytest.mark.parametrize("builder", [toy_chain, toy_residual, toy_inception])
@pytest.mark.parametrize("sub_batch", [1, 3, 4, 10])
def test_gn_mbs_matches_full_batch(builder, sub_batch, rng):
    net = builder(norm=NormKind.GROUP)
    x, y = data(rng)
    full = NetworkModel(net, seed=3)
    mbs = NetworkModel(net, seed=3)
    full.zero_grads()
    s_full = compute_gradients(full, x, y)
    mbs.zero_grads()
    s_mbs = mbs_gradients(mbs, x, y, sub_batch)
    np.testing.assert_allclose(
        full.gradient_vector(), mbs.gradient_vector(), atol=1e-12
    )
    assert s_full.loss_sum == pytest.approx(s_mbs.loss_sum)
    assert s_full.correct == s_mbs.correct


@pytest.mark.parametrize("builder", [toy_chain, toy_residual])
def test_bn_mbs_diverges(builder, rng):
    net = builder(norm=NormKind.BATCH)
    x, y = data(rng)
    full = NetworkModel(net, seed=3)
    mbs = NetworkModel(net, seed=3)
    full.zero_grads()
    compute_gradients(full, x, y)
    mbs.zero_grads()
    mbs_gradients(mbs, x, y, sub_batch=4)
    diff = np.max(np.abs(full.gradient_vector() - mbs.gradient_vector()))
    assert diff > 1e-4


def test_unnormalized_network_also_exact(rng):
    """Without norm layers MBS is trivially exact too."""
    net = toy_chain(norm=None)
    x, y = data(rng)
    full = NetworkModel(net, seed=3)
    mbs = NetworkModel(net, seed=3)
    full.zero_grads()
    compute_gradients(full, x, y)
    mbs.zero_grads()
    mbs_gradients(mbs, x, y, sub_batch=3)
    np.testing.assert_allclose(
        full.gradient_vector(), mbs.gradient_vector(), atol=1e-12
    )


def test_mbs_stats_cover_all_samples(rng):
    net = toy_chain()
    x, y = data(rng, n=11)
    model = NetworkModel(net, seed=0)
    model.zero_grads()
    stats = mbs_gradients(model, x, y, sub_batch=4)  # 4+4+3
    assert stats.samples == 11
    assert 0 <= stats.correct <= 11
    assert stats.loss_mean == pytest.approx(stats.loss_sum / 11)


def test_evaluate_batches_consistently(rng):
    net = toy_chain()
    model = NetworkModel(net, seed=0)
    x, y = data(rng, n=20)
    small = evaluate(model, x, y, batch=3)
    large = evaluate(model, x, y, batch=20)
    assert small.correct == large.correct
    assert small.loss_sum == pytest.approx(large.loss_sum)
    assert 0.0 <= small.accuracy <= 1.0
