"""Checkpoint save/load roundtrips."""
import numpy as np
import pytest

from repro.nn.model import NetworkModel
from repro.nn.serialize import (
    load_state_dict,
    load_weights,
    save_weights,
    state_dict,
)
from repro.zoo import toy_inception, toy_residual


def test_state_dict_covers_all_params(residual_net):
    model = NetworkModel(residual_net, seed=0)
    state = state_dict(model)
    assert sum(v.size for v in state.values()) == residual_net.param_count


def test_roundtrip_preserves_outputs(tmp_path, rng):
    net = toy_residual()
    src = NetworkModel(net, seed=1)
    dst = NetworkModel(net, seed=2)  # different init
    x = rng.normal(size=(2, 3, 32, 32))
    assert not np.allclose(src.forward(x), dst.forward(x))
    path = str(tmp_path / "ckpt.npz")
    save_weights(src, path)
    load_weights(dst, path)
    np.testing.assert_array_equal(src.forward(x), dst.forward(x))


def test_state_dict_copies_are_independent(residual_net):
    model = NetworkModel(residual_net, seed=0)
    state = state_dict(model)
    name = next(iter(state))
    state[name] += 100.0
    fresh = state_dict(model)
    assert not np.allclose(state[name], fresh[name])


def test_missing_keys_rejected(residual_net):
    model = NetworkModel(residual_net, seed=0)
    state = state_dict(model)
    state.pop(next(iter(state)))
    with pytest.raises(ValueError, match="state mismatch"):
        load_state_dict(model, state)


def test_extra_keys_rejected(residual_net):
    model = NetworkModel(residual_net, seed=0)
    state = state_dict(model)
    state["phantom.w"] = np.zeros(3)
    with pytest.raises(ValueError, match="state mismatch"):
        load_state_dict(model, state)


def test_shape_mismatch_rejected(residual_net):
    model = NetworkModel(residual_net, seed=0)
    state = state_dict(model)
    name = next(iter(state))
    state[name] = np.zeros((1, 1))
    with pytest.raises(ValueError, match="shape mismatch"):
        load_state_dict(model, state)


def test_cross_architecture_rejected(tmp_path):
    res = NetworkModel(toy_residual(), seed=0)
    inc = NetworkModel(toy_inception(), seed=0)
    path = str(tmp_path / "ckpt.npz")
    save_weights(res, path)
    with pytest.raises(ValueError):
        load_weights(inc, path)
