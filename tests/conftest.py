"""Shared fixtures: networks are expensive to build, so cache per session.

Every test also gets an isolated runtime result cache (via
``$MBS_REPRO_CACHE``) so nothing writes ``.mbs-cache`` into the repo and
no cached artifact leaks between tests.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.zoo import (
    alexnet,
    inception_v3,
    inception_v4,
    resnet50,
    resnet101,
    resnet152,
    toy_chain,
    toy_inception,
    toy_residual,
)


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("MBS_REPRO_CACHE", str(tmp_path / "mbs-cache"))


@pytest.fixture(scope="session")
def rn50():
    return resnet50()


@pytest.fixture(scope="session")
def rn101():
    return resnet101()


@pytest.fixture(scope="session")
def rn152():
    return resnet152()


@pytest.fixture(scope="session")
def incv3():
    return inception_v3()


@pytest.fixture(scope="session")
def incv4():
    return inception_v4()


@pytest.fixture(scope="session")
def alex():
    return alexnet()


@pytest.fixture()
def chain_net():
    return toy_chain()


@pytest.fixture()
def residual_net():
    return toy_residual()


@pytest.fixture()
def inception_net():
    return toy_inception()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
