"""Operational occupancy simulation vs the analytic Eq. 1/2 provision."""
import pytest

from repro.core.footprint import block_space_per_sample
from repro.core.occupancy import (
    BufferSim,
    peak_occupancy,
    simulate_block_occupancy,
    validate_schedule_occupancy,
)
from repro.core.policies import make_schedule
from repro.types import MIB
from repro.zoo import toy_chain, toy_inception, toy_residual


class TestBufferSim:
    def test_alloc_free_peak(self):
        sim = BufferSim()
        sim.alloc("a", 100)
        sim.alloc("b", 50)
        sim.free("a")
        sim.alloc("c", 20)
        assert sim.peak == 150
        assert sim.occupancy == 70

    def test_double_alloc_rejected(self):
        sim = BufferSim()
        sim.alloc("a", 1)
        with pytest.raises(RuntimeError, match="double"):
            sim.alloc("a", 1)

    def test_free_unknown_rejected(self):
        with pytest.raises(RuntimeError, match="unknown"):
            BufferSim().free("x")

    def test_rename_preserves_bytes(self):
        sim = BufferSim()
        sim.alloc("a", 42)
        sim.rename("a", "b")
        assert sim.live == {"b": 42}


@pytest.mark.parametrize("sub_batch", [1, 2, 5])
@pytest.mark.parametrize("branch_reuse", [True, False])
@pytest.mark.parametrize("builder", [toy_chain, toy_residual, toy_inception])
def test_analytic_provision_bounds_executed_peak(builder, branch_reuse,
                                                 sub_batch):
    """Eq. 1/2 provisioning is a safe upper bound for every block."""
    net = builder()
    for block in net.blocks:
        provision = block_space_per_sample(block, branch_reuse) * sub_batch
        peak = peak_occupancy(block, sub_batch, branch_reuse)
        assert peak <= provision, block.name


@pytest.mark.parametrize(
    "fixture", ["rn50", "incv3", "alex"]
)
def test_zoo_blocks_bounded(fixture, request):
    net = request.getfixturevalue(fixture)
    for block in net.blocks:
        for branch_reuse in (True, False):
            provision = block_space_per_sample(block, branch_reuse) * 2
            assert peak_occupancy(block, 2, branch_reuse) <= provision


def test_peak_scales_linearly_with_sub_batch(rn50):
    block = rn50.block_named("conv3_1")
    p1 = peak_occupancy(block, 1)
    p4 = peak_occupancy(block, 4)
    assert p4 == 4 * p1


def test_provision_tight_for_chains(chain_net):
    """For plain chains the analytic space equals the executed peak."""
    for block in chain_net.blocks:
        assert peak_occupancy(block, 3) == pytest.approx(
            block_space_per_sample(block, True) * 3, rel=0.35
        )


def test_branch_reuse_costs_buffer(rn50):
    block = rn50.block_named("conv2_1")
    assert peak_occupancy(block, 2, True) > peak_occupancy(block, 2, False)


def test_trace_balances(residual_net):
    """Every alloc is eventually freed except the block output."""
    for block in residual_net.blocks:
        sim = simulate_block_occupancy(block, 2, True)
        assert len(sim.live) == 1  # exactly the block output remains


class TestScheduleValidation:
    @pytest.mark.parametrize("policy", ["mbs-fs", "mbs1", "mbs2"])
    def test_mbs_schedules_fit(self, rn50, policy):
        sched = make_schedule(rn50, policy, buffer_bytes=10 * MIB)
        assert validate_schedule_occupancy(rn50, sched) == []

    def test_all_zoo_schedules_fit(self, incv3, incv4, alex):
        for net in (incv3, incv4, alex):
            for policy in ("mbs1", "mbs2"):
                for buf in (5, 10, 20):
                    sched = make_schedule(net, policy, buffer_bytes=buf * MIB)
                    assert validate_schedule_occupancy(net, sched) == [], \
                        (net.name, policy, buf)

    def test_violation_detected_for_oversized_claim(self, rn50):
        """Hand-build an infeasible schedule and confirm detection."""
        from repro.core.schedule import GroupPlan, Schedule

        groups = [
            GroupPlan(blocks=(i,), sub_batch=32, iterations=1,
                      block_fused=(True,))
            for i in range(len(rn50.blocks))
        ]
        bad = Schedule(
            policy="mbs2", network=rn50.name, mini_batch=32,
            buffer_bytes=1 * MIB, branch_reuse=True, relu_mask=True,
            groups=tuple(groups),
        )
        assert validate_schedule_occupancy(rn50, bad)
