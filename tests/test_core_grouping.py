"""Unit and property tests for layer grouping and segment splitting."""
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import ProxyCostModel
from repro.core.grouping import (
    GroupingProblem,
    adaptive_grouping,
    exhaustive_grouping,
    greedy_grouping,
    initial_grouping,
    split_segments,
)


def make_problem(feasible, weights=None, outs=None, n=32):
    k = len(feasible)
    model = ProxyCostModel(
        weight_bytes=tuple(weights or [1000] * k),
        out_bytes=tuple(outs or [500] * k),
        mini_batch=n,
    )
    return GroupingProblem(
        feasible=tuple(feasible), mini_batch=n, cost_model=model
    )


class TestSplitSegments:
    def test_all_fusable_is_one_segment(self):
        assert split_segments([4, 2, 8]) == [(0, 2)]

    def test_unfusable_block_splits_and_is_isolated(self):
        assert split_segments([4, 0, 8, 2]) == [(0, 0), 1, (2, 3)]

    def test_unfusable_edges(self):
        assert split_segments([0, 4, 0]) == [0, (1, 1), 2]

    def test_adjacent_unfusable_blocks(self):
        assert split_segments([2, 0, 0, 3]) == [(0, 0), 1, 2, (3, 3)]

    def test_nothing_fusable(self):
        assert split_segments([0, 0]) == [0, 1]

    def test_empty(self):
        assert split_segments([]) == []


class TestProblem:
    def test_length_mismatch_raises(self):
        model = ProxyCostModel((1,), (1,), 32)
        with pytest.raises(ValueError):
            GroupingProblem(
                feasible=(1, 2), mini_batch=32, cost_model=model,
                blocks=(0,),
            )

    def test_zero_feasible_raises(self):
        with pytest.raises(ValueError):
            make_problem([2, 0, 4])

    def test_iterations_uses_group_min(self):
        p = make_problem([2, 8, 16])
        assert p.iterations(0, 2) == 16
        assert p.iterations(1, 2) == 4
        assert p.iterations(2, 2) == 2

    def test_group_cost_formula(self):
        p = make_problem([4], weights=[100])
        # iterations = 8 → weights stream (4*8 - 1) times
        assert p.group_cost(0, 0) == 100 * 31

    def test_boundary_cost_skips_network_output(self):
        p = make_problem([4, 4])
        assert p.boundary_cost(1) == 0.0
        assert p.boundary_cost(0) == 3.0 * 32 * 500

    def test_window_blocks_index_the_model_absolutely(self):
        """A problem over a mid-network window must price the window's
        own blocks, not blocks 0..n-1."""
        model = ProxyCostModel(
            weight_bytes=(10**9, 100, 200), out_bytes=(10**9, 7, 11),
            mini_batch=32,
        )
        p = GroupingProblem(
            feasible=(4, 4), mini_batch=32, cost_model=model, blocks=(1, 2)
        )
        assert p.group_cost(0, 1) == (100 + 200) * 31
        assert p.boundary_cost(0) == 3.0 * 32 * 7


class TestInitialGrouping:
    def test_groups_equal_iteration_runs(self):
        p = make_problem([2, 2, 4, 4, 4, 16])
        assert initial_grouping(p) == [(0, 1), (2, 4), (5, 5)]

    def test_single_group_when_uniform(self):
        p = make_problem([4, 4, 4])
        assert initial_grouping(p) == [(0, 2)]

    def test_equal_iterations_despite_different_feasible(self):
        # ceil(32/20)=2 and ceil(32/16)=2 → same run
        p = make_problem([20, 16])
        assert initial_grouping(p) == [(0, 1)]


def _valid_partition(groups, n):
    covered = [i for s, e in groups for i in range(s, e + 1)]
    return covered == list(range(n))


class TestGreedy:
    def test_partition_valid(self):
        p = make_problem([2, 3, 8, 8, 30], weights=[10, 20, 5000, 80, 10])
        groups = greedy_grouping(p)
        assert _valid_partition(groups, 5)

    def test_merges_when_boundary_dominates(self):
        # tiny weights, huge boundary tensors → merge everything
        p = make_problem([2, 4, 8], weights=[1, 1, 1],
                         outs=[10**6] * 3)
        assert greedy_grouping(p) == [(0, 2)]

    def test_keeps_groups_when_weights_dominate(self):
        # huge weights, tiny boundaries → never merge across iteration gaps
        p = make_problem([2, 32], weights=[10**9, 10**9], outs=[1, 1])
        assert greedy_grouping(p) == [(0, 0), (1, 1)]

    def test_never_worse_than_initial(self):
        p = make_problem([2, 3, 5, 8, 13, 30],
                         weights=[50, 400, 300, 2000, 7000, 90000],
                         outs=[4000, 3000, 2000, 1500, 800, 100])
        assert p.partition_cost(greedy_grouping(p)) <= \
            p.partition_cost(initial_grouping(p))


class TestExhaustive:
    def test_partition_valid(self):
        p = make_problem([2, 3, 8], weights=[10, 2000, 30])
        assert _valid_partition(exhaustive_grouping(p), 3)

    def test_optimal_beats_greedy(self):
        p = make_problem([2, 3, 5, 8, 13, 30],
                         weights=[50, 400, 300, 2000, 7000, 90000],
                         outs=[4000, 3000, 2000, 1500, 800, 100])
        assert p.partition_cost(exhaustive_grouping(p)) <= \
            p.partition_cost(greedy_grouping(p))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 32),          # feasible
                st.integers(0, 10**6),       # weight bytes
                st.integers(1, 10**5),       # out bytes
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_optimality_property(self, spec):
        feas, w, o = zip(*spec)
        p = make_problem(list(feas), list(w), list(o))
        best = p.partition_cost(exhaustive_grouping(p))
        assert best <= p.partition_cost(greedy_grouping(p)) + 1e-9
        assert best <= p.partition_cost(initial_grouping(p)) + 1e-9
        # also no worse than all-singletons and one-big-group
        n = len(spec)
        assert best <= p.partition_cost([(i, i) for i in range(n)]) + 1e-9
        assert best <= p.partition_cost([(0, n - 1)]) + 1e-9


class TestAdaptive:
    def test_rejects_misaligned_arrays(self):
        model = ProxyCostModel((1, 1), (1, 1), 32)
        with pytest.raises(ValueError):
            adaptive_grouping((0, 1), (1,), (1, 1), 32, model)

    def test_rejects_unfusable_window_block(self):
        model = ProxyCostModel((1, 1), (1, 1), 32)
        with pytest.raises(ValueError):
            adaptive_grouping((0, 1), (1, 1), (1, 0), 32, model)

    def test_partition_covers_window(self):
        model = ProxyCostModel(
            weight_bytes=(10, 20, 5000, 80), out_bytes=(500,) * 4,
            mini_batch=32,
        )
        groups = adaptive_grouping(
            (0, 1, 2, 3), (0, 2, 4, 8), (1, 4, 8, 16), 32, model
        )
        covered = [i for g in groups for i in range(g.start, g.end + 1)]
        assert covered == [0, 1, 2, 3]
        for g in groups:
            assert (g.sub_batch == 0) == (g.branch_reuse is None)

    def test_reuse_group_never_includes_reuse_infeasible_block(self):
        model = ProxyCostModel((100,) * 3, (500,) * 3, 32)
        groups = adaptive_grouping(
            (0, 1, 2), (2, 0, 2), (4, 4, 4), 32, model
        )
        for g in groups:
            if g.branch_reuse:
                assert all(i != 1 for i in range(g.start, g.end + 1))


def test_resnet50_greedy_gap_small(rn50):
    """Paper footnote 1: exhaustive beats greedy by only ~1%."""
    from repro.core.policies import make_schedule
    from repro.core.traffic import compute_traffic

    greedy = compute_traffic(rn50, make_schedule(rn50, "mbs2")).total_bytes
    optimal = compute_traffic(rn50, make_schedule(rn50, "mbs2-opt")).total_bytes
    assert optimal <= greedy
    assert greedy / optimal - 1.0 < 0.05
