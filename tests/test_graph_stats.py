"""Unit tests for footprint statistics (Fig. 3 raw material)."""
from repro.graph.stats import block_stats, layer_stats, reusable_fraction
from repro.types import MIB


def test_layer_stats_scale_with_batch(chain_net):
    s16 = layer_stats(chain_net, mini_batch=16)
    s32 = layer_stats(chain_net, mini_batch=32)
    for a, b in zip(s16, s32):
        assert b.inter_layer_bytes == 2 * a.inter_layer_bytes
        assert b.param_bytes == a.param_bytes  # params batch-independent
        assert b.macs == 2 * a.macs


def test_layer_stats_default_batch(chain_net):
    default = layer_stats(chain_net)
    explicit = layer_stats(chain_net, chain_net.default_mini_batch)
    assert default == explicit


def test_layer_stats_inter_layer_is_in_plus_out(chain_net):
    stats = layer_stats(chain_net, mini_batch=1)
    layers = chain_net.all_layers()
    for stat, layer in zip(stats, layers):
        assert stat.inter_layer_bytes == (
            layer.in_shape.bytes() + layer.out_shape.bytes()
        )


def test_block_stats_fields(residual_net):
    stats = block_stats(residual_net)
    assert len(stats) == len(residual_net.blocks)
    res = [s for s in stats if s.is_module]
    assert len(res) == 2  # the two residual blocks


def test_reusable_fraction_monotone_in_buffer(rn50):
    fractions = [
        reusable_fraction(rn50, b * MIB) for b in (1, 5, 10, 40, 400)
    ]
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert fractions == sorted(fractions)


def test_reusable_fraction_paper_claim(rn50):
    """Sec. 2: only a small share of ResNet-50 inter-layer data fits in
    10 MiB at N=32 (paper: 9.3%; our in+out accounting gives ~5.5%)."""
    frac = reusable_fraction(rn50, 10 * MIB, mini_batch=32)
    assert frac < 0.15


def test_reusable_fraction_everything_fits_with_huge_buffer(chain_net):
    assert reusable_fraction(chain_net, 10**12) == 1.0
