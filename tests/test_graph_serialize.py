"""Wire-schema round trips and malformed-input errors."""

import json

import pytest

from repro.graph.serialize import (
    SCHEMA_VERSION,
    GraphSchemaError,
    dumps_network,
    loads_network,
    network_fingerprint,
    network_to_dict,
)
from repro.zoo import build

ZOO = (
    "toy_chain", "toy_residual", "toy_inception",
    "alexnet", "resnet18", "resnet34", "resnet50", "resnet101",
    "resnet152", "inception_v3", "inception_v4",
)


@pytest.mark.parametrize("name", ZOO)
def test_round_trip_every_zoo_network(name):
    net = build(name)
    clone = loads_network(dumps_network(net))
    assert clone == net
    assert clone.name == net.name
    assert clone.default_mini_batch == net.default_mini_batch
    assert network_fingerprint(clone) == network_fingerprint(net)


def test_envelope_is_versioned():
    wire = network_to_dict(build("toy_chain"))
    assert wire["schema"] == SCHEMA_VERSION
    assert wire["in_shape"] == [3, 32, 32]
    assert isinstance(wire["blocks"], list)


def test_dumps_is_deterministic():
    net = build("toy_residual")
    assert dumps_network(net) == dumps_network(build("toy_residual"))


def test_fingerprint_distinguishes_networks():
    assert network_fingerprint(build("toy_chain")) != network_fingerprint(
        build("toy_residual")
    )


def test_fingerprint_tracks_content_not_name():
    """Renaming alone changes the fingerprint (the name is content)."""
    import dataclasses

    net = build("toy_chain")
    renamed = dataclasses.replace(net, name="other")
    assert network_fingerprint(net) != network_fingerprint(renamed)


class TestMalformed:
    def _wire(self):
        return network_to_dict(build("toy_inception"))

    def test_not_json(self):
        with pytest.raises(GraphSchemaError, match="not valid JSON"):
            loads_network("{nope")

    def test_not_an_object(self):
        with pytest.raises(GraphSchemaError, match="expected a JSON object"):
            loads_network("[1, 2]")

    def test_missing_schema(self):
        wire = self._wire()
        del wire["schema"]
        with pytest.raises(GraphSchemaError, match="missing required key"):
            loads_network(json.dumps(wire))

    def test_wrong_schema_version(self):
        wire = self._wire()
        wire["schema"] = 99
        with pytest.raises(GraphSchemaError, match="unsupported version"):
            loads_network(json.dumps(wire))

    def test_unknown_layer_kind(self):
        wire = self._wire()
        wire["blocks"][0]["branches"][0]["layers"][0]["kind"] = "lstm"
        with pytest.raises(GraphSchemaError,
                           match=r"blocks\[0\].*unknown layer kind 'lstm'"):
            loads_network(json.dumps(wire))

    def test_bad_shape_arity(self):
        wire = self._wire()
        wire["in_shape"] = [3, 32]
        with pytest.raises(GraphSchemaError, match=r"\$\.in_shape"):
            loads_network(json.dumps(wire))

    def test_nonpositive_dim(self):
        wire = self._wire()
        wire["in_shape"] = [0, 32, 32]
        with pytest.raises(GraphSchemaError, match="positive"):
            loads_network(json.dumps(wire))

    def test_miswired_shapes_rejected(self):
        wire = self._wire()
        # break shape flow: second block claims a different input
        wire["blocks"][1]["in_shape"] = [7, 5, 5]
        with pytest.raises(GraphSchemaError):
            loads_network(json.dumps(wire))

    def test_bad_merge_kind(self):
        wire = self._wire()
        wire["blocks"][1]["merge"] = "stack"
        with pytest.raises(GraphSchemaError,
                           match=r"blocks\[1\]\.merge"):
            loads_network(json.dumps(wire))

    def test_bad_conv_channels(self):
        wire = self._wire()
        wire["blocks"][0]["branches"][0]["layers"][0]["out_channels"] = -4
        with pytest.raises(GraphSchemaError, match="out_channels"):
            loads_network(json.dumps(wire))

    def test_missing_blocks(self):
        wire = self._wire()
        del wire["blocks"]
        with pytest.raises(GraphSchemaError, match="missing required key"):
            loads_network(json.dumps(wire))

    def test_bool_is_not_an_int(self):
        wire = self._wire()
        wire["default_mini_batch"] = True
        with pytest.raises(GraphSchemaError, match="expected an integer"):
            loads_network(json.dumps(wire))
