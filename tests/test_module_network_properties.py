"""Property tests over randomly generated multi-branch networks.

Generates small residual/inception-style networks with random widths and
depths, then checks the invariants that must hold for *any* network:
policy orderings, occupancy bounds, schedule feasibility, and MBS
gradient equivalence on a sampled subset.
"""
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.footprint import block_space_per_sample
from repro.core.occupancy import peak_occupancy, validate_schedule_occupancy
from repro.core.policies import make_schedule
from repro.core.traffic import compute_traffic
from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import Activation, NormKind
from repro.graph.network import Network
from repro.types import KIB, Shape
from repro.zoo.common import ChainBuilder


@st.composite
def module_networks(draw):
    """Random stem + N modules (residual or inception) + head."""
    hw = draw(st.sampled_from([8, 16]))
    in_shape = Shape(draw(st.sampled_from([1, 3])), hw, hw)
    width = draw(st.sampled_from([4, 8, 12]))
    n_modules = draw(st.integers(1, 3))
    batch = draw(st.integers(2, 16))

    blocks = []
    stem = ChainBuilder(prefix="stem", shape=in_shape, norm=NormKind.GROUP)
    stem.cnr(width, 3, padding=1)
    blocks.append(chain_block("stem", in_shape, list(stem.take())))
    shape = stem.shape

    for mi in range(n_modules):
        kind = draw(st.sampled_from(["residual", "inception"]))
        name = f"mod{mi}"
        if kind == "residual":
            out_w = draw(st.sampled_from([width, width * 2]))
            main = ChainBuilder(prefix=f"{name}.main", shape=shape,
                                norm=NormKind.GROUP)
            main.cnr(out_w, 3, padding=1)
            main.cn(out_w, 3, padding=1)
            if out_w != shape.c:
                sc = ChainBuilder(prefix=f"{name}.sc", shape=shape,
                                  norm=NormKind.GROUP)
                sc.cn(out_w, 1)
                shortcut = Branch(sc.take())
            else:
                shortcut = Branch()
            block = Block(
                name=name, in_shape=shape,
                branches=(Branch(main.take()), shortcut),
                merge=MergeKind.ADD,
                post_merge=(Activation(name=f"{name}.relu",
                                       in_shape=main.shape),),
            )
        else:
            widths = [draw(st.sampled_from([2, 4, 6]))
                      for _ in range(draw(st.integers(2, 3)))]
            branches = []
            for bi, w in enumerate(widths):
                b = ChainBuilder(prefix=f"{name}.b{bi}", shape=shape,
                                 norm=NormKind.GROUP)
                b.cnr(w, 1)
                if draw(st.booleans()):
                    b.cnr(w, 3, padding=1)
                branches.append(Branch(b.take()))
            block = Block(name=name, in_shape=shape,
                          branches=tuple(branches),
                          merge=MergeKind.CONCAT)
        blocks.append(block)
        shape = block.out_shape

    head = ChainBuilder(prefix="head", shape=shape, norm=NormKind.GROUP)
    head.global_avg_pool()
    head.fc(4)
    blocks.append(chain_block("head", shape, list(head.take())))
    return Network("random_modules", in_shape, tuple(blocks),
                   default_mini_batch=batch)


@settings(max_examples=30, deadline=None)
@given(module_networks(), st.integers(16, 2048))
def test_policies_valid_and_consistent(net, buffer_kib):
    buf = buffer_kib * KIB
    scheds = {
        p: make_schedule(net, p, buffer_bytes=buf)
        for p in ("baseline", "il", "mbs1", "mbs2")
    }
    reps = {p: compute_traffic(net, s) for p, s in scheds.items()}
    assert reps["il"].total_bytes <= reps["baseline"].total_bytes
    for rep in reps.values():
        assert rep.total_bytes > 0
        assert rep.reads() + rep.writes() == rep.total_bytes
    # Inter-branch reuse wins *when its provisioning fits*: at very tight
    # buffers MBS2's bigger footprint can force smaller sub-batches, which
    # means more iterations — extra weight re-streaming and group-boundary
    # spills that can outweigh the branch-reuse saving even when every
    # block still fuses.  The paper's ordering claim applies to the regime
    # where MBS2's schedule is no more fragmented than MBS1's: fully
    # fused, at most as many groups, and per-block iteration counts that
    # do not exceed MBS1's.
    def iters_per_block(sched):
        return {
            b: g.iterations for g in sched.groups for b in g.blocks
        }

    mbs2_fused = all(
        sched_fused
        for g in scheds["mbs2"].groups for sched_fused in g.block_fused
    )
    i1 = iters_per_block(scheds["mbs1"])
    i2 = iters_per_block(scheds["mbs2"])
    paper_regime = (
        mbs2_fused
        and len(scheds["mbs2"].groups) <= len(scheds["mbs1"].groups)
        and all(i2[b] <= i1[b] for b in i2)
    )
    if paper_regime:
        assert reps["mbs2"].total_bytes <= reps["mbs1"].total_bytes


@settings(max_examples=25, deadline=None)
@given(module_networks(), st.integers(1, 8))
def test_occupancy_bounded_by_provision(net, sub_batch):
    for block in net.blocks:
        for branch_reuse in (True, False):
            provision = block_space_per_sample(block, branch_reuse) * sub_batch
            assert peak_occupancy(block, sub_batch, branch_reuse) <= provision


@settings(max_examples=25, deadline=None)
@given(module_networks(), st.integers(32, 4096))
def test_schedules_operationally_feasible(net, buffer_kib):
    for policy in ("mbs1", "mbs2"):
        sched = make_schedule(net, policy, buffer_bytes=buffer_kib * KIB)
        assert validate_schedule_occupancy(net, sched) == []


@settings(max_examples=6, deadline=None)
@given(module_networks(), st.integers(1, 5))
def test_mbs_gradient_equivalence_random_nets(net, sub_batch):
    """GN gradient equivalence holds for arbitrary module topologies."""
    from repro.nn import NetworkModel, compute_gradients, mbs_gradients

    rng = np.random.default_rng(42)
    n = min(net.default_mini_batch, 6)
    x = rng.normal(size=(n, net.in_shape.c, net.in_shape.h, net.in_shape.w))
    y = rng.integers(0, 4, n)
    full = NetworkModel(net, seed=1)
    mbs = NetworkModel(net, seed=1)
    full.zero_grads()
    compute_gradients(full, x, y)
    mbs.zero_grads()
    mbs_gradients(mbs, x, y, sub_batch)
    np.testing.assert_allclose(
        full.gradient_vector(), mbs.gradient_vector(), atol=1e-10
    )
