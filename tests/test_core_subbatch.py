"""Unit and property tests for sub-batch sizing."""
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.footprint import block_space_per_sample
from repro.core.subbatch import (
    feasible_sub_batch,
    iteration_count,
    per_block_sub_batches,
    sub_batch_sequence,
)
from repro.types import MIB


class TestFeasible:
    def test_monotone_in_buffer(self, rn50):
        block = rn50.blocks[2]
        sizes = [
            feasible_sub_batch(block, b * MIB, 32) for b in (1, 5, 10, 20, 40)
        ]
        assert sizes == sorted(sizes)

    def test_capped_at_mini_batch(self, chain_net):
        for block in chain_net.blocks:
            assert feasible_sub_batch(block, 10**12, 16) == 16

    def test_zero_when_nothing_fits(self, rn50):
        assert feasible_sub_batch(rn50.blocks[0], 1024, 32) == 0

    def test_zero_buffer(self, chain_net):
        assert feasible_sub_batch(chain_net.blocks[0], 0, 16) == 0

    def test_exact_division(self, rn50):
        block = rn50.blocks[2]
        space = block_space_per_sample(block, True)
        assert feasible_sub_batch(block, 3 * space, 32, True) == 3
        assert feasible_sub_batch(block, 3 * space - 1, 32, True) == 2

    def test_branch_reuse_shrinks_sub_batch(self, rn50):
        block = rn50.block_named("conv2_1")
        with_reuse = feasible_sub_batch(block, 10 * MIB, 32, True)
        without = feasible_sub_batch(block, 10 * MIB, 32, False)
        assert with_reuse <= without


class TestIterationCount:
    @pytest.mark.parametrize("n,s,expect", [
        (32, 3, 11), (32, 2, 16), (32, 32, 1), (32, 13, 3), (32, 0, 1),
    ])
    def test_values(self, n, s, expect):
        assert iteration_count(n, s) == expect


class TestSequence:
    def test_paper_example(self):
        # Fig. 5: 32 samples at sub-batch 3 → 3,3,3,3,3,3,3,3,3,3,2
        assert sub_batch_sequence(32, 3) == [3] * 10 + [2]

    def test_exact_division_no_remainder(self):
        assert sub_batch_sequence(32, 16) == [16, 16]

    def test_unfused_single_pass(self):
        assert sub_batch_sequence(32, 0) == [32]

    @given(st.integers(1, 512), st.integers(1, 512))
    def test_sums_to_mini_batch(self, n, s):
        seq = sub_batch_sequence(n, s)
        assert sum(seq) == n
        assert len(seq) == iteration_count(n, s)
        assert all(0 < x <= s for x in seq)
        assert all(x == s for x in seq[:-1])


def test_per_block_profile_increases_with_depth(rn50):
    """Down-sampling lets deeper layers take larger sub-batches (Fig. 4)."""
    sizes = per_block_sub_batches(rn50, 10 * MIB)
    assert sizes[2] < sizes[-2]  # early residual block vs conv5 block
    assert all(s >= 1 for s in sizes)
