"""Unit tests for the energy model and Tab. 2 area/power estimates,
plus golden regressions pinning the Sec. 6 energy calibration."""
import pytest

from repro.wavecore.area import estimate_area, estimate_power
from repro.wavecore.config import DEFAULT_CONFIG, WaveCoreConfig
from repro.wavecore.energy import EnergyParams, step_energy
from repro.types import MIB


class TestStepEnergy:
    def test_components_linear(self):
        e1 = step_energy(DEFAULT_CONFIG, 0.01, 10**9, 10**9, 10**12)
        e2 = step_energy(DEFAULT_CONFIG, 0.02, 2 * 10**9, 2 * 10**9,
                         2 * 10**12)
        assert e2.dram_j == pytest.approx(2 * e1.dram_j)
        assert e2.gbuf_j == pytest.approx(2 * e1.gbuf_j)
        assert e2.compute_j == pytest.approx(2 * e1.compute_j)
        assert e2.static_j == pytest.approx(2 * e1.static_j)

    def test_total_and_share(self):
        e = step_energy(DEFAULT_CONFIG, 0.01, 10**9, 10**9, 10**12)
        assert e.total_j == pytest.approx(
            e.dram_j + e.gbuf_j + e.compute_j + e.static_j
        )
        assert sum(e.share(c) for c in ("dram", "gbuf", "compute",
                                        "static")) == pytest.approx(1.0)

    def test_zero_skip_saves_compute(self):
        on = step_energy(DEFAULT_CONFIG, 0.01, 0, 0, 10**12)
        off = step_energy(DEFAULT_CONFIG.__class__(
            **{**DEFAULT_CONFIG.__dict__, "zero_skip": False}
        ), 0.01, 0, 0, 10**12)
        assert on.compute_j < off.compute_j

    def test_memory_type_changes_dram_energy(self):
        hbm = step_energy(DEFAULT_CONFIG, 0.01, 10**9, 0, 0)
        gddr = step_energy(DEFAULT_CONFIG.with_memory("GDDR5"),
                           0.01, 10**9, 0, 0)
        assert gddr.dram_j > hbm.dram_j

    def test_gbuf_eight_times_cheaper_than_hbm2(self):
        p = EnergyParams()
        hbm_per_byte = DEFAULT_CONFIG.memory.energy_pj_per_bit * 8
        assert hbm_per_byte / p.gbuf_pj_per_byte == pytest.approx(8.0)


class TestEnergyCalibrationGoldens:
    """Pin the Sec. 6 calibration so `EnergyParams` edits can't drift.

    The constants in :mod:`repro.wavecore.energy` were calibrated
    against three paper anchors: Baseline ResNet-50 DRAM energy share
    ≈ 21.6 %, ArchOpt total saving ≈ 2 % (static only), and MBS energy
    savings of 24–30 % on deep CNNs.  The golden values below are this
    repo's current realizations of those anchors — tight enough that
    any `EnergyParams` change trips them (update deliberately, with the
    paper open), loose enough to survive incidental refactors that keep
    the model bit-compatible.
    """

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.experiments.common import evaluate

        return {p: evaluate("resnet50", p)
                for p in ("baseline", "archopt", "mbs2")}

    def test_baseline_resnet50_dram_share_near_paper(self, reports):
        share = reports["baseline"].energy.share("dram")
        assert share == pytest.approx(0.229020, abs=2e-4)  # golden
        assert abs(share - 0.216) < 0.05  # paper Sec. 6 anchor

    def test_mbs2_resnet50_saving_in_paper_band(self, reports):
        saving = 1 - (reports["mbs2"].energy.total_j
                      / reports["baseline"].energy.total_j)
        assert saving == pytest.approx(0.257911, abs=5e-4)  # golden
        assert 0.24 <= saving <= 0.30  # paper Sec. 6: 24-30 %

    def test_energy_objective_saving_at_least_mbs2(self, reports):
        """The energy-objective DP can only widen the paper's saving."""
        from repro.experiments.common import evaluate

        auto_en = evaluate("resnet50", "mbs-auto", objective="energy")
        base = reports["baseline"].energy.total_j
        saving = 1 - auto_en.energy.total_j / base
        mbs2_saving = 1 - reports["mbs2"].energy.total_j / base
        assert saving >= mbs2_saving - 1e-12

    def test_archopt_saving_is_static_only(self, reports):
        saving = 1 - (reports["archopt"].energy.total_j
                      / reports["baseline"].energy.total_j)
        assert saving == pytest.approx(0.014997, abs=5e-4)  # golden
        assert 0.0 < saving < 0.03  # paper: ~2 %, static energy only

    def test_baseline_resnet50_step_energy_golden(self, reports):
        """Absolute anchor: a change to any component constant moves
        this total even if the shares happen to compensate."""
        assert reports["baseline"].energy.total_j == pytest.approx(
            4.090436, abs=1e-4
        )


class TestArea:
    def test_paper_total(self):
        assert estimate_area(DEFAULT_CONFIG).total_mm2 == pytest.approx(
            534.0, abs=1.0
        )

    def test_pe_array_dominates(self):
        a = estimate_area(DEFAULT_CONFIG)
        assert a.pe_array_mm2 / a.total_mm2 > 0.6  # paper: 67% per core

    def test_scales_with_buffer(self):
        small = estimate_area(DEFAULT_CONFIG.with_buffer(5 * MIB))
        large = estimate_area(DEFAULT_CONFIG.with_buffer(40 * MIB))
        assert large.total_mm2 > small.total_mm2
        assert large.pe_array_mm2 == small.pe_array_mm2

    def test_paper_component_values(self):
        a = estimate_area(DEFAULT_CONFIG)
        assert a.pe_array_mm2 == pytest.approx(2 * 199.45, rel=0.01)
        assert a.global_buffer_mm2 == pytest.approx(2 * 18.65, rel=0.01)
        assert a.vector_mm2 == pytest.approx(2 * 4.33, rel=0.01)


class TestPower:
    def test_peak_power_near_paper(self):
        # paper Tab. 2: 56 W; our calibration trades this against the
        # Sec. 6 energy shares (see DESIGN.md) — assert the band
        p = estimate_power(DEFAULT_CONFIG)
        assert 40.0 < p < 80.0

    def test_power_scales_with_clock(self):
        fast = WaveCoreConfig(clock_hz=1.4e9)
        assert estimate_power(fast) > estimate_power(DEFAULT_CONFIG)
