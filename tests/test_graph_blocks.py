"""Unit tests for blocks, branches (trees), and merges."""
import pytest

from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import Activation, Conv2D, EltwiseAdd
from repro.types import Shape


def conv(name, in_shape, out_c, k=1, s=1, p=0):
    return Conv2D(name=name, in_shape=in_shape, out_channels=out_c,
                  kernel=k, stride=s, padding=p)


IN = Shape(8, 16, 16)


class TestBranch:
    def test_tail_shape_chains(self):
        br = Branch((conv("a", IN, 4), conv("b", Shape(4, 16, 16), 6)))
        assert br.tail_shape(IN) == Shape(6, 16, 16)

    def test_tail_shape_identity(self):
        assert Branch().tail_shape(IN) == IN

    def test_miswired_chain_raises(self):
        br = Branch((conv("a", IN, 4), conv("b", Shape(5, 16, 16), 6)))
        with pytest.raises(ValueError, match="mis-wired"):
            br.tail_shape(IN)

    def test_leaf_shapes_without_children(self):
        br = Branch((conv("a", IN, 4),))
        assert br.leaf_shapes(IN) == [Shape(4, 16, 16)]

    def test_leaf_shapes_with_children(self):
        stem = (conv("a", IN, 4),)
        tail = Shape(4, 16, 16)
        br = Branch(stem, children=(
            Branch((conv("c1", tail, 2),)),
            Branch((conv("c2", tail, 3),)),
        ))
        assert br.leaf_shapes(IN) == [Shape(2, 16, 16), Shape(3, 16, 16)]

    def test_walk_order(self):
        stem = (conv("a", IN, 4),)
        tail = Shape(4, 16, 16)
        br = Branch(stem, children=(
            Branch((conv("c1", tail, 2),)),
            Branch((conv("c2", tail, 3),)),
        ))
        assert [l.name for l in br.walk()] == ["a", "c1", "c2"]

    def test_is_identity(self):
        assert Branch().is_identity
        assert not Branch((conv("a", IN, 4),)).is_identity


class TestBlockAdd:
    def make_residual(self):
        main = Branch((conv("m1", IN, 8, k=3, p=1),))
        return Block(
            name="res", in_shape=IN, branches=(main, Branch()),
            merge=MergeKind.ADD,
            post_merge=(Activation(name="relu", in_shape=IN),),
        )

    def test_out_shape(self):
        assert self.make_residual().out_shape == IN

    def test_merge_layer_synthesized(self):
        ml = self.make_residual().merge_layer
        assert isinstance(ml, EltwiseAdd)
        assert ml.in_shape == IN

    def test_all_layers_includes_merge_and_post(self):
        names = [l.name for l in self.make_residual().all_layers()]
        assert names == ["m1", "res.add", "relu"]

    def test_mismatched_add_raises(self):
        main = Branch((conv("m1", IN, 4),))
        with pytest.raises(ValueError, match="mismatched"):
            Block(name="bad", in_shape=IN, branches=(main, Branch()),
                  merge=MergeKind.ADD)

    def test_is_module(self):
        assert self.make_residual().is_module


class TestBlockConcat:
    def make_inception(self):
        b1 = Branch((conv("b1", IN, 4),))
        b2 = Branch((conv("b2", IN, 6, k=3, p=1),))
        return Block(name="mix", in_shape=IN, branches=(b1, b2),
                     merge=MergeKind.CONCAT)

    def test_channels_sum(self):
        assert self.make_inception().out_shape == Shape(10, 16, 16)

    def test_no_merge_layer(self):
        assert self.make_inception().merge_layer is None

    def test_spatial_mismatch_raises(self):
        b1 = Branch((conv("b1", IN, 4),))
        b2 = Branch((conv("b2", IN, 4, k=3, s=2, p=1),))
        with pytest.raises(ValueError, match="spatial"):
            Block(name="bad", in_shape=IN, branches=(b1, b2),
                  merge=MergeKind.CONCAT)

    def test_forked_branch_concat(self):
        stem = Branch(
            (conv("s", IN, 4),),
            children=(
                Branch((conv("f1", Shape(4, 16, 16), 2),)),
                Branch((conv("f2", Shape(4, 16, 16), 3),)),
            ),
        )
        block = Block(name="fork", in_shape=IN, branches=(stem,),
                      merge=MergeKind.CONCAT)
        assert block.out_shape == Shape(5, 16, 16)
        assert block.is_module


class TestBlockValidation:
    def test_empty_branches_raise(self):
        with pytest.raises(ValueError, match="at least one branch"):
            Block(name="b", in_shape=IN, branches=())

    def test_multibranch_without_merge_raises(self):
        with pytest.raises(ValueError, match="needs a merge"):
            Block(name="b", in_shape=IN,
                  branches=(Branch((conv("a", IN, 4),)), Branch()))

    def test_single_chain_with_merge_raises(self):
        with pytest.raises(ValueError, match="must not merge"):
            Block(name="b", in_shape=IN,
                  branches=(Branch((conv("a", IN, 4),)),),
                  merge=MergeKind.ADD)

    def test_post_merge_miswired_raises(self):
        main = Branch((conv("m1", IN, 8, k=3, p=1),))
        with pytest.raises(ValueError, match="post-merge"):
            Block(name="b", in_shape=IN, branches=(main, Branch()),
                  merge=MergeKind.ADD,
                  post_merge=(Activation(name="r",
                                         in_shape=Shape(4, 16, 16)),))


class TestChainBlock:
    def test_single_chain(self):
        blk = chain_block("c", IN, [conv("a", IN, 4)])
        assert not blk.is_module
        assert blk.out_shape == Shape(4, 16, 16)
        assert blk.param_count == 4 * 8

    def test_macs_aggregate(self):
        blk = chain_block("c", IN, [conv("a", IN, 4, k=3, p=1)])
        assert blk.macs_per_sample == 4 * 16 * 16 * 8 * 9
