"""The distributed sweep queue: wire types, HTTP surface, e2e matrix.

Three layers of coverage:

* the :mod:`repro.api` job wire types (codec round trips, schema
  envelope, path-qualified rejection messages);
* the ``/v1/jobs`` + ``/v1/lease`` HTTP surface over a live socket
  (400/404/409 mapping, stats, coordinator-cache interop);
* the acceptance matrix — a 2-worker queue-driven sweep with one
  worker SIGKILLed mid-lease, whose merged manifest dump must be
  **byte-identical** to a single-process ``mbs-repro sweep`` run
  (``merge --check``).
"""

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import api
from repro.experiments.runner import main
from repro.runtime.cache import ResultCache
from repro.runtime.pool import Task, run_tasks
from repro.runtime.queue import JobQueue
from repro.runtime.spec import get_spec
from repro.serve import (
    CoordinatorClient,
    CoordinatorError,
    JobHost,
    ScheduleEngine,
    Server,
    work_loop,
)
from repro.serve.worker import _Heartbeat, _is_transient, _with_retries

GRID_SETS = ["--set", "net_name='resnet50'", "--set", "mini_batch=16,32",
             "--set", "buffer_mib=5,10"]
GRID_AXES = {"net_name": ["resnet50"], "mini_batch": [16, 32],
             "buffer_mib": [5, 10]}


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# wire types
# ---------------------------------------------------------------------------

class TestSweepJobRequestWire:
    def test_round_trip(self):
        req = api.SweepJobRequest(artifact="fig3", axes=GRID_AXES,
                                  quick=True, max_attempts=2,
                                  lease_timeout_s=5.0)
        wire = req.to_wire()
        assert wire["schema"] == api.SCHEMA_VERSION
        back = api.SweepJobRequest.from_wire(wire)
        assert back.artifact == "fig3"
        assert back.axes == {k: list(v) for k, v in GRID_AXES.items()}
        assert back.quick and back.max_attempts == 2
        assert back.lease_timeout_s == 5.0

    def test_none_fields_omitted_from_wire(self):
        wire = api.SweepJobRequest(artifact="fig3").to_wire()
        assert wire == {"schema": 1, "artifact": "fig3", "quick": False}

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            api.SweepJobRequest.from_wire({"schema": 9, "artifact": "a"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown job request key"):
            api.SweepJobRequest.from_wire(
                {"schema": 1, "artifact": "a", "axis": {}})

    @pytest.mark.parametrize("wire,needle", [
        ({"artifact": ""}, "artifact:"),
        ({"artifact": "a", "axes": {"mini_batch": 5}}, "axes.mini_batch:"),
        ({"artifact": "a", "axes": {"mini_batch": []}}, "axes.mini_batch:"),
        ({"artifact": "a", "axes": {"x": "abc"}}, "axes.x:"),
        ({"artifact": "a", "max_attempts": 0}, "max_attempts:"),
        ({"artifact": "a", "lease_timeout_s": -1}, "lease_timeout_s:"),
        ({"artifact": "a", "quick": 1}, "quick:"),
    ])
    def test_path_qualified_rejections(self, wire, needle):
        with pytest.raises(ValueError, match=needle):
            api.SweepJobRequest.from_wire({"schema": 1, **wire})

    def test_describe(self):
        req = api.SweepJobRequest(artifact="fig3", axes=GRID_AXES)
        assert "fig3" in req.describe()
        assert "mini_batch[2]" in req.describe()
        assert "default sweep axes" in api.SweepJobRequest(
            artifact="fig3").describe()


class TestLeaseGrantWire:
    def test_round_trip(self):
        grant = api.LeaseGrant(
            job_id="job-1", lease_id="lease-1", worker="w1",
            artifact="fig3", quick=True, lease_timeout_s=30.0,
            points=({"index": 0, "overrides": {"mini_batch": 16}},),
        )
        back = api.LeaseGrant.from_wire(grant.to_wire())
        assert back == grant
        assert "lease-1" in grant.describe()
        assert "1 point(s)" in grant.describe()

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing key"):
            api.LeaseGrant.from_wire({"job_id": "job-1"})

    def test_bad_point_rejected(self):
        wire = api.LeaseGrant(
            job_id="j", lease_id="l", worker="w", artifact="a",
            quick=False, lease_timeout_s=1.0,
            points=({"index": 0, "overrides": {}},),
        ).to_wire()
        wire["points"] = [{"index": -1, "overrides": {}}]
        with pytest.raises(ValueError, match=r"points\[0\].index"):
            api.LeaseGrant.from_wire(wire)


class TestSweepJobStatusWire:
    def test_round_trip_and_describe(self):
        status = api.SweepJobStatus(
            job_id="job-1", artifact="fig3", quick=False, state="running",
            total=8, pending=4, leased=1, done=3, poisoned=0,
            max_attempts=3, lease_timeout_s=60.0,
        )
        assert api.SweepJobStatus.from_wire(status.to_wire()) == status
        text = status.describe()
        assert "job-1" in text and "[running]" in text and "3/8" in text

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing key"):
            api.SweepJobStatus.from_wire({"schema": 1, "job_id": "j"})


# ---------------------------------------------------------------------------
# HTTP surface (live socket, in-process host)
# ---------------------------------------------------------------------------

def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read().decode())
    finally:
        conn.close()


def _post(port, path, body):
    text = body if isinstance(body, str) else json.dumps(body)
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=text,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read().decode())
    finally:
        conn.close()


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


async def _with_jobs_server(fn, *, cache=None, clock=None,
                            lease_timeout_s=30.0, max_attempts=3):
    kwargs = {"clock": clock} if clock is not None else {}
    host = JobHost(
        JobQueue(lease_timeout_s=lease_timeout_s,
                 max_attempts=max_attempts, **kwargs),
        cache=cache,
    )
    server = Server(ScheduleEngine(workers=0), jobs=host)
    await server.start()
    loop = asyncio.get_running_loop()
    try:
        return await loop.run_in_executor(
            None, fn, server.port, host
        )
    finally:
        await server.aclose()


def _submit_wire(**over):
    wire = {"schema": 1, "artifact": "fig3", "axes": GRID_AXES,
            "quick": True}
    wire.update(over)
    return wire


class TestJobsHttp:
    def test_submit_and_poll(self):
        def fn(port, host):
            st, job = _post(port, "/v1/jobs", _submit_wire())
            assert st == 200
            listing = _get(port, "/v1/jobs")
            single = _get(port, f"/v1/jobs/{job['job_id']}")
            return job, listing, single

        job, (st_l, listing), (st_s, single) = run(_with_jobs_server(fn))
        assert job["state"] == "running"
        assert job["total"] == 4 and job["pending"] == 4
        assert st_l == 200 and listing["jobs"] == [single]
        assert st_s == 200

    def test_submit_unknown_artifact_400_path_qualified(self):
        def fn(port, host):
            return _post(port, "/v1/jobs",
                         _submit_wire(artifact="nope"))

        status, body = run(_with_jobs_server(fn))
        assert status == 400
        assert body["error"].startswith("artifact:")

    def test_submit_malformed_axes_400_path_qualified(self):
        def fn(port, host):
            return _post(port, "/v1/jobs",
                         _submit_wire(axes={"mini_batch": 5}))

        status, body = run(_with_jobs_server(fn))
        assert status == 400
        assert body["error"].startswith("axes.mini_batch:")

    def test_submit_unknown_axis_400(self):
        def fn(port, host):
            return _post(port, "/v1/jobs",
                         _submit_wire(axes={"warp_speed": [9]}))

        status, body = run(_with_jobs_server(fn))
        assert status == 400
        assert "warp_speed" in body["error"]

    def test_bad_json_400(self):
        def fn(port, host):
            return _post(port, "/v1/jobs", "{nope")

        status, body = run(_with_jobs_server(fn))
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_job_404(self):
        def fn(port, host):
            return _get(port, "/v1/jobs/job-404")

        status, body = run(_with_jobs_server(fn))
        assert status == 404
        assert "job-404" in body["error"]

    def test_unknown_lease_404(self):
        def fn(port, host):
            return _post(port, "/v1/lease/lease-404/heartbeat",
                         {"schema": 1})

        status, body = run(_with_jobs_server(fn))
        assert status == 404

    def test_lease_grant_and_all_done_protocol(self):
        def fn(port, host):
            empty = _post(port, "/v1/lease",
                          {"schema": 1, "worker": "w1"})
            _post(port, "/v1/jobs", _submit_wire())
            grant = _post(port, "/v1/lease",
                          {"schema": 1, "worker": "w1", "max_points": 4})
            drained = _post(port, "/v1/lease",
                            {"schema": 1, "worker": "w2"})
            return empty, grant, drained

        (st_e, empty), (st_g, grant), (st_d, drained) = run(
            _with_jobs_server(fn))
        assert st_e == st_g == st_d == 200
        # no jobs yet: not all_done — a worker must keep polling
        assert empty == {"schema": 1, "lease": None, "all_done": False}
        lease = api.LeaseGrant.from_wire(grant["lease"])
        assert lease.worker == "w1" and len(lease.points) == 4
        # the whole grid is leased out; nothing to grant, not done
        assert drained["lease"] is None and drained["all_done"] is False

    def test_lease_validation_400(self):
        def fn(port, host):
            return (_post(port, "/v1/lease", {"schema": 1}),
                    _post(port, "/v1/lease",
                          {"schema": 1, "worker": "w", "max_points": 0}),
                    _post(port, "/v1/lease",
                          {"schema": 1, "worker": "w", "extra": 1}))

        (s1, b1), (s2, b2), (s3, b3) = run(_with_jobs_server(fn))
        assert s1 == 400 and b1["error"].startswith("worker:")
        assert s2 == 400 and b2["error"].startswith("max_points:")
        assert s3 == 400 and "unknown lease request key" in b3["error"]

    def test_expired_heartbeat_409_and_stats(self):
        clock = _Clock()

        def fn(port, host):
            _post(port, "/v1/jobs", _submit_wire())
            _, grant = _post(port, "/v1/lease",
                             {"schema": 1, "worker": "w1"})
            lease_id = grant["lease"]["lease_id"]
            ok = _post(port, f"/v1/lease/{lease_id}/heartbeat",
                       {"schema": 1})
            clock.t += 31.0
            expired = _post(port, f"/v1/lease/{lease_id}/heartbeat",
                            {"schema": 1})
            stats = _get(port, "/v1/stats")
            return ok, expired, stats

        (st_ok, _), (st_exp, body), (st_st, stats) = run(
            _with_jobs_server(fn, clock=clock))
        assert st_ok == 200
        assert st_exp == 409
        assert "expired" in body["error"]
        assert st_st == 200
        assert stats["jobs"]["leases_expired"] == 1
        assert stats["jobs"]["leases_granted"] == 1

    def test_manifest_key_mismatch_409(self):
        def fn(port, host):
            _post(port, "/v1/jobs", _submit_wire())
            _, grant = _post(port, "/v1/lease",
                             {"schema": 1, "worker": "w1"})
            lease_id = grant["lease"]["lease_id"]
            index = grant["lease"]["points"][0]["index"]
            return _post(
                port, f"/v1/lease/{lease_id}/complete",
                {"schema": 1, "index": index,
                 "manifest": {"spec": "fig3", "key": "f" * 24}},
            )

        status, body = run(_with_jobs_server(fn))
        assert status == 409
        assert "out of sync" in body["error"]

    def test_jobs_disabled_404(self):
        async def go():
            server = Server(ScheduleEngine(workers=0))  # no JobHost
            await server.start()
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, _get, server.port, "/v1/jobs")
            finally:
                await server.aclose()

        status, body = run(go())
        assert status == 404
        assert "not enabled" in body["error"]

    def test_coordinator_cache_pre_completes_swept_points(self, tmp_path):
        # a grid already swept into the coordinator's cache needs no
        # worker at all: the job is born done, manifests downloadable
        cache_dir = tmp_path / "coord-cache"
        assert main(["sweep", "fig3", *GRID_SETS, "--quick",
                     "--cache-dir", str(cache_dir)]) == 0

        def fn(port, host):
            st, job = _post(port, "/v1/jobs", _submit_wire())
            assert st == 200
            return job, _get(port, f"/v1/jobs/{job['job_id']}/manifests")

        job, (st_m, dump) = run(
            _with_jobs_server(fn, cache=ResultCache(cache_dir)))
        assert job["state"] == "done"
        assert job["done"] == 4
        assert st_m == 200
        assert len(dump["manifests"]) == 4
        assert all(m["spec"] == "fig3" for m in dump["manifests"])


# ---------------------------------------------------------------------------
# client URL parsing + retry plumbing (no sockets)
# ---------------------------------------------------------------------------

class TestCoordinatorClientUrl:
    @pytest.mark.parametrize("url,host,port", [
        ("http://127.0.0.1:8787", "127.0.0.1", 8787),
        ("127.0.0.1:9090", "127.0.0.1", 9090),  # scheme optional
        ("http://example.com", "example.com", 8787),  # default port
        ("http://example.com/", "example.com", 8787),
        # bracketed IPv6 literal: a naive netloc.partition(":") would
        # yield host "[" and a garbage port
        ("http://[::1]:8787", "::1", 8787),
        ("[::1]:9090", "::1", 9090),
    ])
    def test_accepted_urls(self, url, host, port):
        client = CoordinatorClient(url)
        assert (client.host, client.port) == (host, port)

    def test_path_rejected_loudly(self):
        # a path would silently vanish (requests always go to /v1/...)
        with pytest.raises(ValueError, match="path/query"):
            CoordinatorClient("http://host:8787/v1/jobs")

    def test_query_rejected_loudly(self):
        with pytest.raises(ValueError, match="path/query"):
            CoordinatorClient("http://host:8787?retry=1")

    def test_non_http_scheme_rejected(self):
        with pytest.raises(ValueError, match="http://"):
            CoordinatorClient("https://host:8787")

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError, match="invalid port"):
            CoordinatorClient("http://host:notaport")


class TestRetryPlumbing:
    def test_transient_classification(self):
        assert _is_transient(ConnectionRefusedError())
        assert _is_transient(TimeoutError())
        assert _is_transient(CoordinatorError(503, "busy"))
        assert not _is_transient(CoordinatorError(409, "expired"))
        assert not _is_transient(CoordinatorError(404, "unknown"))

    def test_with_retries_recovers_with_doubling_backoff(self):
        delays = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionResetError("blip")
            return "ok"

        assert _with_retries(flaky, what="t", sleep=delays.append) == "ok"
        assert calls["n"] == 3
        assert delays == [0.1, 0.2]

    def test_with_retries_propagates_non_transient_immediately(self):
        calls = {"n": 0}

        def conflict():
            calls["n"] += 1
            raise CoordinatorError(409, "expired")

        with pytest.raises(CoordinatorError):
            _with_retries(conflict, what="t", sleep=lambda _: None)
        assert calls["n"] == 1

    def test_with_retries_gives_up_after_budget(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise ConnectionRefusedError("down")

        with pytest.raises(OSError):
            _with_retries(dead, what="t", tries=3, sleep=lambda _: None)
        assert calls["n"] == 3


class _StubHeartbeatClient:
    """Scripted ``heartbeat`` endpoint: raise each queued exception,
    then succeed (setting ``recovered``) forever."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0
        self.recovered = threading.Event()

    def heartbeat(self, lease_id):
        self.calls += 1
        if self.script:
            raise self.script.pop(0)
        self.recovered.set()


class TestHeartbeatResilience:
    def test_survives_transient_blips(self):
        # the old loop returned on the first exception, silently
        # letting a healthy worker's lease expire under it
        client = _StubHeartbeatClient([
            ConnectionResetError("blip"),
            CoordinatorError(503, "restarting"),
        ])
        with _Heartbeat(client, "lease-1", interval_s=0.01):
            assert client.recovered.wait(timeout=30)
        assert client.calls >= 3

    def test_stops_on_protocol_verdict(self):
        client = _StubHeartbeatClient([CoordinatorError(409, "expired")])
        hb = _Heartbeat(client, "lease-1", interval_s=0.01)
        with hb:
            hb._thread.join(timeout=30)
            assert not hb._thread.is_alive()
        assert client.calls == 1

    def test_gives_up_after_consecutive_failures(self):
        client = _StubHeartbeatClient(
            [ConnectionResetError("down")] * 100)
        hb = _Heartbeat(client, "lease-1", interval_s=0.01,
                        max_failures=3)
        with hb:
            hb._thread.join(timeout=30)
            assert not hb._thread.is_alive()
        assert client.calls == 3


# ---------------------------------------------------------------------------
# worker loop + CLI (in-process coordinator, threaded)
# ---------------------------------------------------------------------------

class _LiveCoordinator:
    """Coordinator stack on a private event loop in a daemon thread."""

    def __init__(self, cache_dir=None, *, lease_timeout_s=30.0,
                 max_attempts=3):
        self.loop = asyncio.new_event_loop()
        self.server = None
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)

            async def boot():
                host = JobHost(
                    JobQueue(lease_timeout_s=lease_timeout_s,
                             max_attempts=max_attempts),
                    cache=ResultCache(cache_dir) if cache_dir else None,
                )
                self.server = Server(ScheduleEngine(workers=0), jobs=host)
                await self.server.start()
                started.set()

            self.loop.run_until_complete(boot())
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("coordinator failed to start")

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.port}"

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)


class _FlakyClient:
    """Fault-injecting proxy: the first ``budget[name]`` calls to each
    named method raise a transient network error, then delegate."""

    def __init__(self, inner, budget):
        self._inner = inner
        self._budget = dict(budget)

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def call(*args, **kwargs):
            if self._budget.get(name, 0) > 0:
                self._budget[name] -= 1
                raise ConnectionResetError(f"injected blip on {name}")
            return attr(*args, **kwargs)

        return call


class TestWorkerAndCli:
    def test_submit_work_dump_matches_single_process_reference(
            self, tmp_path, capsys):
        ref = tmp_path / "ref"
        assert main(["sweep", "fig3", *GRID_SETS, "--quick",
                     "--cache-dir", str(tmp_path / "ref-cache"),
                     "--out", str(ref)]) == 0

        coord = _LiveCoordinator(tmp_path / "coord-cache")
        try:
            assert main(["submit-sweep", "fig3", *GRID_SETS, "--quick",
                         "--coordinator", coord.url]) == 0
            assert main(["work", "--coordinator", coord.url,
                         "--jobs", "1", "--batch", "2", "--poll", "0.05",
                         "--cache-dir", str(tmp_path / "worker-cache"),
                         ]) == 0
            out = capsys.readouterr().out
            assert "[running]" in out
            assert "lease lease-1" in out
            assert "[    ran] fig3:" in out
            dump = tmp_path / "dump"
            assert main(["submit-sweep", "fig3", *GRID_SETS, "--quick",
                         "--coordinator", coord.url, "--wait",
                         "--poll", "0.05", "--out", str(dump)]) == 0
            out = capsys.readouterr().out
            # second submission pre-completes from the coordinator cache
            assert "[done] 4/4 done" in out
        finally:
            coord.close()

        merged = tmp_path / "merged"
        assert main(["merge", str(dump), "--out", str(merged),
                     "--check", str(ref)]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_submit_sweep_rejection_exits_1(self, tmp_path, capsys):
        coord = _LiveCoordinator()
        try:
            assert main(["submit-sweep", "nope",
                         "--coordinator", coord.url]) == 1
            err = capsys.readouterr().err
            assert "400" in err and "artifact:" in err
            assert main(["submit-sweep", "fig3", "--set", "warp=1",
                         "--coordinator", coord.url]) == 1
            assert "warp" in capsys.readouterr().err
        finally:
            coord.close()

    def test_submit_sweep_unreachable_coordinator_exits_1(self, capsys):
        assert main(["submit-sweep", "fig3",
                     "--coordinator", "http://127.0.0.1:9"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_worker_drains_through_injected_network_blips(self, tmp_path):
        # every endpoint the worker touches flakes a few times; the
        # retry/backoff plumbing must absorb it all — zero dropped
        # points, zero worker crashes
        coord = _LiveCoordinator(tmp_path / "cache")
        logs = []
        try:
            inner = CoordinatorClient(coord.url)
            status = inner.submit(api.SweepJobRequest(
                artifact="fig3", axes=GRID_AXES, quick=True))
            # budgets stay under each path's retry allowance: 3
            # consecutive complete blips fit the upload's 4 tries
            flaky = _FlakyClient(inner, {
                "lease": 2,  # coordinator "bounces" during polling
                "complete": 3,
                "heartbeat": 1,
            })
            uploaded = work_loop(
                flaky, worker="flaky", batch=1, poll_s=0.05,
                cache=ResultCache(tmp_path / "worker-cache"),
                reconnect_s=60.0, log=logs.append,
            )
            assert uploaded == 4
            final = inner.job(status.job_id)
            assert final.state == "done" and final.done == 4
            text = "\n".join(logs)
            assert "coordinator unreachable" in text
            assert "transient error" in text
            assert "dropped" not in text
        finally:
            coord.close()

    def test_worker_gives_up_past_reconnect_budget(self, tmp_path):
        # nobody listening on port 9: every lease poll is refused, and
        # with a zero budget the first refusal is fatal
        client = CoordinatorClient("http://127.0.0.1:9")
        with pytest.raises(OSError):
            work_loop(client, worker="w", poll_s=0.05, reconnect_s=0.0,
                      log=lambda _line: None)

    def test_worker_tolerates_lease_lost_to_expiry(self, tmp_path):
        # lease expires while the worker stalls; the re-leased points
        # are finished by a second worker, and the first worker's late
        # uploads are either accepted (idempotent) or logged+dropped —
        # never a crash, and every point ends done exactly once
        coord = _LiveCoordinator(tmp_path / "cache", lease_timeout_s=0.2)
        logs = []
        try:
            client = CoordinatorClient(coord.url)
            status = client.submit(api.SweepJobRequest(
                artifact="fig3", axes=GRID_AXES, quick=True))
            slow = threading.Thread(target=work_loop, args=(client,), kwargs={
                "worker": "slow", "batch": 4, "stall_s": 1.0,
                "max_leases": 1, "poll_s": 0.05,
                "cache": ResultCache(tmp_path / "slow-cache"),
                "log": logs.append,
            })
            slow.start()
            time.sleep(0.5)  # slow's lease is now expired
            work_loop(client, worker="fast", batch=4, poll_s=0.05,
                      cache=ResultCache(tmp_path / "fast-cache"),
                      log=logs.append)
            slow.join(timeout=120)
            assert not slow.is_alive()
            final = client.job(status.job_id)
            assert final.state == "done"
            assert final.done == 4
        finally:
            coord.close()


# ---------------------------------------------------------------------------
# acceptance: 2 workers over a live socket, one SIGKILLed mid-lease
# ---------------------------------------------------------------------------

def _spawn_worker(url, tmp_path, name, *extra):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.runner", "work",
         "--coordinator", url, "--worker-id", name, "--poll", "0.1",
         "--cache-dir", str(tmp_path / f"{name}-cache"), *extra],
        env=env, cwd=tmp_path,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


class TestKillMatrix:
    def test_worker_killed_mid_lease_run_is_byte_identical(
            self, tmp_path, capsys):
        ref = tmp_path / "ref"
        assert main(["sweep", "fig3", *GRID_SETS, "--quick",
                     "--cache-dir", str(tmp_path / "ref-cache"),
                     "--out", str(ref)]) == 0
        capsys.readouterr()

        coord = _LiveCoordinator(tmp_path / "coord-cache",
                                 lease_timeout_s=1.0)
        victim = survivor = None
        try:
            client = CoordinatorClient(coord.url)
            status = client.submit(api.SweepJobRequest(
                artifact="fig3", axes=GRID_AXES, quick=True))

            # worker A leases the whole grid, then stalls inside the
            # lease (before any heartbeat); we SIGKILL it there
            victim = _spawn_worker(coord.url, tmp_path, "victim",
                                   "--batch", "4", "--stall", "120")
            deadline = time.time() + 60
            while time.time() < deadline:
                if client.job(status.job_id).leased > 0:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("victim never leased anything")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)

            # worker B drains the re-queued points after lease expiry
            survivor = _spawn_worker(coord.url, tmp_path, "survivor",
                                     "--batch", "2", "--jobs", "2")
            out, _ = survivor.communicate(timeout=240)
            assert survivor.returncode == 0, out
            assert "survivor:" in out

            final = client.job(status.job_id)
            assert final.state == "done"
            assert final.done == 4 and final.poisoned == 0

            _, stats = _get(coord.server.port, "/v1/stats")
            assert stats["jobs"]["leases_expired"] >= 1
            assert stats["jobs"]["points_completed"] == 4

            dump = tmp_path / "dump"
            assert main(["submit-sweep", "fig3", *GRID_SETS, "--quick",
                         "--coordinator", coord.url, "--wait",
                         "--poll", "0.05", "--out", str(dump)]) == 0
        finally:
            for proc in (victim, survivor):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
            coord.close()

        merged = tmp_path / "merged"
        assert main(["merge", str(dump), "--out", str(merged),
                     "--check", str(ref)]) == 0
        out = capsys.readouterr().out
        assert "4 manifest(s) byte-identical" in out
        assert len(list(merged.glob("*.json"))) == 4


# ---------------------------------------------------------------------------
# acceptance: the *coordinator* SIGKILLed mid-drain, restarted on the
# same --state-dir, must resume the half-drained job byte-identically
# ---------------------------------------------------------------------------

def _spawn_coordinator(tmp_path, state_dir, cache_dir, port=0):
    """``mbs-repro serve`` as a subprocess; returns (proc, lines, url).

    ``lines`` keeps accumulating in the background, so later output
    (e.g. the restore banner) can be asserted on after the fact.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.experiments.runner", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--state-dir", str(state_dir), "--cache-dir", str(cache_dir)],
        env=env, cwd=tmp_path,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    lines = []

    def pump():
        for line in proc.stdout:
            lines.append(line)

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.time() + 60
    while time.time() < deadline:
        for line in list(lines):
            if "listening on http://" in line:
                return proc, lines, line.split("listening on ")[1].strip()
        if proc.poll() is not None:
            raise RuntimeError(
                f"coordinator exited {proc.returncode}: {''.join(lines)}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"coordinator never came up: {''.join(lines)}")


class TestCoordinatorKillMatrix:
    def test_coordinator_sigkilled_mid_drain_resumes_byte_identical(
            self, tmp_path, capsys):
        ref = tmp_path / "ref"
        assert main(["sweep", "fig3", *GRID_SETS, "--quick",
                     "--cache-dir", str(tmp_path / "ref-cache"),
                     "--out", str(ref)]) == 0
        capsys.readouterr()

        state_dir = tmp_path / "state"
        cache_dir = tmp_path / "coord-cache"
        first = second = worker = None
        try:
            first, _, url = _spawn_coordinator(tmp_path, state_dir,
                                               cache_dir)
            port = int(url.rsplit(":", 1)[1])
            client = CoordinatorClient(url)
            status = client.submit(api.SweepJobRequest(
                artifact="fig3", axes=GRID_AXES, quick=True))

            # half-drain by hand: lease 2 points, upload only the first,
            # leaving the lease (and its second point) in flight
            grant, _ = client.lease("pre-crash", max_points=2)
            assert grant is not None and len(grant.points) == 2
            results = []
            run_tasks(
                [Task(get_spec("fig3"),
                      dict(grant.points[0]["overrides"]), quick=True)],
                jobs=1, cache=ResultCache(tmp_path / "pre-crash-cache"),
                on_result=lambda _t, r: results.append(r),
            )
            client.complete(grant.lease_id, grant.points[0]["index"],
                            results[0].manifest)
            assert client.job(status.job_id).done == 1

            first.send_signal(signal.SIGKILL)
            first.wait(timeout=30)
            assert (state_dir / "journal.jsonl").exists()

            # a worker started against the dead coordinator must treat
            # the outage as a slow poll, not a crash
            worker = _spawn_worker(url, tmp_path, "survivor",
                                   "--batch", "2", "--reconnect", "60")
            time.sleep(0.5)  # let it hit connection-refused at least once

            second, lines, url2 = _spawn_coordinator(
                tmp_path, state_dir, cache_dir, port=port)
            assert url2 == url
            out, _ = worker.communicate(timeout=240)
            assert worker.returncode == 0, out
            assert "coordinator unreachable" in out
            assert "".join(lines).count("restored 1 job(s) "
                                        "(1 still running)") == 1

            # zero lost attempts: the restore snapshot carries per-point
            # attempt counts — the voided lease's points kept theirs
            snap = json.loads((state_dir / "snapshot.json").read_text())
            assert any(
                point["attempts"] >= 1
                for job in snap["state"]["jobs"]
                for point in job["points"]
            )

            final = client.job(status.job_id)
            assert final.state == "done"
            assert final.done == 4 and final.poisoned == 0

            _, stats = _get(port, "/v1/stats")
            assert stats["jobs"]["leases_expired"] >= 1
            assert stats["jobs"]["points_completed"] == 4
            assert stats["jobs"]["leases_live"] == 0

            dump = tmp_path / "dump"
            assert main(["submit-sweep", "fig3", *GRID_SETS, "--quick",
                         "--coordinator", url, "--wait",
                         "--poll", "0.05", "--out", str(dump)]) == 0
        finally:
            for proc in (worker, first, second):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

        merged = tmp_path / "merged"
        assert main(["merge", str(dump), "--out", str(merged),
                     "--check", str(ref)]) == 0
        out = capsys.readouterr().out
        assert "4 manifest(s) byte-identical" in out

    def test_serve_refuses_corrupt_state_dir(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        (state_dir / "snapshot.json").write_text("{nope")
        assert main(["serve", "--state-dir", str(state_dir)]) == 1
        err = capsys.readouterr().err
        assert "cannot restore state" in err
