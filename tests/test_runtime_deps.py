"""Static import-closure analyzer: resolution, closures, fingerprints.

Synthetic package trees exercise the resolution rules in isolation; the
copied-tree tests then lock the acceptance property on the real
package: touching ``experiments/energy_sweep.py`` changes that spec's
fingerprint and nobody else's.
"""
import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.runtime import (
    ImportGraph,
    code_fingerprint,
    get_spec,
    module_fingerprint,
    reset_fingerprint_caches,
    spec_fingerprint,
)


def make_pkg(root: Path, files: dict[str, str],
             package: str = "pkg") -> ImportGraph:
    pkg_dir = root / package
    for rel, text in files.items():
        path = pkg_dir / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return ImportGraph(pkg_dir, package)


BASIC = {
    "__init__.py": "",
    "a.py": "from pkg.b import helper\n",
    "b.py": "import pkg.c\n",
    "c.py": "VALUE = 1\n",
    "lone.py": "OTHER = 2\n",
}


class TestResolution:
    def test_plain_and_from_imports(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        assert g.direct_imports("pkg.a") == {"pkg.b"}
        assert g.direct_imports("pkg.b") == {"pkg.c"}
        assert g.direct_imports("pkg.c") == set()

    def test_from_package_import_submodule(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "",
            "sub/mod.py": "X = 1\n",
            "user.py": "from pkg.sub import mod\n",
        })
        assert g.direct_imports("pkg.user") == {"pkg.sub.mod"}

    def test_from_package_import_name_depends_on_package(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "X = 1\n",
            "user.py": "from pkg.sub import X\n",
        })
        assert g.direct_imports("pkg.user") == {"pkg.sub"}

    def test_relative_imports(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "",
            "sub/mod.py": "from . import sib\nfrom ..top import T\n",
            "sub/sib.py": "S = 1\n",
            "top.py": "T = 1\n",
        })
        assert g.direct_imports("pkg.sub.mod") == {"pkg.sub.sib",
                                                   "pkg.top"}

    def test_relative_import_in_package_init(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "from .mod import f\n",
            "sub/mod.py": "def f(): pass\n",
        })
        assert g.direct_imports("pkg.sub") == {"pkg.sub.mod"}

    def test_star_import_depends_on_module(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "from pkg.b import *\n",
            "b.py": "X = 1\n",
        })
        assert g.direct_imports("pkg.a") == {"pkg.b"}

    def test_lazy_function_level_imports_count(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "def f():\n    from pkg.b import X\n    return X\n",
            "b.py": "X = 1\n",
        })
        assert g.direct_imports("pkg.a") == {"pkg.b"}

    def test_external_imports_ignored(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "import os\nimport json\nfrom pathlib import Path\n",
        })
        assert g.direct_imports("pkg.a") == set()

    def test_unresolvable_module(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        assert not g.covers("pkg.nope")
        assert not g.covers("otherpkg.a")
        assert g.closure("pkg.nope") == set()


class TestClosure:
    def test_transitive(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        assert g.closure("pkg.a") == {"pkg", "pkg.a", "pkg.b", "pkg.c"}

    def test_cycles_terminate(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "import pkg.b\n",
            "b.py": "import pkg.a\n",
        })
        assert g.closure("pkg.a") == {"pkg", "pkg.a", "pkg.b"}
        assert g.closure("pkg.b") == {"pkg", "pkg.a", "pkg.b"}

    def test_self_import_cycle(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "import pkg.a\n",
        })
        assert g.closure("pkg.a") == {"pkg", "pkg.a"}

    def test_ancestor_inits_included_shallowly(self, tmp_path):
        """A leaf's closure carries its package __init__s but does not
        follow their imports — sibling registrations stay out."""
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "from pkg.sub import heavy, light\n",
            "sub/light.py": "X = 1\n",
            "sub/heavy.py": "import pkg.sub.dragged\n",
            "sub/dragged.py": "Y = 1\n",
        })
        closure = g.closure("pkg.sub.light")
        assert "pkg.sub" in closure  # the __init__ itself is hashed
        assert "pkg.sub.heavy" not in closure
        assert "pkg.sub.dragged" not in closure

    def test_explicit_package_import_follows_init(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "from pkg.sub import impl\n",
            "sub/impl.py": "X = 1\n",
            "user.py": "from pkg.sub import X\n",
        })
        assert g.closure("pkg.user") >= {"pkg.sub", "pkg.sub.impl"}


class TestFingerprint:
    def edit(self, g, rel, text):
        (g.root / rel).write_text(text)
        return ImportGraph(g.root, g.package)  # fresh parse

    def test_dep_change_changes_fingerprint(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        before = g.fingerprint("pkg.a")
        g2 = self.edit(g, "c.py", "VALUE = 2\n")
        assert g2.fingerprint("pkg.a") != before

    def test_transitive_dep_change_changes_fingerprint(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        a, b = g.fingerprint("pkg.a"), g.fingerprint("pkg.b")
        g2 = self.edit(g, "c.py", "VALUE = 3\n")
        assert g2.fingerprint("pkg.a") != a
        assert g2.fingerprint("pkg.b") != b

    def test_unrelated_edit_is_stable(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        before_a = g.fingerprint("pkg.a")
        before_lone = g.fingerprint("pkg.lone")
        g2 = self.edit(g, "lone.py", '"""docstring only edit."""\n')
        assert g2.fingerprint("pkg.a") == before_a
        assert g2.fingerprint("pkg.lone") != before_lone

    def test_ancestor_init_edit_changes_everyone(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        before = g.fingerprint("pkg.lone")
        g2 = self.edit(g, "__init__.py", "# init changed\n")
        assert g2.fingerprint("pkg.lone") != before

    def test_cycle_fingerprint_is_stable_and_shared(self, tmp_path):
        g = make_pkg(tmp_path, {
            "__init__.py": "",
            "a.py": "import pkg.b\n",
            "b.py": "import pkg.a\n",
        })
        assert g.fingerprint("pkg.a") == g.fingerprint("pkg.b")
        assert g.fingerprint("pkg.a") == g.fingerprint("pkg.a")

    def test_multi_module_union(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        union = g.fingerprint(["pkg.a", "pkg.lone"])
        assert union != g.fingerprint("pkg.a")
        assert union != g.fingerprint("pkg.lone")
        assert union == g.fingerprint(["pkg.lone", "pkg.a"])

    def test_same_shape_as_code_fingerprint(self, tmp_path):
        g = make_pkg(tmp_path, BASIC)
        fp = g.fingerprint("pkg.a")
        assert len(fp) == 16
        assert int(fp, 16) >= 0


# ---------------------------------------------------------------------------
# The installed package: per-spec scoping and the acceptance property
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def repro_copy(tmp_path_factory):
    """A private copy of the repro source tree, safe to edit."""
    src = Path(repro.__file__).resolve().parent
    dst = tmp_path_factory.mktemp("pkgcopy") / "repro"
    shutil.copytree(src, dst,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return dst


def _spec_modules():
    import repro.experiments  # noqa: F401  (registers the specs)
    from repro.runtime import all_specs

    return {spec.name: spec.module for spec in all_specs()}


class TestRealPackage:
    def test_leaf_touch_invalidates_only_its_specs(self, repro_copy):
        """The PR's acceptance property: edit energy_sweep.py, every
        other spec's fingerprint (hence cache key) is unchanged."""
        modules = _spec_modules()
        before = {
            name: ImportGraph(repro_copy).fingerprint(mod)
            for name, mod in modules.items()
        }
        target = repro_copy / "experiments" / "energy_sweep.py"
        target.write_text(target.read_text() + "\n# touched\n")
        after_graph = ImportGraph(repro_copy)
        changed = {
            name for name, mod in modules.items()
            if after_graph.fingerprint(mod) != before[name]
        }
        assert changed == {"energy_sweep"}

    def test_core_touch_invalidates_every_spec(self, repro_copy):
        """Editing a module everyone depends on cold-starts everyone —
        the closure is an over-approximation, never an under one."""
        modules = _spec_modules()
        graph = ImportGraph(repro_copy)
        target = repro_copy / "runtime" / "spec.py"
        before = {n: graph.fingerprint(m) for n, m in modules.items()}
        target.write_text(target.read_text() + "\n# touched\n")
        after_graph = ImportGraph(repro_copy)
        assert all(
            after_graph.fingerprint(mod) != before[name]
            for name, mod in modules.items()
        )

    def test_spec_closures_exclude_sibling_experiments(self):
        graph = ImportGraph(Path(repro.__file__).resolve().parent)
        closure = graph.closure(_spec_modules()["fig3"])
        siblings = {m for m in closure
                    if m.startswith("repro.experiments.")
                    and m != "repro.experiments"}
        assert "repro.experiments.energy_sweep" not in siblings
        assert "repro.experiments.fig03_footprint" in closure

    def test_api_closure_excludes_experiments_and_serve(self):
        graph = ImportGraph(Path(repro.__file__).resolve().parent)
        closure = graph.closure("repro.api")
        assert not any(m.startswith("repro.experiments.")
                       for m in closure)
        assert not any(m.startswith("repro.serve") for m in closure)
        assert "repro.core" in closure


class TestModuleFingerprint:
    def test_spec_fingerprints_are_dependency_scoped(self):
        fig3 = spec_fingerprint(get_spec("fig3"))
        energy = spec_fingerprint(get_spec("energy_sweep"))
        assert fig3 != energy
        assert fig3 != code_fingerprint()

    def test_unknown_module_falls_back_to_package_digest(self):
        assert module_fingerprint("not.a.repro.module") == \
            code_fingerprint()
        assert module_fingerprint() == code_fingerprint()

    def test_mixed_known_unknown_falls_back(self):
        assert module_fingerprint("repro.api", "not.a.module") == \
            code_fingerprint()

    def test_memoized_and_resettable(self):
        first = module_fingerprint("repro.api")
        assert module_fingerprint("repro.api") == first
        reset_fingerprint_caches()
        assert module_fingerprint("repro.api") == first
        assert code_fingerprint() == code_fingerprint()

    def test_serve_fingerprint_is_api_scoped(self):
        from repro.serve.engine import serve_fingerprint

        assert serve_fingerprint() == module_fingerprint("repro.api")
        assert serve_fingerprint() != code_fingerprint()
