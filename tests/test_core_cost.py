"""Cost-model tests: the objective can never drift from the evaluator.

Three layers of protection:

* consistency — for zoo networks × every policy × a buffer grid, the
  sum of ``TrafficCostModel`` group + boundary costs must equal
  ``compute_traffic(...).total_bytes`` exactly;
* proxy regression — ``mbs1``/``mbs2`` schedules still optimize the
  paper's closed-form objective: traffic totals are pinned to golden
  values captured before the cost-model refactor;
* acceptance — ``mbs-auto`` traffic is at or below ``min(mbs1, mbs2)``
  for every paper network at every Fig. 11 buffer size plus the 16 KiB
  counterexample that used to invert the mbs2 <= mbs1 ordering.
"""
import pytest

from repro.core.cost import ProxyCostModel, TrafficCostModel
from repro.core.occupancy import validate_schedule_occupancy
from repro.core.policies import POLICIES, make_schedule
from repro.core.traffic import compute_traffic
from repro.types import KIB, MIB, WORD_BYTES
from repro.zoo import PAPER_NETWORKS, build

#: Buffer grid for the consistency sweep: the tight-buffer regime that
#: used to break the ordering claim, the paper default, and a size where
#: whole networks fuse into a handful of groups.
CONSISTENCY_BUFFERS = (16 * KIB, 10 * MIB, 40 * MIB)

CONSISTENCY_NETWORKS = (
    "toy_chain", "toy_residual", "toy_inception",
    "alexnet", "resnet18", "resnet50", "inception_v3",
)

FIG11_BUFFERS_MIB = (5, 10, 20, 30, 40)


@pytest.fixture(scope="module")
def nets():
    return {name: build(name) for name in
            set(CONSISTENCY_NETWORKS) | set(PAPER_NETWORKS)}


class TestProxyCostModel:
    def test_group_cost_is_weight_streaming(self):
        m = ProxyCostModel((100, 300), (1, 1), mini_batch=32)
        # sub-batch 4 → 8 iterations → weights touched 4*8 - 1 times
        assert m.group_cost((0, 1), 4, False) == 400 * 31
        assert m.group_cost((1,), 32, False) == 300 * 3

    def test_streaming_group_costs_one_pass(self):
        m = ProxyCostModel((100,), (1,), mini_batch=32)
        assert m.group_cost((0,), 0, False) == 100 * 3

    def test_boundary_cost_formula(self):
        m = ProxyCostModel((1, 1), (500, 700), mini_batch=32)
        assert m.boundary_cost(0, False) == 3.0 * 32 * 500
        assert m.boundary_cost(1, True) == 3.0 * 32 * 700

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            ProxyCostModel((1,), (1, 2), mini_batch=32)

    def test_from_network_matches_block_arrays(self, nets):
        net = nets["toy_residual"]
        m = ProxyCostModel.from_network(net, 32)
        assert len(m.weight_bytes) == len(net.blocks)
        assert m.out_bytes == tuple(
            b.out_shape.bytes(WORD_BYTES) for b in net.blocks
        )


class TestTrafficCostModelConsistency:
    """sum(group + boundary costs) == TrafficReport.total_bytes, always."""

    @pytest.mark.parametrize("net_name", CONSISTENCY_NETWORKS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_schedule_cost_equals_traffic(self, nets, net_name, policy):
        net = nets[net_name]
        for buf in CONSISTENCY_BUFFERS:
            sched = make_schedule(net, policy, buffer_bytes=buf)
            model = TrafficCostModel.for_schedule(net, sched)
            assert model.schedule_cost(sched) == \
                compute_traffic(net, sched).total_bytes, (policy, buf)

    def test_streaming_cost_matches_baseline_block(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "baseline")
        model = TrafficCostModel.for_schedule(net, sched)
        per_block = [
            model.streaming_cost(i) for i in range(len(net.blocks))
        ]
        assert sum(per_block) == compute_traffic(net, sched).total_bytes

    def test_boundary_cost_is_zero(self, nets):
        model = TrafficCostModel(nets["toy_chain"], 32)
        assert model.boundary_cost(0, True) == 0
        assert model.boundary_cost(0, False) == 0

    def test_schedule_cost_rejects_mismatched_environment(self, nets):
        """A mismatched model would misprice silently — reject instead
        (same guard as the latency/energy models)."""
        net = nets["toy_chain"]
        sched = make_schedule(net, "mbs2")
        model = TrafficCostModel(net, mini_batch=sched.mini_batch * 2)
        with pytest.raises(ValueError, match="environment"):
            model.schedule_cost(sched)

    def test_group_cost_memo_is_transparent(self, nets):
        net = nets["toy_residual"]
        model = TrafficCostModel(net, 32, relu_mask=True)
        blocks = tuple(range(len(net.blocks)))
        first = model.group_cost(blocks, 2, True)
        assert model.group_cost(blocks, 2, True) == first  # memo hit
        fresh = TrafficCostModel(net, 32, relu_mask=True)
        assert fresh.group_cost(blocks, 2, True) == first


#: Golden mbs1/mbs2 traffic totals captured from the pre-refactor
#: scheduler (PR 2 tree).  The proxy cost model must keep these
#: byte-identical: the refactor moved the objective behind the
#: CostModel protocol without changing a single coefficient.
GOLDEN_PROXY_TRAFFIC = {
    ("resnet50", "mbs1", 16 * KIB): 14474620656,
    ("resnet50", "mbs1", 1 * MIB): 16645592688,
    ("resnet50", "mbs1", 5 * MIB): 5917550448,
    ("resnet50", "mbs1", 10 * MIB): 5384093232,
    ("resnet50", "mbs1", 40 * MIB): 4962172656,
    ("resnet50", "mbs2", 16 * KIB): 14474620656,
    ("resnet50", "mbs2", 1 * MIB): 17631016560,
    ("resnet50", "mbs2", 5 * MIB): 4197464112,
    ("resnet50", "mbs2", 10 * MIB): 3477297200,
    ("resnet50", "mbs2", 40 * MIB): 2890596592,
    ("resnet50", "mbs1-opt", 40 * MIB): 4947836656,
    ("resnet50", "mbs2-opt", 10 * MIB): 3477297200,
    ("inception_v3", "mbs1", 10 * MIB): 4885136240,
    ("inception_v3", "mbs2", 10 * MIB): 3345442096,
    ("inception_v3", "mbs1-opt", 10 * MIB): 4886840176,
    ("inception_v3", "mbs2-opt", 40 * MIB): 2770105136,
    ("alexnet", "mbs1", 10 * MIB): 596384112,
    ("alexnet", "mbs1-opt", 10 * MIB): 577771888,
    ("toy_residual", "mbs1", 1 * MIB): 11280784,
    ("toy_residual", "mbs2", 1 * MIB): 6824336,
    # The documented tight-buffer counterexample: at 16 KiB the fused
    # MBS2 schedule emits *more* traffic than MBS1 on toy_inception.
    ("toy_inception", "mbs1", 16 * KIB): 4919088,
    ("toy_inception", "mbs2", 16 * KIB): 10049200,
}


@pytest.mark.parametrize(
    "net_name,policy,buf", sorted(GOLDEN_PROXY_TRAFFIC),
    ids=lambda v: str(v),
)
def test_proxy_schedules_reproduce_golden_traffic(nets, net_name, policy, buf):
    net = nets[net_name]
    sched = make_schedule(net, policy, buffer_bytes=buf)
    got = compute_traffic(net, sched).total_bytes
    assert got == GOLDEN_PROXY_TRAFFIC[(net_name, policy, buf)]


class TestMbsAuto:
    def test_never_worse_than_mbs1_or_mbs2_everywhere(self, nets):
        """Acceptance: auto <= min(mbs1, mbs2) for every zoo network at
        every Fig. 11 buffer size plus the 16 KiB counterexample."""
        buffers = [16 * KIB] + [m * MIB for m in FIG11_BUFFERS_MIB]
        extra = ("resnet18", "resnet34", "toy_chain", "toy_residual",
                 "toy_inception")
        for name in tuple(PAPER_NETWORKS) + extra:
            net = nets.get(name) or build(name)
            for buf in buffers:
                auto = compute_traffic(
                    net, make_schedule(net, "mbs-auto", buffer_bytes=buf)
                ).total_bytes
                m1 = compute_traffic(
                    net, make_schedule(net, "mbs1", buffer_bytes=buf)
                ).total_bytes
                m2 = compute_traffic(
                    net, make_schedule(net, "mbs2", buffer_bytes=buf)
                ).total_bytes
                assert auto <= min(m1, m2), (name, buf, auto, m1, m2)

    def test_guarantee_holds_at_fp32_word_size(self, nets):
        """The DP's cost model must follow the caller's word size (the
        precision-ablation pattern), not the default fp16."""
        from repro.core.traffic import TrafficOptions

        opt = TrafficOptions(word_bytes=4)
        for name in ("resnet50", "toy_inception"):
            net = nets[name]
            for buf in (16 * KIB, 5 * MIB):
                traffic = {
                    p: compute_traffic(
                        net,
                        make_schedule(net, p, buffer_bytes=buf, word_bytes=4),
                        opt,
                    ).total_bytes
                    for p in ("mbs-auto", "mbs1", "mbs2")
                }
                assert traffic["mbs-auto"] <= \
                    min(traffic["mbs1"], traffic["mbs2"]), (name, buf)

    def test_fixes_the_16kib_counterexample(self, nets):
        """Where mbs2 used to regress past mbs1, auto matches mbs1."""
        net = nets["toy_inception"]
        auto = compute_traffic(
            net, make_schedule(net, "mbs-auto", buffer_bytes=16 * KIB)
        ).total_bytes
        assert auto == GOLDEN_PROXY_TRAFFIC[("toy_inception", "mbs1", 16 * KIB)]

    def test_strictly_beats_both_on_resnet50_at_5mib(self, nets):
        net = nets["resnet50"]
        auto = compute_traffic(
            net, make_schedule(net, "mbs-auto", buffer_bytes=5 * MIB)
        ).total_bytes
        m1 = compute_traffic(
            net, make_schedule(net, "mbs1", buffer_bytes=5 * MIB)
        ).total_bytes
        m2 = compute_traffic(
            net, make_schedule(net, "mbs2", buffer_bytes=5 * MIB)
        ).total_bytes
        assert auto < m1 and auto < m2

    def test_groups_carry_explicit_modes(self, nets):
        net = nets["inception_v3"]
        sched = make_schedule(net, "mbs-auto", buffer_bytes=5 * MIB)
        for g in sched.groups:
            # every group records its mode explicitly — fused groups the
            # DP's choice, spilled singletons the no-provisioning mode
            # they stream (and were priced) under.
            if g.sub_batch > 0:
                assert g.branch_reuse in (True, False)
            else:
                assert g.branch_reuse is False
        # mixed-mode queries resolve per block, not schedule-wide
        for idx in range(len(net.blocks)):
            assert sched.branch_reuse_of(idx) == \
                sched.group_of_block(idx).branch_reuse

    def test_schedules_fit_the_buffer(self, nets):
        """Occupancy validation under each group's own provisioning mode."""
        for name in ("resnet50", "inception_v3"):
            net = nets[name]
            for buf in (1 * MIB, 10 * MIB):
                sched = make_schedule(net, "mbs-auto", buffer_bytes=buf)
                assert validate_schedule_occupancy(net, sched) == []

    def test_huge_buffer_degenerates_to_single_fused_group(self, nets):
        net = nets["toy_chain"]
        sched = make_schedule(net, "mbs-auto", buffer_bytes=10**12)
        assert len(sched.groups) == 1
        assert sched.groups[0].iterations == 1


class TestMbsAutoLatency:
    """The latency objective: dominance in *seconds*, divergence in bytes.

    ``mbs-auto --objective latency`` optimizes the exact simulated step
    time (:class:`LatencyCostModel` reproduces ``simulate_step`` bit for
    bit), over a search space containing every partition ``mbs1`` and
    ``mbs2`` can emit — so its simulated step time is never above
    ``min(mbs1, mbs2)`` at any buffer size, by the same construction
    that gives the traffic objective its byte guarantee.  The 1e-12
    relative slack only covers float association inside the DP's
    group-sum accumulation.
    """

    #: Acceptance grid: every power-of-4 buffer from 16 KiB to 4 MiB —
    #: the tight-buffer regime where the objectives diverge.
    BUFFERS = tuple(16 * KIB * 4**i for i in range(5))  # 16 KiB .. 4 MiB

    def _times(self, net, buf):
        from repro.wavecore.config import config_for_policy
        from repro.wavecore.simulator import step_time

        cfg = config_for_policy("mbs-auto", buffer_bytes=buf)
        return {
            label: step_time(
                net,
                make_schedule(net, policy, buffer_bytes=buf,
                              objective=objective),
                cfg,
            )
            for label, policy, objective in (
                ("auto-lat", "mbs-auto", "latency"),
                ("auto", "mbs-auto", "traffic"),
                ("mbs1", "mbs1", "traffic"),
                ("mbs2", "mbs2", "traffic"),
            )
        }

    def test_never_slower_than_mbs1_or_mbs2_everywhere(self, nets):
        """Acceptance: step time of mbs-auto(latency) <= min(mbs1, mbs2)
        for every zoo network across 16 KiB – 4096 KiB."""
        extra = ("resnet18", "resnet34", "toy_chain", "toy_residual",
                 "toy_inception")
        for name in tuple(PAPER_NETWORKS) + extra:
            net = nets.get(name) or build(name)
            for buf in self.BUFFERS:
                t = self._times(net, buf)
                bound = min(t["mbs1"], t["mbs2"], t["auto"])
                assert t["auto-lat"] <= bound * (1 + 1e-12), \
                    (name, buf, t)

    def test_objectives_genuinely_diverge_on_tight_buffers(self, nets):
        """Weight double buffering makes bytes-optimal != time-optimal:
        somewhere in the tight-buffer regime the latency objective is
        strictly faster than the byte-optimal adaptive schedule, and
        pays strictly more DRAM traffic for it."""
        net = nets["toy_inception"]
        diverged = False
        for buf in (16 * KIB, 64 * KIB, 256 * KIB):
            lat = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                objective="latency")
            tra = make_schedule(net, "mbs-auto", buffer_bytes=buf)
            t = self._times(net, buf)
            bytes_lat = compute_traffic(net, lat).total_bytes
            bytes_tra = compute_traffic(net, tra).total_bytes
            assert bytes_tra <= bytes_lat  # traffic DP stays byte-optimal
            if t["auto-lat"] < t["auto"] * (1 - 1e-9):
                assert bytes_lat > bytes_tra
                diverged = True
        assert diverged

    def test_latency_schedules_fit_the_buffer(self, nets):
        for name in ("resnet50", "inception_v3"):
            net = nets[name]
            for buf in (1 * MIB, 10 * MIB):
                sched = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                      objective="latency")
                assert validate_schedule_occupancy(net, sched) == []

    def test_traffic_model_still_exact_on_latency_schedules(self, nets):
        """Cross-model consistency: the byte-accurate model prices a
        latency-objective schedule exactly (the refactor kept
        TrafficCostModel bit-exact for every schedule shape)."""
        net = nets["toy_inception"]
        for buf in (16 * KIB, 1 * MIB, 10 * MIB):
            sched = make_schedule(net, "mbs-auto", buffer_bytes=buf,
                                  objective="latency")
            model = TrafficCostModel.for_schedule(net, sched)
            assert model.schedule_cost(sched) == \
                compute_traffic(net, sched).total_bytes

    def test_objective_recorded_on_schedule(self, nets):
        net = nets["toy_chain"]
        lat = make_schedule(net, "mbs-auto", objective="latency")
        assert lat.objective == "latency"
        assert "objective=latency" in lat.describe()
        assert make_schedule(net, "mbs-auto").objective == "traffic"

    def test_invalid_objective_combinations_raise(self, nets):
        net = nets["toy_chain"]
        with pytest.raises(ValueError, match="unknown objective"):
            make_schedule(net, "mbs-auto", objective="joules")
        for objective in ("latency", "latency+traffic", "energy"):
            with pytest.raises(ValueError, match="requires the adaptive"):
                make_schedule(net, "mbs2", objective=objective)

    def test_cfg_rejected_for_traffic_objective(self, nets):
        from repro.wavecore.config import DEFAULT_CONFIG

        with pytest.raises(ValueError, match="cfg only parameterizes"):
            make_schedule(nets["toy_chain"], "mbs-auto", cfg=DEFAULT_CONFIG)

    def test_dominance_holds_on_other_memory_systems(self, nets):
        """The latency DP must price the hardware it is simulated on —
        evaluate() passes the cfg through (regression: the DP used to
        assume HBM2 whatever memory the caller selected, so slower
        memories could invert the guarantee)."""
        from repro.wavecore.config import config_for_policy
        from repro.wavecore.simulator import step_time

        net = nets["toy_inception"]
        for memory in ("LPDDR4", "GDDR5"):
            for buf in (64 * KIB, 1 * MIB):
                cfg = config_for_policy(
                    "mbs-auto", memory=memory, buffer_bytes=buf
                )
                lat = make_schedule(
                    net, "mbs-auto", buffer_bytes=buf,
                    objective="latency", cfg=cfg,
                )
                t_lat = step_time(net, lat, cfg)
                for pol in ("mbs1", "mbs2", "mbs-auto"):
                    other = make_schedule(net, pol, buffer_bytes=buf)
                    bound = step_time(net, other, cfg) * (1 + 1e-12)
                    assert t_lat <= bound, (memory, buf, pol)
