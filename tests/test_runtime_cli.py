"""``mbs-repro`` CLI: subcommand behavior, exit codes, and the
parallel-vs-serial / cache-hit acceptance guarantees."""
import json

import pytest

from repro.experiments.runner import main


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestExitCodes:
    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 0
        assert "Artifacts" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["nope"]) == 2

    def test_unknown_only_selection(self, capsys, cache_dir):
        assert main(["all", "--only", "nope", "--cache-dir", cache_dir]) == 2

    def test_unknown_run_parameter(self, capsys, cache_dir):
        assert main(["run", "fig3", "--set", "bogus=1",
                     "--cache-dir", cache_dir]) == 2

    def test_bad_set_syntax(self, capsys, cache_dir):
        assert main(["run", "fig3", "--set", "novalue",
                     "--cache-dir", cache_dir]) == 2

    def test_sweep_without_axes(self, capsys, cache_dir):
        assert main(["sweep", "tab2", "--cache-dir", cache_dir]) == 2

    def test_run_unknown_spec(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_argparse_usage_error(self, capsys):
        assert main(["all", "--jobs"]) == 2

    def test_failing_task_exits_one(self, capsys, cache_dir):
        # an unknown zoo network makes the produce-fn raise inside the engine
        assert main(["run", "fig3", "--set", "net_name='no_such_net'",
                     "--cache-dir", cache_dir]) == 1

    def test_mistyped_set_value_fails_inside_engine(self, capsys, cache_dir):
        # a well-formed --set whose value has the wrong type is not a
        # usage error: the produce-fn raises and the task fails (exit 1)
        assert main(["run", "fig3", "--set", "buffer_mib='ten'",
                     "--cache-dir", cache_dir]) == 1
        assert main(["run", "latency_sweep", "--set", "buffers_mib=0",
                     "--cache-dir", cache_dir]) == 1

    def test_sweep_unknown_axis_is_usage_error(self, capsys, cache_dir):
        assert main(["sweep", "fig3", "--set", "bogus=1,2",
                     "--cache-dir", cache_dir]) == 2

    def test_sweep_bad_set_syntax(self, capsys, cache_dir):
        assert main(["sweep", "fig3", "--set", "novalue",
                     "--cache-dir", cache_dir]) == 2

    def test_legacy_dispatch_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_schedule_command(self, capsys):
        assert main(["schedule", "resnet50"]) == 0
        out = capsys.readouterr().out
        assert "DRAM traffic/step" in out
        assert "simulated step time" in out
        assert "simulated step energy" in out

    def test_schedule_needs_network(self, capsys):
        assert main(["schedule"]) == 2

    def test_schedule_latency_objective(self, capsys):
        assert main(["schedule", "toy_inception", "mbs-auto", "1",
                     "--objective", "latency"]) == 0
        out = capsys.readouterr().out
        assert "objective=latency" in out
        assert "simulated step time" in out

    def test_schedule_energy_objective(self, capsys):
        assert main(["schedule", "toy_inception", "mbs-auto", "1",
                     "--objective", "energy"]) == 0
        out = capsys.readouterr().out
        assert "objective=energy" in out
        assert "simulated step energy" in out

    def test_schedule_lexicographic_objective(self, capsys):
        assert main(["schedule", "toy_inception", "mbs-auto", "1",
                     "--objective", "latency+traffic"]) == 0
        assert "objective=latency+traffic" in capsys.readouterr().out

    @pytest.mark.parametrize("objective",
                             ["latency", "latency+traffic", "energy"])
    def test_schedule_rejects_objective_for_fixed_policy(
            self, capsys, objective):
        assert main(["schedule", "toy_chain", "mbs2", "10",
                     "--objective", objective]) == 2
        assert "requires the adaptive" in capsys.readouterr().err

    def test_schedule_rejects_unknown_objective(self, capsys):
        # argparse rejects it against the OBJECTIVES choices list
        assert main(["schedule", "toy_chain", "mbs-auto", "10",
                     "--objective", "joules"]) == 2

    def test_schedule_rejects_unknown_policy(self, capsys):
        assert main(["schedule", "toy_chain", "mbs3"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_schedule_rejects_non_integer_buffer(self, capsys):
        assert main(["schedule", "toy_chain", "mbs2", "ten"]) == 2

    def test_schedule_unknown_network_is_usage_error(self, capsys):
        assert main(["schedule", "resnet5"]) == 2
        assert "unknown network" in capsys.readouterr().err

    def test_schedule_json_emits_wire_object(self, capsys):
        import json

        from repro import api

        assert main(["schedule", "toy_chain", "mbs-auto", "1",
                     "--json"]) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire == api.price("toy_chain", "mbs-auto",
                                 buffer_bytes=2**20).to_wire()

    def test_schedule_graph_file(self, capsys, tmp_path):
        from repro.graph.serialize import dumps_network
        from repro.zoo import build

        path = tmp_path / "net.json"
        path.write_text(dumps_network(build("toy_residual")))
        assert main(["schedule", "--graph", str(path), "mbs2", "1"]) == 0
        out = capsys.readouterr().out
        assert "mbs2 schedule for toy_residual" in out

    def test_schedule_graph_same_cost_as_zoo_name(self, capsys, tmp_path):
        import json

        from repro.graph.serialize import dumps_network
        from repro.zoo import build

        path = tmp_path / "net.json"
        path.write_text(dumps_network(build("toy_inception")))
        assert main(["schedule", "--graph", str(path), "mbs-auto", "1",
                     "--json"]) == 0
        by_graph = json.loads(capsys.readouterr().out)
        assert main(["schedule", "toy_inception", "mbs-auto", "1",
                     "--json"]) == 0
        by_name = json.loads(capsys.readouterr().out)
        assert by_graph == by_name

    def test_schedule_graph_malformed_is_exit_1(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1')
        assert main(["schedule", "--graph", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_schedule_graph_schema_violation_is_exit_1(
            self, capsys, tmp_path):
        import json as jsonlib

        from repro.graph.serialize import network_to_dict
        from repro.zoo import build

        wire = network_to_dict(build("toy_chain"))
        wire["blocks"][0]["branches"][0]["layers"][0]["kind"] = "lstm"
        path = tmp_path / "bad.json"
        path.write_text(jsonlib.dumps(wire))
        assert main(["schedule", "--graph", str(path)]) == 1
        assert "unknown layer kind" in capsys.readouterr().err

    def test_schedule_graph_missing_file_is_exit_1(self, capsys, tmp_path):
        assert main(["schedule", "--graph",
                     str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_sweep_schedule_command(self, capsys):
        assert main(["sweep-schedule", "toy_inception", "mbs-auto",
                     "--buffers", "0.1,0.5,1"]) == 0
        out = capsys.readouterr().out
        assert "sweep-schedule — toy_inception mbs-auto" in out
        assert "DRAM GiB/step" in out
        assert "group-price memo" in out and "hit rate" in out

    def test_sweep_schedule_hardware_objective(self, capsys):
        assert main(["sweep-schedule", "toy_inception", "mbs-auto",
                     "--buffers", "0.1,1", "--objective", "energy"]) == 0
        assert "objective=energy" in capsys.readouterr().out

    def test_sweep_schedule_needs_network(self, capsys):
        assert main(["sweep-schedule"]) == 2

    def test_sweep_schedule_rejects_bad_buffers(self, capsys):
        assert main(["sweep-schedule", "toy_chain", "mbs2",
                     "--buffers", "ten"]) == 2

    def test_sweep_schedule_unknown_network_is_usage_error(self, capsys):
        assert main(["sweep-schedule", "resnet5"]) == 2
        assert "unknown network" in capsys.readouterr().err

    def test_sweep_schedule_rejects_objective_for_fixed_policy(self, capsys):
        assert main(["sweep-schedule", "toy_chain", "mbs2",
                     "--objective", "latency"]) == 2
        assert "requires the adaptive" in capsys.readouterr().err

    def test_bench_profile_prints_hot_functions(self, capsys):
        assert main(["bench", "--only", "tab2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "tab2 (cProfile, cumulative)" in out
        assert "cumtime" in out

    def test_fingerprint_prints_cache_key_component(self, capsys):
        from repro.runtime import code_fingerprint

        assert main(["fingerprint"]) == 0
        assert capsys.readouterr().out.strip() == code_fingerprint()

    def test_fingerprint_spec_prints_dependency_scoped_digest(
            self, capsys):
        from repro.runtime import code_fingerprint, get_spec, \
            spec_fingerprint

        assert main(["fingerprint", "--spec", "energy_sweep"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == spec_fingerprint(get_spec("energy_sweep"))
        assert out != code_fingerprint()

    def test_fingerprint_unknown_spec_is_usage_error(self, capsys):
        assert main(["fingerprint", "--spec", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_bad_shard_is_usage_error(self, capsys, cache_dir):
        for bad in ("2/2", "3/2", "-1/2", "0/0", "x/2", "1"):
            assert main(["sweep", "fig3", "--set", "mini_batch=16,32",
                         f"--shard={bad}", "--cache-dir", cache_dir]) == 2
            assert "--shard expects" in capsys.readouterr().err


class TestRunSubcommand:
    def test_run_then_cache_hit_replays_render(self, capsys, cache_dir):
        assert main(["run", "tab2", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "Tab. 2" in first and "] ran" in first
        assert main(["run", "tab2", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "Tab. 2" in second and "] cached" in second

    def test_no_cache_forces_recompute(self, capsys, cache_dir):
        main(["run", "tab2", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["run", "tab2", "--cache-dir", cache_dir,
                     "--no-cache"]) == 0
        assert "] ran" in capsys.readouterr().out

    def test_set_overrides_params(self, capsys, cache_dir):
        assert main(["run", "fig3", "--set", "buffer_mib=20",
                     "--cache-dir", cache_dir]) == 0
        assert "20 MiB buffer" in capsys.readouterr().out


class TestListBenchSweep:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "scaling" in out

    def test_bench_writes_json(self, capsys, tmp_path, cache_dir):
        path = tmp_path / "bench.json"
        assert main(["bench", "--only", "tab2,fig3", "--json", str(path),
                     "--cache-dir", cache_dir]) == 0
        payload = json.loads(path.read_text())
        assert [p["artifact"] for p in payload] == ["tab2", "fig3"]
        assert all(p["status"] == "ran" for p in payload)

    def test_sweep_grid_and_cache_sharing(self, capsys, cache_dir):
        argv = ["sweep", "fig3", "--set", "mini_batch=16,32",
                "--set", "net_name='resnet50'", "--jobs", "2",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("cached") >= 2

    def test_export_subcommand(self, capsys, tmp_path, cache_dir,
                               monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.ALL_EXPERIMENTS",
            {k: v for k, v in __import__(
                "repro.experiments", fromlist=["ALL_EXPERIMENTS"]
            ).ALL_EXPERIMENTS.items() if k in ("fig3", "tab2")},
        )
        path = tmp_path / "results.json"
        assert main(["export", str(path), "--cache-dir", cache_dir]) == 0
        assert set(json.loads(path.read_text())) == {"fig3", "tab2"}


SMOKE = "fig3,fig4,tab2,precision,scaling"


class TestAllSubcommand:
    def test_out_manifests_and_summary(self, capsys, tmp_path, cache_dir):
        out = tmp_path / "artifacts"
        assert main(["all", "--only", SMOKE, "--jobs", "2", "--summary",
                     "--out", str(out), "--cache-dir", cache_dir]) == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == sorted(f"{n}.json" for n in SMOKE.split(","))
        manifest = json.loads((out / "tab2.json").read_text())
        assert set(manifest) >= {"spec", "key", "fingerprint", "params",
                                 "artifact", "rendered"}

    def test_render_from_cache_replays_without_recompute(
            self, capsys, tmp_path, cache_dir):
        out = tmp_path / "artifacts"
        assert main(["all", "--only", "tab2", "--summary",
                     "--out", str(out), "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # replay: renders come back from the manifest and diff matches
        assert main(["all", "--only", "tab2", "--render-from-cache",
                     "--out", str(out), "--cache-dir", cache_dir]) == 0
        replay = capsys.readouterr().out
        assert "Tab. 2" in replay and "match" in replay

    def test_render_from_cache_rejects_no_cache(self, capsys, cache_dir):
        assert main(["all", "--only", "tab2", "--render-from-cache",
                     "--no-cache", "--cache-dir", cache_dir]) == 2
        assert "contradicts" in capsys.readouterr().err

    def test_render_from_cache_reports_missing_manifest(
            self, capsys, cache_dir):
        assert main(["all", "--only", "tab2", "--render-from-cache",
                     "--cache-dir", cache_dir]) == 1
        assert "missing" in capsys.readouterr().out

    def test_render_from_cache_detects_stale_out_file(
            self, capsys, tmp_path, cache_dir):
        out = tmp_path / "artifacts"
        assert main(["all", "--only", "tab2", "--summary",
                     "--out", str(out), "--cache-dir", cache_dir]) == 0
        (out / "tab2.json").write_text("{}\n")
        capsys.readouterr()
        assert main(["all", "--only", "tab2", "--render-from-cache",
                     "--summary", "--out", str(out),
                     "--cache-dir", cache_dir]) == 1
        assert "differs" in capsys.readouterr().out

    def test_render_from_cache_flags_absent_out_file(
            self, capsys, tmp_path, cache_dir):
        out = tmp_path / "artifacts"
        out.mkdir()
        assert main(["all", "--only", "tab2", "--summary",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["all", "--only", "tab2", "--render-from-cache",
                     "--summary", "--out", str(out),
                     "--cache-dir", cache_dir]) == 1
        assert "no-file" in capsys.readouterr().out

    def test_latency_sweep_manifest_parity_across_jobs(self, tmp_path):
        """Acceptance: the latency_sweep manifest is byte-identical
        between `--jobs 1` and `--jobs 4`."""
        out4, out1 = tmp_path / "j4", tmp_path / "j1"
        base = ["all", "--only", "latency_sweep", "--summary"]
        assert main(base + ["--jobs", "4", "--out", str(out4),
                            "--cache-dir", str(tmp_path / "c4")]) == 0
        assert main(base + ["--jobs", "1", "--out", str(out1),
                            "--cache-dir", str(tmp_path / "c1")]) == 0
        assert (out4 / "latency_sweep.json").read_bytes() == \
            (out1 / "latency_sweep.json").read_bytes()

    def test_parallel_serial_parity_and_cache_hits(self, capsys, tmp_path):
        """Acceptance: `all --jobs 4` == serial manifests byte-for-byte,
        and a second invocation completes via cache hits only."""
        out4, out1 = tmp_path / "j4", tmp_path / "j1"
        c4, c1 = str(tmp_path / "c4"), str(tmp_path / "c1")
        base = ["all", "--only", SMOKE, "--summary"]
        assert main(base + ["--jobs", "4", "--out", str(out4),
                            "--cache-dir", c4]) == 0
        assert main(base + ["--jobs", "1", "--out", str(out1),
                            "--cache-dir", c1]) == 0
        files4 = sorted(p.name for p in out4.iterdir())
        assert files4 == sorted(p.name for p in out1.iterdir())
        for name in files4:
            assert (out4 / name).read_bytes() == (out1 / name).read_bytes()

        capsys.readouterr()
        assert main(base + ["--jobs", "4", "--cache-dir", c4]) == 0
        summary = capsys.readouterr().out
        run_lines = [
            ln for ln in summary.splitlines()
            if ln.split() and ln.split()[0] in SMOKE.split(",")
        ]
        assert len(run_lines) == len(SMOKE.split(","))
        assert all(ln.split()[1] == "cached" for ln in run_lines)


GRID = ["--set", "net_name='resnet50'", "--set", "mini_batch=16,32",
        "--set", "buffer_mib=5,10"]


class TestShardMergeResume:
    def sweep(self, tmp_path, tag, *extra):
        args = (["sweep", "fig3"] + GRID
                + ["--cache-dir", str(tmp_path / f"cache-{tag}"),
                   "--out", str(tmp_path / f"out-{tag}")] + list(extra))
        return main(args)

    def test_shards_merge_byte_identical_to_single_process(
            self, capsys, tmp_path):
        """Acceptance: `--shard 0/2` + `--shard 1/2`, merged, is
        byte-identical to the one-process `--jobs 1` reference run."""
        assert self.sweep(tmp_path, "full", "--jobs", "1") == 0
        assert self.sweep(tmp_path, "s0", "--shard", "0/2") == 0
        assert self.sweep(tmp_path, "s1", "--shard", "1/2") == 0
        capsys.readouterr()
        merged = tmp_path / "merged"
        assert main(["merge", str(tmp_path / "out-s0"),
                     str(tmp_path / "out-s1"), "--out", str(merged),
                     "--check", str(tmp_path / "out-full")]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        names = sorted(p.name for p in merged.iterdir())
        assert names == sorted(
            p.name for p in (tmp_path / "out-full").iterdir()
        )
        assert len(names) == 4

    def test_shards_partition_the_grid(self, capsys, tmp_path):
        assert self.sweep(tmp_path, "s0", "--shard", "0/2") == 0
        assert self.sweep(tmp_path, "s1", "--shard", "1/2") == 0
        n0 = len(list((tmp_path / "out-s0").iterdir()))
        n1 = len(list((tmp_path / "out-s1").iterdir()))
        assert n0 == 2 and n1 == 2
        shared = {p.name for p in (tmp_path / "out-s0").iterdir()} & \
            {p.name for p in (tmp_path / "out-s1").iterdir()}
        assert shared == set()

    def test_merge_conflict_fails(self, capsys, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "same.json").write_bytes(b'{"v": 1}\n')
        (b / "same.json").write_bytes(b'{"v": 2}\n')
        assert main(["merge", str(a), str(b),
                     "--out", str(tmp_path / "m")]) == 1
        assert "conflict" in capsys.readouterr().err

    def test_merge_check_detects_divergence(self, capsys, tmp_path):
        a, ref = tmp_path / "a", tmp_path / "ref"
        a.mkdir(), ref.mkdir()
        (a / "x.json").write_bytes(b'{"v": 1}\n')
        (ref / "x.json").write_bytes(b'{"v": 1}\n')
        (ref / "y.json").write_bytes(b'{"v": 2}\n')
        assert main(["merge", str(a), "--out", str(tmp_path / "m"),
                     "--check", str(ref)]) == 1
        assert "missing from merge: y.json" in capsys.readouterr().err

    def test_merge_missing_dir_is_usage_error(self, capsys, tmp_path):
        assert main(["merge", str(tmp_path / "nope"),
                     "--out", str(tmp_path / "m")]) == 2

    def test_resume_skips_cached_points(self, capsys, tmp_path):
        assert self.sweep(tmp_path, "r", "--jobs", "1") == 0
        capsys.readouterr()
        assert self.sweep(tmp_path, "r", "--resume") == 0
        out = capsys.readouterr().out
        assert "resume-skipped=4" in out
        assert out.count("skipped") >= 4
        assert "ran" not in [
            ln.split()[1] for ln in out.splitlines()
            if ln.split() and ln.split()[0].startswith("buffer_mib=")
        ]

    def test_resume_runs_only_the_missing_points(self, capsys, tmp_path):
        cache = str(tmp_path / "cache-r")
        assert main(["sweep", "fig3"] + GRID
                    + ["--shard", "0/2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["sweep", "fig3"] + GRID
                    + ["--resume", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "2 of 4 point(s)" in out and "resume-skipped=2" in out
