"""Shared constants and primitive value types used across the library.

The paper evaluates with 16-bit floating point storage for features and
weights (mixed precision: 16-bit multiply, 32-bit accumulate).  All byte
accounting in the scheduler and simulator uses these constants so that a
single knob controls the precision assumptions.
"""
from __future__ import annotations

from dataclasses import dataclass

#: Bytes per stored word (features, weights) — fp16 per the paper (Sec. 5).
WORD_BYTES: int = 2

#: Bytes per accumulator word (partial sums are kept in 32-bit).
ACCUM_BYTES: int = 4

#: Bits per ReLU-gradient mask entry under MBS (Sec. 3, "Back Propagation").
RELU_MASK_BITS: int = 1

#: Bytes per max-pool argmax index stored for the backward pass.
POOL_INDEX_BYTES: int = 1

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class Shape:
    """Per-sample feature-map shape in CHW layout.

    ``Shape(0, 0, 0)`` is never valid; fully-connected features are
    represented as ``Shape(c, 1, 1)``.
    """

    c: int
    h: int
    w: int

    def __post_init__(self) -> None:
        if self.c <= 0 or self.h <= 0 or self.w <= 0:
            raise ValueError(f"invalid shape {self!r}: all dims must be positive")

    @property
    def elems(self) -> int:
        """Number of scalar elements per sample."""
        return self.c * self.h * self.w

    def bytes(self, word_bytes: int = WORD_BYTES) -> int:
        """Storage footprint per sample in bytes."""
        return self.elems * word_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.c}x{self.h}x{self.w}"


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)
