"""Execution tracing: the "hooks" validation layer.

Wraps the NumPy substrate to record the *actual* tensor volumes that flow
through every layer during a real forward/backward pass, then derives the
DRAM traffic a conventional (Baseline) schedule would generate from those
volumes.  Tests assert this agrees exactly with the analytic model of
:mod:`repro.core.traffic` — closing the loop between the scheduler's
byte accounting and genuinely executed shapes.
"""
from repro.trace.hooks import TraceEvent, trace_training_step
from repro.trace.analyze import baseline_traffic_from_trace, crosscheck_baseline

__all__ = [
    "TraceEvent",
    "baseline_traffic_from_trace",
    "crosscheck_baseline",
    "trace_training_step",
]
