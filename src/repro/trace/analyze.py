"""Derive conventional-schedule DRAM traffic from an execution trace.

For a *chain* network (no multi-branch modules) under the Baseline
schedule, every layer streams its input from DRAM and its output back,
so the schedule-independent tensor volumes recorded by the tracer
determine the traffic exactly:

========  =====================================================
FEAT_RD   Σ inputs (normalization layers read theirs twice)
FEAT_WR   Σ outputs
GRAD_RD   Σ output grads, plus one re-read per conv/FC backward
GRAD_WR   Σ input grads (none for the first layer)
CHK_RD    conv/FC inputs + 2× norm inputs + activation outputs
WEIGHT    params once per phase; WGRAD written once
MASK      max-pool indices written and read
========  =====================================================
"""
from __future__ import annotations

from repro.core.traffic import (
    Category,
    TrafficOptions,
    compute_traffic,
)
from repro.core.policies import make_schedule
from repro.graph.layers import Pool, PoolKind
from repro.graph.network import Network
from repro.trace.hooks import TraceEvent
from repro.types import POOL_INDEX_BYTES, WORD_BYTES


def baseline_traffic_from_trace(
    net: Network,
    events: list[TraceEvent],
    word_bytes: int = WORD_BYTES,
    norm_double_read: bool = True,
) -> dict[Category, int]:
    """Expected Baseline-schedule traffic per category, from real shapes."""
    maxpool_names = {
        l.name
        for l in net.all_layers()
        if isinstance(l, Pool) and l.pool is PoolKind.MAX
    }
    out: dict[Category, int] = {c: 0 for c in Category}
    wb = word_bytes
    fwd = [e for e in events if e.phase == "forward"]
    bwd = [e for e in events if e.phase == "backward"]
    first_layer = fwd[0].layer if fwd else None

    for e in fwd:
        factor = 2 if (e.kind == "norm" and norm_double_read) else 1
        out[Category.FEAT_RD] += factor * e.in_elems * wb
        out[Category.FEAT_WR] += e.out_elems * wb
        if e.kind in ("conv", "fc"):
            out[Category.WEIGHT_RD] += e.param_elems * wb
        elif e.kind == "norm":
            out[Category.PARAM] += e.param_elems * wb
        if e.layer in maxpool_names:
            out[Category.MASK_WR] += e.out_elems * POOL_INDEX_BYTES

    for e in bwd:
        out[Category.GRAD_RD] += e.out_elems * wb
        if e.layer != first_layer:
            out[Category.GRAD_WR] += e.in_elems * wb
        if e.kind in ("conv", "fc"):
            out[Category.GRAD_RD] += e.out_elems * wb  # second backward GEMM
            out[Category.WEIGHT_RD] += e.param_elems * wb
            out[Category.WGRAD_WR] += e.param_elems * wb
            out[Category.CHK_RD] += e.in_elems * wb
        elif e.kind == "norm":
            factor = 2 if norm_double_read else 1
            out[Category.CHK_RD] += factor * e.in_elems * wb
            out[Category.PARAM] += 2 * e.param_elems * wb
        elif e.kind == "act":
            out[Category.CHK_RD] += e.out_elems * wb
        if e.layer in maxpool_names:
            out[Category.MASK_RD] += e.out_elems * POOL_INDEX_BYTES
    return {c: v for c, v in out.items() if v}


def crosscheck_baseline(
    net: Network,
    events: list[TraceEvent],
    mini_batch: int,
) -> tuple[dict[Category, int], dict[Category, int]]:
    """(analytic, traced) category totals for the Baseline schedule.

    Only valid for chain networks — multi-branch merge traffic has no
    per-module trace event to align with.
    """
    if any(b.is_module for b in net.blocks):
        raise ValueError("crosscheck_baseline requires a chain network")
    sched = make_schedule(net, "baseline", mini_batch=mini_batch)
    analytic = compute_traffic(net, sched, TrafficOptions()).by_category()
    traced = baseline_traffic_from_trace(net, events)
    return analytic, traced
