"""Record per-layer tensor volumes from a real training step."""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.loss import softmax_cross_entropy
from repro.nn.model import NetworkModel


@dataclass(frozen=True)
class TraceEvent:
    """One layer execution: actual element counts that moved."""

    layer: str
    kind: str
    phase: str  # "forward" | "backward"
    in_elems: int
    out_elems: int
    param_elems: int


def trace_training_step(
    model: NetworkModel, x: np.ndarray, y: np.ndarray
) -> list[TraceEvent]:
    """Run one full training step, recording every module's data flow.

    Modules are temporarily wrapped; the numerical results are identical
    to an untraced step (the wrapper only observes shapes).
    """
    events: list[TraceEvent] = []
    originals: list[tuple[object, object, object]] = []

    for module in model.modules():
        spec = module.spec
        param_elems = sum(p.size for p in module.params.values())
        fwd, bwd = module.forward, module.backward

        def make_fwd(m=module, s=spec, f=fwd, pe=param_elems):
            def traced_forward(xx, training=True):
                yy = f(xx, training)
                events.append(
                    TraceEvent(
                        layer=s.name,
                        kind=s.kind.value,
                        phase="forward",
                        in_elems=int(np.prod(xx.shape)),
                        out_elems=int(np.prod(yy.shape)),
                        param_elems=pe,
                    )
                )
                return yy

            return traced_forward

        def make_bwd(m=module, s=spec, b=bwd, pe=param_elems):
            def traced_backward(dy):
                dx = b(dy)
                events.append(
                    TraceEvent(
                        layer=s.name,
                        kind=s.kind.value,
                        phase="backward",
                        in_elems=int(np.prod(dx.shape)),
                        out_elems=int(np.prod(dy.shape)),
                        param_elems=pe,
                    )
                )
                return dx

            return traced_backward

        originals.append((module, fwd, bwd))
        module.forward = make_fwd()
        module.backward = make_bwd()

    try:
        logits = model.forward(x, training=True)
        _, dlogits, _ = softmax_cross_entropy(logits, y)
        model.backward(dlogits)
    finally:
        for module, fwd, bwd in originals:
            module.forward = fwd
            module.backward = bwd
    return events
