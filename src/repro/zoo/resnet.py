"""ResNet-50/101/152 (He et al., 2016), bottleneck variant.

Layer sizing follows the published architecture (and torchvision's
parameterization): stride-2 down-sampling on the 3×3 conv of the first
bottleneck of each stage, 1×1 projection shortcuts at stage boundaries,
no conv biases, per-channel norm affine parameters, final 1000-way FC.
ResNet-50 lands on the published 25,557,032 trainable parameters.
"""
from __future__ import annotations

from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import Activation, NormKind
from repro.graph.network import Network
from repro.types import Shape
from repro.zoo.common import ChainBuilder

#: (blocks per stage) for each supported depth.
_STAGES = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}

#: Depths built from basic (2×3×3) blocks instead of bottlenecks.
_BASIC_DEPTHS = (18, 34)


def _bottleneck(
    name: str,
    in_shape: Shape,
    width: int,
    stride: int,
    norm: NormKind | None,
) -> Block:
    """One bottleneck residual block: 1×1 → 3×3 → 1×1 with shortcut."""
    out_channels = width * 4
    main = ChainBuilder(prefix=f"{name}.main", shape=in_shape, norm=norm)
    main.cnr(width, 1)
    main.cnr(width, 3, stride=stride, padding=1)
    main.cn(out_channels, 1)
    main_branch = Branch(main.take())

    needs_projection = stride != 1 or in_shape.c != out_channels
    if needs_projection:
        shortcut = ChainBuilder(prefix=f"{name}.shortcut", shape=in_shape, norm=norm)
        shortcut.cn(out_channels, 1, stride=stride)
        shortcut_branch = Branch(shortcut.take())
    else:
        shortcut_branch = Branch()  # identity

    merged = main.shape
    post = (Activation(name=f"{name}.relu", in_shape=merged),)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=(main_branch, shortcut_branch),
        merge=MergeKind.ADD,
        post_merge=post,
    )


def _basic_block(
    name: str,
    in_shape: Shape,
    width: int,
    stride: int,
    norm: NormKind | None,
) -> Block:
    """One basic residual block: 3×3 → 3×3 with shortcut (ResNet-18/34)."""
    main = ChainBuilder(prefix=f"{name}.main", shape=in_shape, norm=norm)
    main.cnr(width, 3, stride=stride, padding=1)
    main.cn(width, 3, padding=1)
    main_branch = Branch(main.take())

    if stride != 1 or in_shape.c != width:
        shortcut = ChainBuilder(prefix=f"{name}.shortcut", shape=in_shape,
                                norm=norm)
        shortcut.cn(width, 1, stride=stride)
        shortcut_branch = Branch(shortcut.take())
    else:
        shortcut_branch = Branch()

    post = (Activation(name=f"{name}.relu", in_shape=main.shape),)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=(main_branch, shortcut_branch),
        merge=MergeKind.ADD,
        post_merge=post,
    )


def resnet(
    depth: int,
    norm: NormKind | None = NormKind.GROUP,
    num_classes: int = 1000,
    in_shape: Shape = Shape(3, 224, 224),
    mini_batch: int = 32,
) -> Network:
    """Build a ResNet of the given depth (18/34 basic, 50/101/152
    bottleneck)."""
    if depth not in _STAGES:
        raise ValueError(f"unsupported ResNet depth {depth}; choose {sorted(_STAGES)}")

    blocks: list[Block] = []
    stem = ChainBuilder(prefix="conv1", shape=in_shape, norm=norm)
    stem.cnr(64, 7, stride=2, padding=3)
    blocks.append(chain_block("conv1", in_shape, list(stem.take())))

    pool = ChainBuilder(prefix="pool1", shape=stem.shape, norm=norm)
    pool.max_pool(kernel=3, stride=2, padding=1)
    blocks.append(chain_block("pool1", stem.shape, list(pool.take())))

    shape = pool.shape
    widths = (64, 128, 256, 512)
    make_block = _basic_block if depth in _BASIC_DEPTHS else _bottleneck
    for stage_idx, (width, count) in enumerate(zip(widths, _STAGES[depth]), start=2):
        for block_idx in range(count):
            stride = 2 if (stage_idx > 2 and block_idx == 0) else 1
            block = make_block(
                name=f"conv{stage_idx}_{block_idx + 1}",
                in_shape=shape,
                width=width,
                stride=stride,
                norm=norm,
            )
            blocks.append(block)
            shape = block.out_shape

    head = ChainBuilder(prefix="head", shape=shape, norm=norm)
    head.global_avg_pool()
    head.fc(num_classes)
    blocks.append(chain_block("head", shape, list(head.take())))

    return Network(
        name=f"resnet{depth}",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )


def resnet18(**kwargs) -> Network:
    return resnet(18, **kwargs)


def resnet34(**kwargs) -> Network:
    return resnet(34, **kwargs)


def resnet50(**kwargs) -> Network:
    return resnet(50, **kwargs)


def resnet101(**kwargs) -> Network:
    return resnet(101, **kwargs)


def resnet152(**kwargs) -> Network:
    return resnet(152, **kwargs)
