"""Inception v3 (Szegedy et al., 2015), aux classifier omitted.

Module inventory matches the published network: stem, 3×InceptionA
(35×35), grid reduction, 4×InceptionB (17×17, factorized 7×7 convs),
grid reduction, 2×InceptionE (8×8, with forked 1×3/3×1 tails), head.
Every convolution is conv→norm→ReLU.  ~23.8 M trainable parameters.
"""
from __future__ import annotations

from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import NormKind
from repro.graph.network import Network
from repro.types import Shape
from repro.zoo.common import ChainBuilder


def _branch(prefix: str, in_shape: Shape, norm: NormKind | None) -> ChainBuilder:
    return ChainBuilder(prefix=prefix, shape=in_shape, norm=norm)


def _inception_a(name: str, in_shape: Shape, pool_features: int, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(64, 1)
    b2 = _branch(f"{name}.b2", in_shape, norm).cnr(48, 1).cnr(64, 5, padding=2)
    b3 = (
        _branch(f"{name}.b3", in_shape, norm)
        .cnr(64, 1)
        .cnr(96, 3, padding=1)
        .cnr(96, 3, padding=1)
    )
    b4 = _branch(f"{name}.b4", in_shape, norm).avg_pool().cnr(pool_features, 1)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=tuple(Branch(b.take()) for b in (b1, b2, b3, b4)),
        merge=MergeKind.CONCAT,
    )


def _reduction_a(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(384, 3, stride=2)
    b2 = (
        _branch(f"{name}.b2", in_shape, norm)
        .cnr(64, 1)
        .cnr(96, 3, padding=1)
        .cnr(96, 3, stride=2)
    )
    b3 = _branch(f"{name}.b3", in_shape, norm).max_pool(kernel=3, stride=2)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=tuple(Branch(b.take()) for b in (b1, b2, b3)),
        merge=MergeKind.CONCAT,
    )


def _inception_b(name: str, in_shape: Shape, c7: int, norm) -> Block:
    """17×17 module with factorized 7×7 convolutions."""
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(192, 1)
    b2 = (
        _branch(f"{name}.b2", in_shape, norm)
        .cnr(c7, 1)
        .cnr(c7, (1, 7), padding=(0, 3))
        .cnr(192, (7, 1), padding=(3, 0))
    )
    b3 = (
        _branch(f"{name}.b3", in_shape, norm)
        .cnr(c7, 1)
        .cnr(c7, (7, 1), padding=(3, 0))
        .cnr(c7, (1, 7), padding=(0, 3))
        .cnr(c7, (7, 1), padding=(3, 0))
        .cnr(192, (1, 7), padding=(0, 3))
    )
    b4 = _branch(f"{name}.b4", in_shape, norm).avg_pool().cnr(192, 1)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=tuple(Branch(b.take()) for b in (b1, b2, b3, b4)),
        merge=MergeKind.CONCAT,
    )


def _reduction_b(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(192, 1).cnr(320, 3, stride=2)
    b2 = (
        _branch(f"{name}.b2", in_shape, norm)
        .cnr(192, 1)
        .cnr(192, (1, 7), padding=(0, 3))
        .cnr(192, (7, 1), padding=(3, 0))
        .cnr(192, 3, stride=2)
    )
    b3 = _branch(f"{name}.b3", in_shape, norm).max_pool(kernel=3, stride=2)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=tuple(Branch(b.take()) for b in (b1, b2, b3)),
        merge=MergeKind.CONCAT,
    )


def _inception_e(name: str, in_shape: Shape, norm) -> Block:
    """8×8 module whose middle branches fork into 1×3 / 3×1 tails."""
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(320, 1)

    b2_stem = _branch(f"{name}.b2", in_shape, norm).cnr(384, 1)
    stem_shape = b2_stem.shape
    b2a = _branch(f"{name}.b2a", stem_shape, norm).cnr(384, (1, 3), padding=(0, 1))
    b2b = _branch(f"{name}.b2b", stem_shape, norm).cnr(384, (3, 1), padding=(1, 0))
    b2 = Branch(b2_stem.take(), children=(Branch(b2a.take()), Branch(b2b.take())))

    b3_stem = (
        _branch(f"{name}.b3", in_shape, norm).cnr(448, 1).cnr(384, 3, padding=1)
    )
    stem_shape = b3_stem.shape
    b3a = _branch(f"{name}.b3a", stem_shape, norm).cnr(384, (1, 3), padding=(0, 1))
    b3b = _branch(f"{name}.b3b", stem_shape, norm).cnr(384, (3, 1), padding=(1, 0))
    b3 = Branch(b3_stem.take(), children=(Branch(b3a.take()), Branch(b3b.take())))

    b4 = _branch(f"{name}.b4", in_shape, norm).avg_pool().cnr(192, 1)
    return Block(
        name=name,
        in_shape=in_shape,
        branches=(Branch(b1.take()), b2, b3, Branch(b4.take())),
        merge=MergeKind.CONCAT,
    )


def inception_v3(
    norm: NormKind | None = NormKind.GROUP,
    num_classes: int = 1000,
    in_shape: Shape = Shape(3, 299, 299),
    mini_batch: int = 32,
) -> Network:
    blocks: list[Block] = []

    stem = ChainBuilder(prefix="stem", shape=in_shape, norm=norm)
    stem.cnr(32, 3, stride=2)
    stem.cnr(32, 3)
    stem.cnr(64, 3, padding=1)
    stem.max_pool(kernel=3, stride=2)
    stem.cnr(80, 1)
    stem.cnr(192, 3)
    stem.max_pool(kernel=3, stride=2)
    blocks.append(chain_block("stem", in_shape, list(stem.take())))
    shape = stem.shape

    for i, pool_features in enumerate((32, 64, 64)):
        block = _inception_a(f"mixed5{'bcd'[i]}", shape, pool_features, norm)
        blocks.append(block)
        shape = block.out_shape

    block = _reduction_a("mixed6a", shape, norm)
    blocks.append(block)
    shape = block.out_shape

    for i, c7 in enumerate((128, 160, 160, 192)):
        block = _inception_b(f"mixed6{'bcde'[i]}", shape, c7, norm)
        blocks.append(block)
        shape = block.out_shape

    block = _reduction_b("mixed7a", shape, norm)
    blocks.append(block)
    shape = block.out_shape

    for i in range(2):
        block = _inception_e(f"mixed7{'bc'[i]}", shape, norm)
        blocks.append(block)
        shape = block.out_shape

    head = ChainBuilder(prefix="head", shape=shape, norm=norm)
    head.global_avg_pool()
    head.fc(num_classes)
    blocks.append(chain_block("head", shape, list(head.take())))

    return Network(
        name="inception_v3",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )
