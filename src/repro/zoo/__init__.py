"""Network zoo: the six CNNs evaluated in the paper plus toy networks."""
from repro.zoo.alexnet import alexnet
from repro.zoo.inception_v3 import inception_v3
from repro.zoo.inception_v4 import inception_v4
from repro.zoo.resnet import (
    resnet,
    resnet18,
    resnet34,
    resnet50,
    resnet101,
    resnet152,
)
from repro.zoo.toy import toy_chain, toy_inception, toy_residual

#: The evaluation suite of the paper (Sec. 5), in figure order.
PAPER_NETWORKS = (
    "resnet50",
    "resnet101",
    "resnet152",
    "inception_v3",
    "inception_v4",
    "alexnet",
)


def build(name: str, **kwargs):
    """Build a zoo network by its canonical name."""
    builders = {
        "resnet18": resnet18,
        "resnet34": resnet34,
        "resnet50": resnet50,
        "resnet101": resnet101,
        "resnet152": resnet152,
        "inception_v3": inception_v3,
        "inception_v4": inception_v4,
        "alexnet": alexnet,
        "toy_chain": toy_chain,
        "toy_residual": toy_residual,
        "toy_inception": toy_inception,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise KeyError(f"unknown network {name!r}; choose from {sorted(builders)}")
    return builder(**kwargs)


__all__ = [
    "PAPER_NETWORKS",
    "alexnet",
    "build",
    "inception_v3",
    "inception_v4",
    "resnet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "toy_chain",
    "toy_inception",
    "toy_residual",
]
