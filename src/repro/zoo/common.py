"""Fluent chain builder shared by all zoo networks."""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.layers import (
    Activation,
    Conv2D,
    FullyConnected,
    Layer,
    Norm,
    NormKind,
    Pool,
    PoolKind,
)
from repro.types import Shape


def gn_groups(channels: int, max_groups: int = 32) -> int:
    """Largest divisor of ``channels`` not exceeding ``max_groups``.

    Group normalization requires the group count to divide the channel
    count; standard practice is 32 groups, reduced for narrow layers.
    """
    for g in range(min(max_groups, channels), 0, -1):
        if channels % g == 0:
            return g
    return 1


@dataclass
class ChainBuilder:
    """Accumulates a layer chain, tracking shapes and generating names.

    ``norm=None`` builds un-normalized networks (AlexNet); otherwise every
    ``cnr`` composite inserts the requested normalization kind.
    """

    prefix: str
    shape: Shape
    norm: NormKind | None = NormKind.GROUP
    layers: list[Layer] = field(default_factory=list)
    _idx: int = 0

    def _name(self, op: str) -> str:
        self._idx += 1
        return f"{self.prefix}.{op}{self._idx}"

    def conv(
        self,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = False,
    ) -> "ChainBuilder":
        layer = Conv2D(
            name=self._name("conv"),
            in_shape=self.shape,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            bias=bias,
        )
        self.layers.append(layer)
        self.shape = layer.out_shape
        return self

    def normalize(self) -> "ChainBuilder":
        if self.norm is None:
            return self
        layer = Norm(
            name=self._name("norm"),
            in_shape=self.shape,
            norm=self.norm,
            groups=gn_groups(self.shape.c) if self.norm is NormKind.GROUP else 1,
        )
        self.layers.append(layer)
        return self

    def relu(self) -> "ChainBuilder":
        self.layers.append(Activation(name=self._name("relu"), in_shape=self.shape))
        return self

    def cnr(
        self,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
    ) -> "ChainBuilder":
        """Conv → norm → ReLU composite (conv gets a bias iff no norm)."""
        self.conv(out_channels, kernel, stride, padding, bias=self.norm is None)
        self.normalize()
        return self.relu()

    def cn(
        self,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
    ) -> "ChainBuilder":
        """Conv → norm without activation (pre-merge bottleneck tail)."""
        self.conv(out_channels, kernel, stride, padding, bias=self.norm is None)
        return self.normalize()

    def pool(
        self,
        kind: PoolKind,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int],
        padding: int | tuple[int, int] = 0,
    ) -> "ChainBuilder":
        layer = Pool(
            name=self._name("pool"),
            in_shape=self.shape,
            pool=kind,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )
        self.layers.append(layer)
        self.shape = layer.out_shape
        return self

    def max_pool(self, kernel=3, stride=2, padding=0) -> "ChainBuilder":
        return self.pool(PoolKind.MAX, kernel, stride, padding)

    def avg_pool(self, kernel=3, stride=1, padding=1) -> "ChainBuilder":
        return self.pool(PoolKind.AVG, kernel, stride, padding)

    def global_avg_pool(self) -> "ChainBuilder":
        layer = Pool(
            name=self._name("gpool"),
            in_shape=self.shape,
            pool=PoolKind.AVG,
            global_pool=True,
        )
        self.layers.append(layer)
        self.shape = layer.out_shape
        return self

    def fc(self, out_features: int, bias: bool = True) -> "ChainBuilder":
        layer = FullyConnected(
            name=self._name("fc"),
            in_shape=self.shape,
            out_features=out_features,
            bias=bias,
        )
        self.layers.append(layer)
        self.shape = layer.out_shape
        return self

    def take(self) -> tuple[Layer, ...]:
        """Return the accumulated layers and reset the builder's list."""
        out = tuple(self.layers)
        self.layers = []
        return out
