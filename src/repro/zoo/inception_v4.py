"""Inception v4 (Szegedy et al., 2017).

Faithful module inventory: forked stem (Mixed_3a/4a/5a concatenations),
4×InceptionA (35×35), ReductionA, 7×InceptionB (17×17), ReductionB,
3×InceptionC (8×8, with forked 1×3/3×1 tails), head.  ~42.7 M params.
"""
from __future__ import annotations

from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import NormKind
from repro.graph.network import Network
from repro.types import Shape
from repro.zoo.common import ChainBuilder


def _branch(prefix: str, in_shape: Shape, norm) -> ChainBuilder:
    return ChainBuilder(prefix=prefix, shape=in_shape, norm=norm)


def _concat(name: str, in_shape: Shape, branches: list[Branch]) -> Block:
    return Block(
        name=name, in_shape=in_shape, branches=tuple(branches), merge=MergeKind.CONCAT
    )


def _inception_a(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(96, 1)
    b2 = _branch(f"{name}.b2", in_shape, norm).cnr(64, 1).cnr(96, 3, padding=1)
    b3 = (
        _branch(f"{name}.b3", in_shape, norm)
        .cnr(64, 1)
        .cnr(96, 3, padding=1)
        .cnr(96, 3, padding=1)
    )
    b4 = _branch(f"{name}.b4", in_shape, norm).avg_pool().cnr(96, 1)
    return _concat(name, in_shape, [Branch(b.take()) for b in (b1, b2, b3, b4)])


def _reduction_a(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(384, 3, stride=2)
    b2 = (
        _branch(f"{name}.b2", in_shape, norm)
        .cnr(192, 1)
        .cnr(224, 3, padding=1)
        .cnr(256, 3, stride=2)
    )
    b3 = _branch(f"{name}.b3", in_shape, norm).max_pool(kernel=3, stride=2)
    return _concat(name, in_shape, [Branch(b.take()) for b in (b1, b2, b3)])


def _inception_b(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(384, 1)
    b2 = (
        _branch(f"{name}.b2", in_shape, norm)
        .cnr(192, 1)
        .cnr(224, (1, 7), padding=(0, 3))
        .cnr(256, (7, 1), padding=(3, 0))
    )
    b3 = (
        _branch(f"{name}.b3", in_shape, norm)
        .cnr(192, 1)
        .cnr(192, (7, 1), padding=(3, 0))
        .cnr(224, (1, 7), padding=(0, 3))
        .cnr(224, (7, 1), padding=(3, 0))
        .cnr(256, (1, 7), padding=(0, 3))
    )
    b4 = _branch(f"{name}.b4", in_shape, norm).avg_pool().cnr(128, 1)
    return _concat(name, in_shape, [Branch(b.take()) for b in (b1, b2, b3, b4)])


def _reduction_b(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(192, 1).cnr(192, 3, stride=2)
    b2 = (
        _branch(f"{name}.b2", in_shape, norm)
        .cnr(256, 1)
        .cnr(256, (1, 7), padding=(0, 3))
        .cnr(320, (7, 1), padding=(3, 0))
        .cnr(320, 3, stride=2)
    )
    b3 = _branch(f"{name}.b3", in_shape, norm).max_pool(kernel=3, stride=2)
    return _concat(name, in_shape, [Branch(b.take()) for b in (b1, b2, b3)])


def _inception_c(name: str, in_shape: Shape, norm) -> Block:
    b1 = _branch(f"{name}.b1", in_shape, norm).cnr(256, 1)

    b2_stem = _branch(f"{name}.b2", in_shape, norm).cnr(384, 1)
    s = b2_stem.shape
    b2a = _branch(f"{name}.b2a", s, norm).cnr(256, (1, 3), padding=(0, 1))
    b2b = _branch(f"{name}.b2b", s, norm).cnr(256, (3, 1), padding=(1, 0))
    b2 = Branch(b2_stem.take(), children=(Branch(b2a.take()), Branch(b2b.take())))

    b3_stem = (
        _branch(f"{name}.b3", in_shape, norm)
        .cnr(384, 1)
        .cnr(448, (3, 1), padding=(1, 0))
        .cnr(512, (1, 3), padding=(0, 1))
    )
    s = b3_stem.shape
    b3a = _branch(f"{name}.b3a", s, norm).cnr(256, (1, 3), padding=(0, 1))
    b3b = _branch(f"{name}.b3b", s, norm).cnr(256, (3, 1), padding=(1, 0))
    b3 = Branch(b3_stem.take(), children=(Branch(b3a.take()), Branch(b3b.take())))

    b4 = _branch(f"{name}.b4", in_shape, norm).avg_pool().cnr(256, 1)
    return _concat(name, in_shape, [Branch(b1.take()), b2, b3, Branch(b4.take())])


def inception_v4(
    norm: NormKind | None = NormKind.GROUP,
    num_classes: int = 1000,
    in_shape: Shape = Shape(3, 299, 299),
    mini_batch: int = 32,
) -> Network:
    blocks: list[Block] = []

    stem = ChainBuilder(prefix="stem", shape=in_shape, norm=norm)
    stem.cnr(32, 3, stride=2)
    stem.cnr(32, 3)
    stem.cnr(64, 3, padding=1)
    blocks.append(chain_block("stem", in_shape, list(stem.take())))
    shape = stem.shape

    # Mixed_3a: pool fork.
    p = _branch("mixed3a.pool", shape, norm).max_pool(kernel=3, stride=2)
    c = _branch("mixed3a.conv", shape, norm).cnr(96, 3, stride=2)
    block = _concat("mixed3a", shape, [Branch(p.take()), Branch(c.take())])
    blocks.append(block)
    shape = block.out_shape

    # Mixed_4a: factorized-conv fork.
    b1 = _branch("mixed4a.b1", shape, norm).cnr(64, 1).cnr(96, 3)
    b2 = (
        _branch("mixed4a.b2", shape, norm)
        .cnr(64, 1)
        .cnr(64, (1, 7), padding=(0, 3))
        .cnr(64, (7, 1), padding=(3, 0))
        .cnr(96, 3)
    )
    block = _concat("mixed4a", shape, [Branch(b1.take()), Branch(b2.take())])
    blocks.append(block)
    shape = block.out_shape

    # Mixed_5a: conv/pool fork down to 35×35.
    c = _branch("mixed5a.conv", shape, norm).cnr(192, 3, stride=2)
    p = _branch("mixed5a.pool", shape, norm).max_pool(kernel=3, stride=2)
    block = _concat("mixed5a", shape, [Branch(c.take()), Branch(p.take())])
    blocks.append(block)
    shape = block.out_shape

    for i in range(4):
        block = _inception_a(f"inceptionA_{i + 1}", shape, norm)
        blocks.append(block)
        shape = block.out_shape

    block = _reduction_a("reductionA", shape, norm)
    blocks.append(block)
    shape = block.out_shape

    for i in range(7):
        block = _inception_b(f"inceptionB_{i + 1}", shape, norm)
        blocks.append(block)
        shape = block.out_shape

    block = _reduction_b("reductionB", shape, norm)
    blocks.append(block)
    shape = block.out_shape

    for i in range(3):
        block = _inception_c(f"inceptionC_{i + 1}", shape, norm)
        blocks.append(block)
        shape = block.out_shape

    head = ChainBuilder(prefix="head", shape=shape, norm=norm)
    head.global_avg_pool()
    head.fc(num_classes)
    blocks.append(chain_block("head", shape, list(head.take())))

    return Network(
        name="inception_v4",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )
