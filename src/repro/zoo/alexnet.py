"""AlexNet (Krizhevsky et al., 2012), single-tower variant.

The paper uses AlexNet as the shallow counter-example: few bandwidth-bound
layers (no normalization in our build — the original LRN layers are long
obsolete and the paper groups AlexNet with "few memory BW bound layers"),
three enormous FC layers.  62,378,344 trainable parameters.
"""
from __future__ import annotations

from repro.graph.blocks import Block, chain_block
from repro.graph.network import Network
from repro.types import Shape
from repro.zoo.common import ChainBuilder


def alexnet(
    num_classes: int = 1000,
    in_shape: Shape = Shape(3, 227, 227),
    mini_batch: int = 64,
) -> Network:
    blocks: list[Block] = []

    def add(name: str, build) -> Shape:
        nonlocal shape
        b = ChainBuilder(prefix=name, shape=shape, norm=None)
        build(b)
        blocks.append(chain_block(name, shape, list(b.take())))
        shape = b.shape
        return shape

    shape = in_shape
    add("conv1", lambda b: b.conv(96, 11, stride=4, bias=True).relu())
    add("pool1", lambda b: b.max_pool(kernel=3, stride=2))
    add("conv2", lambda b: b.conv(256, 5, padding=2, bias=True).relu())
    add("pool2", lambda b: b.max_pool(kernel=3, stride=2))
    add("conv3", lambda b: b.conv(384, 3, padding=1, bias=True).relu())
    add("conv4", lambda b: b.conv(384, 3, padding=1, bias=True).relu())
    add("conv5", lambda b: b.conv(256, 3, padding=1, bias=True).relu())
    add("pool5", lambda b: b.max_pool(kernel=3, stride=2))
    add("fc6", lambda b: b.fc(4096).relu())
    add("fc7", lambda b: b.fc(4096).relu())
    add("fc8", lambda b: b.fc(num_classes))

    return Network(
        name="alexnet",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )
