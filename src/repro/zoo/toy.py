"""Small networks for tests, examples, and the NumPy training substrate."""
from __future__ import annotations

from repro.graph.blocks import Block, Branch, MergeKind, chain_block
from repro.graph.layers import Activation, NormKind
from repro.graph.network import Network
from repro.types import Shape
from repro.zoo.common import ChainBuilder


def toy_chain(
    in_shape: Shape = Shape(3, 32, 32),
    widths: tuple[int, ...] = (16, 32, 64),
    num_classes: int = 8,
    norm: NormKind | None = NormKind.GROUP,
    mini_batch: int = 16,
) -> Network:
    """Plain conv→norm→ReLU chain with stride-2 down-sampling and an FC head."""
    blocks: list[Block] = []
    shape = in_shape
    for i, width in enumerate(widths):
        b = ChainBuilder(prefix=f"stage{i}", shape=shape, norm=norm)
        b.cnr(width, 3, stride=2 if i > 0 else 1, padding=1)
        blocks.append(chain_block(f"stage{i}", shape, list(b.take())))
        shape = b.shape
    head = ChainBuilder(prefix="head", shape=shape, norm=norm)
    head.global_avg_pool()
    head.fc(num_classes)
    blocks.append(chain_block("head", shape, list(head.take())))
    return Network(
        name="toy_chain",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )


def toy_residual(
    in_shape: Shape = Shape(3, 32, 32),
    width: int = 16,
    num_classes: int = 8,
    norm: NormKind | None = NormKind.GROUP,
    mini_batch: int = 16,
) -> Network:
    """Stem + two residual blocks (one projected, one identity) + head."""
    blocks: list[Block] = []
    stem = ChainBuilder(prefix="stem", shape=in_shape, norm=norm)
    stem.cnr(width, 3, padding=1)
    blocks.append(chain_block("stem", in_shape, list(stem.take())))
    shape = stem.shape

    for i, (out_w, stride) in enumerate(((width * 2, 2), (width * 2, 1))):
        main = ChainBuilder(prefix=f"res{i}.main", shape=shape, norm=norm)
        main.cnr(out_w, 3, stride=stride, padding=1)
        main.cn(out_w, 3, padding=1)
        main_branch = Branch(main.take())
        if stride != 1 or shape.c != out_w:
            sc = ChainBuilder(prefix=f"res{i}.shortcut", shape=shape, norm=norm)
            sc.cn(out_w, 1, stride=stride)
            shortcut = Branch(sc.take())
        else:
            shortcut = Branch()
        merged = main.shape
        block = Block(
            name=f"res{i}",
            in_shape=shape,
            branches=(main_branch, shortcut),
            merge=MergeKind.ADD,
            post_merge=(Activation(name=f"res{i}.relu", in_shape=merged),),
        )
        blocks.append(block)
        shape = block.out_shape

    head = ChainBuilder(prefix="head", shape=shape, norm=norm)
    head.global_avg_pool()
    head.fc(num_classes)
    blocks.append(chain_block("head", shape, list(head.take())))
    return Network(
        name="toy_residual",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )


def toy_inception(
    in_shape: Shape = Shape(3, 32, 32),
    num_classes: int = 8,
    norm: NormKind | None = NormKind.GROUP,
    mini_batch: int = 16,
) -> Network:
    """Stem + one concat module (with a forked branch) + head."""
    blocks: list[Block] = []
    stem = ChainBuilder(prefix="stem", shape=in_shape, norm=norm)
    stem.cnr(16, 3, stride=2, padding=1)
    blocks.append(chain_block("stem", in_shape, list(stem.take())))
    shape = stem.shape

    b1 = ChainBuilder(prefix="mix.b1", shape=shape, norm=norm).cnr(8, 1)
    b2 = ChainBuilder(prefix="mix.b2", shape=shape, norm=norm).cnr(8, 1).cnr(
        16, 3, padding=1
    )
    b3_stem = ChainBuilder(prefix="mix.b3", shape=shape, norm=norm).cnr(8, 1)
    fork_shape = b3_stem.shape
    b3a = ChainBuilder(prefix="mix.b3a", shape=fork_shape, norm=norm).cnr(
        8, (1, 3), padding=(0, 1)
    )
    b3b = ChainBuilder(prefix="mix.b3b", shape=fork_shape, norm=norm).cnr(
        8, (3, 1), padding=(1, 0)
    )
    block = Block(
        name="mix",
        in_shape=shape,
        branches=(
            Branch(b1.take()),
            Branch(b2.take()),
            Branch(b3_stem.take(), children=(Branch(b3a.take()), Branch(b3b.take()))),
        ),
        merge=MergeKind.CONCAT,
    )
    blocks.append(block)
    shape = block.out_shape

    head = ChainBuilder(prefix="head", shape=shape, norm=norm)
    head.global_avg_pool()
    head.fc(num_classes)
    blocks.append(chain_block("head", shape, list(head.take())))
    return Network(
        name="toy_inception",
        in_shape=in_shape,
        blocks=tuple(blocks),
        default_mini_batch=mini_batch,
    )
