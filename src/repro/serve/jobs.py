"""Job hosting for the serve layer: the ``/v1/jobs`` wire handlers.

:class:`JobHost` adapts the pure :class:`~repro.runtime.queue.JobQueue`
state machine to the HTTP surface: it decodes/encodes the
:mod:`repro.api` job wire types, expands a submission's sweep axes
into the deterministic point grid, and ingests uploaded manifests into
the same content-addressed :class:`~repro.runtime.cache.ResultCache`
layout a local ``mbs-repro sweep`` writes — which is exactly why
``--resume``, static ``--shard`` runs, and queue-driven runs all
interoperate: they are different feeders of one store.

The host is clock-driven lazily: every wire handler first ticks the
queue (``expire()``), so lease reaping needs no background task —
workers poll, and polling drives time forward.
"""
from __future__ import annotations

from typing import Any, Mapping

from repro import api
from repro.runtime.cache import ResultCache
from repro.runtime.queue import DONE, JobQueue, SweepJob, SweepPoint
from repro.runtime.spec import expand_grid, get_spec


def _job_status(job: SweepJob) -> api.SweepJobStatus:
    counts = job.counts()
    return api.SweepJobStatus(
        job_id=job.job_id,
        artifact=job.spec.name,
        quick=job.quick,
        state=job.state,
        total=len(job.points),
        pending=counts["pending"],
        leased=counts["leased"],
        done=counts["done"],
        poisoned=counts["poisoned"],
        max_attempts=job.max_attempts,
        lease_timeout_s=job.lease_timeout_s,
    )


class JobHost:
    """One coordinator's queued sweeps, spoken in wire types.

    ``cache=None`` keeps accepted manifests in memory only (tests);
    with a cache, every accepted manifest is persisted under
    ``<root>/<spec>/<key>.json`` immediately, and points whose
    manifests the cache already holds are pre-completed at submission
    — a queue job over an already-swept grid finishes instantly.
    """

    def __init__(self, queue: JobQueue | None = None, *,
                 cache: ResultCache | None = None):
        self.queue = queue if queue is not None else JobQueue()
        self.cache = cache
        #: accepted manifests by task key (authoritative when cache=None)
        self._manifests: dict[str, dict[str, Any]] = {}

    def tick(self) -> None:
        self.queue.expire()

    # -- submission / polling ----------------------------------------

    def submit_wire(self, wire: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /v1/jobs``: enqueue one sweep, return its status."""
        self.tick()
        req = api.SweepJobRequest.from_wire(wire)
        import repro.experiments  # noqa: F401  (populates the registry)
        try:
            spec = get_spec(req.artifact)
        except KeyError as exc:
            raise ValueError(f"artifact: {exc.args[0]}") from None
        axes = dict(spec.sweep)
        if req.axes is not None:
            axes.update(req.axes)

        def cached(point: SweepPoint) -> dict[str, Any] | None:
            if self.cache is None:
                return None
            return self.cache.lookup(spec.name, point.key)

        try:
            job = self.queue.submit(
                spec,
                expand_grid(axes),
                quick=req.quick,
                lease_timeout_s=req.lease_timeout_s,
                max_attempts=req.max_attempts,
                already_done=cached,
            )
        except KeyError as exc:
            raise ValueError(f"axes: {exc.args[0]}") from None
        return _job_status(job).to_wire()

    def job_wire(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<id>``: one job's status."""
        self.tick()
        return _job_status(self.queue.job(job_id)).to_wire()

    def jobs_wire(self) -> dict[str, Any]:
        """``GET /v1/jobs``: every job's status, submission order."""
        self.tick()
        return {
            "schema": api.SCHEMA_VERSION,
            "jobs": [
                _job_status(j).to_wire() for j in self.queue.jobs.values()
            ],
        }

    # -- leasing ------------------------------------------------------

    def lease_wire(self, wire: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /v1/lease``: grant a batch of points, or report done.

        Body: ``{"schema": 1, "worker": "...", "max_points": N,
        "job": "job-1"?}``.  The response's ``all_done`` tells an idle
        worker whether to exit (every job terminal) or keep polling
        (work may still arrive).
        """
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"lease request must be a JSON object, got "
                f"{type(wire).__name__}"
            )
        schema = wire.get("schema", api.SCHEMA_VERSION)
        if schema != api.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported lease schema {schema!r}; this build "
                f"speaks schema {api.SCHEMA_VERSION}"
            )
        unknown = set(wire) - {"schema", "worker", "max_points", "job"}
        if unknown:
            raise ValueError(
                f"unknown lease request key(s) {sorted(unknown)}; "
                f"allowed: ['worker', 'max_points', 'job']"
            )
        worker = wire.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ValueError(
                f"worker: expected a non-empty worker id, got {worker!r}"
            )
        max_points = wire.get("max_points", 1)
        if not isinstance(max_points, int) or isinstance(max_points, bool) \
                or max_points < 1:
            raise ValueError(
                f"max_points: expected a positive integer, got "
                f"{max_points!r}"
            )
        granted = self.queue.lease(
            worker, max_points=max_points, job_id=wire.get("job")
        )
        if granted is None:
            return {
                "schema": api.SCHEMA_VERSION,
                "lease": None,
                "all_done": self.queue.all_terminal,
            }
        job, lease, points = granted
        grant = api.LeaseGrant(
            job_id=job.job_id,
            lease_id=lease.lease_id,
            worker=lease.worker,
            artifact=job.spec.name,
            quick=job.quick,
            lease_timeout_s=job.lease_timeout_s,
            points=tuple(
                {"index": p.index, "overrides": dict(p.overrides)}
                for p in points
            ),
        )
        return {
            "schema": api.SCHEMA_VERSION,
            "lease": grant.to_wire(),
            "all_done": False,
        }

    def heartbeat_wire(self, lease_id: str) -> dict[str, Any]:
        """``POST /v1/lease/<id>/heartbeat``: extend a live lease."""
        self.queue.heartbeat(lease_id)
        return {"schema": api.SCHEMA_VERSION, "ok": True}

    def complete_wire(
        self, lease_id: str, wire: Mapping[str, Any]
    ) -> dict[str, Any]:
        """``POST /v1/lease/<id>/complete``: upload one point's manifest."""
        index = self._point_ref(wire, "manifest")
        manifest = wire.get("manifest")
        if not isinstance(manifest, Mapping):
            raise ValueError(
                f"manifest: expected a manifest object, got "
                f"{type(manifest).__name__}"
            )
        point = self.queue.complete(lease_id, index, manifest)
        stored = dict(manifest)
        self._manifests[point.key] = stored
        if self.cache is not None:
            self.cache.store(stored)
        return {"schema": api.SCHEMA_VERSION, "ok": True, "key": point.key}

    def fail_wire(
        self, lease_id: str, wire: Mapping[str, Any]
    ) -> dict[str, Any]:
        """``POST /v1/lease/<id>/fail``: report one point's failure."""
        index = self._point_ref(wire, "error")
        error = wire.get("error")
        if not isinstance(error, str) or not error:
            raise ValueError(
                f"error: expected a non-empty message, got {error!r}"
            )
        point = self.queue.fail(lease_id, index, error)
        return {"schema": api.SCHEMA_VERSION, "ok": True,
                "state": point.state}

    @staticmethod
    def _point_ref(wire: Mapping[str, Any], payload_key: str) -> int:
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"body must be a JSON object with 'index' and "
                f"{payload_key!r}, got {type(wire).__name__}"
            )
        index = wire.get("index")
        if not isinstance(index, int) or isinstance(index, bool) \
                or index < 0:
            raise ValueError(
                f"index: expected a non-negative point index, got "
                f"{index!r}"
            )
        return index

    # -- results ------------------------------------------------------

    def manifests_wire(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<id>/manifests``: every completed manifest.

        Manifests come back in grid order — the same enumeration a
        single-process sweep would produce — so a dump of them is
        byte-comparable via ``mbs-repro merge --check``.
        """
        self.tick()
        job = self.queue.job(job_id)
        manifests = []
        for point in job.points:
            if point.state != DONE:
                continue
            manifest = self._manifests.get(point.key)
            if manifest is None and self.cache is not None:
                manifest = self.cache.lookup(job.spec.name, point.key)
            if manifest is not None:
                manifests.append(manifest)
        return {
            "schema": api.SCHEMA_VERSION,
            "job": _job_status(job).to_wire(),
            "manifests": manifests,
        }

    def stats_wire(self) -> dict[str, int]:
        """The ``jobs`` section of ``GET /v1/stats``."""
        return self.queue.stats()
