"""Scheduling-as-a-service: the async engine + HTTP shell.

``mbs-repro serve`` prices arbitrary user-submitted network graphs
over HTTP/JSON.  The split is deliberate:

- :mod:`repro.serve.engine` — :class:`ScheduleEngine`: request dedup,
  buffer-size batching, the persistent result cache, worker-pool
  dispatch, per-request timeouts, and greedy degradation.
- :mod:`repro.serve.server` — :class:`Server`: a stdlib-only
  ``asyncio.start_server`` HTTP/1.1 front end mapping routes onto the
  engine.

Both layers speak the :mod:`repro.api` wire types, so an HTTP response
body is exactly ``ScheduleResult.to_wire()`` — the same costs, bit for
bit, as the Python facade and the CLI.
"""
from repro.serve.engine import (
    CACHE_SPEC,
    EngineStats,
    ScheduleEngine,
    price_batch_wire,
    price_wire,
)
from repro.serve.server import MAX_BODY_BYTES, Server, run_server

__all__ = [
    "CACHE_SPEC",
    "EngineStats",
    "MAX_BODY_BYTES",
    "ScheduleEngine",
    "Server",
    "price_batch_wire",
    "price_wire",
    "run_server",
]
