"""Scheduling-as-a-service: the async engine + HTTP shell.

``mbs-repro serve`` prices arbitrary user-submitted network graphs
over HTTP/JSON.  The split is deliberate:

- :mod:`repro.serve.engine` — :class:`ScheduleEngine`: request dedup,
  buffer-size batching, the persistent result cache, worker-pool
  dispatch, per-request timeouts, and greedy degradation.
- :mod:`repro.serve.server` — :class:`Server`: a stdlib-only
  ``asyncio.start_server`` HTTP/1.1 front end mapping routes onto the
  engine.
- :mod:`repro.serve.jobs` — :class:`JobHost`: the ``/v1/jobs`` work
  queue (leases, retries, poison points) over
  :class:`~repro.runtime.queue.JobQueue`, feeding the same
  content-addressed cache local sweeps use.
- :mod:`repro.serve.worker` — :class:`CoordinatorClient` +
  :func:`work_loop`: the ``mbs-repro work`` client that leases,
  computes, heartbeats, and uploads.

All layers speak the :mod:`repro.api` wire types, so an HTTP response
body is exactly ``ScheduleResult.to_wire()`` — the same costs, bit for
bit, as the Python facade and the CLI.
"""
from repro.serve.engine import (
    CACHE_SPEC,
    EngineStats,
    ScheduleEngine,
    price_batch_wire,
    price_wire,
)
from repro.serve.jobs import JobHost
from repro.serve.server import MAX_BODY_BYTES, Server, run_server
from repro.serve.worker import (
    CoordinatorClient,
    CoordinatorError,
    default_worker_id,
    work_loop,
)

__all__ = [
    "CACHE_SPEC",
    "CoordinatorClient",
    "CoordinatorError",
    "EngineStats",
    "JobHost",
    "MAX_BODY_BYTES",
    "ScheduleEngine",
    "Server",
    "default_worker_id",
    "price_batch_wire",
    "price_wire",
    "run_server",
    "work_loop",
]
