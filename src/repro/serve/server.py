"""Minimal HTTP/1.1 front end for the schedule engine — stdlib only.

``asyncio.start_server`` plus a hand-rolled request parser; no web
framework, no new dependencies.  The server is deliberately a thin
shell: every interesting behavior (dedup, batching, caching, timeouts,
degradation) lives in :class:`~repro.serve.engine.ScheduleEngine`, and
every price it returns comes from :func:`repro.api.price` — the same
numbers the CLI and the Python facade print, bit for bit.

Routes::

    GET  /healthz        -> {"ok": true}
    GET  /v1/policies    -> {"schema": 1, "policies": [...]}
    GET  /v1/objectives  -> {"schema": 1, "objectives": [...]}
    GET  /v1/stats       -> engine counters (+ queue counters)
    POST /v1/schedule    -> {"schema": 1, "cached": ..., "deduped": ...,
                             "degraded": ..., "result": <ScheduleResult>}
    POST /v1/jobs        -> submit a SweepJobRequest; SweepJobStatus back
    GET  /v1/jobs        -> every job's SweepJobStatus
    GET  /v1/jobs/<id>   -> one job's SweepJobStatus
    GET  /v1/jobs/<id>/manifests    -> completed manifests, grid order
    POST /v1/lease                  -> lease points (LeaseGrant or null)
    POST /v1/lease/<id>/heartbeat   -> extend a live lease
    POST /v1/lease/<id>/complete    -> upload one point's manifest
    POST /v1/lease/<id>/fail        -> report one point's failure

``POST /v1/schedule`` accepts a :class:`~repro.api.ScheduleRequest`
wire object (``{"schema": 1, "network": "resnet50", ...}`` or an
inline ``"graph"`` envelope from :mod:`repro.graph.serialize`).
Malformed JSON or a request the schema rejects is a 400 with an
``{"error": ...}`` body, never a connection drop.  The job surface
(:mod:`repro.serve.jobs`) adds 404 for unknown job/lease ids and 409
for protocol conflicts — an expired lease heartbeat, or an uploaded
manifest whose content address disagrees with the coordinator's.
"""
from __future__ import annotations

import asyncio
import json
from typing import Any

from repro import api
from repro.graph.serialize import GraphSchemaError
from repro.runtime.queue import (
    ExpiredLease,
    RejectedManifest,
    UnknownJob,
    UnknownLease,
)
from repro.serve.engine import ScheduleEngine
from repro.serve.jobs import JobHost

#: Largest accepted request body; an inline inception_v4 graph is
#: ~100 KiB, so this is ~80x headroom, not a real ceiling.
MAX_BODY_BYTES = 8 << 20
_MAX_HEADER_LINES = 100


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
}


class Server:
    """One listening socket in front of one :class:`ScheduleEngine`.

    ``jobs`` optionally attaches a :class:`~repro.serve.jobs.JobHost`;
    without one the ``/v1/jobs`` and ``/v1/lease`` routes answer 404.
    """

    def __init__(self, engine: ScheduleEngine, *,
                 host: str = "127.0.0.1", port: int = 0,
                 jobs: JobHost | None = None):
        self.engine = engine
        self.jobs = jobs
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # port=0 asks the OS for an ephemeral port; record the real one
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit in readline() forever; cut
        # them rather than leaking their handler tasks.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        await self.engine.aclose()

    # -- connection handling -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(writer, exc.status,
                                        {"error": str(exc)}, close=True)
                    break
                if request is None:
                    break  # clean EOF between requests
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._route(method, path, body)
                await self._respond(writer, status, payload,
                                    close=not keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown: end the handler cleanly, not cancelled
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(400, "malformed request line")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest(400, "too many headers")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _BadRequest(400, "bad Content-Length") from None
            if n > MAX_BODY_BYTES:
                raise _BadRequest(413, "request body too large")
            if n:
                body = await reader.readexactly(n)
        return method, path, headers, body

    # -- routing -------------------------------------------------------

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict[str, Any]]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"ok": True}
        if path == "/v1/policies":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"schema": api.SCHEMA_VERSION,
                         "policies": list(api.policies())}
        if path == "/v1/objectives":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"schema": api.SCHEMA_VERSION,
                         "objectives": list(api.objectives())}
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            payload = {"schema": api.SCHEMA_VERSION,
                       **self.engine.stats.to_wire()}
            if self.jobs is not None:
                self.jobs.tick()
                payload["jobs"] = self.jobs.stats_wire()
            return 200, payload
        if path == "/v1/schedule":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._schedule(body)
        if path == "/v1/jobs" or path.startswith("/v1/jobs/") \
                or path == "/v1/lease" or path.startswith("/v1/lease/"):
            return self._jobs_route(method, path, body)
        return 404, {"error": f"no such path: {path}"}

    # -- the job/lease surface -----------------------------------------

    def _jobs_route(self, method: str, path: str,
                    body: bytes) -> tuple[int, dict[str, Any]]:
        """Map queue protocol errors onto HTTP statuses.

        Unknown job/lease ids are 404; an expired lease or a manifest
        whose content address disagrees with the coordinator's is 409
        (the worker must re-lease, not retry); everything else the
        wire schema rejects is a 400 with a path-qualified message.
        """
        if self.jobs is None:
            return 404, {"error": "job hosting is not enabled; start "
                                  "the server via `mbs-repro serve`"}
        try:
            return self._jobs_dispatch(method, path, body)
        except (UnknownJob, UnknownLease) as exc:
            return 404, {"error": str(exc)}
        except (ExpiredLease, RejectedManifest) as exc:
            return 409, {"error": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": str(exc)}

    def _jobs_dispatch(self, method: str, path: str,
                       body: bytes) -> tuple[int, dict[str, Any]]:
        assert self.jobs is not None
        parts = path.strip("/").split("/")
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                if method == "POST":
                    return 200, self.jobs.submit_wire(self._json(body))
                if method == "GET":
                    return 200, self.jobs.jobs_wire()
                return 405, {"error": "use GET or POST"}
            if len(parts) == 3:
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, self.jobs.job_wire(parts[2])
            if len(parts) == 4 and parts[3] == "manifests":
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, self.jobs.manifests_wire(parts[2])
        elif parts[:2] == ["v1", "lease"]:
            if len(parts) == 2:
                if method != "POST":
                    return 405, {"error": "use POST"}
                return 200, self.jobs.lease_wire(self._json(body))
            if len(parts) == 4 and parts[3] in ("heartbeat", "complete",
                                                "fail"):
                if method != "POST":
                    return 405, {"error": "use POST"}
                lease_id = parts[2]
                if parts[3] == "heartbeat":
                    return 200, self.jobs.heartbeat_wire(lease_id)
                if parts[3] == "complete":
                    return 200, self.jobs.complete_wire(
                        lease_id, self._json(body)
                    )
                return 200, self.jobs.fail_wire(lease_id, self._json(body))
        return 404, {"error": f"no such path: {path}"}

    @staticmethod
    def _json(body: bytes) -> dict[str, Any]:
        try:
            wire = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(wire, dict):
            raise ValueError("request body must be a JSON object")
        return wire

    async def _schedule(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            wire = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        if not isinstance(wire, dict):
            return 400, {"error": "request body must be a JSON object"}
        try:
            result, meta = await self.engine.submit(wire)
        except (GraphSchemaError, ValueError, KeyError, TypeError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pricing blew up: our bug, not theirs
            self.engine.stats.errors += 1
            return 500, {"error": f"internal error: {exc!r}"}
        return 200, {
            "schema": api.SCHEMA_VERSION,
            "cached": meta["cached"],
            "deduped": meta["deduped"],
            "degraded": meta["degraded"],
            "result": result,
        }

    # -- response writing ----------------------------------------------

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: dict[str, Any], *, close: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    workers: int = 1,
    timeout_s: float = 30.0,
    max_pending: int = 64,
    cache=None,
    cache_max_entries: int | None = None,
    cache_max_bytes: int | None = None,
    lease_timeout_s: float = 60.0,
    max_attempts: int = 3,
    state_dir: str | None = None,
) -> None:
    """Entry point behind ``mbs-repro serve``: run until cancelled.

    ``state_dir`` makes the work queue durable: every queue mutation
    is journaled there before it is acknowledged, and a restart on the
    same directory restores half-drained jobs (outstanding leases are
    conservatively expired so their points re-queue).
    """
    from repro.runtime.queue import JobQueue

    # restore (or create) the queue before anything that owns
    # resources: an unreadable state dir must fail fast and clean
    if state_dir is not None:
        import repro.experiments  # noqa: F401  (populates the registry)
        from repro.runtime.journal import Journal
        from repro.runtime.spec import get_spec

        queue = JobQueue.restore(
            Journal(state_dir), specs=get_spec,
            lease_timeout_s=lease_timeout_s, max_attempts=max_attempts,
        )
        if queue.jobs:
            running = sum(j.open_points > 0 for j in queue.jobs.values())
            print(f"mbs-repro serve: restored {len(queue.jobs)} job(s) "
                  f"({running} still running) from {state_dir}")
    else:
        queue = JobQueue(lease_timeout_s=lease_timeout_s,
                         max_attempts=max_attempts)
    engine = ScheduleEngine(cache=cache, workers=workers,
                            timeout_s=timeout_s, max_pending=max_pending,
                            cache_max_entries=cache_max_entries,
                            cache_max_bytes=cache_max_bytes)
    jobs = JobHost(queue, cache=cache)
    server = Server(engine, host=host, port=port, jobs=jobs)
    await server.start()
    print(f"mbs-repro serve: listening on http://{server.host}:{server.port}")
    print("POST /v1/schedule with a ScheduleRequest wire object; "
          "GET /healthz, /v1/policies, /v1/objectives, /v1/stats; "
          "POST /v1/jobs + mbs-repro work for queued sweeps")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
        if queue.journal is not None:
            queue.journal.close()
