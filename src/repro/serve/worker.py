"""The sweep worker: lease points from a coordinator, compute, upload.

``mbs-repro work --coordinator URL`` runs :func:`work_loop` — the
client half of the ``/v1/jobs`` queue protocol:

1. ``POST /v1/lease`` for a batch of points (``None`` + ``all_done``
   means exit; ``None`` alone means poll again — a job may not have
   been submitted yet);
2. compute the batch through the ordinary
   :func:`~repro.runtime.pool.run_tasks` engine (so a worker benefits
   from its local content-addressed cache exactly like ``sweep``);
3. heartbeat from a daemon thread while computing, so a long point
   does not expire the lease;
4. upload each point's manifest (``complete``) or traceback (``fail``)
   as it finishes.

A 409 on upload means the coordinator moved on without us — the lease
expired and the point was re-queued or poisoned, or our code is
version-skewed and the manifest's content address is wrong.  Either
way the worker logs it and keeps draining; it never crashes on a
coordinator-side decision.

Transient trouble — a connection refused while the coordinator
restarts, a 5xx, a socket reset mid-upload — is retried with bounded
exponential backoff everywhere it can strand work: lease polling
(so a coordinator bounce looks like a slow poll, not a crash),
manifest uploads (one blip must not drop a whole computed batch), and
the heartbeat thread (which only gives up on a 4xx telling it the
lease is gone, or after several consecutive failures).
"""
from __future__ import annotations

import http.client
import json
import os
import socket
import threading
import time
import urllib.parse
from typing import Any, Callable, Mapping

from repro import api
from repro.runtime.cache import ResultCache
from repro.runtime.pool import Task, TaskResult, run_tasks
from repro.runtime.queue import format_point_line
from repro.runtime.spec import get_spec


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class CoordinatorError(Exception):
    """An HTTP error from the coordinator, with its status attached."""

    def __init__(self, status: int, message: str):
        super().__init__(f"coordinator returned {status}: {message}")
        self.status = status


def _is_transient(exc: BaseException) -> bool:
    """True for failures a retry can plausibly fix.

    Network-level trouble (``OSError`` covers refused connections,
    resets, timeouts) and coordinator 5xx are transient; any 4xx is a
    protocol verdict — retrying the same request cannot change it.
    """
    if isinstance(exc, CoordinatorError):
        return exc.status >= 500
    return isinstance(exc, OSError)


def _with_retries(
    fn: Callable[[], Any],
    *,
    what: str,
    tries: int = 4,
    first_delay_s: float = 0.1,
    sleep: Callable[[float], None] = time.sleep,
    log: Callable[[str], None] | None = None,
) -> Any:
    """Call ``fn``, retrying transient failures with doubling backoff.

    Non-transient errors (and the final transient one) propagate to
    the caller, which owns the "declare it dropped" decision.
    """
    delay = first_delay_s
    for attempt in range(1, tries + 1):
        try:
            return fn()
        except (OSError, CoordinatorError) as exc:
            if not _is_transient(exc) or attempt == tries:
                raise
            if log is not None:
                log(f"{what}: transient error ({exc}); "
                    f"retry {attempt}/{tries - 1} in {delay:.1f}s")
            sleep(delay)
            delay *= 2


class CoordinatorClient:
    """Blocking JSON client for the coordinator's job/lease surface.

    One connection per request (stdlib ``http.client``), so a client
    object is safe to share across threads — the heartbeat thread and
    the main loop both use one.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 10.0):
        url = base_url if "//" in base_url else f"http://{base_url}"
        try:
            parts = urllib.parse.urlsplit(url)
        except ValueError as exc:
            raise ValueError(
                f"coordinator: invalid URL {base_url!r}: {exc}"
            ) from None
        if parts.scheme != "http":
            raise ValueError(
                f"coordinator: expected an http:// URL, got {base_url!r}"
            )
        if parts.path not in ("", "/") or parts.query or parts.fragment:
            raise ValueError(
                f"coordinator: URL {base_url!r} carries a path/query the "
                f"client does not support; give the server root, e.g. "
                f"http://host:8787"
            )
        try:
            port = parts.port  # urlsplit validates the port lazily
        except ValueError:
            raise ValueError(
                f"coordinator: URL {base_url!r} has an invalid port"
            ) from None
        # urlsplit handles bracketed IPv6 literals ("[::1]:8787")
        # correctly, which a naive netloc.partition(":") does not
        self.host = parts.hostname or "127.0.0.1"
        self.port = port if port is not None else 8787
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = resp.read().decode("utf-8", "replace")
        finally:
            conn.close()
        try:
            wire = json.loads(data)
        except json.JSONDecodeError:
            wire = {"error": data.strip() or "(empty body)"}
        if resp.status != 200:
            raise CoordinatorError(
                resp.status, wire.get("error", data.strip())
            )
        return wire

    # -- typed surface -----------------------------------------------

    def healthy(self) -> bool:
        try:
            return self._request("GET", "/healthz").get("ok") is True
        except (OSError, CoordinatorError):
            return False

    def submit(self, request: api.SweepJobRequest) -> api.SweepJobStatus:
        wire = self._request("POST", "/v1/jobs", request.to_wire())
        return api.SweepJobStatus.from_wire(wire)

    def job(self, job_id: str) -> api.SweepJobStatus:
        return api.SweepJobStatus.from_wire(
            self._request("GET", f"/v1/jobs/{job_id}")
        )

    def jobs(self) -> list[api.SweepJobStatus]:
        wire = self._request("GET", "/v1/jobs")
        return [api.SweepJobStatus.from_wire(j) for j in wire["jobs"]]

    def lease(self, worker: str, max_points: int = 1,
              job_id: str | None = None,
              ) -> tuple[api.LeaseGrant | None, bool]:
        body: dict[str, Any] = {
            "schema": api.SCHEMA_VERSION,
            "worker": worker,
            "max_points": max_points,
        }
        if job_id is not None:
            body["job"] = job_id
        wire = self._request("POST", "/v1/lease", body)
        grant = wire.get("lease")
        return (
            api.LeaseGrant.from_wire(grant) if grant is not None else None,
            bool(wire.get("all_done")),
        )

    def heartbeat(self, lease_id: str) -> None:
        self._request("POST", f"/v1/lease/{lease_id}/heartbeat",
                      {"schema": api.SCHEMA_VERSION})

    def complete(self, lease_id: str, index: int,
                 manifest: Mapping[str, Any]) -> None:
        self._request("POST", f"/v1/lease/{lease_id}/complete",
                      {"schema": api.SCHEMA_VERSION, "index": index,
                       "manifest": dict(manifest)})

    def fail(self, lease_id: str, index: int, error: str) -> None:
        self._request("POST", f"/v1/lease/{lease_id}/fail",
                      {"schema": api.SCHEMA_VERSION, "index": index,
                       "error": error})

    def manifests(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/manifests")


class _Heartbeat:
    """Daemon thread extending one lease while its batch computes.

    A network blip or a coordinator 5xx must not silently stop the
    beat — the lease would expire under a perfectly healthy worker —
    so transient failures are tolerated up to ``max_failures``
    consecutive misses (by which point the lease has almost certainly
    expired anyway).  A 4xx (404 unknown, 409 expired) is the
    coordinator telling us the lease is gone: stop immediately and let
    the uploads surface the real story.
    """

    def __init__(self, client: CoordinatorClient, lease_id: str,
                 interval_s: float, *, max_failures: int = 5):
        self._client = client
        self._lease_id = lease_id
        self._interval_s = interval_s
        self._max_failures = max_failures
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval_s + 1.0)

    def _run(self) -> None:
        failures = 0
        while not self._stop.wait(self._interval_s):
            try:
                self._client.heartbeat(self._lease_id)
                failures = 0
            except (OSError, CoordinatorError) as exc:
                if not _is_transient(exc):
                    return  # 404/409: the lease is gone for good
                failures += 1
                if failures >= self._max_failures:
                    return


def work_loop(
    client: CoordinatorClient,
    *,
    worker: str | None = None,
    jobs: int = 1,
    batch: int | None = None,
    poll_s: float = 1.0,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    timeout_s: float | None = None,
    stall_s: float = 0.0,
    max_leases: int | None = None,
    reconnect_s: float = 60.0,
    log: Callable[[str], None] = print,
) -> int:
    """Drain the coordinator; returns the number of points uploaded.

    ``batch`` points are leased at a time (default: ``jobs``, so the
    local pool stays full).  ``stall_s`` sleeps after each grant
    *before* computing — a fault-injection hook the kill tests use to
    hold a lease open while the worker dies.  ``max_leases`` bounds
    the number of grants (None = until every job is terminal).

    ``reconnect_s`` is the unreachable-coordinator budget: lease polls
    that fail transiently (connection refused while the coordinator
    restarts, 5xx) are retried with backoff until the coordinator has
    been continuously unreachable for this long — a bounce therefore
    looks like a slow poll.  Set it to 0 to fail on the first error.
    """
    worker = worker or default_worker_id()
    uploaded = 0
    granted = 0
    down_since: float | None = None
    retry_delay = max(poll_s, 0.05)
    while max_leases is None or granted < max_leases:
        try:
            grant, all_done = client.lease(
                worker,
                max_points=batch if batch is not None else max(jobs, 1),
            )
        except (OSError, CoordinatorError) as exc:
            now = time.monotonic()
            if not _is_transient(exc):
                raise
            if down_since is None:
                down_since = now
            if now - down_since >= reconnect_s:
                raise
            log(f"{worker}: coordinator unreachable ({exc}); "
                f"retrying in {retry_delay:.1f}s")
            time.sleep(retry_delay)
            retry_delay = min(retry_delay * 2, 10.0)
            continue
        down_since = None
        retry_delay = max(poll_s, 0.05)
        if grant is None:
            if all_done:
                break
            time.sleep(poll_s)
            continue
        granted += 1
        log(f"{worker}: {grant.describe()}")
        if stall_s > 0:
            time.sleep(stall_s)
        spec = get_spec(grant.artifact)
        tasks = [
            Task(spec, dict(p["overrides"]), quick=grant.quick)
            for p in grant.points
        ]
        index_of = {
            id(task): p["index"] for task, p in zip(tasks, grant.points)
        }
        uploads = {"n": 0}

        def upload(task: Task, result: TaskResult,
                   _lease_id=grant.lease_id, _index_of=index_of,
                   _uploads=uploads) -> None:
            index = _index_of[id(task)]
            status = result.status
            try:
                # Transient network/5xx trouble is retried with backoff
                # before the point is declared dropped: one blip must
                # not strand a whole computed batch.
                if result.ok:
                    _with_retries(
                        lambda: client.complete(
                            _lease_id, index, result.manifest),
                        what=f"{worker}: upload point {index}", log=log,
                    )
                    _uploads["n"] += 1
                else:
                    _with_retries(
                        lambda: client.fail(
                            _lease_id, index,
                            result.error or f"task {status} with no detail",
                        ),
                        what=f"{worker}: report point {index}", log=log,
                    )
                    status = "failed"
            except CoordinatorError as exc:
                # 409: the lease expired under us or our code is
                # version-skewed; 404: the coordinator restarted (or
                # pruned the lease with the job already terminal).
                # Either way this point is no longer ours to report.
                status = "dropped"
                log(f"{worker}: point {index} not accepted: {exc}")
            except OSError as exc:
                status = "dropped"
                log(f"{worker}: point {index} not uploaded after "
                    f"retries: {exc}")
            log(format_point_line(result.spec_name, task.overrides, status))

        with _Heartbeat(client, grant.lease_id,
                        interval_s=grant.lease_timeout_s / 3.0):
            run_tasks(
                tasks, jobs=jobs, cache=cache, use_cache=use_cache,
                timeout_s=timeout_s, on_result=upload,
            )
        uploaded += uploads["n"]
    log(f"{worker}: done — {uploaded} point(s) uploaded over "
        f"{granted} lease(s)")
    return uploaded
