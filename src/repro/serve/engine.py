"""The async schedule-pricing engine behind ``mbs-repro serve``.

One :class:`ScheduleEngine` owns the production behaviors the HTTP
layer is a thin shell over:

* **dedup** — identical in-flight queries (same request fingerprint)
  share one DP execution; every waiter gets the same result object;
* **batching** — queries arriving within a short window that differ
  *only in buffer size* ride one
  :func:`~repro.api.sweep` dispatch, sharing the cross-point pricing
  caches (PR 6's batch sweep API) instead of paying one cold DP each;
* **result cache** — finished prices persist through
  :class:`~repro.runtime.cache.ResultCache` manifests keyed on the
  request fingerprint (graph fingerprint + buffer + objective +
  hardware config family + relu mask + batch + word width) and the
  *pricing-scoped* code fingerprint (:func:`serve_fingerprint` — the
  import closure of :mod:`repro.api`, which covers core/graph/zoo but
  not ``experiments/``), so a restarted server stays warm, editing an
  experiment driver never cold-starts the serve cache, and a changed
  pricing stack never replays old numbers.  ``cache_max_entries`` /
  ``cache_max_bytes`` bound the store with LRU eviction (evictions are
  counted in ``/v1/stats``);
* **worker processes** — DPs run on a
  :class:`~repro.runtime.pool.WorkerPool` so the event loop never
  blocks on a schedule search;
* **degradation** — a per-request timeout or a saturated queue returns
  the cheap greedy schedule (:func:`repro.api.degraded_result`) with
  ``degraded: true`` instead of queueing unboundedly; the real DP, if
  already dispatched, still completes in the background and lands in
  the cache for the next query.

The pricing callables are injectable (``pricer`` / ``batch_pricer``)
so tests can count executions in-process; the defaults run
:func:`repro.api.price` in the worker pool, which is what makes HTTP
responses bit-identical to the Python facade and the CLI.
"""
from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro import api
from repro.runtime.cache import ResultCache, module_fingerprint
from repro.runtime.pool import WorkerPool

#: Cache "spec" namespace: manifests land in ``<cache root>/serve/``.
CACHE_SPEC = "serve"


def serve_fingerprint() -> str:
    """Code digest the serve cache is scoped to.

    The import closure of :mod:`repro.api` — every module a price can
    depend on (core DP/walkers, graph, zoo, wavecore models) and none
    it can't (experiment drivers, the runtime engine, this file's own
    batching logic).
    """
    return module_fingerprint("repro.api")


def price_wire(wire: Mapping[str, Any]) -> dict[str, Any]:
    """Worker entry point: price one wire request → wire result."""
    req = api.ScheduleRequest.from_wire(wire)
    return api.price(req).to_wire()


def price_batch_wire(wires: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Worker entry point for a buffer-size batch.

    All requests share everything but ``buffer_bytes`` (the engine
    groups them that way), so one :func:`repro.api.sweep` call prices
    the whole batch through the shared
    :class:`~repro.core.policies.SweepCaches` — bit-identical to
    per-point :func:`~repro.api.price` calls, just cheaper.
    """
    reqs = [api.ScheduleRequest.from_wire(w) for w in wires]
    first = reqs[0]
    net = first.resolve_network()
    results = api.sweep(
        net, first.policy, [r.buffer_bytes for r in reqs],
        mini_batch=first.mini_batch, objective=first.objective,
        relu_mask=first.relu_mask, word_bytes=first.word_bytes,
    )
    return [r.to_wire() for r in results]


def degraded_wire(wire: Mapping[str, Any]) -> dict[str, Any]:
    """Fallback entry point: the greedy schedule, flagged degraded."""
    req = api.ScheduleRequest.from_wire(wire)
    return api.degraded_result(req).to_wire()


@dataclass
class EngineStats:
    """Observability counters (the ``/v1/stats`` endpoint)."""

    requests: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    #: requests that rode a multi-point sweep dispatch
    batched: int = 0
    #: pricer invocations (one per dispatch, single or batch)
    executions: int = 0
    degraded: int = 0
    errors: int = 0
    #: manifests dropped by the LRU bound on the result cache
    evictions: int = 0

    def to_wire(self) -> dict[str, int]:
        return {f: getattr(self, f) for f in (
            "requests", "cache_hits", "dedup_hits", "batched",
            "executions", "degraded", "errors", "evictions",
        )}


@dataclass
class _Pending:
    key: str
    wire: dict[str, Any]
    group: str
    future: asyncio.Future


class ScheduleEngine:
    """Dedup + batch + cache + degrade around the pricing workers.

    ``workers=0`` prices inline on the event loop's default thread
    executor — the mode tests (and tiny deployments) use; any other
    count owns a :class:`~repro.runtime.pool.WorkerPool` of that size.
    ``cache=None`` disables result persistence (dedup still applies).
    ``cache_max_entries`` / ``cache_max_bytes`` bound the persisted
    serve namespace: least-recently-used manifests are deleted once
    either limit is exceeded (``None`` = unbounded).
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        workers: int = 1,
        timeout_s: float = 30.0,
        max_pending: int = 64,
        batch_window_s: float = 0.002,
        cache_max_entries: int | None = None,
        cache_max_bytes: int | None = None,
        pricer: Callable[[Mapping[str, Any]], dict] | None = None,
        batch_pricer: Callable[[list], list] | None = None,
    ):
        self.cache = cache
        self.pool = WorkerPool(workers) if workers >= 1 else None
        self.timeout_s = timeout_s
        self.max_pending = max_pending
        self.batch_window_s = batch_window_s
        self.cache_max_entries = cache_max_entries
        self.cache_max_bytes = cache_max_bytes
        self._pricer = pricer if pricer is not None else price_wire
        self._batch_pricer = (
            batch_pricer if batch_pricer is not None else price_batch_wire
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: list[_Pending] = []
        self._batcher: asyncio.Task | None = None
        self._dispatches: set[asyncio.Task] = set()
        self.stats = EngineStats()
        #: LRU index over the serve namespace: key -> manifest bytes on
        #: disk, oldest first.  Seeded from whatever a previous server
        #: left behind (mtime order approximates its recency).
        self._lru: OrderedDict[str, int] = OrderedDict()
        self._lru_bytes = 0
        if cache is not None and self._bounded:
            entries = sorted(
                cache.entries(CACHE_SPEC),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
            for path in entries:
                self._lru[path.stem] = path.stat().st_size
                self._lru_bytes += path.stat().st_size
            self._evict()

    # -- key derivation ------------------------------------------------

    @staticmethod
    def _group_signature(req: api.ScheduleRequest, key: str) -> str:
        """Batch-compatibility class: the fingerprint minus the buffer.

        Two requests may share one sweep dispatch iff they differ only
        in ``buffer_bytes`` — same graph, policy, objective, relu mask,
        mini-batch, and word width.
        """
        import json

        from repro.graph.serialize import network_fingerprint

        del key  # the per-request key stays per-buffer
        net = req.resolve_network()
        return json.dumps({
            "graph": network_fingerprint(net),
            "policy": req.policy,
            "mini_batch": req.mini_batch,
            "objective": req.objective,
            "relu_mask": req.relu_mask,
            "word_bytes": req.word_bytes,
        }, sort_keys=True)

    # -- cache layer ---------------------------------------------------

    @property
    def _bounded(self) -> bool:
        return (self.cache_max_entries is not None
                or self.cache_max_bytes is not None)

    def _cache_lookup(self, key: str) -> dict[str, Any] | None:
        if self.cache is None:
            return None
        manifest = self.cache.lookup(CACHE_SPEC, key)
        if manifest is None:
            return None
        if manifest.get("fingerprint") != serve_fingerprint():
            return None  # stale pricing code: never replay old numbers
        if self._bounded:
            if key not in self._lru:  # stored by another process
                size = self.cache.path(CACHE_SPEC, key).stat().st_size
                self._lru[key] = size
                self._lru_bytes += size
            self._lru.move_to_end(key)
        return manifest.get("result")

    def _cache_store(self, key: str, result: Mapping[str, Any]) -> None:
        if self.cache is None:
            return
        path = self.cache.store({
            "spec": CACHE_SPEC,
            "key": key,
            "fingerprint": serve_fingerprint(),
            "result": dict(result),
        })
        if self._bounded:
            self._lru_bytes -= self._lru.pop(key, 0)
            self._lru[key] = path.stat().st_size
            self._lru_bytes += self._lru[key]
            self._evict()

    def _evict(self) -> None:
        """Drop least-recently-used manifests until inside both bounds."""

        def over() -> bool:
            if (self.cache_max_entries is not None
                    and len(self._lru) > self.cache_max_entries):
                return True
            return (self.cache_max_bytes is not None
                    and self._lru_bytes > self.cache_max_bytes)

        while self._lru and over():
            key, size = self._lru.popitem(last=False)
            self._lru_bytes -= size
            path = self.cache.path(CACHE_SPEC, key)
            try:
                path.unlink()
            except OSError:
                pass  # already gone: the bound is still respected
            self.stats.evictions += 1

    # -- the submit path -----------------------------------------------

    async def submit(self, wire: Mapping[str, Any]) -> tuple[dict, dict]:
        """Price one wire request; returns ``(result_wire, meta)``.

        ``meta`` carries the transport flags the response envelope
        reports: ``cached`` / ``deduped`` / ``degraded``.  Raises
        ``ValueError`` (including
        :class:`~repro.graph.serialize.GraphSchemaError`) for requests
        the wire schema rejects — the HTTP layer maps that to 400.
        """
        self.stats.requests += 1
        req = api.ScheduleRequest.from_wire(wire)
        net = req.resolve_network()
        key = api.request_fingerprint(req, net)

        cached = self._cache_lookup(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached, {"cached": True, "deduped": False,
                            "degraded": bool(cached.get("degraded"))}

        future = self._inflight.get(key)
        if future is not None:
            self.stats.dedup_hits += 1
            return await self._await_priced(key, future, wire, deduped=True)

        if len(self._inflight) >= self.max_pending:
            # load shedding: answer greedily *now* rather than queue
            result = await self._degrade(wire)
            return result, {"cached": False, "deduped": False,
                            "degraded": True}

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        # Consume the exception even if every waiter timed out into the
        # degraded path — an unretrieved future exception warns loudly.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        self._queue.append(_Pending(
            key=key, wire=dict(wire),
            group=self._group_signature(req, key), future=future,
        ))
        self._kick_batcher()
        return await self._await_priced(key, future, wire, deduped=False)

    async def _await_priced(self, key: str, future: asyncio.Future,
                            wire: Mapping[str, Any], deduped: bool,
                            ) -> tuple[dict, dict]:
        try:
            result = await asyncio.wait_for(
                asyncio.shield(future), self.timeout_s
            )
        except asyncio.TimeoutError:
            # The DP keeps running; its result will land in the cache.
            result = await self._degrade(wire)
            return result, {"cached": False, "deduped": deduped,
                            "degraded": True}
        except Exception:
            self.stats.errors += 1
            raise
        return result, {"cached": False, "deduped": deduped,
                        "degraded": bool(result.get("degraded"))}

    async def _degrade(self, wire: Mapping[str, Any]) -> dict[str, Any]:
        """Greedy fallback, off the event loop (thread executor)."""
        self.stats.degraded += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, degraded_wire, dict(wire))

    # -- batch dispatch ------------------------------------------------

    def _kick_batcher(self) -> None:
        if self._batcher is None or self._batcher.done():
            self._batcher = asyncio.get_running_loop().create_task(
                self._drain_queue()
            )

    async def _drain_queue(self) -> None:
        """Collect requests for one batch window, then dispatch groups."""
        while self._queue:
            if self.batch_window_s > 0:
                await asyncio.sleep(self.batch_window_s)
            pending, self._queue = self._queue, []
            groups: dict[str, list[_Pending]] = {}
            for item in pending:
                groups.setdefault(item.group, []).append(item)
            for items in groups.values():
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(items)
                )
                self._dispatches.add(task)
                task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, items: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        executor = self.pool.executor if self.pool is not None else None
        try:
            if len(items) == 1:
                outs = [await loop.run_in_executor(
                    executor, self._pricer, items[0].wire
                )]
            else:
                outs = await loop.run_in_executor(
                    executor, self._batch_pricer,
                    [item.wire for item in items],
                )
                self.stats.batched += len(items)
            self.stats.executions += 1
        except Exception as exc:
            for item in items:
                self._inflight.pop(item.key, None)
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, result in zip(items, outs):
            self._cache_store(item.key, result)
            self._inflight.pop(item.key, None)
            if not item.future.done():
                item.future.set_result(result)

    # -- lifecycle -----------------------------------------------------

    async def aclose(self) -> None:
        """Cancel pending work and release the worker pool."""
        if self._batcher is not None:
            self._batcher.cancel()
        for task in list(self._dispatches):
            task.cancel()
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._inflight.clear()
        self._queue.clear()
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True,
                               terminate=True)
