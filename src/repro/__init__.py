"""MBS: Mini-batch Serialization for CNN training — paper reproduction.

Reproduces Lym et al., "Mini-batch Serialization: CNN Training with
Inter-layer Data Reuse" (SysML/MLSys 2019).  The public API surfaces the
four things a user does:

* build or define a network — :mod:`repro.zoo`, :mod:`repro.graph`;
* price a schedule for it — :mod:`repro.api` (the supported, stable
  facade: :func:`repro.api.price` / :func:`repro.api.sweep`), or serve
  prices over HTTP — :mod:`repro.serve`;
* simulate the WaveCore accelerator — :func:`repro.wavecore.simulate_step`;
* verify/re-run the training numerics — :mod:`repro.nn`.

The deeper entry points (:func:`repro.core.make_schedule`,
:func:`repro.core.compute_traffic`) remain importable but only
:mod:`repro.api` carries the stability promise.

See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
results on every table and figure.
"""
from repro import api
from repro.core import compute_traffic, make_schedule
from repro.types import GIB, KIB, MIB, Shape
from repro.wavecore import simulate_step

__version__ = "1.0.0"

__all__ = [
    "GIB",
    "KIB",
    "MIB",
    "Shape",
    "__version__",
    "api",
    "compute_traffic",
    "make_schedule",
    "simulate_step",
]
