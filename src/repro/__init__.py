"""MBS: Mini-batch Serialization for CNN training — paper reproduction.

Reproduces Lym et al., "Mini-batch Serialization: CNN Training with
Inter-layer Data Reuse" (SysML/MLSys 2019).  The public API surfaces the
four things a user does:

* build or define a network — :mod:`repro.zoo`, :mod:`repro.graph`;
* schedule it — :func:`repro.core.make_schedule` and
  :func:`repro.core.compute_traffic`;
* simulate the WaveCore accelerator — :func:`repro.wavecore.simulate_step`;
* verify/re-run the training numerics — :mod:`repro.nn`.

See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
results on every table and figure.
"""
from repro.core import compute_traffic, make_schedule
from repro.types import GIB, KIB, MIB, Shape
from repro.wavecore import simulate_step

__version__ = "1.0.0"

__all__ = [
    "GIB",
    "KIB",
    "MIB",
    "Shape",
    "__version__",
    "compute_traffic",
    "make_schedule",
    "simulate_step",
]
