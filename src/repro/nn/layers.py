"""Trainable layer modules wrapping the functional kernels.

Each module owns its parameters and *accumulates* into ``grads`` on
backward — accumulation is what lets the MBS executor sum gradients
across sub-batches without any layer-level changes (paper Sec. 3,
"Data Synchronization").
"""
from __future__ import annotations

import numpy as np

from repro.graph.layers import (
    Activation,
    Conv2D,
    FullyConnected,
    Norm,
    NormKind,
    Pool,
    PoolKind,
)
from repro.nn import functional as F
from repro.nn import norm as N


class NNLayer:
    """Base module: stateless by default."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self._cache = None

    def zero_grads(self) -> None:
        for k in self.grads:
            self.grads[k][...] = 0.0

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class NNConv(NNLayer):
    def __init__(self, spec: Conv2D, rng: np.random.Generator, dtype=np.float64):
        super().__init__()
        self.spec = spec
        ci = spec.in_shape.c
        fan_in = ci * spec.kernel[0] * spec.kernel[1]
        w = rng.normal(0.0, np.sqrt(2.0 / fan_in),
                       (spec.out_channels, ci, *spec.kernel))
        self.params["w"] = w.astype(dtype)
        self.grads["w"] = np.zeros_like(self.params["w"])
        if spec.bias:
            self.params["b"] = np.zeros(spec.out_channels, dtype=dtype)
            self.grads["b"] = np.zeros_like(self.params["b"])

    def forward(self, x, training=True):
        self._cache = x
        return F.conv2d_forward(
            x, self.params["w"], self.params.get("b"),
            self.spec.stride, self.spec.padding,
        )

    def backward(self, dy):
        x = self._cache
        dx, dw, db = F.conv2d_backward(
            x, self.params["w"], dy, self.spec.stride, self.spec.padding,
            with_bias="b" in self.params,
        )
        self.grads["w"] += dw
        if db is not None:
            self.grads["b"] += db
        return dx


class NNNorm(NNLayer):
    def __init__(self, spec: Norm, dtype=np.float64):
        super().__init__()
        self.spec = spec
        c = spec.in_shape.c
        self.params["gamma"] = np.ones(c, dtype=dtype)
        self.params["beta"] = np.zeros(c, dtype=dtype)
        self.grads["gamma"] = np.zeros_like(self.params["gamma"])
        self.grads["beta"] = np.zeros_like(self.params["beta"])
        #: mean of the layer's output on the last forward (the paper's
        #: Fig. 6 right panel tracks per-norm-layer pre-activation means)
        self.last_output_mean: float = 0.0

    def forward(self, x, training=True):
        if self.spec.norm is NormKind.BATCH:
            y, cache = N.batchnorm_forward(
                x, self.params["gamma"], self.params["beta"]
            )
        else:
            y, cache = N.groupnorm_forward(
                x, self.params["gamma"], self.params["beta"], self.spec.groups
            )
        self._cache = cache
        self.last_output_mean = float(y.mean())
        return y

    def backward(self, dy):
        if self.spec.norm is NormKind.BATCH:
            dx, dgamma, dbeta = N.batchnorm_backward(dy, self._cache)
        else:
            dx, dgamma, dbeta = N.groupnorm_backward(dy, self._cache)
        self.grads["gamma"] += dgamma
        self.grads["beta"] += dbeta
        return dx


class NNReLU(NNLayer):
    def __init__(self, spec: Activation):
        super().__init__()
        self.spec = spec
        #: mean of the layer's input (pre-activation) on the last forward
        self.last_input_mean: float = 0.0

    def forward(self, x, training=True):
        self.last_input_mean = float(x.mean())
        y, mask = F.relu_forward(x)
        self._cache = mask
        return y

    def backward(self, dy):
        return F.relu_backward(dy, self._cache)


class NNPool(NNLayer):
    def __init__(self, spec: Pool):
        super().__init__()
        self.spec = spec

    def forward(self, x, training=True):
        s = self.spec
        if s.global_pool:
            y, cache = F.global_avgpool_forward(x)
        elif s.pool is PoolKind.MAX:
            y, cache = F.maxpool_forward(x, s.kernel, s.stride, s.padding)
        else:
            y, cache = F.avgpool_forward(x, s.kernel, s.stride, s.padding)
        self._cache = cache
        return y

    def backward(self, dy):
        s = self.spec
        if s.global_pool:
            return F.global_avgpool_backward(dy, self._cache)
        if s.pool is PoolKind.MAX:
            return F.maxpool_backward(dy, self._cache)
        return F.avgpool_backward(dy, self._cache)


class NNLinear(NNLayer):
    def __init__(self, spec: FullyConnected, rng: np.random.Generator,
                 dtype=np.float64):
        super().__init__()
        self.spec = spec
        fan_in = spec.in_shape.elems
        self.params["w"] = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), (fan_in, spec.out_features)
        ).astype(dtype)
        self.grads["w"] = np.zeros_like(self.params["w"])
        if spec.bias:
            self.params["b"] = np.zeros(spec.out_features, dtype=dtype)
            self.grads["b"] = np.zeros_like(self.params["b"])

    def forward(self, x, training=True):
        flat = x.reshape(x.shape[0], -1)
        self._cache = (flat, x.shape)
        y = flat @ self.params["w"]
        if "b" in self.params:
            y = y + self.params["b"]
        return y

    def backward(self, dy):
        flat, xshape = self._cache
        dy = dy.reshape(dy.shape[0], -1)
        self.grads["w"] += flat.T @ dy
        if "b" in self.params:
            self.grads["b"] += dy.sum(axis=0)
        return (dy @ self.params["w"].T).reshape(xshape)


def build_layer(spec, rng: np.random.Generator, dtype=np.float64) -> NNLayer:
    """Instantiate the executable module for a graph-IR layer spec."""
    if isinstance(spec, Conv2D):
        return NNConv(spec, rng, dtype)
    if isinstance(spec, Norm):
        return NNNorm(spec, dtype)
    if isinstance(spec, Activation):
        return NNReLU(spec)
    if isinstance(spec, Pool):
        return NNPool(spec)
    if isinstance(spec, FullyConnected):
        return NNLinear(spec, rng, dtype)
    raise TypeError(f"no executable module for layer spec {type(spec).__name__}")
