"""Batch and group normalization, forward and backward.

Group normalization (Wu & He, 2018) normalizes within channel groups of
a *single sample*, which is what makes it compatible with MBS: the
statistics of one sample do not depend on which sub-batch it travels in
(paper Sec. 3.1).  Batch normalization couples every sample in the
mini-batch through the shared statistics, which is exactly what MBS
serialization would break.
"""
from __future__ import annotations

import numpy as np


def batchnorm_forward(x, gamma, beta, eps=1e-5):
    """x: (N,C,H,W); statistics over (N,H,W) per channel."""
    mean = x.mean(axis=(0, 2, 3), keepdims=True)
    var = x.var(axis=(0, 2, 3), keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv
    y = gamma[None, :, None, None] * xhat + beta[None, :, None, None]
    return y, (xhat, inv, gamma)


def batchnorm_backward(dy, cache):
    xhat, inv, gamma = cache
    n, c, h, w = dy.shape
    m = n * h * w
    dxhat = dy * gamma[None, :, None, None]
    dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    dbeta = dy.sum(axis=(0, 2, 3))
    sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
    sum_dxhat_xhat = (dxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
    dx = inv / m * (m * dxhat - sum_dxhat - xhat * sum_dxhat_xhat)
    return dx, dgamma, dbeta


def groupnorm_forward(x, gamma, beta, groups, eps=1e-5):
    """x: (N,C,H,W); statistics over each sample's channel group."""
    n, c, h, w = x.shape
    if c % groups:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    xg = x.reshape(n, groups, c // groups, h, w)
    mean = xg.mean(axis=(2, 3, 4), keepdims=True)
    var = xg.var(axis=(2, 3, 4), keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = ((xg - mean) * inv).reshape(n, c, h, w)
    y = gamma[None, :, None, None] * xhat + beta[None, :, None, None]
    return y, (xhat, inv, gamma, groups)


def groupnorm_backward(dy, cache):
    xhat, inv, gamma, groups = cache
    n, c, h, w = dy.shape
    m = (c // groups) * h * w
    dxhat = (dy * gamma[None, :, None, None]).reshape(n, groups, c // groups, h, w)
    xhat_g = xhat.reshape(n, groups, c // groups, h, w)
    dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    dbeta = dy.sum(axis=(0, 2, 3))
    sum_dxhat = dxhat.sum(axis=(2, 3, 4), keepdims=True)
    sum_dxhat_xhat = (dxhat * xhat_g).sum(axis=(2, 3, 4), keepdims=True)
    dxg = inv / m * (m * dxhat - sum_dxhat - xhat_g * sum_dxhat_xhat)
    return dxg.reshape(n, c, h, w), dgamma, dbeta
