"""Graph-IR interpreter: turns a :class:`repro.graph.Network` into a
trainable NumPy model, preserving the exact block/branch structure."""
from __future__ import annotations

import numpy as np

from repro.graph.blocks import Block, Branch, MergeKind
from repro.graph.network import Network
from repro.nn.layers import NNNorm, NNReLU, build_layer


class _ExecBranch:
    def __init__(self, branch: Branch, rng, dtype):
        self.layers = [build_layer(s, rng, dtype) for s in branch.layers]
        self.children = [_ExecBranch(c, rng, dtype) for c in branch.children]
        self.is_identity = branch.is_identity

    def forward(self, x, training):
        for layer in self.layers:
            x = layer.forward(x, training)
        if not self.children:
            return [x]
        outs = []
        for child in self.children:
            outs.extend(child.forward(x, training))
        return outs

    def backward(self, dleaves: list[np.ndarray]):
        if self.children:
            dx_tail = None
            idx = 0
            for child in self.children:
                n_leaves = child.num_leaves
                d = child.backward(dleaves[idx : idx + n_leaves])
                dx_tail = d if dx_tail is None else dx_tail + d
                idx += n_leaves
        else:
            (dx_tail,) = dleaves
        for layer in reversed(self.layers):
            dx_tail = layer.backward(dx_tail)
        return dx_tail

    @property
    def num_leaves(self) -> int:
        if not self.children:
            return 1
        return sum(c.num_leaves for c in self.children)

    def modules(self):
        yield from self.layers
        for child in self.children:
            yield from child.modules()


class _ExecBlock:
    def __init__(self, block: Block, rng, dtype):
        self.spec = block
        self.branches = [_ExecBranch(b, rng, dtype) for b in block.branches]
        self.post = [build_layer(s, rng, dtype) for s in block.post_merge]
        self._leaf_channels: list[int] | None = None

    def forward(self, x, training):
        leaf_lists = [br.forward(x, training) for br in self.branches]
        leaves = [l for lst in leaf_lists for l in lst]
        if self.spec.merge is None:
            y = leaves[0]
        elif self.spec.merge is MergeKind.ADD:
            y = leaves[0]
            for l in leaves[1:]:
                y = y + l
        else:  # CONCAT
            self._leaf_channels = [l.shape[1] for l in leaves]
            y = np.concatenate(leaves, axis=1)
        for layer in self.post:
            y = layer.forward(y, training)
        return y

    def backward(self, dy):
        for layer in reversed(self.post):
            dy = layer.backward(dy)
        if self.spec.merge is MergeKind.CONCAT:
            splits = np.cumsum(self._leaf_channels)[:-1]
            dleaves = np.split(dy, splits, axis=1)
        else:
            total_leaves = sum(br.num_leaves for br in self.branches)
            dleaves = [dy] * total_leaves
        dx = None
        idx = 0
        for br in self.branches:
            n_leaves = br.num_leaves
            d = br.backward(list(dleaves[idx : idx + n_leaves]))
            dx = d if dx is None else dx + d
            idx += n_leaves
        return dx

    def modules(self):
        for br in self.branches:
            yield from br.modules()
        yield from self.post


class NetworkModel:
    """Executable, trainable interpretation of a graph-IR network."""

    def __init__(self, network: Network, seed: int = 0, dtype=np.float64):
        self.network = network
        self.dtype = dtype
        rng = np.random.default_rng(seed)
        self.blocks = [_ExecBlock(b, rng, dtype) for b in network.blocks]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = x.astype(self.dtype, copy=False)
        for block in self.blocks:
            x = block.forward(x, training)
        return x.reshape(x.shape[0], -1)

    def backward(self, dlogits: np.ndarray) -> None:
        n = dlogits.shape[0]
        out = self.network.out_shape
        dy = dlogits.reshape(n, out.c, out.h, out.w).astype(self.dtype, copy=False)
        for block in reversed(self.blocks):
            dy = block.backward(dy)

    # ------------------------------------------------------------------
    def modules(self):
        for block in self.blocks:
            yield from block.modules()

    def parameters(self):
        """Yield (qualified_name, param, grad) triples."""
        for i, module in enumerate(self.modules()):
            prefix = getattr(getattr(module, "spec", None), "name", f"module{i}")
            for key in module.params:
                yield f"{prefix}.{key}", module.params[key], module.grads[key]

    def zero_grads(self) -> None:
        for module in self.modules():
            module.zero_grads()

    def gradient_vector(self) -> np.ndarray:
        """All gradients flattened (deterministic order) — for tests."""
        return np.concatenate([g.ravel() for _, _, g in self.parameters()])

    def norm_output_means(self) -> dict[str, float]:
        """Per-normalization-layer output means of the last forward pass
        (the paper's Fig. 6 pre-activation distribution check)."""
        out = {}
        for module in self.modules():
            if isinstance(module, NNNorm):
                out[module.spec.name] = module.last_output_mean
        return out

    def pre_activation_means(self) -> dict[str, float]:
        """Per-ReLU input means of the last forward pass (used for the
        un-normalized network, which has no norm layers to probe)."""
        out = {}
        for module in self.modules():
            if isinstance(module, NNReLU):
                out[module.spec.name] = module.last_input_mean
        return out

    def param_count(self) -> int:
        return sum(p.size for _, p, _ in self.parameters())
