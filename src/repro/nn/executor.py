"""Mini-batch executors: conventional full-batch vs MBS serialization.

``mbs_gradients`` is the numerical core of the paper's Sec. 3 claim: with
per-sample normalization (GN) and summed gradient accumulation, pushing
sub-batches one at a time through the network — any sub-batch sizing —
produces exactly the gradients of one full-mini-batch pass.  With batch
normalization the statistics change per sub-batch and the equivalence
breaks, which is why MBS adapts GN.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.subbatch import sub_batch_sequence
from repro.nn.loss import softmax_cross_entropy
from repro.nn.model import NetworkModel


@dataclass(frozen=True)
class StepStats:
    """Outcome of one gradient computation over a mini-batch."""

    loss_sum: float
    correct: int
    samples: int

    @property
    def loss_mean(self) -> float:
        return self.loss_sum / self.samples if self.samples else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.samples if self.samples else 0.0


def compute_gradients(
    model: NetworkModel, x: np.ndarray, y: np.ndarray
) -> StepStats:
    """Conventional flow: one forward/backward over the whole mini-batch.

    Gradients are *accumulated* into the model (callers zero first).
    """
    logits = model.forward(x, training=True)
    loss, dlogits, correct = softmax_cross_entropy(logits, y)
    model.backward(dlogits)
    return StepStats(loss_sum=loss, correct=correct, samples=x.shape[0])


def mbs_gradients(
    model: NetworkModel, x: np.ndarray, y: np.ndarray, sub_batch: int
) -> StepStats:
    """MBS flow: serialize the mini-batch into sub-batches, accumulating
    parameter gradients across iterations (paper Fig. 5 / Sec. 3)."""
    n = x.shape[0]
    loss = 0.0
    correct = 0
    start = 0
    for size in sub_batch_sequence(n, sub_batch):
        xs = x[start : start + size]
        ys = y[start : start + size]
        logits = model.forward(xs, training=True)
        l, dlogits, c = softmax_cross_entropy(logits, ys)
        model.backward(dlogits)
        loss += l
        correct += c
        start += size
    return StepStats(loss_sum=loss, correct=correct, samples=n)


def evaluate(model: NetworkModel, x: np.ndarray, y: np.ndarray,
             batch: int = 64) -> StepStats:
    """Validation pass (no gradients are used; caller may zero after)."""
    loss = 0.0
    correct = 0
    for start in range(0, x.shape[0], batch):
        xs = x[start : start + batch]
        ys = y[start : start + batch]
        logits = model.forward(xs, training=False)
        l, _, c = softmax_cross_entropy(logits, ys)
        loss += l
        correct += c
    return StepStats(loss_sum=loss, correct=correct, samples=x.shape[0])
