"""SGD with momentum and step learning-rate decay (the paper's recipe:
momentum SGD, initial LR 0.05, decay 0.1 at scheduled epochs)."""
from __future__ import annotations

import numpy as np

from repro.nn.model import NetworkModel


class SGD:
    """Momentum SGD over a model's accumulated (summed) gradients.

    ``step(batch_size)`` divides the gradient sums by the mini-batch size
    so full-batch and MBS-accumulated executions update identically.
    """

    def __init__(
        self,
        model: NetworkModel,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        decay_epochs: tuple[int, ...] = (),
        decay_factor: float = 0.1,
    ) -> None:
        self.model = model
        self.base_lr = lr
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.decay_epochs = tuple(decay_epochs)
        self.decay_factor = decay_factor
        self._velocity = {
            name: np.zeros_like(p) for name, p, _ in model.parameters()
        }

    def set_epoch(self, epoch: int) -> None:
        decays = sum(1 for e in self.decay_epochs if epoch >= e)
        self.lr = self.base_lr * (self.decay_factor ** decays)

    def step(self, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for name, p, g in self.model.parameters():
            grad = g / batch_size
            if self.weight_decay:
                grad = grad + self.weight_decay * p
            v = self._velocity[name]
            v *= self.momentum
            v -= self.lr * grad
            p += v
