"""Model checkpointing: save/load parameters as ``.npz`` archives."""
from __future__ import annotations

import numpy as np

from repro.nn.model import NetworkModel


def state_dict(model: NetworkModel) -> dict[str, np.ndarray]:
    """Qualified-name → parameter array (copies)."""
    out: dict[str, np.ndarray] = {}
    for name, param, _ in model.parameters():
        if name in out:
            raise ValueError(f"duplicate parameter name {name!r}")
        out[name] = param.copy()
    return out


def load_state_dict(model: NetworkModel, state: dict[str, np.ndarray]) -> None:
    """Load parameters in place; names and shapes must match exactly."""
    expected = {name for name, _, _ in model.parameters()}
    given = set(state)
    if expected != given:
        missing = sorted(expected - given)
        extra = sorted(given - expected)
        raise ValueError(
            f"state mismatch: missing={missing[:3]}... extra={extra[:3]}..."
            if len(missing) + len(extra) > 6
            else f"state mismatch: missing={missing} extra={extra}"
        )
    for name, param, _ in model.parameters():
        src = state[name]
        if src.shape != param.shape:
            raise ValueError(
                f"{name}: shape mismatch {src.shape} vs {param.shape}"
            )
        param[...] = src


def save_weights(model: NetworkModel, path: str) -> None:
    """Write all parameters to an ``.npz`` archive."""
    np.savez(path, **state_dict(model))


def load_weights(model: NetworkModel, path: str) -> None:
    """Restore parameters from :func:`save_weights` output."""
    with np.load(path) as archive:
        load_state_dict(model, {k: archive[k] for k in archive.files})
