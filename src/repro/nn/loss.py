"""Softmax cross-entropy with sum reduction.

Sum reduction (rather than mean) keeps gradient accumulation across MBS
sub-batches exactly equivalent to a full-mini-batch pass: sub-batch
gradient sums simply add up.  Callers divide by the mini-batch size at
optimizer time.
"""
from __future__ import annotations

import numpy as np


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray, int]:
    """Returns (summed loss, dlogits, correct-prediction count)."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, classes), got {logits.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    eps = np.finfo(probs.dtype).tiny
    loss = -np.log(probs[np.arange(n), labels] + eps).sum()
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    correct = int((logits.argmax(axis=1) == labels).sum())
    return float(loss), dlogits, correct
