"""NumPy CNN training substrate.

Interprets the graph IR of :mod:`repro.graph` into an executable,
trainable model: im2col convolutions, batch/group normalization, pooling,
fully-connected layers, softmax cross-entropy, SGD with momentum — enough
to demonstrate the paper's Sec. 3.1 numerics: MBS sub-batch serialization
with group normalization computes *exactly* the same gradients as
full-mini-batch training, while batch normalization does not.
"""
from repro.nn.model import NetworkModel
from repro.nn.executor import compute_gradients, mbs_gradients
from repro.nn.optim import SGD
from repro.nn.loss import softmax_cross_entropy
from repro.nn.data import synthetic_dataset
from repro.nn.train import TrainResult, train

__all__ = [
    "NetworkModel",
    "SGD",
    "TrainResult",
    "compute_gradients",
    "mbs_gradients",
    "softmax_cross_entropy",
    "synthetic_dataset",
    "train",
]
