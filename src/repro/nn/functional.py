"""Vectorized NumPy kernels: convolution, pooling, activations.

Everything is expressed through ``sliding_window_view`` + ``einsum`` so
the Python interpreter never loops over pixels (per the ml-systems
guide); correctness is pinned by finite-difference tests.
"""
from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def _pair(v):
    return (v, v) if isinstance(v, int) else tuple(v)


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------

def conv2d_forward(
    x: np.ndarray,
    w: np.ndarray,
    bias: np.ndarray | None,
    stride,
    padding,
) -> np.ndarray:
    """x: (N,Ci,H,W), w: (Co,Ci,R,S) → (N,Co,Ho,Wo)."""
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    r, s = w.shape[2], w.shape[3]
    win = sliding_window_view(xp, (r, s), axis=(2, 3))[:, :, ::sh, ::sw]
    y = np.einsum("nchwrs,ocrs->nohw", win, w, optimize=True)
    if bias is not None:
        y += bias[None, :, None, None]
    return np.ascontiguousarray(y)


def conv2d_backward(
    x: np.ndarray,
    w: np.ndarray,
    dy: np.ndarray,
    stride,
    padding,
    with_bias: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Gradients (dx, dw, db) of a conv2d forward pass."""
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    co, ci, r, s = w.shape
    n, _, hi, wi = x.shape

    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    win = sliding_window_view(xp, (r, s), axis=(2, 3))[:, :, ::sh, ::sw]
    dw = np.einsum("nohw,nchwrs->ocrs", dy, win, optimize=True)
    db = dy.sum(axis=(0, 2, 3)) if with_bias else None

    # dx: dilate dy by the stride, pad, correlate with the rotated kernel.
    ho, wo = dy.shape[2], dy.shape[3]
    hd = (ho - 1) * sh + 1
    wd = (wo - 1) * sw + 1
    dyd = np.zeros((n, co, hd, wd), dtype=dy.dtype)
    dyd[:, :, ::sh, ::sw] = dy
    # target output after correlation must be exactly (hi, wi)
    top = r - 1 - ph
    left = s - 1 - pw
    if top < 0 or left < 0:
        raise ValueError("padding larger than kernel-1 is not supported")
    bottom = hi - (hd + top - r + 1)
    right = wi - (wd + left - s + 1)
    dyp = np.pad(
        dyd, ((0, 0), (0, 0), (top, max(bottom, 0)), (left, max(right, 0)))
    )
    w_rot = w[:, :, ::-1, ::-1]
    dwin = sliding_window_view(dyp, (r, s), axis=(2, 3))
    dx = np.einsum("nohwrs,ocrs->nchw", dwin, w_rot, optimize=True)
    dx = dx[:, :, :hi, :wi]
    return np.ascontiguousarray(dx), dw, db


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------

def maxpool_forward(x, kernel, stride, padding):
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    xp = np.pad(
        x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=-np.inf
    )
    win = sliding_window_view(xp, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    n, c, ho, wo = win.shape[:4]
    flat = win.reshape(n, c, ho, wo, kh * kw)
    arg = flat.argmax(axis=-1)
    y = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    cache = (x.shape, arg, (kh, kw), (sh, sw), (ph, pw))
    return np.ascontiguousarray(y), cache


def maxpool_backward(dy, cache):
    (xshape, arg, (kh, kw), (sh, sw), (ph, pw)) = cache
    n, c, hi, wi = xshape
    hp, wp = hi + 2 * ph, wi + 2 * pw
    dxp = np.zeros((n, c, hp, wp), dtype=dy.dtype)
    ho, wo = arg.shape[2], arg.shape[3]
    ni, ci, hoi, woi = np.indices((n, c, ho, wo), sparse=False)
    row = hoi * sh + arg // kw
    col = woi * sw + arg % kw
    np.add.at(dxp, (ni, ci, row, col), dy)
    return np.ascontiguousarray(dxp[:, :, ph : ph + hi, pw : pw + wi])


def avgpool_forward(x, kernel, stride, padding):
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    win = sliding_window_view(xp, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    y = win.mean(axis=(-2, -1))
    cache = (x.shape, (kh, kw), (sh, sw), (ph, pw), y.shape)
    return np.ascontiguousarray(y), cache


def avgpool_backward(dy, cache):
    (xshape, (kh, kw), (sh, sw), (ph, pw), yshape) = cache
    n, c, hi, wi = xshape
    hp, wp = hi + 2 * ph, wi + 2 * pw
    dxp = np.zeros((n, c, hp, wp), dtype=dy.dtype)
    ho, wo = yshape[2], yshape[3]
    scale = dy / (kh * kw)
    # scatter each window contribution; loop over the (small) kernel only
    for r in range(kh):
        for s in range(kw):
            view = dxp[:, :, r : r + ho * sh : sh, s : s + wo * sw : sw]
            view += scale
    return np.ascontiguousarray(dxp[:, :, ph : ph + hi, pw : pw + wi])


def global_avgpool_forward(x):
    y = x.mean(axis=(2, 3), keepdims=True)
    return y, x.shape


def global_avgpool_backward(dy, xshape):
    n, c, h, w = xshape
    return np.broadcast_to(dy / (h * w), xshape).astype(dy.dtype)


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------

def relu_forward(x):
    mask = x > 0
    return x * mask, mask


def relu_backward(dy, mask):
    return dy * mask
