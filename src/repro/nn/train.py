"""Training loop for the Fig. 6 experiment: BN vs GN+MBS vs no-norm."""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.data import Dataset
from repro.nn.executor import compute_gradients, evaluate, mbs_gradients
from repro.nn.model import NetworkModel
from repro.nn.optim import SGD


@dataclass
class TrainResult:
    """Per-epoch history of one training run."""

    label: str
    val_error: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    #: per-epoch mean of the first and last normalization layers' outputs
    #: (pre-activation means, the Fig. 6 right-panel probe)
    first_norm_mean: list[float] = field(default_factory=list)
    last_norm_mean: list[float] = field(default_factory=list)

    @property
    def final_val_error(self) -> float:
        return self.val_error[-1] if self.val_error else 1.0


def train(
    model: NetworkModel,
    data: Dataset,
    epochs: int = 10,
    batch: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    sub_batch: int | None = None,
    decay_epochs: tuple[int, ...] = (),
    label: str = "run",
    seed: int = 0,
) -> TrainResult:
    """Train with the conventional flow (``sub_batch=None``) or the MBS
    flow (sub-batch serialization with gradient accumulation)."""
    opt = SGD(model, lr=lr, momentum=momentum, decay_epochs=decay_epochs)
    rng = np.random.default_rng(seed)
    result = TrainResult(label=label)
    n = data.x_train.shape[0]

    for epoch in range(epochs):
        opt.set_epoch(epoch)
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n - batch + 1, batch):
            idx = order[start : start + batch]
            xb, yb = data.x_train[idx], data.y_train[idx]
            model.zero_grads()
            if sub_batch is None:
                stats = compute_gradients(model, xb, yb)
            else:
                stats = mbs_gradients(model, xb, yb, sub_batch)
            opt.step(batch)
            epoch_loss += stats.loss_sum
        val = evaluate(model, data.x_val, data.y_val)
        result.train_loss.append(epoch_loss / n)
        result.val_error.append(1.0 - val.accuracy)
        means = model.norm_output_means()
        if not means:  # un-normalized network: probe pre-activation inputs
            means = model.pre_activation_means()
        keys = list(means)
        if keys:
            result.first_norm_mean.append(means[keys[0]])
            result.last_norm_mean.append(means[keys[-1]])
    return result
