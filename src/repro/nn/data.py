"""Synthetic image-classification dataset (the ImageNet stand-in).

Each class is an oriented sinusoidal grating with a class-specific
frequency, overlaid with a localized blob, plus per-sample phase jitter
and Gaussian noise.  The task is learnable by a small CNN within a few
epochs yet non-trivial (no single pixel is discriminative), which is all
Fig. 6 needs: a setting where BN and GN+MBS train equally well and an
un-normalized network visibly lags.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.y_train.max()) + 1


def _render(
    rng: np.random.Generator,
    labels: np.ndarray,
    size: int,
    channels: int,
    num_classes: int,
    noise: float,
) -> np.ndarray:
    n = labels.shape[0]
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size
    angles = np.pi * labels / num_classes
    freqs = 3.0 + 2.0 * (labels % 3)
    phase = rng.uniform(0, 2 * np.pi, n)
    # oriented grating per sample: cos(2π f (x cosθ + y sinθ) + φ)
    proj = (
        xx[None] * np.cos(angles)[:, None, None]
        + yy[None] * np.sin(angles)[:, None, None]
    )
    grating = np.cos(2 * np.pi * freqs[:, None, None] * proj + phase[:, None, None])
    # class-positioned blob
    cx = 0.2 + 0.6 * ((labels * 7) % num_classes) / num_classes
    cy = 0.2 + 0.6 * ((labels * 3) % num_classes) / num_classes
    blob = np.exp(
        -(
            (xx[None] - cx[:, None, None]) ** 2
            + (yy[None] - cy[:, None, None]) ** 2
        )
        / 0.02
    )
    base = grating + 1.5 * blob
    x = np.repeat(base[:, None, :, :], channels, axis=1)
    # channel tint so color carries a weak class signal too
    tint = 0.3 * np.cos(
        2 * np.pi * (labels[:, None] / num_classes + np.arange(channels) / 3.0)
    )
    x = x + tint[:, :, None, None]
    x += rng.normal(0.0, noise, x.shape)
    return x.astype(np.float64)


def synthetic_dataset(
    train: int = 512,
    val: int = 256,
    size: int = 32,
    channels: int = 3,
    num_classes: int = 8,
    noise: float = 0.6,
    seed: int = 0,
) -> Dataset:
    """Balanced synthetic dataset; deterministic given the seed."""
    rng = np.random.default_rng(seed)
    y_train = np.arange(train) % num_classes
    y_val = np.arange(val) % num_classes
    rng.shuffle(y_train)
    rng.shuffle(y_val)
    x_train = _render(rng, y_train, size, channels, num_classes, noise)
    x_val = _render(rng, y_val, size, channels, num_classes, noise)
    return Dataset(
        x_train=x_train,
        y_train=y_train.astype(np.int64),
        x_val=x_val,
        y_val=y_val.astype(np.int64),
    )
