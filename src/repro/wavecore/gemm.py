"""im2col GEMM dimensions per training phase (paper Tab. 1).

==============  ===========  =====  ===========
Phase           Gh           Gw     K
==============  ===========  =====  ===========
Forward         N·Ho·Wo      Co     Ci·R·S
Data gradient   N·Hi·Wi      Ci     Co·R·S
Weight gradient Ci·R·S       Co     N·Ho·Wo
==============  ===========  =====  ===========
"""
from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graph.layers import Conv2D, FullyConnected


class GemmPhase(enum.Enum):
    FORWARD = "forward"
    DATA_GRAD = "data_grad"
    WEIGHT_GRAD = "weight_grad"


@dataclass(frozen=True)
class GemmDims:
    """General matrix multiply of a (Gh×K) by a (K×Gw) operand."""

    gh: int
    gw: int
    k: int

    def __post_init__(self) -> None:
        if self.gh <= 0 or self.gw <= 0 or self.k <= 0:
            raise ValueError(f"GEMM dims must be positive: {self}")

    @property
    def macs(self) -> int:
        return self.gh * self.gw * self.k


def conv_gemm(layer: Conv2D, sub_batch: int, phase: GemmPhase) -> GemmDims:
    """GEMM dimensions of one convolution pass over ``sub_batch`` samples."""
    if sub_batch <= 0:
        raise ValueError(f"sub_batch must be positive, got {sub_batch}")
    o = layer.out_shape
    i = layer.in_shape
    r, s = layer.kernel
    if phase is GemmPhase.FORWARD:
        return GemmDims(gh=sub_batch * o.h * o.w, gw=o.c, k=i.c * r * s)
    if phase is GemmPhase.DATA_GRAD:
        return GemmDims(gh=sub_batch * i.h * i.w, gw=i.c, k=o.c * r * s)
    return GemmDims(gh=i.c * r * s, gw=o.c, k=sub_batch * o.h * o.w)


def fc_gemm(layer: FullyConnected, sub_batch: int, phase: GemmPhase) -> GemmDims:
    """GEMM dimensions of one fully-connected pass (R = S = H = W = 1)."""
    if sub_batch <= 0:
        raise ValueError(f"sub_batch must be positive, got {sub_batch}")
    fan_in = layer.in_shape.elems
    fan_out = layer.out_features
    if phase is GemmPhase.FORWARD:
        return GemmDims(gh=sub_batch, gw=fan_out, k=fan_in)
    if phase is GemmPhase.DATA_GRAD:
        return GemmDims(gh=sub_batch, gw=fan_in, k=fan_out)
    return GemmDims(gh=fan_in, gw=fan_out, k=sub_batch)
