"""Result containers for simulated training steps."""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerTiming:
    """Timing of one layer in one phase on one core."""

    block: str
    layer: str
    kind: str
    phase: str
    compute_cycles: int
    macs: int
    dram_bytes: int
    compute_s: float
    dram_s: float

    @property
    def time_s(self) -> float:
        """Per-layer time with double-buffered compute/memory overlap."""
        return max(self.compute_s, self.dram_s)

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.dram_s else "memory"


@dataclass(frozen=True)
class EnergyBreakdown:
    """Chip-level energy of one training step, by component (Joules)."""

    dram_j: float
    gbuf_j: float
    compute_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.dram_j + self.gbuf_j + self.compute_j + self.static_j

    def share(self, component: str) -> float:
        value = getattr(self, f"{component}_j")
        return value / self.total_j if self.total_j else 0.0


@dataclass
class StepReport:
    """Complete outcome of one simulated training step.

    Per-core quantities (`dram_bytes`, `gbuf_bytes`, layer timings) cover
    one core's share of the mini-batch; ``time_s`` is the step latency
    (cores run data-parallel); energy is chip-level (both cores).
    """

    network: str
    policy: str
    memory: str
    cores: int
    time_s: float
    dram_bytes: int
    gbuf_bytes: int
    macs: int
    systolic_cycles: int
    #: PE busy fraction over systolic (conv/FC) execution — Fig. 14's metric.
    utilization: float = 0.0
    layers: list[LayerTiming] = field(default_factory=list)
    energy: EnergyBreakdown | None = None

    @property
    def chip_dram_bytes(self) -> int:
        return self.dram_bytes * self.cores

    def time_by_kind(self) -> dict[str, float]:
        """Execution-time breakdown by layer kind (Fig. 12's stacking)."""
        out: dict[str, float] = {}
        for lt in self.layers:
            out[lt.kind] = out.get(lt.kind, 0.0) + lt.time_s
        return out

    def time_by_phase(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for lt in self.layers:
            out[lt.phase] = out.get(lt.phase, 0.0) + lt.time_s
        return out
