"""Per-layer timing: systolic GEMMs for conv/FC, vector units for the rest.

The timing contract (Sec. 4.2): local buffers are double-buffered, so a
layer's DRAM transfers overlap its computation — per-layer time is
``max(compute, memory)``.  Layers execute in dependency order, so step
time is the sum of layer times.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.traffic import Phase, TrafficRecord, TrafficReport
from repro.core.subbatch import sub_batch_sequence
from repro.graph.blocks import Block
from repro.graph.layers import Conv2D, Layer, LayerKind
from repro.graph.network import Network
from repro.wavecore.config import WaveCoreConfig
from repro.wavecore.gemm import GemmPhase, conv_gemm, fc_gemm
from repro.wavecore.report import LayerTiming
from repro.wavecore.tiling import gemm_cycles

#: Vector-unit passes over the data per layer kind and phase.  Norm layers
#: iterate twice in forward (statistics, then normalize) and several times
#: in backward (reductions plus the gradient expression).
_VECTOR_PASSES = {
    (LayerKind.NORM, Phase.FWD): 2.0,
    (LayerKind.NORM, Phase.BWD): 3.0,
    (LayerKind.ACT, Phase.FWD): 1.0,
    (LayerKind.ACT, Phase.BWD): 1.0,
    (LayerKind.POOL, Phase.FWD): 1.0,
    (LayerKind.POOL, Phase.BWD): 1.0,
    (LayerKind.ADD, Phase.FWD): 2.0,  # reads two operands
    (LayerKind.ADD, Phase.BWD): 1.0,
}


@dataclass(frozen=True)
class LayerCompute:
    cycles: int  # systolic cycles (conv/FC only)
    vector_s: float  # vector-unit time (other kinds)
    macs: int

    @property
    def is_systolic(self) -> bool:
        return self.cycles > 0


def _gemm_phases(phase: Phase, skip_data_grad: bool = False) -> list[GemmPhase]:
    if phase is Phase.FWD:
        return [GemmPhase.FORWARD]
    if skip_data_grad:
        # the first layer of the network never propagates a gradient to
        # the input images
        return [GemmPhase.WEIGHT_GRAD]
    return [GemmPhase.DATA_GRAD, GemmPhase.WEIGHT_GRAD]


def layer_compute(
    layer: Layer,
    phase: Phase,
    mini_batch: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    skip_data_grad: bool = False,
) -> LayerCompute:
    """Compute cost of one layer in one phase across all sub-batch
    iterations (``sub_batch`` 0 means a single full-mini-batch pass)."""
    if layer.kind in (LayerKind.CONV, LayerKind.FC):
        sizes = sub_batch_sequence(mini_batch, sub_batch)
        # the sequence has at most two distinct sizes: count each once
        counts: dict[int, int] = {}
        for s in sizes:
            counts[s] = counts.get(s, 0) + 1
        cycles = 0
        macs = 0
        for s, count in counts.items():
            for gp in _gemm_phases(phase, skip_data_grad):
                dims = (
                    conv_gemm(layer, s, gp)
                    if isinstance(layer, Conv2D)
                    else fc_gemm(layer, s, gp)
                )
                t = gemm_cycles(dims, cfg)
                cycles += count * t.cycles
                macs += count * t.macs
        return LayerCompute(cycles=cycles, vector_s=0.0, macs=macs)

    passes = _VECTOR_PASSES.get((layer.kind, phase), 1.0)
    elems = layer.out_shape.elems * mini_batch
    vector_s = passes * elems / (cfg.vector_lanes * cfg.clock_hz)
    return LayerCompute(cycles=0, vector_s=vector_s, macs=0)


def attribute_block_dram(
    block: Block, records: Iterable[TrafficRecord]
) -> dict[tuple[str, Phase], int]:
    """Attribute one block's DRAM traffic records to concrete layers.

    Traffic records carry either a real layer name, a ``<layer>.out``
    tensor name, or a block-level name (``<block>.in`` / ``<block>.out`` /
    fork markers).  Block-level forward input traffic executes while the
    first layer streams in; output traffic while the last layer drains —
    and symmetrically in backward.
    """
    layers = block.all_layers()
    names = {l.name for l in layers}
    first = layers[0].name
    last = layers[-1].name
    out: dict[tuple[str, Phase], int] = {}
    for rec in records:
        if rec.layer in names:
            layer = rec.layer
        elif rec.layer.endswith(".out") and rec.layer[:-4] in names:
            layer = rec.layer[:-4]
        elif rec.layer.endswith(".out"):
            layer = last
        else:  # .in / fork / other block-level markers
            layer = first
        key = (layer, rec.phase)
        out[key] = out.get(key, 0) + rec.bytes
    return out


def per_layer_dram(
    net: Network, report: TrafficReport
) -> dict[tuple[str, str, Phase], int]:
    """Attribute a whole step's DRAM traffic records to concrete layers."""
    by_block: dict[str, list[TrafficRecord]] = {}
    for rec in report.records:
        by_block.setdefault(rec.block, []).append(rec)

    unknown = set(by_block) - {b.name for b in net.blocks}
    if unknown:
        # fail loudly: a silently dropped record would under-count DRAM
        # time in every consumer (simulator, latency cost model)
        raise KeyError(
            f"traffic records reference block(s) not in {net.name}: "
            f"{sorted(unknown)}"
        )

    out: dict[tuple[str, str, Phase], int] = {}
    for block in net.blocks:
        attributed = attribute_block_dram(block, by_block.get(block.name, ()))
        for (layer, phase), nbytes in attributed.items():
            out[(block.name, layer, phase)] = nbytes
    return out


def block_compute_profile(
    net: Network,
    idx: int,
    mini_batch: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
) -> tuple[tuple[str, str, Phase, int, int, float], ...]:
    """Buffer-independent compute profile of block ``idx``.

    One row per (layer, phase) in execution order:
    ``(layer_name, kind, phase, systolic_cycles, macs, compute_s)``.
    The profile depends only on ``(net, idx, mini_batch, sub_batch,
    cfg)`` — never on scheduling decisions (boundary placement, reuse,
    ReLU masking) or buffer size — so callers may cache it across DP
    probes and buffer-sweep points.
    """
    block = net.blocks[idx]
    first_layer_name = net.blocks[0].all_layers()[0].name
    rows = []
    for phase in (Phase.FWD, Phase.BWD):
        for layer in block.all_layers():
            comp = layer_compute(
                layer, phase, mini_batch, sub_batch, cfg,
                skip_data_grad=(idx == 0 and layer.name == first_layer_name),
            )
            compute_s = (
                comp.cycles / cfg.clock_hz if comp.is_systolic
                else comp.vector_s
            )
            rows.append((
                layer.name, layer.kind.value, phase,
                comp.cycles, comp.macs, compute_s,
            ))
    return tuple(rows)


def block_layer_timings(
    net: Network,
    idx: int,
    mini_batch: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    dram_of: Callable[[str, Phase], int],
    unlimited_bandwidth: bool = False,
    profile: tuple[tuple[str, str, Phase, int, int, float], ...] | None = None,
) -> Iterator[LayerTiming]:
    """Per-layer timing of block ``idx``: both phases, in execution order.

    ``sub_batch`` is the block's *effective* sub-batch (0 when the block
    streams layerwise); ``dram_of(layer_name, phase)`` supplies the DRAM
    bytes attributed to each layer.  This is the single authority on how
    compute and memory time combine — :func:`~repro.wavecore.simulator.
    simulate_step` and the latency cost model both iterate it, so a
    per-group price can never drift from the simulated step time.

    ``profile`` may carry a precomputed :func:`block_compute_profile`
    for the same ``(net, idx, mini_batch, sub_batch, cfg)``; the
    compute side is then not re-derived.
    """
    block = net.blocks[idx]
    if profile is None:
        profile = block_compute_profile(net, idx, mini_batch, sub_batch, cfg)
    core_bw = cfg.core_bandwidth
    for name, kind, phase, cycles, macs, compute_s in profile:
        dram = dram_of(name, phase)
        dram_s = 0.0 if unlimited_bandwidth else dram / core_bw
        yield LayerTiming(
            block=block.name,
            layer=name,
            kind=kind,
            phase=phase.value,
            compute_cycles=cycles,
            macs=macs,
            dram_bytes=dram,
            compute_s=compute_s,
            dram_s=dram_s,
        )


def gbuf_bytes_for_layer(
    layer: Layer,
    phase: Phase,
    mini_batch: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    word_bytes: int = 2,
) -> int:
    """Coarse global-buffer traffic of one layer in one phase.

    For systolic layers: the streamed A operand (im2col-expanded), the B
    panel re-read once per row tile, and the C tile write-back.  For
    vector layers: one read plus one write per pass over the features.
    """
    from repro.types import ceil_div

    if layer.kind in (LayerKind.CONV, LayerKind.FC):
        total = 0
        sizes = sub_batch_sequence(mini_batch, sub_batch)
        counts: dict[int, int] = {}
        for s in sizes:
            counts[s] = counts.get(s, 0) + 1
        for s, count in counts.items():
            for gp in _gemm_phases(phase):
                dims = (
                    conv_gemm(layer, s, gp)
                    if isinstance(layer, Conv2D)
                    else fc_gemm(layer, s, gp)
                )
                row_tiles = max(1, ceil_div(dims.gh, cfg.tile_rows))
                a_bytes = dims.gh * dims.k * word_bytes
                b_bytes = row_tiles * dims.k * dims.gw * word_bytes
                c_bytes = dims.gh * dims.gw * word_bytes
                total += count * (a_bytes + b_bytes + c_bytes)
        return total

    passes = _VECTOR_PASSES.get((layer.kind, phase), 1.0)
    return int(2 * passes * layer.out_shape.elems * mini_batch * word_bytes)


def block_gbuf_bytes(
    net: Network,
    idx: int,
    mini_batch: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    word_bytes: int = 2,
) -> int:
    """Global-buffer traffic of block ``idx`` over both phases.

    A pure integer sum of :func:`gbuf_bytes_for_layer`, independent of
    scheduling decisions and buffer size — cacheable per
    ``(idx, sub_batch)`` like :func:`block_compute_profile`.
    """
    block = net.blocks[idx]
    total = 0
    for phase in (Phase.FWD, Phase.BWD):
        for layer in block.all_layers():
            total += gbuf_bytes_for_layer(
                layer, phase, mini_batch, sub_batch, cfg, word_bytes,
            )
    return total
