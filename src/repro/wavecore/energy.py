"""Energy model (paper Sec. 4.2 "Power Modeling" and Sec. 6).

Component energies use published per-access/per-op constants:

* DRAM — per-bit access energy from the memory config (Tab. 4 types);
* global buffer — 8× cheaper than HBM2 DRAM per access (Sec. 6);
* arithmetic — mixed-precision MAC energy, with zero-operand skipping
  saving most of the datapath energy for the zero fraction of inputs;
* static — leakage plus clock distribution, proportional to step time.

Constants are calibrated so the chip peak power lands at the paper's 56 W
(Tab. 2) and the Baseline ResNet-50 DRAM energy share lands near the
paper's 21.6 % (Sec. 6).
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.wavecore.config import HBM2, WaveCoreConfig
from repro.wavecore.report import EnergyBreakdown


@dataclass(frozen=True)
class EnergyParams:
    """Calibration constants (see module docstring).

    ``mac_pj`` bundles the multiply/accumulate datapath *and* the per-PE
    register movement of the systolic dataflow (operands shift through a
    flip-flop per PE per cycle, a first-order energy cost in systolic
    arrays).  Calibrated against the paper's reported component shares:
    Baseline ResNet-50 DRAM energy ≈ 21.6 %, ArchOpt total saving ≈ 2 %
    (static only), MBS energy savings 24–30 %.
    """

    mac_pj: float = 4.0
    zero_input_fraction: float = 0.4  # MACs with a zero operand (ReLU sparsity)
    zero_skip_saving: float = 0.9  # datapath energy avoided on skip
    gbuf_pj_per_byte: float = HBM2.energy_pj_per_bit  # = HBM2/8 per bit × 8 bits
    static_w: float = 3.6  # per chip


DEFAULT_ENERGY = EnergyParams()


def step_energy(
    cfg: WaveCoreConfig,
    time_s: float,
    chip_dram_bytes: int,
    chip_gbuf_bytes: int,
    chip_macs: int,
    params: EnergyParams = DEFAULT_ENERGY,
) -> EnergyBreakdown:
    """Chip-level energy of one training step."""
    dram_j = chip_dram_bytes * cfg.memory.energy_pj_per_bit * 8 * 1e-12
    gbuf_j = chip_gbuf_bytes * params.gbuf_pj_per_byte * 1e-12
    mac_pj = params.mac_pj
    if cfg.zero_skip:
        mac_pj *= 1.0 - params.zero_input_fraction * params.zero_skip_saving
    compute_j = chip_macs * mac_pj * 1e-12
    static_j = params.static_w * time_s
    return EnergyBreakdown(
        dram_j=dram_j, gbuf_j=gbuf_j, compute_j=compute_j, static_j=static_j
    )
