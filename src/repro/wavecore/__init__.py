"""WaveCore: systolic-array CNN training accelerator model (paper Sec. 4)."""
from repro.wavecore.config import (
    GDDR5,
    HBM2,
    HBM2_X2,
    LPDDR4,
    MEMORY_CONFIGS,
    MemoryConfig,
    WaveCoreConfig,
)
from repro.wavecore.gemm import GemmDims, conv_gemm, fc_gemm
from repro.wavecore.tiling import gemm_cycles, gemm_utilization
from repro.wavecore.simulator import simulate_step, step_time
from repro.wavecore.report import StepReport
from repro.wavecore.gpu import GpuConfig, V100, simulate_gpu_step
from repro.wavecore.area import estimate_area, estimate_power

__all__ = [
    "GDDR5",
    "GemmDims",
    "GpuConfig",
    "HBM2",
    "HBM2_X2",
    "LPDDR4",
    "MEMORY_CONFIGS",
    "MemoryConfig",
    "StepReport",
    "V100",
    "WaveCoreConfig",
    "conv_gemm",
    "estimate_area",
    "estimate_power",
    "fc_gemm",
    "gemm_cycles",
    "gemm_utilization",
    "simulate_gpu_step",
    "simulate_step",
    "step_time",
]
