"""Per-group execution timelines: when each MBS group runs, per phase.

Reconstructs the Fig. 5 execution order as a timeline: forward processes
groups 1..G (each looping over its sub-batch iterations), backward
processes them in reverse.  Segment durations come from the same
per-layer timing model as :func:`repro.wavecore.simulator.simulate_step`,
so the timeline total equals the simulated step time exactly.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.core.traffic import Phase
from repro.graph.network import Network
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.simulator import simulate_step


@dataclass(frozen=True)
class TimelineSegment:
    """One group's execution in one phase."""

    group_index: int
    phase: str
    start_s: float
    duration_s: float
    iterations: int
    sub_batch: int

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


def build_timeline(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig | None = None,
) -> list[TimelineSegment]:
    """Group-level Gantt data for one training step."""
    if cfg is None:
        cfg = config_for_policy(sched.policy)
    report = simulate_step(net, sched, cfg)

    # per (block, phase) time from the simulated layers
    block_time: dict[tuple[str, str], float] = {}
    for lt in report.layers:
        key = (lt.block, lt.phase)
        block_time[key] = block_time.get(key, 0.0) + lt.time_s

    block_names = [b.name for b in net.blocks]
    segments: list[TimelineSegment] = []
    clock = 0.0
    for gi, group in enumerate(sched.groups):
        duration = sum(
            block_time.get((block_names[i], Phase.FWD.value), 0.0)
            for i in group.blocks
        )
        segments.append(TimelineSegment(
            group_index=gi, phase="forward", start_s=clock,
            duration_s=duration, iterations=group.iterations,
            sub_batch=group.sub_batch,
        ))
        clock += duration
    for gi in reversed(range(len(sched.groups))):
        group = sched.groups[gi]
        duration = sum(
            block_time.get((block_names[i], Phase.BWD.value), 0.0)
            for i in group.blocks
        )
        segments.append(TimelineSegment(
            group_index=gi, phase="backward", start_s=clock,
            duration_s=duration, iterations=group.iterations,
            sub_batch=group.sub_batch,
        ))
        clock += duration
    return segments


def render_timeline(segments: list[TimelineSegment], width: int = 64) -> str:
    """ASCII Gantt chart of the step timeline."""
    if not segments:
        return "(empty timeline)"
    total = segments[-1].end_s
    lines = [f"training step timeline ({total * 1e3:.1f} ms total)"]
    for seg in segments:
        lo = int(seg.start_s / total * width) if total else 0
        hi = max(lo + 1, int(seg.end_s / total * width)) if total else 1
        bar = " " * lo + "#" * (hi - lo)
        lines.append(
            f"  G{seg.group_index + 1} {seg.phase[:3]} "
            f"(s={seg.sub_batch:>2}, i={seg.iterations:>2}) "
            f"|{bar:<{width}}| {seg.duration_s * 1e3:7.2f} ms"
        )
    return "\n".join(lines)
