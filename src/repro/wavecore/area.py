"""Area and power estimation (paper Tab. 2).

Per-component constants reproduce the paper's published estimates at
32 nm: each PE occupies 12,173 µm² (multiplier + adder dominate), the
128×128 array 199.45 mm² per core, the 10 MiB global buffer 18.65 mm²
per core, the vector units 4.33 mm², and the crossbar/NoC/controllers
make up the remainder of the 534.0 mm² two-core chip.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.types import MIB
from repro.wavecore.config import WaveCoreConfig
from repro.wavecore.energy import DEFAULT_ENERGY, EnergyParams

#: Published per-PE area at 32 nm (µm²) — Kim et al. flip-flops plus
#: Hickmann et al. multiply/add, per the paper's methodology.
PE_AREA_UM2 = 12_173.0
#: Global buffer area per MiB (mm²): 18.65 mm² for 10 MiB.
GBUF_MM2_PER_MIB = 1.865
#: Vector compute units per core (mm²).
VECTOR_MM2 = 4.33
#: Crossbar, NoC, memory controllers and padding for the 2-core chip (mm²).
UNCORE_MM2 = 89.14


@dataclass(frozen=True)
class AreaEstimate:
    pe_array_mm2: float
    global_buffer_mm2: float
    vector_mm2: float
    uncore_mm2: float

    @property
    def total_mm2(self) -> float:
        return (
            self.pe_array_mm2
            + self.global_buffer_mm2
            + self.vector_mm2
            + self.uncore_mm2
        )


def estimate_area(cfg: WaveCoreConfig) -> AreaEstimate:
    """Die area of the configured chip (both cores)."""
    pe = cfg.cores * cfg.pe_count * PE_AREA_UM2 * 1e-6
    gbuf = cfg.cores * (cfg.global_buffer_bytes / MIB) * GBUF_MM2_PER_MIB
    vector = cfg.cores * VECTOR_MM2
    return AreaEstimate(
        pe_array_mm2=pe,
        global_buffer_mm2=gbuf,
        vector_mm2=vector,
        uncore_mm2=UNCORE_MM2,
    )


def estimate_power(
    cfg: WaveCoreConfig, params: EnergyParams = DEFAULT_ENERGY
) -> float:
    """Peak chip power in watts.

    Follows the paper's methodology: a convolution layer at 100 %
    systolic utilization with realistic activation sparsity (zero-operand
    MACs are skipped), plus buffer streaming and static power.
    """
    macs_per_s = cfg.cores * cfg.peak_macs_per_s
    mac_pj = params.mac_pj
    if cfg.zero_skip:
        mac_pj *= 1.0 - params.zero_input_fraction * params.zero_skip_saving
    compute_w = macs_per_s * mac_pj * 1e-12
    # at peak, operands stream from the local/global buffers each cycle
    stream_bytes_per_s = cfg.cores * cfg.array_rows * cfg.clock_hz * 2 * 2
    gbuf_w = stream_bytes_per_s * params.gbuf_pj_per_byte * 1e-12
    return compute_w + gbuf_w + params.static_w
