"""WaveCore training-step simulator: traffic + timing + energy, end to end."""
from __future__ import annotations

from repro.core.schedule import Schedule
from repro.core.traffic import Phase, TrafficOptions, TrafficReport, compute_traffic
from repro.graph.network import Network
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.energy import DEFAULT_ENERGY, EnergyParams, step_energy
from repro.wavecore.report import LayerTiming, StepReport
from repro.wavecore.timing import (
    block_layer_timings,
    gbuf_bytes_for_layer,
    per_layer_dram,
)


def simulate_step(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig | None = None,
    traffic: TrafficReport | None = None,
    energy_params: EnergyParams = DEFAULT_ENERGY,
    unlimited_bandwidth: bool = False,
) -> StepReport:
    """Simulate one training step of ``net`` under ``sched`` on ``cfg``.

    One core is simulated (cores run data-parallel on disjoint samples);
    energy and chip traffic scale by the core count.
    ``unlimited_bandwidth`` zeroes memory time to isolate compute
    utilization (the Fig. 14 methodology).
    """
    if cfg is None:
        cfg = config_for_policy(sched.policy)
    if traffic is None:
        traffic = compute_traffic(net, sched, TrafficOptions())

    dram_map = per_layer_dram(net, traffic)

    layers: list[LayerTiming] = []
    total_cycles = 0
    total_macs = 0
    total_gbuf = 0
    # Accumulated per block, then summed: the identical association the
    # latency cost model uses, so a schedule's step time decomposes into
    # per-group prices bit-for-bit (see repro.core.steptime).
    time_s = 0.0

    for idx, block in enumerate(net.blocks):
        group = sched.group_of_block(idx)
        sub_batch = group.sub_batch if sched.block_fused(idx) else 0
        block_s = 0.0
        for lt in block_layer_timings(
            net, idx, sched.mini_batch, sub_batch, cfg,
            lambda name, phase, _b=block.name: dram_map.get(
                (_b, name, phase), 0
            ),
            unlimited_bandwidth=unlimited_bandwidth,
        ):
            layers.append(lt)
            total_cycles += lt.compute_cycles
            total_macs += lt.macs
            block_s += lt.time_s
        time_s += block_s
        for phase in (Phase.FWD, Phase.BWD):
            for layer in block.all_layers():
                total_gbuf += gbuf_bytes_for_layer(
                    layer, phase, sched.mini_batch, sub_batch, cfg
                )

    utilization = (
        total_macs / (total_cycles * cfg.pe_count) if total_cycles else 0.0
    )
    # DRAM traffic also streams through the global buffer on its way to
    # the local buffers.
    total_gbuf += traffic.total_bytes

    report = StepReport(
        network=net.name,
        policy=sched.policy,
        memory=cfg.memory.name,
        cores=cfg.cores,
        time_s=time_s,
        dram_bytes=traffic.total_bytes,
        gbuf_bytes=total_gbuf,
        macs=total_macs,
        systolic_cycles=total_cycles,
        utilization=utilization,
        layers=layers,
    )
    report.energy = step_energy(
        cfg,
        time_s,
        chip_dram_bytes=report.chip_dram_bytes,
        chip_gbuf_bytes=total_gbuf * cfg.cores,
        chip_macs=total_macs * cfg.cores,
        params=energy_params,
    )
    return report


def step_time(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig | None = None,
    traffic: TrafficReport | None = None,
    unlimited_bandwidth: bool = False,
) -> float:
    """Simulated step latency of ``sched`` alone (the Fig. 10/13 objective).

    Equals ``simulate_step(...).time_s`` exactly; the latency cost model
    (:class:`repro.core.cost.LatencyCostModel`) reproduces this number
    from per-group prices bit-for-bit.
    """
    return simulate_step(
        net, sched, cfg, traffic=traffic,
        unlimited_bandwidth=unlimited_bandwidth,
    ).time_s
