"""Systolic-array cycle model for blocked im2col GEMMs (paper Sec. 4.1).

The GEMM output is divided into m×n tiles (n = array width, m bounded by
the accumulation buffer).  Each tile is computed in ``ceil(K/k)`` waves;
every wave must first distribute a k×n block of the stationary operand B
into the PEs, which takes k cycles:

* without weight double buffering the fill is exposed — a wave costs
  ``m_t + k`` cycles (Fig. 8b, top);
* with the per-PE second weight register (ArchOpt) the next wave's fill
  overlaps the current wave's streaming — a wave costs ``max(m_t, k)``
  cycles (the fill is only partially hidden when the tile is shorter than
  the array).

One array fill plus drain (``k + n`` cycles) is charged per GEMM.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.types import ceil_div
from repro.wavecore.config import WaveCoreConfig
from repro.wavecore.gemm import GemmDims


@dataclass(frozen=True)
class GemmTiming:
    """Cycle-level outcome of one GEMM on the systolic array."""

    cycles: int
    macs: int
    pe_count: int

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles doing useful multiply-accumulates."""
        if self.cycles <= 0:
            return 0.0
        return self.macs / (self.cycles * self.pe_count)


def gemm_cycles(dims: GemmDims, cfg: WaveCoreConfig) -> GemmTiming:
    """Cycles to compute one GEMM, honoring the double-buffering mode."""
    k_rows = cfg.array_rows
    n_cols = cfg.array_cols
    m = cfg.tile_rows

    waves = ceil_div(dims.k, k_rows)
    col_tiles = ceil_div(dims.gw, n_cols)
    full_row_tiles, rem_rows = divmod(dims.gh, m)

    def tile_cycles(m_t: int) -> int:
        if cfg.weight_double_buffer:
            return waves * max(m_t, k_rows)
        return waves * (m_t + k_rows)

    per_col = full_row_tiles * tile_cycles(m)
    if rem_rows:
        per_col += tile_cycles(rem_rows)
    # Pipeline overhead: the final drain (k + n - 1 cycles) plus, with
    # double buffering, the very first weight fill (the conventional mode
    # already charges every fill inside the per-wave cost).  The last
    # wave's cost is its stream length alone — nothing follows it — so
    # double buffering refunds the hidden-fill floor there.  These
    # constants match the cycle-level functional simulator exactly
    # (see repro.systolic).
    overhead = (2 if cfg.weight_double_buffer else 1) * k_rows + n_cols - 1
    if cfg.weight_double_buffer:
        m_last = rem_rows if rem_rows else min(m, dims.gh)
        overhead -= max(0, k_rows - m_last)
    total = col_tiles * per_col + overhead
    return GemmTiming(cycles=total, macs=dims.macs, pe_count=cfg.pe_count)


def gemm_utilization(dims: GemmDims, cfg: WaveCoreConfig) -> float:
    return gemm_cycles(dims, cfg).utilization
