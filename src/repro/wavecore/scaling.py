"""Multi-accelerator scaling model (paper Sec. 4.2, "Scalability").

"Compute throughput can be easily scaled with larger mini-batches
distributed across multiple accelerators or additional cores.  As each
accelerator or core conducts the same job, we can use MBS within each
WaveCore and only communicate for loss computation and parameter
reduction and update."

We model synchronous data parallelism: every chip trains its own
per-chip mini-batch with the local MBS schedule, then the weight
gradients are combined with a ring all-reduce over the inter-chip links
and the optimizer updates parameters everywhere.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import make_schedule
from repro.graph.network import Network
from repro.types import WORD_BYTES
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.simulator import simulate_step


@dataclass(frozen=True)
class InterconnectConfig:
    """Chip-to-chip link (NVLink-class by default)."""

    link_bandwidth_bytes_per_s: float = 50e9
    link_latency_s: float = 2e-6


@dataclass(frozen=True)
class ScalingPoint:
    chips: int
    global_batch: int
    compute_s: float
    allreduce_s: float

    @property
    def step_s(self) -> float:
        return self.compute_s + self.allreduce_s

    @property
    def samples_per_s(self) -> float:
        return self.global_batch / self.step_s

    @property
    def scaling_efficiency(self) -> float:
        """Weak-scaling efficiency vs a single chip with no reduction."""
        single = self.global_batch / self.chips / self.compute_s
        return (self.samples_per_s / self.chips) / single


def ring_allreduce_time(
    payload_bytes: int, chips: int, link: InterconnectConfig
) -> float:
    """Bandwidth-optimal ring all-reduce: 2(P-1)/P payload per link."""
    if chips <= 1:
        return 0.0
    volume = 2.0 * (chips - 1) / chips * payload_bytes
    steps = 2 * (chips - 1)
    return volume / link.link_bandwidth_bytes_per_s + steps * link.link_latency_s


def weak_scaling(
    net: Network,
    policy: str = "mbs2",
    chips: tuple[int, ...] = (1, 2, 4, 8, 16),
    cfg: WaveCoreConfig | None = None,
    link: InterconnectConfig = InterconnectConfig(),
    word_bytes: int = WORD_BYTES,
) -> list[ScalingPoint]:
    """Weak scaling: the per-chip mini-batch stays fixed, the global
    batch grows with the chip count."""
    if cfg is None:
        cfg = config_for_policy(policy)
    sched = make_schedule(net, "baseline" if policy == "archopt" else policy)
    rep = simulate_step(net, sched, cfg)
    grad_bytes = net.param_count * word_bytes
    per_chip_batch = net.default_mini_batch * cfg.cores
    out = []
    for p in chips:
        out.append(
            ScalingPoint(
                chips=p,
                global_batch=per_chip_batch * p,
                compute_s=rep.time_s,
                allreduce_s=ring_allreduce_time(grad_bytes, p, link),
            )
        )
    return out
