"""WaveCore hardware configuration (paper Sec. 4.2, Tab. 2 and Tab. 4)."""
from __future__ import annotations

from dataclasses import dataclass, replace

from repro.types import GIB, KIB, MIB


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory option (paper Tab. 4).

    ``bandwidth`` and ``capacity`` are chip-level totals; WaveCore splits
    them evenly between its two cores.  ``energy_pj_per_bit`` feeds the
    energy model (access energy incl. I/O, representative published
    values).
    """

    name: str
    bandwidth_bytes_per_s: float
    capacity_bytes: int
    channels: int
    energy_pj_per_bit: float


HBM2 = MemoryConfig("HBM2", 300 * GIB, 8 * GIB, 8, 3.9)
HBM2_X2 = MemoryConfig("HBM2x2", 600 * GIB, 16 * GIB, 16, 3.9)
GDDR5 = MemoryConfig("GDDR5", 384 * GIB, 12 * GIB, 12, 14.0)
LPDDR4 = MemoryConfig("LPDDR4", int(239.2 * GIB), 16 * GIB, 8, 6.0)

MEMORY_CONFIGS = {m.name: m for m in (HBM2, HBM2_X2, GDDR5, LPDDR4)}


@dataclass(frozen=True)
class WaveCoreConfig:
    """One WaveCore chip: two systolic cores plus the memory system.

    ``weight_double_buffer`` is the ArchOpt feature (Fig. 8): per-PE
    second weight register that removes the k-cycle inter-wave fill.
    """

    cores: int = 2
    array_rows: int = 128  # k: systolic array height (K dimension)
    array_cols: int = 128  # n: systolic array width (Gw dimension)
    clock_hz: float = 0.7e9
    global_buffer_bytes: int = 10 * MIB  # per core
    accum_buffer_bytes: int = 128 * KIB  # one of three accumulation parts
    local_a_buffer_bytes: int = 64 * KIB  # half-buffer for the A operand
    local_b_buffer_bytes: int = 32 * KIB  # half-buffer for the B operand
    weight_double_buffer: bool = True
    vector_lanes: int = 512  # per-core vector units for norm/pool/act
    zero_skip: bool = True
    memory: MemoryConfig = HBM2

    @property
    def tile_rows(self) -> int:
        """Tile height m: the accumulation buffer holds an m×n fp32 tile."""
        return max(1, self.accum_buffer_bytes // (self.array_cols * 4))

    @property
    def pe_count(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def peak_macs_per_s(self) -> float:
        """Per-core peak multiply-accumulates per second."""
        return self.pe_count * self.clock_hz

    @property
    def core_bandwidth(self) -> float:
        """DRAM bandwidth available to one core."""
        return self.memory.bandwidth_bytes_per_s / self.cores

    def with_memory(self, memory: MemoryConfig | str) -> "WaveCoreConfig":
        if isinstance(memory, str):
            memory = MEMORY_CONFIGS[memory]
        return replace(self, memory=memory)

    def with_buffer(self, buffer_bytes: int) -> "WaveCoreConfig":
        return replace(self, global_buffer_bytes=buffer_bytes)

    def with_double_buffer(self, enabled: bool) -> "WaveCoreConfig":
        return replace(self, weight_double_buffer=enabled)


#: The paper's default accelerator (ArchOpt and all MBS rows of Tab. 3).
DEFAULT_CONFIG = WaveCoreConfig()

#: The Baseline row of Tab. 3: no weight double buffering.
BASELINE_CONFIG = WaveCoreConfig(weight_double_buffer=False)


def config_for_policy(policy: str, memory: MemoryConfig | str = HBM2,
                      buffer_bytes: int | None = None) -> WaveCoreConfig:
    """Accelerator config matching a Tab. 3 evaluation row."""
    cfg = BASELINE_CONFIG if policy.lower() == "baseline" else DEFAULT_CONFIG
    cfg = cfg.with_memory(memory)
    if buffer_bytes is not None:
        cfg = cfg.with_buffer(buffer_bytes)
    return cfg
