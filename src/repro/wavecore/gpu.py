"""Reference GPU device model for the Fig. 13 comparison.

The paper measures Caffe on an NVIDIA V100 (16 GiB HBM2, 900 GiB/s,
125 TFLOPS fp16 peak) training the full 64-sample mini-batch with the
conventional layer-by-layer flow.  We model the V100 as a wide
matrix-engine device: GEMMs run at peak scaled by a utilization factor
that degrades for skinny GEMMs (few tensor-core tiles in flight), and
bandwidth-bound layers stream conventional (Baseline-schedule) traffic
at HBM2 bandwidth.  This exposes exactly the two levers the paper's
argument rests on — wide-device under-utilization at low per-layer
parallelism, and conventional-schedule memory traffic.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.core.traffic import Phase, compute_traffic
from repro.graph.layers import Conv2D, LayerKind
from repro.graph.network import Network
from repro.types import ceil_div
from repro.wavecore.gemm import GemmPhase, conv_gemm, fc_gemm
from repro.wavecore.timing import _VECTOR_PASSES, per_layer_dram


@dataclass(frozen=True)
class GpuConfig:
    name: str
    peak_macs_per_s: float
    bandwidth_bytes_per_s: float
    #: output tile quantum of the matrix engine (rows × cols per
    #: threadblock); GEMMs need ≥ sm_count tiles in flight to cover the
    #: device.
    tile_rows: int = 128
    tile_cols: int = 64
    sm_count: int = 80
    #: achievable fraction of peak on perfectly-shaped GEMMs.  Calibrated
    #: to the paper's measured Caffe/V100 throughput (~850 img/s for
    #: ResNet-50 fp16 training) — Caffe-era cuDNN kernels reached roughly
    #: a quarter of the tensor-core peak.
    max_efficiency: float = 0.25
    vector_throughput: float = 6.0e12  # elementwise ops/s
    #: per-layer, per-phase framework overhead (kernel launches, layer
    #: setup) — Caffe executes the graph layer by layer.
    launch_overhead_s: float = 25e-6


V100 = GpuConfig(
    name="V100",
    peak_macs_per_s=62.5e12,  # 125 TFLOPS fp16
    bandwidth_bytes_per_s=900e9,
)


def _gemm_efficiency(gh: int, gw: int, k: int, cfg: GpuConfig) -> float:
    """Utilization factor for one GEMM on the wide matrix engine.

    The device needs ``sm_count`` output tiles in flight to cover its
    SMs; skinny GEMMs (small Gh·Gw) leave SMs idle, and a small K adds
    ramp overhead.  Matches the paper's observation that deep networks'
    low-parallelism layers cannot exploit the V100's width.
    """
    tiles = ceil_div(gh, cfg.tile_rows) * ceil_div(gw, cfg.tile_cols)
    # split-K: kernels with few output tiles but a deep reduction split K
    # across SMs (cuDNN's strategy for weight-gradient GEMMs)
    splits = max(1, min(k // 256, cfg.sm_count))
    occupancy = min(1.0, tiles * splits / cfg.sm_count)
    ramp = k / (k + 48.0)  # mainloop ramp: short-K GEMMs amortize poorly
    return cfg.max_efficiency * occupancy * ramp


def simulate_gpu_step(
    net: Network,
    mini_batch: int | None = None,
    cfg: GpuConfig = V100,
) -> float:
    """Per-training-step time (seconds) of the conventional GPU flow."""
    # Deferred: policies builds on the cost models, which reach back into
    # wavecore timing for the latency objective — importing it here keeps
    # package import order acyclic.
    from repro.core.policies import make_schedule

    n = (net.default_mini_batch * 2) if mini_batch is None else mini_batch
    sched = make_schedule(net, "baseline", mini_batch=n)
    traffic = compute_traffic(net, sched)
    dram_map = per_layer_dram(net, traffic)

    time_s = 0.0
    first_layer_name = net.blocks[0].all_layers()[0].name
    for block_idx, block in enumerate(net.blocks):
        for phase in (Phase.FWD, Phase.BWD):
            for layer in block.all_layers():
                dram = dram_map.get((block.name, layer.name, phase), 0)
                mem_s = dram / cfg.bandwidth_bytes_per_s
                if layer.kind in (LayerKind.CONV, LayerKind.FC):
                    if phase is Phase.FWD:
                        phases = [GemmPhase.FORWARD]
                    elif block_idx == 0 and layer.name == first_layer_name:
                        phases = [GemmPhase.WEIGHT_GRAD]
                    else:
                        phases = [GemmPhase.DATA_GRAD, GemmPhase.WEIGHT_GRAD]
                    comp_s = 0.0
                    for gp in phases:
                        dims = (
                            conv_gemm(layer, n, gp)
                            if isinstance(layer, Conv2D)
                            else fc_gemm(layer, n, gp)
                        )
                        eff = _gemm_efficiency(dims.gh, dims.gw, dims.k, cfg)
                        comp_s += dims.macs / (cfg.peak_macs_per_s * eff)
                else:
                    passes = _VECTOR_PASSES.get((layer.kind, phase), 1.0)
                    elems = layer.out_shape.elems * n
                    comp_s = passes * elems / cfg.vector_throughput
                time_s += max(comp_s, mem_s) + cfg.launch_overhead_s
    return time_s
