"""Sub-batch sizing: how many samples fit through a block at once."""
from __future__ import annotations

from repro.graph.blocks import Block
from repro.graph.network import Network
from repro.core.footprint import block_space_per_sample
from repro.types import WORD_BYTES, ceil_div


def feasible_sub_batch(
    block: Block,
    buffer_bytes: int,
    mini_batch: int,
    branch_reuse: bool = True,
    word_bytes: int = WORD_BYTES,
) -> int:
    """Largest sub-batch whose live footprint fits the on-chip buffer.

    Returns 0 when even a single sample does not fit (the block must then
    spill layer-by-layer like the conventional flow).
    """
    if buffer_bytes <= 0:
        return 0
    space = block_space_per_sample(block, branch_reuse, word_bytes)
    return min(mini_batch, buffer_bytes // space)


def iteration_count(mini_batch: int, sub_batch: int) -> int:
    """Sub-batch iterations needed to cover the mini-batch."""
    if sub_batch <= 0:
        # Unfused blocks stream the whole mini-batch layer-by-layer once.
        return 1
    return ceil_div(mini_batch, sub_batch)


def per_block_sub_batches(
    net: Network,
    buffer_bytes: int,
    mini_batch: int | None = None,
    branch_reuse: bool = True,
    word_bytes: int = WORD_BYTES,
) -> list[int]:
    """Feasible sub-batch size for every block (the red line of Fig. 4)."""
    n = net.default_mini_batch if mini_batch is None else mini_batch
    return [
        feasible_sub_batch(b, buffer_bytes, n, branch_reuse, word_bytes)
        for b in net.blocks
    ]


def sub_batch_sequence(mini_batch: int, sub_batch: int) -> list[int]:
    """Actual sub-batch sizes of each iteration (e.g. 32/3 → 3,3,…,3,2).

    This is the "Size = 3,3,3,3,3,3,3,3,3,3,2" annotation of Fig. 5.
    """
    if sub_batch <= 0:
        return [mini_batch]
    full, rem = divmod(mini_batch, sub_batch)
    out = [sub_batch] * full
    if rem:
        out.append(rem)
    return out
