"""Per-sample on-chip space requirements (paper Eq. 1 and Eq. 2).

The space a schedule must provision per sample is the worst-case *live
set* while propagating one sample through a block: each layer holds its
input and output, and multi-branch modules additionally retain the shared
block input until every branch has consumed it and the (partial) block
output until the merge completes.

Two provisioning modes:

* ``branch_reuse=True`` — MBS2: the conditional terms of Eq. 1 / Eq. 2 are
  charged, buying inter-branch locality at the cost of a larger footprint.
* ``branch_reuse=False`` — MBS1: branches are scheduled like independent
  chains; shared data is re-fetched from DRAM, so only the plain
  ``input + output`` live set is charged.
"""
from __future__ import annotations

from repro.graph.blocks import Block, Branch, MergeKind
from repro.graph.layers import Layer, LayerKind
from repro.types import WORD_BYTES


def layer_live_bytes(layer: Layer, word_bytes: int = WORD_BYTES) -> int:
    """Live set of one layer, per sample.

    Activations run in place (output overwrites input); everything else
    holds input and output simultaneously.
    """
    if layer.kind is LayerKind.ACT:
        return layer.in_shape.bytes(word_bytes)
    return layer.in_shape.bytes(word_bytes) + layer.out_shape.bytes(word_bytes)


def _chain_candidates(
    layers: tuple[Layer, ...], extra_first: int, extra_rest: int, word_bytes: int
) -> list[int]:
    """Live-set candidates for a layer chain with held external tensors.

    ``extra_first`` is added to the first layer (whose input is typically
    the held tensor itself, so callers usually exclude it there — the
    Eq. 1 / Eq. 2 ``l != 1`` guard); ``extra_rest`` to the others.
    """
    out = []
    for i, layer in enumerate(layers):
        extra = extra_first if i == 0 else extra_rest
        out.append(layer_live_bytes(layer, word_bytes) + extra)
    return out


def _branch_candidates(
    branch: Branch,
    held_in: int,
    held_out: int,
    word_bytes: int,
) -> list[int]:
    """Candidates for one (possibly forked) branch.

    ``held_in`` is retained external input (excluded at the first layer,
    where it is the layer's own input); ``held_out`` is the reserved block
    output, excluded at the final leaf layer which streams into it.
    """
    cands: list[int] = []
    layers = branch.layers
    for i, layer in enumerate(layers):
        extra = (held_in if i > 0 else 0) + held_out
        is_final_leaf = not branch.children and i == len(layers) - 1
        if is_final_leaf:
            extra -= held_out
        cands.append(layer_live_bytes(layer, word_bytes) + extra)
    if branch.children:
        for child in branch.children:
            cands.extend(
                _branch_candidates(
                    child,
                    held_in=held_in,  # parent tail handled via child first-layer input
                    held_out=held_out,
                    word_bytes=word_bytes,
                )
            )
    return cands


def _module_space(block: Block, word_bytes: int) -> int:
    """Eq. 1 (ADD merges) / Eq. 2 (CONCAT merges) with tree branches."""
    block_in = block.in_shape.bytes(word_bytes)
    merged = block.merged_shape.bytes(word_bytes)
    branches = block.branches
    n = len(branches)
    cands: list[int] = []

    for b, branch in enumerate(branches):
        if branch.is_identity:
            continue
        if block.merge is MergeKind.ADD:
            # Eq. 1: retain block input while earlier branches run (so
            # later ones can consume it) and the accumulating merge output
            # once any branch has completed.
            held_in = block_in if b < n - 1 else 0
            held_out = merged if b > 0 else 0
        else:
            # Eq. 2: retain block input until the last branch consumes it
            # and reserve the concatenated output throughout.
            held_in = block_in if b < n - 1 else 0
            held_out = merged
        cands.extend(
            _branch_candidates(branch, held_in=held_in, held_out=held_out,
                               word_bytes=word_bytes)
        )
        # Forked tails additionally retain the fork-point tensor while
        # sibling children execute.
        if branch.children:
            tail = branch.tail_shape(block.in_shape).bytes(word_bytes)
            for c, child in enumerate(branch.children[:-1]):
                extra = tail
                cands.extend(
                    c2 + extra
                    for c2 in _branch_candidates(
                        child, held_in=held_in, held_out=held_out,
                        word_bytes=word_bytes)
                )

    if block.merge is MergeKind.ADD:
        # The merge itself holds every leaf simultaneously (result is
        # accumulated in place into the first leaf).
        leaf_total = 0
        for branch in branches:
            for shape in branch.leaf_shapes(block.in_shape):
                leaf_total += shape.bytes(word_bytes)
        cands.append(leaf_total)

    for layer in block.post_merge:
        cands.append(layer_live_bytes(layer, word_bytes))

    return max(cands) if cands else block_in


def block_space_per_sample(
    block: Block, branch_reuse: bool = True, word_bytes: int = WORD_BYTES
) -> int:
    """Bytes per sample a schedule must provision to fuse this block.

    For single-chain blocks the two modes agree: the worst layer live set.
    For modules, ``branch_reuse=True`` applies Eq. 1 / Eq. 2.

    The result is a pure function of the (immutable) block and the two
    flags — and buffer sweeps recompute it per point — so it is cached
    on the block instance (same pattern as the structural caches in
    :mod:`repro.graph.blocks`).
    """
    cache = block.__dict__.setdefault("_space_cache", {})
    key = (branch_reuse, word_bytes)
    got = cache.get(key)
    if got is None:
        if not block.is_module or not branch_reuse:
            cands = [layer_live_bytes(l, word_bytes) for l in block.all_layers()]
            got = max(cands) if cands else block.in_shape.bytes(word_bytes)
        else:
            got = _module_space(block, word_bytes)
        cache[key] = got
    return got
