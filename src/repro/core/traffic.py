"""DRAM traffic accounting for a scheduled training step (Fig. 10c's engine).

The model walks the network once per phase and emits byte-level records
per (block, layer, category).  Semantics follow Sec. 2/3 of the paper:

* **Fused blocks** (inside an MBS group or a fitting IL region) keep
  inter-layer data in the global buffer.  Data needed by back propagation
  — convolution/FC inputs, normalization inputs, pool indices, ReLU masks
  — is checkpointed to DRAM during the forward pass regardless (Fig. 1b).
* **Unfused blocks** stream every layer's input and output through DRAM,
  normalization layers read their input twice (mean/variance pass plus
  the normalize pass), and convolution backward re-reads the output
  gradient for each of its two GEMMs.
* **Weights** are read once per sub-batch iteration of the owning group;
  weight-gradient partial sums are written every iteration and re-read
  every iteration but the first (Sec. 3, "Data Synchronization").
* **Modules without inter-branch provisioning** (MBS1) re-fetch the
  shared block input per consuming branch, spill pre-merge leaves of
  residual blocks, assemble concatenations in DRAM, and accumulate the
  block-input gradient through DRAM.  With provisioning (MBS2, Eq. 1/2)
  all of that stays on chip.
"""
from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.core.schedule import Schedule
from repro.graph.blocks import Block, MergeKind
from repro.graph.layers import Layer, LayerKind
from repro.graph.network import Network
from repro.types import POOL_INDEX_BYTES, RELU_MASK_BITS, WORD_BYTES

#: Layer kinds whose *input values* are needed again during back propagation.
_CHECKPOINT_CONSUMERS = (LayerKind.CONV, LayerKind.FC, LayerKind.NORM)


class Phase(enum.Enum):
    FWD = "forward"
    BWD = "backward"


class Category(enum.Enum):
    FEAT_RD = "feature_read"
    FEAT_WR = "feature_write"
    WEIGHT_RD = "weight_read"
    WGRAD_WR = "wgrad_write"
    WGRAD_RD = "wgrad_read"
    CHK_WR = "checkpoint_write"
    CHK_RD = "checkpoint_read"
    GRAD_RD = "grad_read"
    GRAD_WR = "grad_write"
    MASK_WR = "mask_write"
    MASK_RD = "mask_read"
    PARAM = "norm_param"


@dataclass(frozen=True)
class TrafficOptions:
    word_bytes: int = WORD_BYTES
    mask_bits: int = RELU_MASK_BITS
    pool_index_bytes: int = POOL_INDEX_BYTES
    norm_double_read: bool = True


@dataclass(frozen=True)
class TrafficRecord:
    block: str
    layer: str
    kind: str
    phase: Phase
    category: Category
    bytes: int


@dataclass
class TrafficReport:
    """Aggregated DRAM traffic for one training step."""

    records: list[TrafficRecord] = field(default_factory=list)

    def add(
        self,
        block: str,
        layer: str,
        kind: LayerKind | str,
        phase: Phase,
        category: Category,
        nbytes: int,
    ) -> None:
        if nbytes <= 0:
            return
        kind_str = kind.value if isinstance(kind, LayerKind) else str(kind)
        self.records.append(
            TrafficRecord(block, layer, kind_str, phase, category, int(nbytes))
        )

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.records)

    def bytes_by(self, key) -> dict:
        out: dict = {}
        for r in self.records:
            k = key(r)
            out[k] = out.get(k, 0) + r.bytes
        return out

    def by_category(self) -> dict[Category, int]:
        return self.bytes_by(lambda r: r.category)

    def by_phase(self) -> dict[Phase, int]:
        return self.bytes_by(lambda r: r.phase)

    def by_kind(self) -> dict[str, int]:
        return self.bytes_by(lambda r: r.kind)

    def by_block(self) -> dict[str, int]:
        return self.bytes_by(lambda r: r.block)

    def reads(self) -> int:
        rd = (Category.FEAT_RD, Category.WEIGHT_RD, Category.WGRAD_RD,
              Category.CHK_RD, Category.GRAD_RD, Category.MASK_RD,
              Category.PARAM)
        return sum(r.bytes for r in self.records if r.category in rd)

    def writes(self) -> int:
        return self.total_bytes - self.reads()


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _chains(block: Block) -> list[tuple[list[Layer], str, int]]:
    """Flatten a block into (layers, input_source, branch_index) chains.

    ``input_source`` is ``"block_in"`` for branch stems and ``"fork:<i>"``
    for child chains hanging off branch *i*'s tail.
    """
    out: list[tuple[list[Layer], str, int]] = []
    for bi, branch in enumerate(block.branches):
        out.append((list(branch.layers), "block_in", bi))
        for child in branch.children:
            out.append((list(child.walk()), f"fork:{bi}", bi))
    return out


def _block_in_consumers(block: Block) -> int:
    """Number of distinct consumers of the block input tensor.

    Every branch consumes it: non-identity branches at their first layer,
    identity branches at the merge point.
    """
    return len(block.branches) if block.is_module else 1


def _mask_bytes(layer: Layer, n: int, opt: TrafficOptions) -> int:
    return (layer.out_shape.elems * n * opt.mask_bits + 7) // 8


def _nonidentity_leaves(block: Block, word_bytes: int = WORD_BYTES) -> list[int]:
    """Per-sample byte sizes of non-identity branch leaf tensors."""
    out = []
    for branch in block.branches:
        if branch.is_identity:
            continue
        for shape in branch.leaf_shapes(block.in_shape):
            out.append(shape.bytes(word_bytes))
    return out


def _next_block_checkpoints(net: Network, idx: int) -> bool:
    """True when block ``idx``'s output is needed during back propagation
    (i.e. some first layer of the next block is a conv/FC/norm)."""
    if idx + 1 >= len(net.blocks):
        return False
    nxt = net.blocks[idx + 1]
    for branch in nxt.branches:
        layers = branch.layers or tuple(
            l for c in branch.children for l in c.layers[:1]
        )
        if layers and layers[0].kind in _CHECKPOINT_CONSUMERS:
            return True
        if branch.is_identity and nxt.merge is not None:
            continue
    return False


# ----------------------------------------------------------------------
# fused block accounting
# ----------------------------------------------------------------------

def _fwd_fused(
    rep: TrafficReport,
    net: Network,
    sched: Schedule,
    idx: int,
    opt: TrafficOptions,
) -> None:
    block = net.blocks[idx]
    n = sched.mini_batch
    wb = opt.word_bytes
    iters = sched.iterations_of_block(idx)
    in_on_chip = sched.boundary_on_chip(idx - 1)
    out_on_chip = sched.boundary_on_chip(idx)
    branch_reuse = sched.branch_reuse_of(idx)
    concat_spill = block.merge is MergeKind.CONCAT and not branch_reuse

    in_bytes = block.in_shape.bytes(wb) * n
    out_bytes = block.out_shape.bytes(wb) * n

    # --- block input reads -------------------------------------------
    reads = 0 if in_on_chip else 1
    if block.is_module and not branch_reuse:
        reads += _block_in_consumers(block) - 1
    rep.add(block.name, f"{block.name}.in", "feature", Phase.FWD,
            Category.FEAT_RD, reads * in_bytes)

    # --- per-layer walk ------------------------------------------------
    for layers, src, bi in _chains(block):
        for i, layer in enumerate(layers):
            if layer.kind in (LayerKind.CONV, LayerKind.FC):
                rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                        Category.WEIGHT_RD, iters * layer.param_bytes(wb))
            elif layer.kind is LayerKind.NORM:
                rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                        Category.PARAM, iters * layer.param_bytes(wb))
            elif layer.kind is LayerKind.ACT and sched.relu_mask:
                rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                        Category.MASK_WR, _mask_bytes(layer, n, opt))
            elif layer.kind is LayerKind.POOL:
                from repro.graph.layers import Pool, PoolKind
                if isinstance(layer, Pool) and layer.pool is PoolKind.MAX:
                    rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                            Category.MASK_WR,
                            layer.out_shape.elems * n * opt.pool_index_bytes)
            # checkpoint intra-block edges consumed by conv/fc/norm
            if i > 0 and layer.kind in _CHECKPOINT_CONSUMERS:
                rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                        Category.CHK_WR, layer.in_shape.bytes(wb) * n)

    # fork tails: checkpoint once if any child starts with a consumer;
    # without branch provisioning, later children re-read the tail.
    for bi, branch in enumerate(block.branches):
        if not branch.children:
            continue
        tail = branch.tail_shape(block.in_shape).bytes(wb) * n
        first_kinds = [c.layers[0].kind for c in branch.children if c.layers]
        if any(k in _CHECKPOINT_CONSUMERS for k in first_kinds):
            rep.add(block.name, f"{block.name}.b{bi}.fork", "feature",
                    Phase.FWD, Category.CHK_WR, tail)
        if not branch_reuse and len(branch.children) > 1:
            rep.add(block.name, f"{block.name}.b{bi}.fork", "feature",
                    Phase.FWD, Category.FEAT_RD,
                    (len(branch.children) - 1) * tail)

    # --- merge ---------------------------------------------------------
    if block.merge is MergeKind.ADD and not branch_reuse:
        for leaf_bytes in _nonidentity_leaves(block, wb):
            rep.add(block.name, f"{block.name}.add", LayerKind.ADD, Phase.FWD,
                    Category.FEAT_WR, leaf_bytes * n)
            rep.add(block.name, f"{block.name}.add", LayerKind.ADD, Phase.FWD,
                    Category.FEAT_RD, leaf_bytes * n)

    # --- block output --------------------------------------------------
    needs_chk = _next_block_checkpoints(net, idx) or idx == len(net.blocks) - 1
    if concat_spill:
        # leaves assemble the concatenated output directly in DRAM
        rep.add(block.name, f"{block.name}.out", "feature", Phase.FWD,
                Category.CHK_WR, out_bytes)
    elif needs_chk:
        rep.add(block.name, f"{block.name}.out", "feature", Phase.FWD,
                Category.CHK_WR, out_bytes)
    elif not out_on_chip:
        rep.add(block.name, f"{block.name}.out", "feature", Phase.FWD,
                Category.FEAT_WR, out_bytes)


def _bwd_fused(
    rep: TrafficReport,
    net: Network,
    sched: Schedule,
    idx: int,
    opt: TrafficOptions,
) -> None:
    block = net.blocks[idx]
    n = sched.mini_batch
    wb = opt.word_bytes
    iters = sched.iterations_of_block(idx)
    in_on_chip = sched.boundary_on_chip(idx - 1)
    out_on_chip = sched.boundary_on_chip(idx)
    branch_reuse = sched.branch_reuse_of(idx)
    concat_spill = block.merge is MergeKind.CONCAT and not branch_reuse
    last_block = idx == len(net.blocks) - 1

    in_bytes = block.in_shape.bytes(wb) * n
    out_bytes = block.out_shape.bytes(wb) * n

    # --- incoming output gradient --------------------------------------
    if not last_block and (not out_on_chip or concat_spill):
        rep.add(block.name, f"{block.name}.out", "feature", Phase.BWD,
                Category.GRAD_RD, out_bytes)

    # --- per-layer walk -------------------------------------------------
    for layers, src, bi in _chains(block):
        for i, layer in enumerate(layers):
            p = layer.param_bytes(wb)
            if layer.kind in (LayerKind.CONV, LayerKind.FC):
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.WEIGHT_RD, iters * p)
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.WGRAD_WR, iters * p)
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.WGRAD_RD, (iters - 1) * p)
                if i > 0:  # intra-block input values from checkpoint
                    rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                            Category.CHK_RD, layer.in_shape.bytes(wb) * n)
            elif layer.kind is LayerKind.NORM:
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.PARAM, (3 * iters - 1) * p)
                if i > 0:
                    rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                            Category.CHK_RD, layer.in_shape.bytes(wb) * n)
            elif layer.kind is LayerKind.ACT:
                if sched.relu_mask:
                    rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                            Category.MASK_RD, _mask_bytes(layer, n, opt))
                # without the mask trick the activation value read is
                # shared on chip with the consumer conv's checkpoint read
                # except at an off-chip boundary, handled below.
            elif layer.kind is LayerKind.POOL:
                from repro.graph.layers import Pool, PoolKind
                if isinstance(layer, Pool) and layer.pool is PoolKind.MAX:
                    rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                            Category.MASK_RD,
                            layer.out_shape.elems * n * opt.pool_index_bytes)

    # post-merge activation at an off-chip boundary without mask trick
    if not sched.relu_mask and not out_on_chip and not last_block:
        tail = block.post_merge[-1] if block.post_merge else None
        layers = block.branches[-1].layers
        last_layer = tail or (layers[-1] if layers else None)
        if last_layer is not None and last_layer.kind is LayerKind.ACT:
            rep.add(block.name, last_layer.name, last_layer.kind, Phase.BWD,
                    Category.CHK_RD, last_layer.out_shape.bytes(wb) * n)

    # --- block input values for weight/norm gradients --------------------
    consumers = 0
    for branch in block.branches:
        first = branch.layers[0] if branch.layers else None
        if first is not None and first.kind in _CHECKPOINT_CONSUMERS:
            consumers += 1
    if consumers:
        count = 1 if (branch_reuse or not block.is_module) else consumers
        rep.add(block.name, f"{block.name}.in", "feature", Phase.BWD,
                Category.CHK_RD, count * in_bytes)
    # fork tails re-read per consuming child without provisioning
    for bi, branch in enumerate(block.branches):
        if not branch.children:
            continue
        tail = branch.tail_shape(block.in_shape).bytes(wb) * n
        kids = sum(
            1 for c in branch.children
            if c.layers and c.layers[0].kind in _CHECKPOINT_CONSUMERS
        )
        if kids:
            count = 1 if branch_reuse else kids
            rep.add(block.name, f"{block.name}.b{bi}.fork", "feature",
                    Phase.BWD, Category.CHK_RD, count * tail)
        if not branch_reuse and len(branch.children) > 1:
            # child gradients accumulate into the tail gradient via DRAM
            rep.add(block.name, f"{block.name}.b{bi}.fork", "feature",
                    Phase.BWD, Category.GRAD_WR,
                    (len(branch.children) - 1) * tail)
            rep.add(block.name, f"{block.name}.b{bi}.fork", "feature",
                    Phase.BWD, Category.GRAD_RD,
                    (len(branch.children) - 1) * tail)

    # --- input gradient --------------------------------------------------
    if idx > 0:
        producers = len(block.branches)
        writes = 0 if in_on_chip else 1
        extra = producers - 1 if (block.is_module and not branch_reuse) else 0
        rep.add(block.name, f"{block.name}.in", "feature", Phase.BWD,
                Category.GRAD_WR, (writes + extra) * in_bytes)
        rep.add(block.name, f"{block.name}.in", "feature", Phase.BWD,
                Category.GRAD_RD, extra * in_bytes)


# ----------------------------------------------------------------------
# unfused (conventional layer-by-layer) block accounting
# ----------------------------------------------------------------------

@dataclass
class _Tensor:
    """One inter-layer tensor inside a block: producer → consumers.

    ``producer is None`` marks the block input; a ``None`` entry in
    ``consumers`` marks the block output.
    """

    name: str
    producer: Layer | None
    consumers: list[Layer | None]
    bytes_per_sample: int


def _block_tensors(block: Block, wb: int) -> list[_Tensor]:
    """Dataflow tensors of one block (used by the layerwise walkers)."""
    tensors: list[_Tensor] = []
    merge = block.merge_layer  # EltwiseAdd for ADD merges, else None
    is_concat = block.merge is MergeKind.CONCAT

    block_in = _Tensor(
        name=f"{block.name}.in",
        producer=None,
        consumers=[],
        bytes_per_sample=block.in_shape.bytes(wb),
    )
    tensors.append(block_in)

    def leaf_consumer() -> Layer | None:
        """What consumes a branch leaf: the ADD layer, or the block output
        (CONCAT assembles leaves directly into the output tensor)."""
        return merge if merge is not None else None

    def walk_chain(layers: list[Layer], producer_tensor: _Tensor,
                   last_consumer: Layer | None) -> None:
        if not layers:
            producer_tensor.consumers.append(last_consumer)
            return
        producer_tensor.consumers.append(layers[0])
        for i, layer in enumerate(layers):
            t = _Tensor(
                name=f"{layer.name}.out",
                producer=layer,
                consumers=[],
                bytes_per_sample=layer.out_shape.bytes(wb),
            )
            tensors.append(t)
            if i + 1 < len(layers):
                t.consumers.append(layers[i + 1])
            else:
                t.consumers.append(last_consumer)

    for branch in block.branches:
        if branch.is_identity:
            block_in.consumers.append(leaf_consumer())
            continue
        if not branch.children:
            walk_chain(list(branch.layers), block_in, leaf_consumer())
            continue
        # chain up to the fork, then one chain per child off the tail
        walk_chain(list(branch.layers), block_in, None)
        tail_tensor = tensors[-1]
        tail_tensor.consumers = []  # replaced by the children
        for child in branch.children:
            walk_chain(child.walk(), tail_tensor, leaf_consumer())

    if merge is not None:
        merged = _Tensor(
            name=f"{merge.name}.out",
            producer=merge,
            consumers=[],
            bytes_per_sample=merge.out_shape.bytes(wb),
        )
        tensors.append(merged)
        walk_chain(list(block.post_merge), merged, None)
    elif block.post_merge:
        raise NotImplementedError(
            f"{block.name}: CONCAT merges followed by post-merge layers are "
            "not modeled (no evaluated network uses this shape)"
        )

    return tensors


def _fits(layer: Layer | None, n: int, wb: int, budget: int) -> bool:
    """IL predicate: a layer's whole-mini-batch live set fits on chip."""
    if layer is None or budget <= 0:
        return False
    live = (layer.in_shape.bytes(wb) + layer.out_shape.bytes(wb)) * n
    return live <= budget


def block_reuse_class(
    block: Block, mini_batch: int, word_bytes: int, budget: int
) -> int:
    """Canonical equivalence class of the reuse budget for one block.

    The layerwise (unfused) walkers consult ``layer_reuse_bytes`` only
    through :func:`_fits`, whose outcome per queried layer is
    ``(in + out) * n <= budget`` — never conditioned on another fit —
    so two budgets falling between the same adjacent per-layer live
    sizes produce bit-identical walks.  Returns how many of the block's
    distinct live sizes fit (the budget's rank on the block's live-size
    ladder), which pricing memo keys use in place of the raw budget so
    a buffer sweep re-walks a streaming block only when a fit outcome
    actually flips.
    """
    cache = block.__dict__.setdefault("_live_sizes", {})
    key = (mini_batch, word_bytes)
    sizes = cache.get(key)
    if sizes is None:
        sizes = cache[key] = tuple(sorted({
            (l.in_shape.bytes(word_bytes) + l.out_shape.bytes(word_bytes))
            * mini_batch
            for l in block.all_layers()
        }))
    return bisect_right(sizes, budget)


def _needed_in_bwd(t: _Tensor, relu_mask: bool) -> bool:
    """Must this tensor have a DRAM copy for back propagation?"""
    if any(c is not None and c.kind in _CHECKPOINT_CONSUMERS
           for c in t.consumers):
        return True
    if t.producer is not None and t.producer.kind is LayerKind.ACT:
        return not relu_mask  # ReLU gradient needs the value without a mask
    return False


def _fwd_unfused(
    rep: TrafficReport,
    net: Network,
    sched: Schedule,
    idx: int,
    opt: TrafficOptions,
) -> None:
    from repro.graph.layers import Pool, PoolKind

    block = net.blocks[idx]
    n = sched.mini_batch
    wb = opt.word_bytes
    iters = sched.iterations_of_block(idx)
    budget = sched.layer_reuse_bytes

    # per-layer non-dataflow traffic (weights, masks, params)
    for layer in block.all_layers():
        if layer.kind in (LayerKind.CONV, LayerKind.FC):
            rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                    Category.WEIGHT_RD, iters * layer.param_bytes(wb))
        elif layer.kind is LayerKind.NORM:
            rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                    Category.PARAM, iters * layer.param_bytes(wb))
        elif layer.kind is LayerKind.ACT and sched.relu_mask:
            rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                    Category.MASK_WR, _mask_bytes(layer, n, opt))
        elif isinstance(layer, Pool) and layer.pool is PoolKind.MAX:
            rep.add(block.name, layer.name, layer.kind, Phase.FWD,
                    Category.MASK_WR,
                    layer.out_shape.elems * n * opt.pool_index_bytes)

    # dataflow traffic per tensor
    for t in _block_tensors(block, wb):
        nbytes = t.bytes_per_sample * n
        kind = t.producer.kind if t.producer is not None else "feature"
        layer_name = t.name
        edge_on = {
            id(c): _fits(t.producer, n, wb, budget) and _fits(c, n, wb, budget)
            for c in t.consumers if c is not None
        }
        # reads by consumers
        for c in t.consumers:
            if c is None:
                continue
            if edge_on[id(c)]:
                continue
            factor = (
                2 if (c.kind is LayerKind.NORM and opt.norm_double_read) else 1
            )
            rep.add(block.name, layer_name, kind, Phase.FWD,
                    Category.FEAT_RD, factor * nbytes)
        # write by producer
        if t.producer is None:
            continue  # block input already resides in DRAM
        off_chip_consumer = any(
            c is None or not edge_on[id(c)] for c in t.consumers
        )
        if off_chip_consumer:
            rep.add(block.name, layer_name, kind, Phase.FWD,
                    Category.FEAT_WR, nbytes)
        elif _needed_in_bwd(t, sched.relu_mask):
            rep.add(block.name, layer_name, kind, Phase.FWD,
                    Category.CHK_WR, nbytes)


def _bwd_unfused(
    rep: TrafficReport,
    net: Network,
    sched: Schedule,
    idx: int,
    opt: TrafficOptions,
) -> None:
    from repro.graph.layers import Pool, PoolKind

    block = net.blocks[idx]
    n = sched.mini_batch
    wb = opt.word_bytes
    iters = sched.iterations_of_block(idx)
    budget = sched.layer_reuse_bytes
    first_overall = idx == 0

    # per-layer operand traffic
    for layer in block.all_layers():
        in_b = layer.in_shape.bytes(wb) * n
        out_b = layer.out_shape.bytes(wb) * n
        p = layer.param_bytes(wb)
        held = _fits(layer, n, wb, budget)
        if layer.kind in (LayerKind.CONV, LayerKind.FC):
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.WEIGHT_RD, iters * p)
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.WGRAD_WR, iters * p)
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.WGRAD_RD, (iters - 1) * p)
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.CHK_RD, in_b)
            if not held:
                # output gradient re-read by the second backward GEMM
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.GRAD_RD, out_b)
        elif layer.kind is LayerKind.NORM:
            factor = 2 if (opt.norm_double_read and not held) else 1
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.CHK_RD, factor * in_b)
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.PARAM, (3 * iters - 1) * p)
        elif layer.kind is LayerKind.ACT:
            if sched.relu_mask:
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.MASK_RD, _mask_bytes(layer, n, opt))
            else:
                rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                        Category.CHK_RD, out_b)
        elif isinstance(layer, Pool) and layer.pool is PoolKind.MAX:
            rep.add(block.name, layer.name, layer.kind, Phase.BWD,
                    Category.MASK_RD,
                    layer.out_shape.elems * n * opt.pool_index_bytes)

    # gradient dataflow per tensor (reverse of the forward edges)
    for t in _block_tensors(block, wb):
        nbytes = t.bytes_per_sample * n
        kind = t.producer.kind if t.producer is not None else "feature"
        if t.producer is None and first_overall:
            continue  # no gradient for the input images
        layer_consumers = [c for c in t.consumers if c is not None]
        all_on_chip = (
            t.producer is not None
            and len(layer_consumers) == len(t.consumers)
            and _fits(t.producer, n, wb, budget)
            and all(_fits(c, n, wb, budget) for c in layer_consumers)
        )
        if all_on_chip:
            continue
        k = max(len(t.consumers), 1)
        # Each *local* consumer's backward emits a (partial) gradient; a
        # ``None`` consumer's partial is written by the next block (charged
        # there).  Partials are accumulated (k-1 re-reads) and the
        # producer's backward reads the final gradient once.
        writes = len(layer_consumers)
        reads = (k - 1) + (1 if t.producer is not None else 0)
        rep.add(block.name, t.name, kind, Phase.BWD, Category.GRAD_WR,
                writes * nbytes)
        rep.add(block.name, t.name, kind, Phase.BWD, Category.GRAD_RD,
                reads * nbytes)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

class _SumTrafficReport:
    """Duck-typed :class:`TrafficReport` that keeps only the byte total.

    The scheduling DP prices thousands of candidate groups and reads a
    single number from each walk; materializing a ``TrafficRecord`` per
    tensor transfer is pure allocation churn there.  Walkers only call
    ``add`` — both report flavours accept the same call.
    """

    __slots__ = ("total_bytes",)

    def __init__(self) -> None:
        self.total_bytes = 0

    def add(self, block, layer, kind, phase, category, nbytes) -> None:
        if nbytes > 0:
            self.total_bytes += int(nbytes)


def walk_block_traffic(
    rep,
    net: Network,
    sched,
    idx: int,
    options: TrafficOptions | None = None,
) -> None:
    """Run both phase walkers for block ``idx`` into ``rep``.

    ``rep`` is any object with a ``TrafficReport.add``-compatible
    method; ``sched`` any object exposing the Schedule query surface
    (``mini_batch``, ``relu_mask``, ``layer_reuse_bytes``,
    ``iterations_of_block``, ``block_fused``, ``boundary_on_chip``,
    ``branch_reuse_of``) — the cost model in :mod:`repro.core.cost`
    passes a single-group view so the grouping optimizer prices
    candidates with *exactly* these walkers.
    """
    opt = options or TrafficOptions()
    if sched.block_fused(idx):
        _fwd_fused(rep, net, sched, idx, opt)
        _bwd_fused(rep, net, sched, idx, opt)
    else:
        _fwd_unfused(rep, net, sched, idx, opt)
        _bwd_unfused(rep, net, sched, idx, opt)


def block_traffic(
    net: Network,
    sched,
    idx: int,
    options: TrafficOptions | None = None,
) -> TrafficReport:
    """Both-phase traffic of block ``idx`` alone (full record detail)."""
    rep = TrafficReport()
    walk_block_traffic(rep, net, sched, idx, options)
    return rep


def block_traffic_total(
    net: Network,
    sched,
    idx: int,
    options: TrafficOptions | None = None,
) -> int:
    """Both-phase traffic of block ``idx`` as a bare byte count.

    Bit-identical to ``block_traffic(...).total_bytes`` (same walkers,
    same integer additions) without building per-record objects.
    """
    rep = _SumTrafficReport()
    walk_block_traffic(rep, net, sched, idx, options)
    return rep.total_bytes


def compute_traffic(
    net: Network,
    sched: Schedule,
    options: TrafficOptions | None = None,
) -> TrafficReport:
    """Total DRAM traffic of one training step under ``sched``."""
    if sched.num_blocks != len(net.blocks):
        raise ValueError(
            f"schedule covers {sched.num_blocks} blocks, network has "
            f"{len(net.blocks)}"
        )
    opt = options or TrafficOptions()
    rep = TrafficReport()
    for idx in range(len(net.blocks)):
        if sched.block_fused(idx):
            _fwd_fused(rep, net, sched, idx, opt)
        else:
            _fwd_unfused(rep, net, sched, idx, opt)
    for idx in reversed(range(len(net.blocks))):
        if sched.block_fused(idx):
            _bwd_fused(rep, net, sched, idx, opt)
        else:
            _bwd_unfused(rep, net, sched, idx, opt)
    return rep
