"""Operational buffer-occupancy simulation: executable MBS semantics.

While :mod:`repro.core.footprint` computes the Eq. 1 / Eq. 2 *provision*
analytically, this module actually executes a block's dataflow for a
sub-batch — allocating tensors into a simulated on-chip buffer, freeing
them at their last use, honoring the retention rules (shared block input
until every branch consumed it, accumulating/reserved merge outputs) —
and reports the peak occupancy.  Tests pin the analytic provision as an
upper bound on the executed peak, closing the loop on the space model.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.blocks import Block, Branch, MergeKind
from repro.graph.layers import Layer, LayerKind
from repro.types import WORD_BYTES


@dataclass
class BufferSim:
    """Tracks live tensors and the peak footprint of an execution."""

    live: dict[str, int] = field(default_factory=dict)
    peak: int = 0
    trace: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def occupancy(self) -> int:
        return sum(self.live.values())

    def alloc(self, name: str, nbytes: int) -> None:
        if name in self.live:
            raise RuntimeError(f"double allocation of {name}")
        self.live[name] = nbytes
        self.peak = max(self.peak, self.occupancy)
        self.trace.append(("alloc", name, nbytes))

    def free(self, name: str) -> None:
        if name not in self.live:
            raise RuntimeError(f"freeing unknown tensor {name}")
        self.trace.append(("free", name, self.live.pop(name)))

    def rename(self, old: str, new: str) -> None:
        """In-place op: the output reuses the input's storage."""
        self.live[new] = self.live.pop(old)
        self.trace.append(("rename", old, self.live[new]))


def _run_chain(
    sim: BufferSim,
    layers: list[Layer],
    input_name: str,
    keep_input: bool,
    sub_batch: int,
    wb: int,
    stream_last_into: str | None = None,
) -> str:
    """Execute a layer chain; returns the name of the output tensor.

    ``keep_input`` prevents freeing the chain's input tensor (it is still
    needed by other consumers — the Eq. 1/2 retention).
    ``stream_last_into`` makes the final layer write directly into an
    existing target (the ADD accumulator, the reserved CONCAT output, or
    DRAM) instead of allocating its own output — how MBS fuses the merge
    with the producing layer.
    """
    current = input_name
    for i, layer in enumerate(layers):
        out_name = f"{layer.name}.out"
        is_last = i == len(layers) - 1
        if is_last and stream_last_into is not None:
            if current != input_name or not keep_input:
                sim.free(current)
            return stream_last_into
        if layer.kind is LayerKind.ACT:
            # in-place: output aliases input
            if current == input_name and keep_input:
                # cannot destroy a retained tensor; take a copy
                sim.alloc(out_name, layer.out_shape.bytes(wb) * sub_batch)
            else:
                sim.rename(current, out_name)
            current = out_name
            continue
        sim.alloc(out_name, layer.out_shape.bytes(wb) * sub_batch)
        if current != input_name or not keep_input:
            sim.free(current)
        current = out_name
    return current


def simulate_block_occupancy(
    block: Block,
    sub_batch: int,
    branch_reuse: bool = True,
    word_bytes: int = WORD_BYTES,
) -> BufferSim:
    """Execute one block for one sub-batch and return the buffer trace.

    With ``branch_reuse=True`` the shared block input stays resident
    until every branch consumed it, the ADD accumulator is carried across
    branches, and the CONCAT output is reserved up front (Eq. 1/Eq. 2).
    With ``branch_reuse=False`` (the MBS1 flow) the shared input and the
    pre-merge leaves spill to DRAM between branches: consumers re-fetch
    fresh copies and the concatenated output is assembled off chip.
    """
    wb = word_bytes
    sim = BufferSim()
    in_name = f"{block.name}.in"
    in_bytes = block.in_shape.bytes(wb) * sub_batch
    sim.alloc(in_name, in_bytes)

    if not block.is_module:
        _run_chain(sim, list(block.branches[0].layers), in_name,
                   keep_input=False, sub_batch=sub_batch, wb=wb)
        return sim

    non_identity = [b for b in block.branches if not b.is_identity]
    has_identity = any(b.is_identity for b in block.branches)
    merged_bytes = block.merged_shape.bytes(wb) * sub_batch
    is_add = block.merge is MergeKind.ADD

    if block.merge is MergeKind.CONCAT and branch_reuse:
        # Eq. 2: the concatenated output is reserved throughout; leaves
        # stream into their slice of it.
        sim.alloc(f"{block.name}.out", merged_bytes)

    merge_acc: str | None = None
    spilled_leaves: list[int] = []  # byte sizes of MBS1 pre-merge spills
    reserved_out = f"{block.name}.out"
    dram = "__dram__"

    def leaf_target() -> str | None:
        """Where a finished leaf chain streams its final layer."""
        if is_add:
            if branch_reuse:
                return merge_acc  # None for the first leaf: it becomes acc
            return dram  # MBS1 spills pre-merge leaves
        return reserved_out if branch_reuse else dram

    def finish_leaf(leaf: str, leaf_bytes: int) -> None:
        nonlocal merge_acc
        if leaf == dram:
            spilled_leaves.append(leaf_bytes)
            return
        if leaf in (reserved_out, merge_acc) and leaf is not None:
            return  # streamed into an existing target
        if is_add and branch_reuse and merge_acc is None:
            merge_acc = f"{block.name}.acc"
            sim.rename(leaf, merge_acc)
            return
        sim.free(leaf)  # defensive: transient leaf (not reached in zoo)

    for bi, branch in enumerate(non_identity):
        is_last_stem = branch is non_identity[-1]
        if branch_reuse:
            src = in_name
            # retain the input while later consumers (other stems, or the
            # identity path's merge) still need it
            keep = (not is_last_stem) or has_identity
        elif bi == 0:
            src = in_name
            keep = False  # first stem consumes the resident copy
        else:
            src = f"{in_name}.b{bi}"  # MBS1 re-fetch from DRAM
            sim.alloc(src, in_bytes)
            keep = False

        if branch.children:
            tail = _run_chain(sim, list(branch.layers), src, keep_input=keep,
                              sub_batch=sub_batch, wb=wb)
            tail_bytes = sim_bytes_of(branch, block, wb, sub_batch)
            leaf_shapes = []
            for child in branch.children:
                leaf_shapes.extend(
                    s.bytes(wb) * sub_batch
                    for s in child.leaf_shapes(branch.tail_shape(block.in_shape))
                )
            li = 0
            for ci, child in enumerate(branch.children):
                last_child = ci == len(branch.children) - 1
                if branch_reuse or ci == 0:
                    child_src = tail
                    keep_tail = not last_child and branch_reuse
                else:
                    child_src = f"{tail}.c{ci}"  # MBS1 fork-tail re-fetch
                    sim.alloc(child_src, tail_bytes)
                    keep_tail = False
                leaf = _run_chain(sim, child.walk(), child_src,
                                  keep_input=keep_tail,
                                  sub_batch=sub_batch, wb=wb,
                                  stream_last_into=leaf_target())
                finish_leaf(leaf, leaf_shapes[li])
                li += 1
        else:
            leaf_bytes = (
                branch.leaf_shapes(block.in_shape)[0].bytes(wb) * sub_batch
            )
            leaf = _run_chain(sim, list(branch.layers), src, keep_input=keep,
                              sub_batch=sub_batch, wb=wb,
                              stream_last_into=leaf_target())
            finish_leaf(leaf, leaf_bytes)

    # ------------------------------------------------------------------
    # merge point
    # ------------------------------------------------------------------
    if is_add:
        if branch_reuse:
            if has_identity:
                sim.free(in_name)  # folded into the accumulator
            current = merge_acc
        else:
            # MBS1: re-fetch every leaf (and the identity input) from
            # DRAM and accumulate in place into the first one
            names = []
            for i, nbytes in enumerate(spilled_leaves):
                names.append(f"{block.name}.m{i}")
                sim.alloc(names[-1], nbytes)
            if has_identity:
                names.append(f"{in_name}.m")
                sim.alloc(names[-1], in_bytes)
            merge_acc = f"{block.name}.acc"
            sim.rename(names[0], merge_acc)
            for name in names[1:]:
                sim.free(name)
            current = merge_acc
    else:
        if in_name in sim.live:
            sim.free(in_name)
        if branch_reuse:
            current = f"{block.name}.out"
        else:
            current = None  # assembled in DRAM; next block streams it

    for layer in block.post_merge:
        out_name = f"{layer.name}.out"
        if layer.kind is LayerKind.ACT:
            sim.rename(current, out_name)
        else:
            sim.alloc(out_name, layer.out_shape.bytes(wb) * sub_batch)
            sim.free(current)
        current = out_name
    return sim


def sim_bytes_of(branch: Branch, block: Block, wb: int, sub_batch: int) -> int:
    """Byte size of a branch's fork-point (tail) tensor."""
    return branch.tail_shape(block.in_shape).bytes(wb) * sub_batch


def peak_occupancy(
    block: Block,
    sub_batch: int,
    branch_reuse: bool = True,
    word_bytes: int = WORD_BYTES,
) -> int:
    """Peak buffer bytes while executing ``block`` for one sub-batch."""
    return simulate_block_occupancy(
        block, sub_batch, branch_reuse, word_bytes
    ).peak


def validate_schedule_occupancy(net, schedule, word_bytes: int = WORD_BYTES):
    """Check every fused block's executed peak against the buffer.

    Returns a list of (block_name, peak, budget) violations — empty when
    the schedule is operationally feasible.
    """
    violations = []
    for idx, block in enumerate(net.blocks):
        if not schedule.block_fused(idx):
            continue
        group = schedule.group_of_block(idx)
        peak = peak_occupancy(
            block, group.sub_batch, schedule.branch_reuse_of(idx), word_bytes
        )
        if peak > schedule.buffer_bytes:
            violations.append((block.name, peak, schedule.buffer_bytes))
    return violations
