"""MBS scheduler: the paper's primary contribution.

Pipeline: per-block per-sample space (Eq. 1 / Eq. 2) → feasible sub-batch
sizes → layer grouping (greedy merge or exhaustive DP) → schedule →
DRAM/global-buffer traffic accounting.
"""
from repro.core.footprint import block_space_per_sample
from repro.core.grouping import exhaustive_grouping, greedy_grouping, initial_grouping
from repro.core.policies import POLICIES, make_schedule
from repro.core.schedule import GroupPlan, Schedule
from repro.core.subbatch import feasible_sub_batch, iteration_count
from repro.core.traffic import TrafficOptions, TrafficReport, compute_traffic

__all__ = [
    "GroupPlan",
    "POLICIES",
    "Schedule",
    "TrafficOptions",
    "TrafficReport",
    "block_space_per_sample",
    "compute_traffic",
    "exhaustive_grouping",
    "feasible_sub_batch",
    "greedy_grouping",
    "initial_grouping",
    "iteration_count",
    "make_schedule",
]
