"""MBS scheduler: the paper's primary contribution.

Pipeline: per-block per-sample space (Eq. 1 / Eq. 2) → feasible sub-batch
sizes → layer grouping (greedy merge or exhaustive DP) → schedule →
DRAM/global-buffer traffic accounting.
"""
from repro.core.cost import (
    CostModel,
    LatencyCostModel,
    ProxyCostModel,
    TrafficCostModel,
)
from repro.core.footprint import block_space_per_sample
from repro.core.grouping import (
    adaptive_grouping,
    exhaustive_grouping,
    greedy_grouping,
    initial_grouping,
    split_segments,
)
from repro.core.policies import OBJECTIVES, POLICIES, make_schedule
from repro.core.schedule import GroupPlan, Schedule
from repro.core.steptime import block_step_time, schedule_step_time
from repro.core.subbatch import feasible_sub_batch, iteration_count
from repro.core.traffic import (
    TrafficOptions,
    TrafficReport,
    block_traffic,
    compute_traffic,
)

__all__ = [
    "CostModel",
    "GroupPlan",
    "LatencyCostModel",
    "OBJECTIVES",
    "POLICIES",
    "ProxyCostModel",
    "Schedule",
    "TrafficCostModel",
    "TrafficOptions",
    "TrafficReport",
    "adaptive_grouping",
    "block_space_per_sample",
    "block_step_time",
    "block_traffic",
    "compute_traffic",
    "exhaustive_grouping",
    "feasible_sub_batch",
    "greedy_grouping",
    "initial_grouping",
    "iteration_count",
    "make_schedule",
    "schedule_step_time",
    "split_segments",
]
