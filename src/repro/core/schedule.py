"""Schedule representation: groups of blocks sharing a sub-batch size."""
from __future__ import annotations

from dataclasses import dataclass

from repro.types import ceil_div


@dataclass(frozen=True)
class GroupPlan:
    """One layer group.

    ``sub_batch == 0`` (with ``fused == False``) denotes conventional
    layer-by-layer streaming of the full mini-batch: every inter-layer
    tensor spills to DRAM.  ``block_fused`` marks blocks whose live set
    actually fits at the group's sub-batch size; an oversized block inside
    a group degrades to layerwise streaming while its neighbours still
    fuse (this only occurs in the IL configuration, where the sub-batch is
    pinned to the full mini-batch).

    ``branch_reuse`` optionally overrides the schedule-wide provisioning
    mode for this group: the adaptive ``mbs-auto`` policy mixes
    MBS2-style (Eq. 1/2) and MBS1-style groups in one schedule.  ``None``
    (the default, and the only value the fixed policies emit) defers to
    :attr:`Schedule.branch_reuse`.
    """

    blocks: tuple[int, ...]
    sub_batch: int
    iterations: int
    block_fused: tuple[bool, ...]
    branch_reuse: bool | None = None

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.block_fused):
            raise ValueError("block_fused must align with blocks")
        if self.blocks != tuple(range(self.blocks[0], self.blocks[-1] + 1)):
            raise ValueError(f"group blocks must be contiguous, got {self.blocks}")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")


@dataclass(frozen=True)
class Schedule:
    """A complete training-step schedule for one network.

    ``branch_reuse`` selects Eq. 1 / Eq. 2 provisioning inside modules
    (MBS2); ``relu_mask`` enables the 1-bit ReLU-gradient trick the paper
    applies to all MBS flavours.
    """

    policy: str
    network: str
    mini_batch: int
    buffer_bytes: int
    branch_reuse: bool
    relu_mask: bool
    groups: tuple[GroupPlan, ...]
    #: Budget for per-layer inter-layer reuse inside *unfused* blocks
    #: (the IL mechanism): an edge stays on chip when both adjacent
    #: layers' whole-mini-batch live sets fit within this budget.
    #: 0 disables the mechanism (pure conventional streaming).
    layer_reuse_bytes: int = 0
    #: What the schedule's grouping was optimized for: DRAM ``"traffic"``
    #: (every fixed policy, and mbs-auto's default), simulated step
    #: ``"latency"``, the lexicographic ``"latency+traffic"`` (seconds
    #: first, bytes on exact ties), or simulated step ``"energy"``
    #: (``mbs-repro schedule --objective``; see repro.core.policies).
    objective: str = "traffic"

    def __post_init__(self) -> None:
        covered = [i for g in self.groups for i in g.blocks]
        if covered != list(range(len(covered))):
            raise ValueError(
                f"groups must partition blocks contiguously, got {covered}"
            )

    @property
    def num_blocks(self) -> int:
        return sum(len(g.blocks) for g in self.groups)

    def group_of_block(self, block_idx: int) -> GroupPlan:
        for g in self.groups:
            if g.blocks[0] <= block_idx <= g.blocks[-1]:
                return g
        raise IndexError(f"block {block_idx} not covered by schedule")

    def block_fused(self, block_idx: int) -> bool:
        g = self.group_of_block(block_idx)
        return g.block_fused[block_idx - g.blocks[0]]

    def branch_reuse_of(self, block_idx: int) -> bool:
        """Provisioning mode governing ``block_idx``: the owning group's
        override when set (mixed-mode ``mbs-auto`` schedules), else the
        schedule-wide :attr:`branch_reuse` flag."""
        g = self.group_of_block(block_idx)
        return self.branch_reuse if g.branch_reuse is None else g.branch_reuse

    def boundary_on_chip(self, block_idx: int) -> bool:
        """True when the tensor between ``block_idx`` and its successor
        stays in the global buffer (same group, both sides fused)."""
        if block_idx < 0 or block_idx >= self.num_blocks - 1:
            return False
        g = self.group_of_block(block_idx)
        if block_idx + 1 > g.blocks[-1]:
            return False  # group boundary
        return self.block_fused(block_idx) and self.block_fused(block_idx + 1)

    def iterations_of_block(self, block_idx: int) -> int:
        return self.group_of_block(block_idx).iterations

    def describe(self) -> str:
        """Human-readable one-line-per-group summary (Fig. 5 style)."""
        objective = (
            "" if self.objective == "traffic"
            else f", objective={self.objective}"
        )
        lines = [
            f"{self.policy} schedule for {self.network}: N={self.mini_batch}, "
            f"buffer={self.buffer_bytes / 2**20:.0f} MiB{objective}"
        ]
        for i, g in enumerate(self.groups, 1):
            fused = "fused" if all(g.block_fused) else (
                "partial" if any(g.block_fused) else "spilled"
            )
            lines.append(
                f"  group{i}: blocks {g.blocks[0]}..{g.blocks[-1]} "
                f"sub-batch={g.sub_batch} iters={g.iterations} [{fused}]"
            )
        return "\n".join(lines)


def make_group(
    block_indices: tuple[int, ...],
    sub_batch: int,
    mini_batch: int,
    feasible: list[int],
    branch_reuse: bool | None = None,
) -> GroupPlan:
    """Construct a group, marking which member blocks actually fit."""
    fused = tuple(
        sub_batch > 0 and feasible[i] >= sub_batch for i in block_indices
    )
    iterations = ceil_div(mini_batch, sub_batch) if sub_batch > 0 else 1
    return GroupPlan(
        blocks=tuple(block_indices),
        sub_batch=sub_batch,
        iterations=iterations,
        block_fused=fused,
        branch_reuse=branch_reuse,
    )
