"""Composable per-group scheduling cost models.

The layer-grouping optimizer (:mod:`repro.core.grouping`) scores a
contiguous partition of the block sequence as::

    sum(model.group_cost(g) for g in groups)
      + sum(model.boundary_cost(b) for b in interior boundaries)

Two implementations of the :class:`CostModel` protocol exist:

* :class:`ProxyCostModel` — the paper's closed-form objective (weight
  streaming ``W * (4I - 1)`` per group plus ``3 N out_bytes`` per
  off-chip boundary).  This is the model the ``mbs1``/``mbs2`` policies
  optimize, kept bit-exact so their schedules reproduce the paper.
* :class:`TrafficCostModel` — the byte-accurate model.  Each group is
  priced by running the *same* per-block walkers that
  :func:`repro.core.traffic.compute_traffic` uses on a single-group
  view, so the optimization objective can never drift from the
  evaluator: for any schedule,
  ``TrafficCostModel.schedule_cost(sched) ==
  compute_traffic(net, sched).total_bytes`` exactly.  Boundary traffic
  (re-reads of a spilled group input, gradient spill/accumulate) is
  charged to the adjacent blocks by the walkers themselves, so
  :meth:`TrafficCostModel.boundary_cost` is identically zero.

The adaptive ``mbs-auto`` policy (:mod:`repro.core.policies`) optimizes
the :class:`TrafficCostModel`, which fixes the tight-buffer regression
where a fused MBS2 schedule emits more traffic than MBS1: reuse that
does not pay under the true model is simply not selected.

A third implementation prices *seconds* instead of bytes:

* :class:`LatencyCostModel` — simulated step time.  Each member block is
  priced by :func:`repro.core.steptime.block_step_time`, which runs the
  same traffic walkers *and* the same per-layer WaveCore timing
  (``max(compute, DRAM)`` under weight double buffering) that
  :func:`repro.wavecore.simulator.simulate_step` runs, so
  ``schedule_cost(sched) == simulate_step(net, sched, cfg).time_s``
  bit-for-bit.  Because per-layer time saturates at the compute floor,
  extra DRAM traffic on compute-bound layers is free in time but not in
  bytes — the two objectives genuinely diverge on tight buffers, and
  ``mbs-auto --objective latency`` exists to exploit that.

A fourth prices *joules* (paper Sec. 6):

* :class:`EnergyCostModel` — simulated step energy.  Each member block
  is priced by :func:`repro.core.stepenergy.block_step_energy`: DRAM
  and global-buffer bytes from the traffic walkers, MACs and block time
  from the WaveCore timing model, composed through the same per-access
  / per-op constants (:func:`repro.wavecore.energy.step_energy`) the
  simulator applies, so ``schedule_cost(sched) ==
  simulate_step(net, sched, cfg).energy.total_j`` bit-for-bit.  Energy
  correlates with neither objective alone — DRAM accesses dominate a
  memory-bound step's joules, static power tracks time, and the
  global-buffer component charges sub-batch re-streaming even when it
  hides under compute — so ``mbs-auto --objective energy`` is a third
  genuinely distinct optimum.

Finally, :class:`LexicographicCostModel` composes any two of the above
into a tie-broken objective: candidates are compared by the primary
cost first and by the secondary only on exact primary ties
(:class:`LexCost` is the ordered value type the DP accumulates).  The
shipped ``objective="latency+traffic"`` pairing minimizes seconds and
tie-breaks on bytes, which removes the latency DP's free-bytes
pathology: bytes that hide under compute are free in *time*, so the
pure latency objective spends them arbitrarily — the tie-break picks,
among the time-optimal partitions, one that spends the fewest.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.core.schedule import Schedule
from repro.core.stepenergy import block_step_energy, schedule_step_energy
from repro.core.steptime import BlockPricer, block_step_time, schedule_step_time
from repro.core.traffic import (
    TrafficOptions,
    block_reuse_class,
    block_traffic_total,
)
from repro.graph.network import Network
from repro.types import WORD_BYTES, ceil_div
from repro.wavecore.config import DEFAULT_CONFIG, WaveCoreConfig
from repro.wavecore.energy import DEFAULT_ENERGY, EnergyParams


@runtime_checkable
class CostModel(Protocol):
    """Scoring interface the grouping optimizer is generic over.

    ``blocks`` are *absolute* network block indices (contiguous);
    ``sub_batch == 0`` denotes conventional layerwise streaming.
    ``block_fused`` optionally marks which members actually fit at the
    group's sub-batch size (``None`` means all fit when ``sub_batch >
    0``).  Costs are comparable within one model instance only.
    """

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        """Cost of blocks forming one group at ``sub_batch``."""
        ...

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        """Cost of an off-chip boundary after block ``idx``."""
        ...


@dataclass(frozen=True)
class ProxyCostModel:
    """The paper's closed-form grouping objective (legacy proxy).

    Scores only the traffic components that obviously depend on the
    grouping: a group iterating ``I`` times streams its weights ``I``
    times in forward and ``I`` times for the backward data gradient and
    touches the weight-gradient partial sums ``2I - 1`` times; an
    off-chip boundary costs one forward re-read of the boundary tensor
    plus a backward gradient write and read.
    """

    weight_bytes: tuple[int, ...]
    out_bytes: tuple[int, ...]
    mini_batch: int

    def __post_init__(self) -> None:
        if len(self.weight_bytes) != len(self.out_bytes):
            raise ValueError("model arrays must have equal length")

    @classmethod
    def from_network(
        cls, net: Network, mini_batch: int, word_bytes: int = WORD_BYTES
    ) -> "ProxyCostModel":
        return cls(
            weight_bytes=tuple(
                sum(l.param_bytes(word_bytes) for l in b.all_layers())
                for b in net.blocks
            ),
            out_bytes=tuple(b.out_shape.bytes(word_bytes) for b in net.blocks),
            mini_batch=mini_batch,
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        iters = ceil_div(self.mini_batch, sub_batch) if sub_batch > 0 else 1
        weights = sum(self.weight_bytes[b] for b in blocks)
        return weights * (4 * iters - 1)

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        return 3.0 * self.mini_batch * self.out_bytes[idx]


class _GroupView:
    """Duck-typed Schedule restricted to one candidate group.

    Exposes exactly the query surface the traffic walkers consume.  Both
    group edges are off-chip (true for every inter-group boundary of
    every candidate partition), interior boundaries are on-chip when both
    neighbouring blocks fuse — identical to
    :meth:`repro.core.schedule.Schedule.boundary_on_chip` on the
    assembled schedule.
    """

    __slots__ = ("mini_batch", "relu_mask", "layer_reuse_bytes",
                 "_first", "_last", "_fused", "_iterations", "_branch_reuse")

    def __init__(
        self,
        blocks: Sequence[int],
        iterations: int,
        block_fused: Sequence[bool],
        branch_reuse: bool,
        mini_batch: int,
        relu_mask: bool,
        layer_reuse_bytes: int,
    ):
        self.mini_batch = mini_batch
        self.relu_mask = relu_mask
        self.layer_reuse_bytes = layer_reuse_bytes
        self._first = blocks[0]
        self._last = blocks[-1]
        self._fused = tuple(block_fused)
        self._iterations = iterations
        self._branch_reuse = branch_reuse

    def iterations_of_block(self, idx: int) -> int:
        return self._iterations

    def block_fused(self, idx: int) -> bool:
        if not self._first <= idx <= self._last:
            return False
        return self._fused[idx - self._first]

    def boundary_on_chip(self, idx: int) -> bool:
        if idx < self._first or idx + 1 > self._last:
            return False
        return self.block_fused(idx) and self.block_fused(idx + 1)

    def branch_reuse_of(self, idx: int) -> bool:
        return self._branch_reuse


def _check_schedule_env(model, sched: Schedule) -> None:
    """Reject a schedule whose environment differs from the model's.

    The walker-backed models' ``schedule_cost`` reads the environment
    flags from the *schedule* while ``group_cost`` reads them from the
    *model*; a mismatch would silently break the bit-for-bit agreement
    between the two, so every such model guards with this check.
    """
    env = (sched.mini_batch, sched.relu_mask, sched.layer_reuse_bytes)
    mine = (model.mini_batch, model.relu_mask, model.layer_reuse_bytes)
    if env != mine:
        raise ValueError(
            f"schedule environment {env} does not match this model's "
            f"{mine}; build the model with for_schedule()"
        )


def _memoized_group_cost(
    model,
    blocks: Sequence[int],
    sub_batch: int,
    branch_reuse: bool,
    block_fused: Sequence[bool] | None,
    price,
    key_has_sub: bool,
    zero,
):
    """Shared group-pricing loop of the walker-backed cost models.

    Builds the single-group :class:`_GroupView`, then prices each member
    through ``price(view, idx, eff_sub)``, memoized in ``model._memo``
    on the exact facts the walkers consume — with the view itself as the
    sole authority on edge on-chip flags, so the memo key can never
    disagree with what a walk actually saw.  ``key_has_sub`` extends the
    key with the effective sub-batch for models whose price depends on
    the iteration *sequence* (compute time does; byte counts depend only
    on the iteration count).  The key also carries the environment flags
    the walkers read — ``relu_mask`` always, and for unfused members
    (the sole path that consults the per-layer reuse budget) the
    *canonicalized* budget :func:`~repro.core.traffic.block_reuse_class`,
    under which two budgets with identical per-layer fit outcomes share
    one entry — so a memo dict may safely be *shared* across model
    instances with different environments, e.g. the per-buffer models of
    a sweep.  Accumulation starts from ``zero`` and runs in member
    order, keeping int sums exact and float association reproducible.
    """
    if block_fused is None:
        block_fused = tuple(sub_batch > 0 for _ in blocks)
    iterations = (
        ceil_div(model.mini_batch, sub_batch) if sub_batch > 0 else 1
    )
    view = _GroupView(
        blocks, iterations, block_fused, branch_reuse,
        model.mini_batch, model.relu_mask, model.layer_reuse_bytes,
    )
    memo = model._memo
    total = zero
    for pos, idx in enumerate(blocks):
        fused = block_fused[pos]
        eff_sub = sub_batch if fused else 0
        in_on = view.boundary_on_chip(idx - 1)
        out_on = view.boundary_on_chip(idx)
        key = (idx, fused, iterations, in_on, out_on, branch_reuse)
        if key_has_sub:
            key += (eff_sub,)
        key += (model.relu_mask,)
        if not fused:
            key += (block_reuse_class(
                model.net.blocks[idx], model.mini_batch,
                model.options.word_bytes, model.layer_reuse_bytes,
            ),)
        value = memo.get(key)
        if value is None:
            value = memo[key] = price(view, idx, eff_sub)
        total += value
    return total


def _fused_block_floor(model, idx, subs_reuse, subs_noreuse, key_has_sub):
    """Admissible per-block lower bound on fused group prices.

    Prices block ``idx`` fused with *both* edges on-chip — never
    costlier than any real candidate's edge placement, because an
    on-chip edge only removes traffic terms and per-layer time/energy
    are monotone in a layer's DRAM bytes — minimized over both
    provisioning modes and every sub-batch the DP can actually assign
    the block (``subs_*`` from the caller's feasibility running-mins).
    Probes share ``model._memo`` under the same keys the group-cost loop
    uses, so most floor walks are later reused by interior DP probes (or
    vice versa).  Returns ``None`` when no fused candidate can contain
    the block.
    """
    memo = model._memo
    best = None
    for branch_reuse, subs in ((False, subs_noreuse), (True, subs_reuse)):
        for sub in subs:
            iterations = ceil_div(model.mini_batch, sub)
            key = (idx, True, iterations, True, True, branch_reuse)
            if key_has_sub:
                key += (sub,)
            key += (model.relu_mask,)
            value = memo.get(key)
            if value is None:
                # a 3-wide pseudo-view makes both of idx's edges interior
                # (hence on-chip); walkers never walk the phantom
                # neighbours, only query their fused flags
                view = _GroupView(
                    (idx - 1, idx, idx + 1), iterations,
                    (True, True, True), branch_reuse,
                    model.mini_batch, model.relu_mask,
                    model.layer_reuse_bytes,
                )
                value = memo[key] = model._price(view, idx, sub)
            if best is None or value < best:
                best = value
    return best


@dataclass(frozen=True)
class TrafficCostModel:
    """Byte-accurate cost model built from the traffic walkers.

    ``group_cost`` prices a candidate group by walking each member block
    with the exact per-layer accounting of
    :func:`repro.core.traffic.compute_traffic`; block traffic depends
    only on the block itself, network-structural facts, and the owning
    group's flags, so per-group sums decompose the schedule total
    without residue.  ``boundary_cost`` is zero by construction — the
    walkers charge every off-chip boundary's reads/writes to the blocks
    on either side.
    """

    net: Network
    mini_batch: int
    relu_mask: bool = True
    layer_reuse_bytes: int = 0
    options: TrafficOptions = field(default_factory=TrafficOptions)
    #: A block's traffic depends only on (iterations, edge on-chip flags,
    #: fused, branch_reuse) — memoizing on that key collapses the
    #: adaptive DP's O(n²) group probes into O(n) distinct walks.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def for_schedule(
        cls, net: Network, sched: Schedule,
        options: TrafficOptions | None = None,
    ) -> "TrafficCostModel":
        """Model whose flags match an existing schedule's environment."""
        return cls(
            net=net,
            mini_batch=sched.mini_batch,
            relu_mask=sched.relu_mask,
            layer_reuse_bytes=sched.layer_reuse_bytes,
            options=options or TrafficOptions(),
        )

    def _price(self, view, idx: int, eff_sub: int) -> int:
        return block_traffic_total(self.net, view, idx, self.options)

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> int:
        return _memoized_group_cost(
            self, blocks, sub_batch, branch_reuse, block_fused,
            price=self._price,
            key_has_sub=False,
            zero=0,
        )

    def boundary_cost(self, idx: int, branch_reuse: bool) -> int:
        return 0  # boundary traffic is charged to the adjacent blocks

    def block_floor(self, idx, subs_reuse, subs_noreuse) -> int | None:
        """Admissible lower bound on this block's fused-member price."""
        return _fused_block_floor(
            self, idx, subs_reuse, subs_noreuse, key_has_sub=False
        )

    def streaming_cost(self, idx: int) -> int:
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule) -> int:
        """Exact total of a full schedule via group + boundary components.

        Equals ``compute_traffic(net, sched).total_bytes`` for any
        schedule whose environment matches this model (asserted for
        every zoo network × policy in the test suite; a mismatched
        environment is rejected rather than silently mispriced).
        """
        _check_schedule_env(self, sched)
        total = 0
        for g in sched.groups:
            reuse = sched.branch_reuse_of(g.blocks[0])
            total += self.group_cost(
                g.blocks, g.sub_batch, reuse, g.block_fused
            )
            if g.blocks[-1] < sched.num_blocks - 1:
                total += self.boundary_cost(g.blocks[-1], reuse)
        return total


@dataclass(frozen=True)
class LatencyCostModel:
    """Simulated-step-time cost model (seconds, not bytes).

    ``group_cost`` prices a candidate group by simulating each member
    block with the exact per-layer contract of
    :func:`repro.wavecore.simulator.simulate_step`: DRAM bytes from the
    traffic walkers, compute cycles from the systolic/vector timing
    model under ``cfg`` (including the weight-double-buffering wave
    overlap), combined as ``max(compute, DRAM)`` per layer.  A block's
    time depends only on the block plus its owning group's facts, so
    per-group sums decompose the step time the same way
    :class:`TrafficCostModel` decomposes bytes; ``boundary_cost`` is
    identically zero because boundary *traffic* is charged to the
    adjacent blocks by the walkers and an off-chip boundary has no
    compute of its own.

    Costs are seconds and comparable only across candidates priced by
    one instance (fixed network, mini-batch, hardware config).
    """

    net: Network
    mini_batch: int
    relu_mask: bool = True
    layer_reuse_bytes: int = 0
    cfg: WaveCoreConfig = DEFAULT_CONFIG
    options: TrafficOptions = field(default_factory=TrafficOptions)
    #: Memoized per-block simulated times.  Compute time depends on the
    #: effective sub-batch (the iteration sequence shapes the GEMMs) and
    #: traffic on the group flags, so the key extends the traffic memo's
    #: with ``sub_batch``.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)
    #: Buffer-independent pricing caches (compute profiles, DRAM row
    #: indexes); built lazily, shareable across the models of a sweep.
    _pricer: BlockPricer | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self._pricer is None:
            object.__setattr__(
                self, "_pricer",
                BlockPricer.shared(self.net, self.mini_batch, self.cfg),
            )

    @classmethod
    def for_schedule(
        cls, net: Network, sched: Schedule,
        cfg: WaveCoreConfig | None = None,
        options: TrafficOptions | None = None,
    ) -> "LatencyCostModel":
        """Model whose flags match an existing schedule's environment."""
        from repro.wavecore.config import config_for_policy

        return cls(
            net=net,
            mini_batch=sched.mini_batch,
            relu_mask=sched.relu_mask,
            layer_reuse_bytes=sched.layer_reuse_bytes,
            cfg=cfg if cfg is not None else config_for_policy(sched.policy),
            options=options or TrafficOptions(),
        )

    def _price(self, view, idx: int, eff_sub: int) -> float:
        return block_step_time(
            self.net, view, idx, eff_sub, self.cfg, self.options,
            pricer=self._pricer,
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        return _memoized_group_cost(
            self, blocks, sub_batch, branch_reuse, block_fused,
            price=self._price,
            key_has_sub=True,
            zero=0.0,
        )

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        return 0.0  # boundary traffic is charged to the adjacent blocks

    def block_floor(self, idx, subs_reuse, subs_noreuse) -> float | None:
        """Admissible lower bound on this block's fused-member price."""
        return _fused_block_floor(
            self, idx, subs_reuse, subs_noreuse, key_has_sub=True
        )

    def streaming_cost(self, idx: int) -> float:
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule) -> float:
        """Exact simulated step time of a full schedule.

        Equals ``simulate_step(net, sched, cfg).time_s`` bit-for-bit
        (asserted for every zoo network × policy in the test suite);
        per-group ``group_cost`` sums agree up to float association.
        The schedule's environment must match this model's — the walkers
        read it from the schedule here but from the model in
        ``group_cost``, so a mismatch would silently break that
        agreement.
        """
        _check_schedule_env(self, sched)
        return schedule_step_time(self.net, sched, self.cfg, self.options)


@dataclass(frozen=True)
class EnergyCostModel:
    """Simulated-step-energy cost model (joules, not bytes or seconds).

    ``group_cost`` prices a candidate group by composing, per member
    block, the exact traffic walk (DRAM plus global-buffer bytes), the
    exact per-layer WaveCore timing (for the static-power share), and
    the per-access/per-op constants of
    :func:`repro.wavecore.energy.step_energy` — the same composition
    :func:`repro.wavecore.simulator.simulate_step` applies to its
    chip-level totals.  A block's joules depend only on the block plus
    its owning group's facts, so per-group sums decompose the step
    energy the same way :class:`LatencyCostModel` decomposes seconds;
    ``boundary_cost`` is identically zero because boundary traffic is
    charged to the adjacent blocks by the walkers and an off-chip
    boundary consumes no compute or static energy of its own.

    Costs are chip-level joules and comparable only across candidates
    priced by one instance (fixed network, mini-batch, hardware config,
    energy calibration).
    """

    net: Network
    mini_batch: int
    relu_mask: bool = True
    layer_reuse_bytes: int = 0
    cfg: WaveCoreConfig = DEFAULT_CONFIG
    options: TrafficOptions = field(default_factory=TrafficOptions)
    params: EnergyParams = DEFAULT_ENERGY
    #: Memoized per-block joules.  The static share depends on the
    #: effective sub-batch (the iteration sequence shapes the GEMM
    #: timings) and the byte shares on the group flags, so the key
    #: extends the traffic memo's with ``sub_batch`` — same shape as
    #: the latency model's.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)
    #: Buffer-independent pricing caches (compute profiles, gbuf bytes,
    #: DRAM row indexes); shareable across the models of a sweep.
    _pricer: BlockPricer | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self._pricer is None:
            object.__setattr__(
                self, "_pricer",
                BlockPricer.shared(self.net, self.mini_batch, self.cfg),
            )

    @classmethod
    def for_schedule(
        cls, net: Network, sched: Schedule,
        cfg: WaveCoreConfig | None = None,
        options: TrafficOptions | None = None,
        params: EnergyParams = DEFAULT_ENERGY,
    ) -> "EnergyCostModel":
        """Model whose flags match an existing schedule's environment."""
        from repro.wavecore.config import config_for_policy

        return cls(
            net=net,
            mini_batch=sched.mini_batch,
            relu_mask=sched.relu_mask,
            layer_reuse_bytes=sched.layer_reuse_bytes,
            cfg=cfg if cfg is not None else config_for_policy(sched.policy),
            options=options or TrafficOptions(),
            params=params,
        )

    def _price(self, view, idx: int, eff_sub: int) -> float:
        return block_step_energy(
            self.net, view, idx, eff_sub, self.cfg, self.options,
            self.params, pricer=self._pricer,
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        return _memoized_group_cost(
            self, blocks, sub_batch, branch_reuse, block_fused,
            price=self._price,
            key_has_sub=True,
            zero=0.0,
        )

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        return 0.0  # boundary traffic is charged to the adjacent blocks

    def block_floor(self, idx, subs_reuse, subs_noreuse) -> float | None:
        """Admissible lower bound on this block's fused-member price."""
        return _fused_block_floor(
            self, idx, subs_reuse, subs_noreuse, key_has_sub=True
        )

    def streaming_cost(self, idx: int) -> float:
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule) -> float:
        """Exact simulated step energy of a full schedule, in joules.

        Equals ``simulate_step(net, sched, cfg).energy.total_j``
        bit-for-bit (asserted for every zoo network × policy in the
        test suite); per-group ``group_cost`` sums agree up to float
        association.  As with the latency model, the schedule's
        environment must match this model's.
        """
        _check_schedule_env(self, sched)
        return schedule_step_energy(
            self.net, sched, self.cfg, self.options, self.params
        ).total_j


class LexCost:
    """Additive, lexicographically ordered cost value.

    The grouping DPs accumulate costs with ``+`` (starting from the
    float ``0.0`` sentinel) and compare with ``<`` (against the float
    ``inf`` sentinel on first touch), so a composite objective only
    needs a value type closed under those operations.  Addition is
    componentwise; comparison is strict lexicographic — the secondary
    component participates only on *exact* primary ties, which is what
    makes the primary component of the DP's optimum bit-identical to
    what a primary-only DP computes (adding ``0.0`` and comparing
    against ``inf`` never perturb a float).
    """

    __slots__ = ("primary", "secondary")

    def __init__(self, primary: float, secondary: float):
        self.primary = primary
        self.secondary = secondary

    def __add__(self, other):
        if isinstance(other, LexCost):
            return LexCost(
                self.primary + other.primary,
                self.secondary + other.secondary,
            )
        if isinstance(other, (int, float)) and other == 0:
            return self  # the optimizers' 0.0 accumulator seed
        # a nonzero scalar has no lexicographic meaning — refusing it
        # keeps a stray float cost from silently skewing either axis
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, LexCost):
            return LexCost(
                self.primary - other.primary,
                self.secondary - other.secondary,
            )
        if isinstance(other, (int, float)) and other == 0:
            return self  # outer-edge boundary_cost sentinel (0.0)
        return NotImplemented

    def __gt__(self, other):
        if isinstance(other, LexCost):
            if self.primary != other.primary:
                return self.primary > other.primary
            return self.secondary > other.secondary
        if isinstance(other, (int, float)):
            return self.primary > other  # greedy's 0.0 gain threshold
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, LexCost):
            if self.primary != other.primary:
                return self.primary < other.primary
            return self.secondary < other.secondary
        if isinstance(other, (int, float)):
            return self.primary < other  # float("inf") DP sentinel
        return NotImplemented

    def __eq__(self, other):
        if isinstance(other, LexCost):
            return (self.primary == other.primary
                    and self.secondary == other.secondary)
        return NotImplemented

    def __hash__(self):
        return hash((self.primary, self.secondary))

    def __repr__(self):
        return f"LexCost({self.primary!r}, {self.secondary!r})"


@dataclass(frozen=True)
class LexicographicCostModel:
    """Composite objective: minimize ``primary``, tie-break on ``secondary``.

    Both sub-models see the identical group/boundary queries and their
    prices ride together in a :class:`LexCost`, so the DP explores the
    exact same search space with the exact same primary arithmetic a
    primary-only run performs — the optimum's primary cost is therefore
    bit-identical to the primary-only optimum's, while among partitions
    achieving it the secondary cost picks the cheapest (the shipped
    ``latency+traffic`` pairing: never slower than ``objective=
    "latency"``, never spending more bytes than it, property-tested
    zoo-wide).  Requires sub-models whose costs decompose identically
    (both charge boundaries to adjacent blocks — true for every
    walker-backed model here).
    """

    primary: CostModel
    secondary: CostModel

    @property
    def relu_mask(self):
        """Environment flag of the composed objective (primary's)."""
        return getattr(self.primary, "relu_mask", None)

    @property
    def layer_reuse_bytes(self):
        """Environment flag of the composed objective (primary's)."""
        return getattr(self.primary, "layer_reuse_bytes", None)

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> LexCost:
        return LexCost(
            self.primary.group_cost(blocks, sub_batch, branch_reuse,
                                    block_fused),
            self.secondary.group_cost(blocks, sub_batch, branch_reuse,
                                      block_fused),
        )

    def boundary_cost(self, idx: int, branch_reuse: bool) -> LexCost:
        return LexCost(
            self.primary.boundary_cost(idx, branch_reuse),
            self.secondary.boundary_cost(idx, branch_reuse),
        )

    def block_floor(self, idx, subs_reuse, subs_noreuse) -> LexCost | None:
        """Componentwise floor — admissible for lexicographic pruning.

        The DP's early-exit bound compares *primary* components only
        (a strictly larger primary dominates regardless of secondary),
        so a componentwise lower bound is sufficient.  ``None`` when
        either sub-model cannot provide a floor.
        """
        fp = getattr(self.primary, "block_floor", None)
        fs = getattr(self.secondary, "block_floor", None)
        if fp is None or fs is None:
            return None
        p = fp(idx, subs_reuse, subs_noreuse)
        s = fs(idx, subs_reuse, subs_noreuse)
        if p is None or s is None:
            return None
        return LexCost(p, s)

    def streaming_cost(self, idx: int) -> LexCost:
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule) -> LexCost:
        """Exact (primary, secondary) totals of a full schedule."""
        return LexCost(
            self.primary.schedule_cost(sched),
            self.secondary.schedule_cost(sched),
        )


class MemoizedCostModel:
    """Cross-call (and cross-sweep) memo of whole-*group* prices.

    Wraps any cost model and caches ``group_cost`` keyed on the exact
    facts a group price can depend on: the member blocks, sub-batch,
    provisioning mode, per-member fused flags, and the wrapped model's
    environment flags that the walkers actually read — ``relu_mask``
    always, and only when some member streams layerwise (the only path
    that consults the per-layer reuse budget) the canonicalized budget
    (:func:`~repro.core.traffic.block_reuse_class` per streaming
    member; the raw ``layer_reuse_bytes`` for models the walkers don't
    back).
    The per-*block* memo inside the walker models already collapses the
    DP's O(n²) probes to O(n) walks; this layer removes the remaining
    per-group view construction and member loop, and — passed a shared
    ``store`` — persists prices across the per-buffer model instances
    of a sweep, where adjacent points re-probe mostly identical windows.

    A shared store must only span models that agree on everything *not*
    in the key: network, mini-batch, objective, hardware config modulo
    the buffer budget, traffic options, and energy calibration.
    ``hits``/``misses`` count store lookups for observability.
    """

    def __init__(self, inner, store: dict | None = None):
        self.inner = inner
        self._store: dict = {} if store is None else store
        self.hits = 0
        self.misses = 0

    def _reuse_tag(self, blocks, fused_t):
        """Canonical budget component of an unfused group's key.

        Per streaming member, the budget's fit-outcome class; falls back
        to the raw budget for models without a walker environment
        (proxy/stub models), where over-keying merely costs sharing.
        """
        inner = self.inner
        env = inner if hasattr(inner, "net") else getattr(
            inner, "primary", None
        )
        lrb = getattr(inner, "layer_reuse_bytes", None)
        if lrb is None or env is None or not hasattr(env, "net"):
            return lrb
        wb = env.options.word_bytes
        return tuple(
            block_reuse_class(env.net.blocks[b], env.mini_batch, wb, lrb)
            for b, fused in zip(blocks, fused_t) if not fused
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ):
        if block_fused is None:
            block_fused = tuple(sub_batch > 0 for _ in blocks)
        fused_t = tuple(block_fused)
        key = (
            tuple(blocks), sub_batch, branch_reuse, fused_t,
            getattr(self.inner, "relu_mask", None),
        )
        if not all(fused_t):
            key += (self._reuse_tag(blocks, fused_t),)
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            value = self._store[key] = self.inner.group_cost(
                blocks, sub_batch, branch_reuse, fused_t
            )
        else:
            self.hits += 1
        return value

    def boundary_cost(self, idx: int, branch_reuse: bool):
        return self.inner.boundary_cost(idx, branch_reuse)

    def block_floor(self, idx, subs_reuse, subs_noreuse):
        fn = getattr(self.inner, "block_floor", None)
        return None if fn is None else fn(idx, subs_reuse, subs_noreuse)

    def streaming_cost(self, idx: int):
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule):
        return self.inner.schedule_cost(sched)
