"""Composable per-group scheduling cost models.

The layer-grouping optimizer (:mod:`repro.core.grouping`) scores a
contiguous partition of the block sequence as::

    sum(model.group_cost(g) for g in groups)
      + sum(model.boundary_cost(b) for b in interior boundaries)

Two implementations of the :class:`CostModel` protocol exist:

* :class:`ProxyCostModel` — the paper's closed-form objective (weight
  streaming ``W * (4I - 1)`` per group plus ``3 N out_bytes`` per
  off-chip boundary).  This is the model the ``mbs1``/``mbs2`` policies
  optimize, kept bit-exact so their schedules reproduce the paper.
* :class:`TrafficCostModel` — the byte-accurate model.  Each group is
  priced by running the *same* per-block walkers that
  :func:`repro.core.traffic.compute_traffic` uses on a single-group
  view, so the optimization objective can never drift from the
  evaluator: for any schedule,
  ``TrafficCostModel.schedule_cost(sched) ==
  compute_traffic(net, sched).total_bytes`` exactly.  Boundary traffic
  (re-reads of a spilled group input, gradient spill/accumulate) is
  charged to the adjacent blocks by the walkers themselves, so
  :meth:`TrafficCostModel.boundary_cost` is identically zero.

The adaptive ``mbs-auto`` policy (:mod:`repro.core.policies`) optimizes
the :class:`TrafficCostModel`, which fixes the tight-buffer regression
where a fused MBS2 schedule emits more traffic than MBS1: reuse that
does not pay under the true model is simply not selected.

A third implementation prices *seconds* instead of bytes:

* :class:`LatencyCostModel` — simulated step time.  Each member block is
  priced by :func:`repro.core.steptime.block_step_time`, which runs the
  same traffic walkers *and* the same per-layer WaveCore timing
  (``max(compute, DRAM)`` under weight double buffering) that
  :func:`repro.wavecore.simulator.simulate_step` runs, so
  ``schedule_cost(sched) == simulate_step(net, sched, cfg).time_s``
  bit-for-bit.  Because per-layer time saturates at the compute floor,
  extra DRAM traffic on compute-bound layers is free in time but not in
  bytes — the two objectives genuinely diverge on tight buffers, and
  ``mbs-auto --objective latency`` exists to exploit that.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.core.schedule import Schedule
from repro.core.steptime import block_step_time, schedule_step_time
from repro.core.traffic import TrafficOptions, block_traffic
from repro.graph.network import Network
from repro.types import WORD_BYTES, ceil_div
from repro.wavecore.config import DEFAULT_CONFIG, WaveCoreConfig


@runtime_checkable
class CostModel(Protocol):
    """Scoring interface the grouping optimizer is generic over.

    ``blocks`` are *absolute* network block indices (contiguous);
    ``sub_batch == 0`` denotes conventional layerwise streaming.
    ``block_fused`` optionally marks which members actually fit at the
    group's sub-batch size (``None`` means all fit when ``sub_batch >
    0``).  Costs are comparable within one model instance only.
    """

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        """Cost of blocks forming one group at ``sub_batch``."""
        ...

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        """Cost of an off-chip boundary after block ``idx``."""
        ...


@dataclass(frozen=True)
class ProxyCostModel:
    """The paper's closed-form grouping objective (legacy proxy).

    Scores only the traffic components that obviously depend on the
    grouping: a group iterating ``I`` times streams its weights ``I``
    times in forward and ``I`` times for the backward data gradient and
    touches the weight-gradient partial sums ``2I - 1`` times; an
    off-chip boundary costs one forward re-read of the boundary tensor
    plus a backward gradient write and read.
    """

    weight_bytes: tuple[int, ...]
    out_bytes: tuple[int, ...]
    mini_batch: int

    def __post_init__(self) -> None:
        if len(self.weight_bytes) != len(self.out_bytes):
            raise ValueError("model arrays must have equal length")

    @classmethod
    def from_network(
        cls, net: Network, mini_batch: int, word_bytes: int = WORD_BYTES
    ) -> "ProxyCostModel":
        return cls(
            weight_bytes=tuple(
                sum(l.param_bytes(word_bytes) for l in b.all_layers())
                for b in net.blocks
            ),
            out_bytes=tuple(b.out_shape.bytes(word_bytes) for b in net.blocks),
            mini_batch=mini_batch,
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        iters = ceil_div(self.mini_batch, sub_batch) if sub_batch > 0 else 1
        weights = sum(self.weight_bytes[b] for b in blocks)
        return weights * (4 * iters - 1)

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        return 3.0 * self.mini_batch * self.out_bytes[idx]


class _GroupView:
    """Duck-typed Schedule restricted to one candidate group.

    Exposes exactly the query surface the traffic walkers consume.  Both
    group edges are off-chip (true for every inter-group boundary of
    every candidate partition), interior boundaries are on-chip when both
    neighbouring blocks fuse — identical to
    :meth:`repro.core.schedule.Schedule.boundary_on_chip` on the
    assembled schedule.
    """

    __slots__ = ("mini_batch", "relu_mask", "layer_reuse_bytes",
                 "_first", "_last", "_fused", "_iterations", "_branch_reuse")

    def __init__(
        self,
        blocks: Sequence[int],
        iterations: int,
        block_fused: Sequence[bool],
        branch_reuse: bool,
        mini_batch: int,
        relu_mask: bool,
        layer_reuse_bytes: int,
    ):
        self.mini_batch = mini_batch
        self.relu_mask = relu_mask
        self.layer_reuse_bytes = layer_reuse_bytes
        self._first = blocks[0]
        self._last = blocks[-1]
        self._fused = tuple(block_fused)
        self._iterations = iterations
        self._branch_reuse = branch_reuse

    def iterations_of_block(self, idx: int) -> int:
        return self._iterations

    def block_fused(self, idx: int) -> bool:
        if not self._first <= idx <= self._last:
            return False
        return self._fused[idx - self._first]

    def boundary_on_chip(self, idx: int) -> bool:
        if idx < self._first or idx + 1 > self._last:
            return False
        return self.block_fused(idx) and self.block_fused(idx + 1)

    def branch_reuse_of(self, idx: int) -> bool:
        return self._branch_reuse


def _memoized_group_cost(
    model,
    blocks: Sequence[int],
    sub_batch: int,
    branch_reuse: bool,
    block_fused: Sequence[bool] | None,
    price,
    key_has_sub: bool,
    zero,
):
    """Shared group-pricing loop of the walker-backed cost models.

    Builds the single-group :class:`_GroupView`, then prices each member
    through ``price(view, idx, eff_sub)``, memoized in ``model._memo``
    on the exact facts the walkers consume — with the view itself as the
    sole authority on edge on-chip flags, so the memo key can never
    disagree with what a walk actually saw.  ``key_has_sub`` extends the
    key with the effective sub-batch for models whose price depends on
    the iteration *sequence* (compute time does; byte counts depend only
    on the iteration count).  Accumulation starts from ``zero`` and runs
    in member order, keeping int sums exact and float association
    reproducible.
    """
    if block_fused is None:
        block_fused = tuple(sub_batch > 0 for _ in blocks)
    iterations = (
        ceil_div(model.mini_batch, sub_batch) if sub_batch > 0 else 1
    )
    view = _GroupView(
        blocks, iterations, block_fused, branch_reuse,
        model.mini_batch, model.relu_mask, model.layer_reuse_bytes,
    )
    memo = model._memo
    total = zero
    for pos, idx in enumerate(blocks):
        fused = block_fused[pos]
        eff_sub = sub_batch if fused else 0
        in_on = view.boundary_on_chip(idx - 1)
        out_on = view.boundary_on_chip(idx)
        key = (idx, fused, iterations, in_on, out_on, branch_reuse)
        if key_has_sub:
            key += (eff_sub,)
        value = memo.get(key)
        if value is None:
            value = memo[key] = price(view, idx, eff_sub)
        total += value
    return total


@dataclass(frozen=True)
class TrafficCostModel:
    """Byte-accurate cost model built from the traffic walkers.

    ``group_cost`` prices a candidate group by walking each member block
    with the exact per-layer accounting of
    :func:`repro.core.traffic.compute_traffic`; block traffic depends
    only on the block itself, network-structural facts, and the owning
    group's flags, so per-group sums decompose the schedule total
    without residue.  ``boundary_cost`` is zero by construction — the
    walkers charge every off-chip boundary's reads/writes to the blocks
    on either side.
    """

    net: Network
    mini_batch: int
    relu_mask: bool = True
    layer_reuse_bytes: int = 0
    options: TrafficOptions = field(default_factory=TrafficOptions)
    #: A block's traffic depends only on (iterations, edge on-chip flags,
    #: fused, branch_reuse) — memoizing on that key collapses the
    #: adaptive DP's O(n²) group probes into O(n) distinct walks.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def for_schedule(
        cls, net: Network, sched: Schedule,
        options: TrafficOptions | None = None,
    ) -> "TrafficCostModel":
        """Model whose flags match an existing schedule's environment."""
        return cls(
            net=net,
            mini_batch=sched.mini_batch,
            relu_mask=sched.relu_mask,
            layer_reuse_bytes=sched.layer_reuse_bytes,
            options=options or TrafficOptions(),
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> int:
        return _memoized_group_cost(
            self, blocks, sub_batch, branch_reuse, block_fused,
            price=lambda view, idx, eff_sub: block_traffic(
                self.net, view, idx, self.options
            ).total_bytes,
            key_has_sub=False,
            zero=0,
        )

    def boundary_cost(self, idx: int, branch_reuse: bool) -> int:
        return 0  # boundary traffic is charged to the adjacent blocks

    def streaming_cost(self, idx: int) -> int:
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule) -> int:
        """Exact total of a full schedule via group + boundary components.

        Equals ``compute_traffic(net, sched).total_bytes`` for any
        schedule whose environment matches this model (asserted for
        every zoo network × policy in the test suite).
        """
        total = 0
        for g in sched.groups:
            reuse = sched.branch_reuse_of(g.blocks[0])
            total += self.group_cost(
                g.blocks, g.sub_batch, reuse, g.block_fused
            )
            if g.blocks[-1] < sched.num_blocks - 1:
                total += self.boundary_cost(g.blocks[-1], reuse)
        return total


@dataclass(frozen=True)
class LatencyCostModel:
    """Simulated-step-time cost model (seconds, not bytes).

    ``group_cost`` prices a candidate group by simulating each member
    block with the exact per-layer contract of
    :func:`repro.wavecore.simulator.simulate_step`: DRAM bytes from the
    traffic walkers, compute cycles from the systolic/vector timing
    model under ``cfg`` (including the weight-double-buffering wave
    overlap), combined as ``max(compute, DRAM)`` per layer.  A block's
    time depends only on the block plus its owning group's facts, so
    per-group sums decompose the step time the same way
    :class:`TrafficCostModel` decomposes bytes; ``boundary_cost`` is
    identically zero because boundary *traffic* is charged to the
    adjacent blocks by the walkers and an off-chip boundary has no
    compute of its own.

    Costs are seconds and comparable only across candidates priced by
    one instance (fixed network, mini-batch, hardware config).
    """

    net: Network
    mini_batch: int
    relu_mask: bool = True
    layer_reuse_bytes: int = 0
    cfg: WaveCoreConfig = DEFAULT_CONFIG
    options: TrafficOptions = field(default_factory=TrafficOptions)
    #: Memoized per-block simulated times.  Compute time depends on the
    #: effective sub-batch (the iteration sequence shapes the GEMMs) and
    #: traffic on the group flags, so the key extends the traffic memo's
    #: with ``sub_batch``.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def for_schedule(
        cls, net: Network, sched: Schedule,
        cfg: WaveCoreConfig | None = None,
        options: TrafficOptions | None = None,
    ) -> "LatencyCostModel":
        """Model whose flags match an existing schedule's environment."""
        from repro.wavecore.config import config_for_policy

        return cls(
            net=net,
            mini_batch=sched.mini_batch,
            relu_mask=sched.relu_mask,
            layer_reuse_bytes=sched.layer_reuse_bytes,
            cfg=cfg if cfg is not None else config_for_policy(sched.policy),
            options=options or TrafficOptions(),
        )

    def group_cost(
        self,
        blocks: Sequence[int],
        sub_batch: int,
        branch_reuse: bool,
        block_fused: Sequence[bool] | None = None,
    ) -> float:
        return _memoized_group_cost(
            self, blocks, sub_batch, branch_reuse, block_fused,
            price=lambda view, idx, eff_sub: block_step_time(
                self.net, view, idx, eff_sub, self.cfg, self.options
            ),
            key_has_sub=True,
            zero=0.0,
        )

    def boundary_cost(self, idx: int, branch_reuse: bool) -> float:
        return 0.0  # boundary traffic is charged to the adjacent blocks

    def streaming_cost(self, idx: int) -> float:
        """Conventional layerwise streaming of one block (spilled group)."""
        return self.group_cost((idx,), 0, False, block_fused=(False,))

    def schedule_cost(self, sched: Schedule) -> float:
        """Exact simulated step time of a full schedule.

        Equals ``simulate_step(net, sched, cfg).time_s`` bit-for-bit
        (asserted for every zoo network × policy in the test suite);
        per-group ``group_cost`` sums agree up to float association.
        The schedule's environment must match this model's — the walkers
        read it from the schedule here but from the model in
        ``group_cost``, so a mismatch would silently break that
        agreement.
        """
        env = (sched.mini_batch, sched.relu_mask, sched.layer_reuse_bytes)
        mine = (self.mini_batch, self.relu_mask, self.layer_reuse_bytes)
        if env != mine:
            raise ValueError(
                f"schedule environment {env} does not match this model's "
                f"{mine}; build the model with for_schedule()"
            )
        return schedule_step_time(self.net, sched, self.cfg, self.options)
