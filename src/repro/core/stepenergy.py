"""Simulated-step-energy bridge between the scheduler and WaveCore.

The energy model (paper Sec. 4.2 / Sec. 6) prices one training step
from four chip-level totals: DRAM bytes, global-buffer bytes, MAC
count, and the step time (static power).  Every one of those totals
decomposes over blocks with the same locality that lets
:class:`repro.core.cost.TrafficCostModel` decompose DRAM bytes and
:mod:`repro.core.steptime` decompose seconds — a block's traffic,
global-buffer movement, MACs, and time depend only on the block itself,
network-structural facts, and its owning group's facts (sub-batch,
iteration count, edge on-chip flags, provisioning mode).

:func:`block_step_energy` prices one block in joules under any
schedule-like view by running the very traffic walkers, per-layer
timing, and per-access energy constants the simulator runs;
:func:`schedule_step_energy` recomputes the simulator's *totals* in the
simulator's own accumulation order and prices them through the same
:func:`repro.wavecore.energy.step_energy`, so

```python
schedule_step_energy(net, sched, cfg).total_j \
    == simulate_step(net, sched, cfg).energy.total_j
```

holds *bit-for-bit* (asserted zoo-wide in
``tests/test_core_cost_properties.py``).  That exactness gives the
energy-objective ``mbs-auto`` the same dominance guarantee the traffic
and latency objectives enjoy: the grouping DP optimizes the number the
evaluator reports.

Energy disagrees with both bytes and seconds as an objective.  DRAM
accesses dominate a memory-bound step's energy, but the static
component is proportional to *time* and the global-buffer component
scales with sub-batch iteration counts even when the DRAM traffic they
cause hides under compute — so the joules-optimal schedule is in
general neither the bytes-optimal nor the seconds-optimal one (OCCAM
makes the general case that reuse schedules chosen under one cost
metric are suboptimal under another).
"""
from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.core.steptime import BlockPricer, _DramRowReport
from repro.core.traffic import (
    Phase,
    TrafficOptions,
    block_traffic,
    compute_traffic,
    walk_block_traffic,
)
from repro.graph.network import Network
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.energy import DEFAULT_ENERGY, EnergyParams, step_energy
from repro.wavecore.report import EnergyBreakdown
from repro.wavecore.timing import (
    attribute_block_dram,
    block_layer_timings,
    gbuf_bytes_for_layer,
    per_layer_dram,
)


def block_step_energy(
    net: Network,
    sched_like,
    idx: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    options: TrafficOptions | None = None,
    params: EnergyParams = DEFAULT_ENERGY,
    pricer: BlockPricer | None = None,
) -> float:
    """Chip-level joules attributable to block ``idx`` alone.

    ``sched_like`` may be any object exposing the Schedule query surface
    the traffic walkers consume (the cost model passes a single-group
    view); ``sub_batch`` is the block's *effective* sub-batch (0 when it
    streams layerwise).  The block's share of each energy component is
    computed from its own DRAM bytes, global-buffer bytes, MACs, and
    time, scaled to chip level exactly the way the simulator scales its
    totals — per-block prices therefore sum to the simulated step
    energy up to float association (the int-valued byte and MAC totals
    are exact; only the final per-component multiplies reassociate).

    ``pricer`` switches to the vectorized path of
    :func:`repro.core.steptime.block_step_time`: cached compute profile
    and global-buffer bytes, row-binned traffic walk — same values,
    same addition order.
    """
    if pricer is not None:
        _prof, compute_s, macs = pricer.profile(idx, sub_batch)
        rep = _DramRowReport(pricer.rows(idx))
        walk_block_traffic(rep, net, sched_like, idx, options)
        dram_s = (
            np.asarray(rep.row_bytes, dtype=np.float64) / cfg.core_bandwidth
        )
        times = np.maximum(compute_s, dram_s)
        time_s = 0.0
        for t in times.tolist():  # ordered scalar sum, no reassociation
            time_s += t
        gbuf = pricer.gbuf_bytes(idx, sub_batch) + rep.total_bytes
        return step_energy(
            cfg,
            time_s,
            chip_dram_bytes=rep.total_bytes * cfg.cores,
            chip_gbuf_bytes=gbuf * cfg.cores,
            chip_macs=macs * cfg.cores,
            params=params,
        ).total_j

    traffic = block_traffic(net, sched_like, idx, options)
    dram_map = attribute_block_dram(net.blocks[idx], traffic.records)
    time_s = 0.0
    macs = 0
    for lt in block_layer_timings(
        net, idx, sched_like.mini_batch, sub_batch, cfg,
        lambda name, phase: dram_map.get((name, phase), 0),
    ):
        time_s += lt.time_s
        macs += lt.macs
    gbuf = 0
    for phase in (Phase.FWD, Phase.BWD):
        for layer in net.blocks[idx].all_layers():
            gbuf += gbuf_bytes_for_layer(
                layer, phase, sched_like.mini_batch, sub_batch, cfg
            )
    # DRAM traffic also streams through the global buffer (simulator
    # adds the whole step's total once; per block that is its own share)
    gbuf += traffic.total_bytes
    return step_energy(
        cfg,
        time_s,
        chip_dram_bytes=traffic.total_bytes * cfg.cores,
        chip_gbuf_bytes=gbuf * cfg.cores,
        chip_macs=macs * cfg.cores,
        params=params,
    ).total_j


def schedule_step_energy(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig | None = None,
    options: TrafficOptions | None = None,
    params: EnergyParams = DEFAULT_ENERGY,
) -> EnergyBreakdown:
    """Step energy of a full schedule, bit-exact against the simulator.

    Recomputes the four chip-level totals in the simulator's own
    accumulation order — DRAM bytes from :func:`compute_traffic`,
    per-layer MACs and block-accumulated time from
    :func:`block_layer_timings`, global-buffer bytes from
    :func:`gbuf_bytes_for_layer` — and prices them through the same
    :func:`repro.wavecore.energy.step_energy`, so the returned
    breakdown equals ``simulate_step(net, sched, cfg).energy`` exactly.
    """
    if sched.num_blocks != len(net.blocks):
        raise ValueError(
            f"schedule covers {sched.num_blocks} blocks, network has "
            f"{len(net.blocks)}"
        )
    if cfg is None:
        cfg = config_for_policy(sched.policy)
    traffic = compute_traffic(net, sched, options or TrafficOptions())
    dram_map = per_layer_dram(net, traffic)
    total_macs = 0
    total_gbuf = 0
    time_s = 0.0
    for idx, block in enumerate(net.blocks):
        group = sched.group_of_block(idx)
        sub_batch = group.sub_batch if sched.block_fused(idx) else 0
        block_s = 0.0
        for lt in block_layer_timings(
            net, idx, sched.mini_batch, sub_batch, cfg,
            lambda name, phase, _b=block.name: dram_map.get(
                (_b, name, phase), 0
            ),
        ):
            total_macs += lt.macs
            block_s += lt.time_s
        time_s += block_s
        for phase in (Phase.FWD, Phase.BWD):
            for layer in block.all_layers():
                total_gbuf += gbuf_bytes_for_layer(
                    layer, phase, sched.mini_batch, sub_batch, cfg
                )
    total_gbuf += traffic.total_bytes
    return step_energy(
        cfg,
        time_s,
        chip_dram_bytes=traffic.total_bytes * cfg.cores,
        chip_gbuf_bytes=total_gbuf * cfg.cores,
        chip_macs=total_macs * cfg.cores,
        params=params,
    )
