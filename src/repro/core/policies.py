"""Schedule construction for the paper's evaluation configurations
(Tab. 3) plus the adaptive cost-model-driven policy.

========  ==========================================================
Baseline  conventional layer-by-layer mini-batch propagation
ArchOpt   identical schedule; weight double buffering is a hardware
          property consumed by the timing model, not the scheduler
IL        inter-layer reuse only where a whole mini-batch fits on chip
MBS-FS    fully-serialized MBS: a single sub-batch size for all layers
MBS1      greedy layer grouping, no inter-branch provisioning
MBS2      MBS1 + inter-branch data reuse (Eq. 1 / Eq. 2 footprints)
MBS-AUTO  adaptive: optimal grouping under the byte-accurate
          ``TrafficCostModel`` with a per-group choice of MBS2-style
          provisioning, MBS1-style, or layerwise streaming — never
          costlier than MBS1 or MBS2 at any buffer size
========  ==========================================================

``mbs1-opt`` / ``mbs2-opt`` swap the greedy merge for the exhaustive DP
(the paper's footnote-1 ablation).  ``mbs1``/``mbs2`` optimize the
paper's closed-form proxy objective (:class:`~repro.core.cost.ProxyCostModel`)
and reproduce the paper's schedules exactly; ``mbs-auto`` optimizes the
same byte-accurate model the traffic evaluator is built from
(:class:`~repro.core.cost.TrafficCostModel`), or — with
``objective="latency"`` — the simulated-step-time model
(:class:`~repro.core.cost.LatencyCostModel`), since weight double
buffering makes the bytes-optimal schedule not always the time-optimal
one.  Two further objectives complete the paper's result triple:
``objective="energy"`` optimizes simulated joules
(:class:`~repro.core.cost.EnergyCostModel`, Sec. 6), and
``objective="latency+traffic"`` is the lexicographic composite —
minimize seconds, tie-break on bytes — that removes the latency DP's
free-bytes pathology (bytes hiding under compute are free in time, so
the pure latency objective spends them arbitrarily).
"""
from __future__ import annotations

from repro.core.cost import (
    EnergyCostModel,
    LatencyCostModel,
    LexicographicCostModel,
    MemoizedCostModel,
    ProxyCostModel,
    TrafficCostModel,
)
from repro.core.traffic import TrafficOptions
from repro.core.grouping import (
    GroupingProblem,
    adaptive_grouping,
    exhaustive_grouping,
    greedy_grouping,
    split_segments,
)
from repro.core.schedule import GroupPlan, Schedule, make_group
from repro.core.subbatch import per_block_sub_batches
from repro.graph.network import Network
from repro.types import MIB, WORD_BYTES
from repro.wavecore.config import WaveCoreConfig, config_for_policy

POLICIES = ("baseline", "archopt", "il", "mbs-fs", "mbs1", "mbs2",
            "mbs1-opt", "mbs2-opt", "mbs-auto")

#: Objectives the adaptive policy can optimize: DRAM bytes, simulated
#: step seconds, seconds-then-bytes lexicographic, or simulated joules.
#: Fixed policies always optimize the paper's proxy.
OBJECTIVES = ("traffic", "latency", "latency+traffic", "energy")

#: Objectives that price the simulated hardware and therefore accept
#: (and need) a pinned :class:`~repro.wavecore.config.WaveCoreConfig`.
HARDWARE_OBJECTIVES = ("latency", "latency+traffic", "energy")

#: Default per-core global buffer (paper Sec. 4.2).
DEFAULT_BUFFER_BYTES = 10 * MIB


def _spilled_group(
    idx: int, mini_batch: int, branch_reuse: bool | None = None
) -> GroupPlan:
    """Singleton group that streams layer-by-layer (conventional flow)."""
    return GroupPlan(
        blocks=(idx,), sub_batch=0, iterations=1, block_fused=(False,),
        branch_reuse=branch_reuse,
    )


def _proxy_groups(
    net: Network,
    feasible: list[int],
    n_batch: int,
    word_bytes: int,
    optimizer,
) -> list[GroupPlan]:
    """mbs1/mbs2-style grouping: the proxy objective per fusable segment."""
    proxy = ProxyCostModel.from_network(net, n_batch, word_bytes)
    groups: list[GroupPlan] = []
    for seg in split_segments(feasible):
        if isinstance(seg, int):
            groups.append(_spilled_group(seg, n_batch))
            continue
        start, end = seg
        problem = GroupingProblem(
            feasible=tuple(feasible[start : end + 1]),
            mini_batch=n_batch,
            cost_model=proxy,
            blocks=tuple(range(start, end + 1)),
        )
        for g_start, g_end in optimizer(problem):
            lo, hi = start + g_start, start + g_end
            s_group = min(feasible[lo : hi + 1])
            groups.append(
                make_group(tuple(range(lo, hi + 1)), s_group, n_batch, feasible)
            )
    return groups


class SweepCaches:
    """Pricing state shared across the points of a buffer sweep.

    Holds the per-role per-*block* walker memos and the whole-*group*
    price store that :func:`sweep_schedules` threads through every
    per-buffer ``mbs-auto`` search.  Both kinds of key carry the
    environment facts a price depends on (``relu_mask`` always, the
    per-layer reuse budget only where it is read), so one instance may
    safely span sweep points whose ``layer_reuse_bytes`` tracks the
    buffer budget — but must *not* span different networks, mini-batch
    sizes, objectives, traffic options, energy calibrations, or configs
    differing in anything beyond ``global_buffer_bytes``.

    ``hits``/``misses`` accumulate the group-store counters of every
    search run against this instance, for observability (the
    ``sweep-schedule`` CLI reports them).
    """

    __slots__ = ("block_memos", "group_store", "hits", "misses")

    def __init__(self) -> None:
        self.block_memos: dict[str, dict] = {}
        self.group_store: dict = {}
        self.hits = 0
        self.misses = 0

    def block_memo(self, role: str) -> dict:
        """The shared per-block walker memo for one model role."""
        return self.block_memos.setdefault(role, {})


def clear_pricing_caches(net: Network) -> None:
    """Drop every cross-call pricing cache hung off a network's objects.

    Restores the cold-start cost of :func:`make_schedule` — compute
    profiles (:meth:`repro.core.steptime.BlockPricer.shared`) and
    per-block footprint scalars are otherwise remembered by the network
    and block instances.  Benchmarks use this to measure the naive
    per-point sweep loop without cross-point reuse; the structural
    shape caches in :mod:`repro.graph` are *not* cleared (they belong
    to the graph, not to pricing).
    """
    net.__dict__.pop("_pricer_cache", None)
    for block in net.blocks:
        block.__dict__.pop("_space_cache", None)
        block.__dict__.pop("_live_sizes", None)


def _auto_model(
    net: Network,
    n_batch: int,
    word_bytes: int,
    relu_mask: bool,
    layer_reuse_bytes: int,
    objective: str,
    cfg: WaveCoreConfig | None,
    caches: SweepCaches | None = None,
) -> MemoizedCostModel:
    """The memoized exact cost model for one ``mbs-auto`` objective.

    With ``caches``, the walker models' per-block memos and the group
    store are the sweep-shared dicts, so every price computed at one
    buffer point is reusable at the next.
    """
    options = TrafficOptions(word_bytes=word_bytes)
    if caches is None:
        memo = lambda role: {}  # noqa: E731 - throwaway per-model dicts
    else:
        memo = caches.block_memo
    if objective == "latency":
        inner = LatencyCostModel(
            net, n_batch, relu_mask=relu_mask,
            layer_reuse_bytes=layer_reuse_bytes,
            cfg=cfg, options=options, _memo=memo("latency"),
        )
    elif objective == "latency+traffic":
        inner = LexicographicCostModel(
            primary=LatencyCostModel(
                net, n_batch, relu_mask=relu_mask,
                layer_reuse_bytes=layer_reuse_bytes,
                cfg=cfg, options=options, _memo=memo("latency"),
            ),
            secondary=TrafficCostModel(
                net, n_batch, relu_mask=relu_mask,
                layer_reuse_bytes=layer_reuse_bytes,
                options=options, _memo=memo("traffic"),
            ),
        )
    elif objective == "energy":
        inner = EnergyCostModel(
            net, n_batch, relu_mask=relu_mask,
            layer_reuse_bytes=layer_reuse_bytes,
            cfg=cfg, options=options, _memo=memo("energy"),
        )
    else:
        inner = TrafficCostModel(
            net, n_batch, relu_mask=relu_mask,
            layer_reuse_bytes=layer_reuse_bytes,
            options=options, _memo=memo("traffic"),
        )
    return MemoizedCostModel(
        inner, store=None if caches is None else caches.group_store
    )


def _auto_groups(
    net: Network,
    buffer_bytes: int,
    n_batch: int,
    word_bytes: int,
    feas_reuse: list[int],
    relu_mask: bool,
    layer_reuse_bytes: int,
    objective: str = "traffic",
    cfg: WaveCoreConfig | None = None,
    caches: SweepCaches | None = None,
) -> tuple[list[GroupPlan], MemoizedCostModel]:
    """mbs-auto: optimal grouping + per-group mode under the true model.

    Windows are split at blocks that cannot fuse even without
    provisioning; inside each window the adaptive DP partitions blocks
    and picks MBS2-style / MBS1-style / streaming per group, scored by
    the exact model of the chosen objective: the byte-accurate
    :class:`~repro.core.cost.TrafficCostModel` (the same walkers
    :func:`~repro.core.traffic.compute_traffic` runs on the finished
    schedule); ``objective="latency"`` — the simulated-step-time
    :class:`~repro.core.cost.LatencyCostModel` (the same per-layer
    timing :func:`~repro.wavecore.simulator.simulate_step` runs);
    ``objective="energy"`` — the simulated-step-energy
    :class:`~repro.core.cost.EnergyCostModel` (the same per-access
    constants the simulator prices); or ``objective="latency+traffic"``
    — the lexicographic composite whose primary is the *identical*
    latency model (bit-identical seconds, so the optimum's step time
    matches the pure latency objective's) with exact bytes breaking
    ties.

    Returns ``(groups, model)`` — the chosen partition plus the
    memoized model that priced it, so callers can re-price candidates
    (the ``relu_mask="auto"`` selection) without rebuilding caches.
    """
    feas_plain = per_block_sub_batches(
        net, buffer_bytes, n_batch, branch_reuse=False, word_bytes=word_bytes
    )
    if objective in HARDWARE_OBJECTIVES and cfg is None:
        cfg = config_for_policy("mbs-auto", buffer_bytes=buffer_bytes)
    model = _auto_model(
        net, n_batch, word_bytes, relu_mask, layer_reuse_bytes,
        objective, cfg, caches,
    )
    groups: list[GroupPlan] = []
    for seg in split_segments(feas_plain):
        if isinstance(seg, int):
            # Streams in either mode; record the no-provisioning mode the
            # DP priced it under so fig. 4-style reports stay honest.
            groups.append(_spilled_group(seg, n_batch, branch_reuse=False))
            continue
        start, end = seg
        chosen = adaptive_grouping(
            blocks=tuple(range(start, end + 1)),
            feasible_reuse=tuple(feas_reuse[start : end + 1]),
            feasible_noreuse=tuple(feas_plain[start : end + 1]),
            mini_batch=n_batch,
            cost_model=model,
        )
        for g in chosen:
            lo, hi = start + g.start, start + g.end
            if g.branch_reuse is None:
                groups.append(_spilled_group(lo, n_batch, branch_reuse=False))
                continue
            feas = feas_reuse if g.branch_reuse else feas_plain
            groups.append(
                make_group(
                    tuple(range(lo, hi + 1)), g.sub_batch, n_batch, feas,
                    branch_reuse=g.branch_reuse,
                )
            )
    if caches is not None:
        caches.hits += model.hits
        caches.misses += model.misses
    return groups, model


def make_schedule(
    net: Network,
    policy: str,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    mini_batch: int | None = None,
    word_bytes: int = WORD_BYTES,
    objective: str = "traffic",
    cfg: WaveCoreConfig | None = None,
    relu_mask: bool | str | None = None,
    _caches: SweepCaches | None = None,
) -> Schedule:
    """Build the schedule for one of the paper's configurations.

    ``objective`` selects what the adaptive ``mbs-auto`` policy
    minimizes: DRAM bytes (``"traffic"``, the default), simulated step
    seconds (``"latency"``), seconds with bytes breaking exact ties
    (``"latency+traffic"``), or simulated joules (``"energy"``).  The
    fixed policies optimize the paper's closed-form proxy regardless,
    so any objective other than ``"traffic"`` is rejected for them
    rather than silently ignored.  ``cfg`` pins the hardware the
    latency/energy-family objectives price — pass the same config the
    schedule will be simulated on (memory system, double-buffering
    mode); it defaults to the policy's Tab. 3 configuration and is
    rejected for the traffic objective, where it could only mislead.

    ``relu_mask`` overrides the ReLU-masking trick for ``mbs-auto``
    only (the fixed policies' masking is part of the paper's
    configurations): an explicit bool forces it, and ``"auto"`` runs
    the adaptive search under *both* settings and keeps the schedule
    the objective's exact model prices cheaper — never worse than the
    fixed ``relu_mask=True`` default, since that candidate is priced
    (ties keep it).  ``_caches`` threads sweep-shared pricing state;
    use :func:`sweep_schedules` rather than passing it directly.
    """
    policy = policy.lower()
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {OBJECTIVES}"
        )
    if objective != "traffic" and policy != "mbs-auto":
        raise ValueError(
            f"objective {objective!r} requires the adaptive 'mbs-auto' "
            f"policy; {policy!r} optimizes the paper's fixed proxy"
        )
    if cfg is not None and objective not in HARDWARE_OBJECTIVES:
        raise ValueError(
            "cfg only parameterizes the hardware-priced objectives "
            f"{HARDWARE_OBJECTIVES}; the {objective!r} objective does "
            "not price hardware"
        )
    if relu_mask is not None:
        if policy != "mbs-auto":
            raise ValueError(
                "relu_mask is fixed by the paper's configuration for "
                f"{policy!r}; only the adaptive 'mbs-auto' accepts an "
                "override"
            )
        if not (relu_mask == "auto" or isinstance(relu_mask, bool)):
            raise ValueError(
                f"relu_mask must be True, False, or 'auto', got "
                f"{relu_mask!r}"
            )
    n_batch = net.default_mini_batch if mini_batch is None else mini_batch

    branch_reuse = policy in ("il", "mbs2", "mbs2-opt", "mbs-fs", "mbs-auto")
    if relu_mask is None or relu_mask == "auto":
        mask = policy.startswith("mbs")
    else:
        mask = relu_mask
    layer_reuse_bytes = 0 if policy in ("baseline", "archopt") else buffer_bytes

    feasible = per_block_sub_batches(
        net, buffer_bytes, n_batch, branch_reuse, word_bytes
    )

    groups: list[GroupPlan] = []
    if policy in ("baseline", "archopt"):
        groups = [_spilled_group(i, n_batch) for i in range(len(net.blocks))]
    elif policy == "il":
        # Maximal runs of blocks whose *entire mini-batch* live set fits.
        i = 0
        while i < len(net.blocks):
            if feasible[i] >= n_batch:
                j = i
                while j + 1 < len(net.blocks) and feasible[j + 1] >= n_batch:
                    j += 1
                groups.append(
                    make_group(tuple(range(i, j + 1)), n_batch, n_batch, feasible)
                )
                i = j + 1
            else:
                groups.append(_spilled_group(i, n_batch))
                i += 1
    elif policy == "mbs-fs":
        fusable = [s for s in feasible if s > 0]
        s_global = min(fusable) if fusable else 0
        for seg in split_segments(feasible):
            if isinstance(seg, int):
                groups.append(_spilled_group(seg, n_batch))
            else:
                start, end = seg
                groups.append(
                    make_group(
                        tuple(range(start, end + 1)), s_global, n_batch, feasible
                    )
                )
    elif policy == "mbs-auto":
        # ``feasible`` above was computed with branch_reuse=True — reuse
        # it as the Eq. 1/2 profile; _auto_groups adds the plain one.
        # The schedule-environment flags are passed through so the DP's
        # cost model can never diverge from the Schedule it emits.
        # Feasibility does not depend on the masking trick, so the
        # relu_mask="auto" candidates share it and differ only in the
        # DP's pricing.
        masks = (True, False) if relu_mask == "auto" else (mask,)
        best: tuple | None = None
        for candidate_mask in masks:
            groups, model = _auto_groups(
                net, buffer_bytes, n_batch, word_bytes, feasible,
                candidate_mask, layer_reuse_bytes, objective, cfg,
                caches=_caches,
            )
            sched = Schedule(
                policy=policy,
                network=net.name,
                mini_batch=n_batch,
                buffer_bytes=buffer_bytes,
                branch_reuse=branch_reuse,
                relu_mask=candidate_mask,
                groups=tuple(groups),
                layer_reuse_bytes=layer_reuse_bytes,
                objective=objective,
            )
            if len(masks) == 1:
                return sched
            # exact evaluator-grade price of the finished candidate —
            # the same number the property tests compare, so "auto is
            # never worse than fixed True" holds by construction
            cost = model.schedule_cost(sched)
            if best is None or cost < best[0]:
                best = (cost, sched)
        return best[1]
    else:  # mbs1 / mbs2 (+ -opt variants)
        optimizer = exhaustive_grouping if policy.endswith("-opt") else greedy_grouping
        groups = _proxy_groups(net, feasible, n_batch, word_bytes, optimizer)

    return Schedule(
        policy=policy,
        network=net.name,
        mini_batch=n_batch,
        buffer_bytes=buffer_bytes,
        branch_reuse=branch_reuse,
        relu_mask=mask,
        groups=tuple(groups),
        layer_reuse_bytes=layer_reuse_bytes,
        objective=objective,
    )


def sweep_schedules(
    net: Network,
    policy: str,
    buffer_sizes,
    mini_batch: int | None = None,
    word_bytes: int = WORD_BYTES,
    objective: str = "traffic",
    cfg: WaveCoreConfig | None = None,
    relu_mask: bool | str | None = None,
    caches: SweepCaches | None = None,
) -> list[Schedule]:
    """Schedules for every buffer size of a sweep, sharing pricing work.

    Semantically identical to calling :func:`make_schedule` once per
    element of ``buffer_sizes`` (the returned schedules are exactly
    those), but for ``mbs-auto`` the per-buffer searches share one
    :class:`SweepCaches`: the buffer-independent compute profiles, the
    walker models' per-block memos, and the whole-group price store all
    persist across points, so a candidate group priced at one buffer
    size is free at every other where it recurs — adjacent sweep points
    explore mostly identical windows, which is what makes the batch API
    an order of magnitude faster than the naive per-point loop.

    Pass ``caches`` to inspect hit/miss counters afterwards (one is
    created internally otherwise).  ``cfg``, when given, pins the same
    hardware config for every point, matching ``make_schedule``; when
    omitted, each hardware-priced point defaults to its own
    buffer-sized config exactly as the per-point calls would.
    """
    if caches is None and policy.lower() == "mbs-auto":
        caches = SweepCaches()
    return [
        make_schedule(
            net, policy, buffer_bytes, mini_batch, word_bytes,
            objective, cfg, relu_mask, _caches=caches,
        )
        for buffer_bytes in buffer_sizes
    ]
