"""Schedule construction for the paper's evaluation configurations (Tab. 3).

========  ==========================================================
Baseline  conventional layer-by-layer mini-batch propagation
ArchOpt   identical schedule; weight double buffering is a hardware
          property consumed by the timing model, not the scheduler
IL        inter-layer reuse only where a whole mini-batch fits on chip
MBS-FS    fully-serialized MBS: a single sub-batch size for all layers
MBS1      greedy layer grouping, no inter-branch provisioning
MBS2      MBS1 + inter-branch data reuse (Eq. 1 / Eq. 2 footprints)
========  ==========================================================

``mbs1-opt`` / ``mbs2-opt`` swap the greedy merge for the exhaustive DP
(the paper's footnote-1 ablation).
"""
from __future__ import annotations

from repro.core.grouping import (
    GroupingProblem,
    exhaustive_grouping,
    greedy_grouping,
)
from repro.core.schedule import GroupPlan, Schedule, make_group
from repro.core.subbatch import feasible_sub_batch
from repro.graph.network import Network
from repro.types import MIB, WORD_BYTES

POLICIES = ("baseline", "archopt", "il", "mbs-fs", "mbs1", "mbs2",
            "mbs1-opt", "mbs2-opt")

#: Default per-core global buffer (paper Sec. 4.2).
DEFAULT_BUFFER_BYTES = 10 * MIB


def _segments(feasible: list[int]) -> list[tuple[int, int] | int]:
    """Split the block sequence at unfusable blocks (feasible == 0).

    Returns a mix of ``(start, end)`` fusable segments and bare ``int``
    indices for blocks that cannot fit even one sample.
    """
    out: list[tuple[int, int] | int] = []
    start: int | None = None
    for i, s in enumerate(feasible):
        if s <= 0:
            if start is not None:
                out.append((start, i - 1))
                start = None
            out.append(i)
        elif start is None:
            start = i
    if start is not None:
        out.append((start, len(feasible) - 1))
    return out


def _spilled_group(idx: int, mini_batch: int) -> GroupPlan:
    """Singleton group that streams layer-by-layer (conventional flow)."""
    return GroupPlan(
        blocks=(idx,), sub_batch=0, iterations=1, block_fused=(False,)
    )


def make_schedule(
    net: Network,
    policy: str,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    mini_batch: int | None = None,
    word_bytes: int = WORD_BYTES,
) -> Schedule:
    """Build the schedule for one of the paper's configurations."""
    policy = policy.lower()
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    n_batch = net.default_mini_batch if mini_batch is None else mini_batch

    branch_reuse = policy in ("il", "mbs2", "mbs2-opt", "mbs-fs")
    relu_mask = policy.startswith("mbs")

    feasible = [
        feasible_sub_batch(b, buffer_bytes, n_batch, branch_reuse, word_bytes)
        for b in net.blocks
    ]

    groups: list[GroupPlan] = []
    if policy in ("baseline", "archopt"):
        groups = [_spilled_group(i, n_batch) for i in range(len(net.blocks))]
    elif policy == "il":
        # Maximal runs of blocks whose *entire mini-batch* live set fits.
        i = 0
        while i < len(net.blocks):
            if feasible[i] >= n_batch:
                j = i
                while j + 1 < len(net.blocks) and feasible[j + 1] >= n_batch:
                    j += 1
                groups.append(
                    make_group(tuple(range(i, j + 1)), n_batch, n_batch, feasible)
                )
                i = j + 1
            else:
                groups.append(_spilled_group(i, n_batch))
                i += 1
    elif policy == "mbs-fs":
        fusable = [s for s in feasible if s > 0]
        s_global = min(fusable) if fusable else 0
        for seg in _segments(feasible):
            if isinstance(seg, int):
                groups.append(_spilled_group(seg, n_batch))
            else:
                start, end = seg
                groups.append(
                    make_group(
                        tuple(range(start, end + 1)), s_global, n_batch, feasible
                    )
                )
    else:  # mbs1 / mbs2 (+ -opt variants)
        optimizer = exhaustive_grouping if policy.endswith("-opt") else greedy_grouping
        for seg in _segments(feasible):
            if isinstance(seg, int):
                groups.append(_spilled_group(seg, n_batch))
                continue
            start, end = seg
            problem = GroupingProblem(
                feasible=tuple(feasible[start : end + 1]),
                weight_bytes=tuple(
                    sum(l.param_bytes(word_bytes) for l in b.all_layers())
                    for b in net.blocks[start : end + 1]
                ),
                out_bytes=tuple(
                    b.out_shape.bytes(word_bytes)
                    for b in net.blocks[start : end + 1]
                ),
                mini_batch=n_batch,
            )
            for g_start, g_end in optimizer(problem):
                lo, hi = start + g_start, start + g_end
                s_group = min(feasible[lo : hi + 1])
                groups.append(
                    make_group(tuple(range(lo, hi + 1)), s_group, n_batch, feasible)
                )

    return Schedule(
        policy=policy,
        network=net.name,
        mini_batch=n_batch,
        buffer_bytes=buffer_bytes,
        branch_reuse=branch_reuse,
        relu_mask=relu_mask,
        groups=tuple(groups),
        layer_reuse_bytes=0 if policy in ("baseline", "archopt") else buffer_bytes,
    )
