"""Layer grouping: balancing intra-layer weight reuse with inter-layer
activation reuse (paper Sec. 3, "Layer Grouping Optimizes Reuse").

A :class:`GroupingProblem` scores a partition of a contiguous block
window into groups through an injected :class:`repro.core.cost.CostModel`
— the paper's closed-form proxy (``ProxyCostModel``, the ``mbs1``/``mbs2``
objective) or the byte-accurate ``TrafficCostModel`` that the adaptive
``mbs-auto`` policy optimizes.  The optimizers only ever charge
*interior* boundaries of the window: every partition pays the window's
outer edges equally, so they cancel out of the comparison.

Greedy merging starts from groups of equal iteration count (the paper's
initial grouping) and repeatedly applies the best cost-reducing merge of
adjacent groups.  ``exhaustive_grouping`` solves the same objective
optimally with an O(n²) dynamic program (the paper's footnote 1 reports
the greedy gap at roughly 1 %).
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import CostModel
from repro.types import ceil_div


def split_segments(feasible: list[int]) -> list[tuple[int, int] | int]:
    """Split the block sequence at unfusable blocks (feasible == 0).

    Returns a mix of ``(start, end)`` fusable segments (inclusive index
    ranges) and bare ``int`` indices for blocks that cannot fit even one
    sample; those must stream layer-by-layer and are never grouped.
    """
    out: list[tuple[int, int] | int] = []
    start: int | None = None
    for i, s in enumerate(feasible):
        if s <= 0:
            if start is not None:
                out.append((start, i - 1))
                start = None
            out.append(i)
        elif start is None:
            start = i
    if start is not None:
        out.append((start, len(feasible) - 1))
    return out


@dataclass(frozen=True)
class GroupingProblem:
    """One contiguous fusable window of a network, ready to optimize.

    ``feasible[i]``  — max sub-batch of window block *i* (>= 1;
                       unfusable blocks must be split out by the caller,
                       see :func:`split_segments`);
    ``mini_batch``   — samples per training step;
    ``cost_model``   — scores candidate groups and boundaries;
    ``blocks``       — absolute network indices of the window (defaults
                       to ``0..len(feasible)-1`` for standalone use);
    ``branch_reuse`` — provisioning mode the candidate groups run under,
                       forwarded to the cost model.

    Method indices (``start``/``end``/``idx``) are *window-relative*.
    """

    feasible: tuple[int, ...]
    mini_batch: int
    cost_model: CostModel
    blocks: tuple[int, ...] | None = None
    branch_reuse: bool = False

    def __post_init__(self) -> None:
        if self.blocks is None:
            object.__setattr__(
                self, "blocks", tuple(range(len(self.feasible)))
            )
        if len(self.blocks) != len(self.feasible):
            raise ValueError("blocks must align with feasible")
        if any(s <= 0 for s in self.feasible):
            raise ValueError("all blocks must admit a sub-batch of at least 1")
        # Memo for group_cost: greedy re-scores the same pairs every
        # round and the DP probes O(n²) windows; the traffic model walks
        # every member layer per probe, so cache by (start, end).
        object.__setattr__(self, "_group_cost_memo", {})

    def sub_batch(self, start: int, end: int) -> int:
        """Sub-batch if blocks ``start..end`` (inclusive) form a group."""
        return min(self.feasible[start : end + 1])

    def iterations(self, start: int, end: int) -> int:
        """Iteration count of the candidate group ``start..end``."""
        return ceil_div(self.mini_batch, self.sub_batch(start, end))

    def group_cost(self, start: int, end: int) -> float:
        """Cost of one candidate group under the injected model."""
        memo = self._group_cost_memo
        cost = memo.get((start, end))
        if cost is None:
            cost = memo[(start, end)] = self.cost_model.group_cost(
                self.blocks[start : end + 1],
                self.sub_batch(start, end),
                self.branch_reuse,
            )
        return cost

    def boundary_cost(self, idx: int) -> float:
        """Cost of an off-chip boundary after window block ``idx``."""
        if idx >= len(self.feasible) - 1:
            return 0.0  # the window's outer edge is not a partition choice
        return self.cost_model.boundary_cost(self.blocks[idx],
                                             self.branch_reuse)

    def partition_cost(self, groups: list[tuple[int, int]]) -> float:
        total = 0.0
        for start, end in groups:
            total += self.group_cost(start, end)
            total += self.boundary_cost(end)
        if groups:
            total -= self.boundary_cost(groups[-1][1])  # final output
        return total


def initial_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Group adjacent blocks that need the same iteration count (Fig. 4)."""
    n = len(problem.feasible)
    groups: list[tuple[int, int]] = []
    start = 0
    for i in range(1, n):
        if problem.iterations(i, i) != problem.iterations(start, start):
            groups.append((start, i - 1))
            start = i
    groups.append((start, n - 1))
    return groups


def greedy_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Greedy merge of adjacent groups while total cost decreases."""
    groups = initial_grouping(problem)
    while len(groups) > 1:
        best_gain = 0.0
        best_idx = -1
        for i in range(len(groups) - 1):
            s0, e0 = groups[i]
            s1, e1 = groups[i + 1]
            before = (
                problem.group_cost(s0, e0)
                + problem.group_cost(s1, e1)
                + problem.boundary_cost(e0)
            )
            after = problem.group_cost(s0, e1)
            gain = before - after
            if gain > best_gain:
                best_gain = gain
                best_idx = i
        if best_idx < 0:
            break
        s0, _ = groups[best_idx]
        _, e1 = groups[best_idx + 1]
        groups[best_idx : best_idx + 2] = [(s0, e1)]
    return groups


@dataclass(frozen=True)
class AdaptiveGroup:
    """One group chosen by :func:`adaptive_grouping`.

    ``branch_reuse is None`` denotes a conventional layerwise-streaming
    singleton (``sub_batch == 0``); otherwise the group fuses at
    ``sub_batch`` under the given provisioning mode.
    """

    start: int  # window-relative, inclusive
    end: int
    branch_reuse: bool | None
    sub_batch: int


def adaptive_grouping(
    blocks: tuple[int, ...],
    feasible_reuse: tuple[int, ...],
    feasible_noreuse: tuple[int, ...],
    mini_batch: int,
    cost_model: CostModel,
) -> list[AdaptiveGroup]:
    """Optimal partition of one window with a per-group provisioning mode.

    Extends the exhaustive DP with a mode choice per group: fused with
    inter-branch provisioning (MBS2-style, requires every member's
    ``feasible_reuse >= 1``), fused without (MBS1-style), or a layerwise
    streaming singleton.  Because the search space contains every
    partition the fixed ``mbs1``/``mbs2`` policies can emit — including
    their spilled singletons — the optimum under an *exact* cost model
    (:class:`repro.core.cost.TrafficCostModel`) is never costlier than
    either, which is what fixes the tight-buffer MBS2 regression by
    construction.

    ``blocks`` are the window's absolute network indices; every block
    must satisfy ``feasible_noreuse >= 1`` (callers split unfusable
    blocks out via :func:`split_segments` first).
    """
    n = len(blocks)
    if not (len(feasible_reuse) == len(feasible_noreuse) == n):
        raise ValueError("feasibility arrays must align with blocks")
    if any(s <= 0 for s in feasible_noreuse):
        raise ValueError("window blocks must admit a no-reuse sub-batch >= 1")

    best = [0.0] * (n + 1)  # best[j] = min cost of covering blocks 0..j-1
    choice: list[AdaptiveGroup | None] = [None] * (n + 1)
    for j in range(1, n + 1):
        best[j] = float("inf")
        interior = j - 1 < n - 1  # the window's outer edge is free
        stream_cost = best[j - 1] + cost_model.group_cost(
            blocks[j - 1 : j], 0, False, block_fused=(False,)
        )
        if interior:
            stream_cost += cost_model.boundary_cost(blocks[j - 1], False)
        if stream_cost < best[j]:
            best[j] = stream_cost
            choice[j] = AdaptiveGroup(j - 1, j - 1, None, 0)
        min_r = min_nr = mini_batch
        for i in range(j - 1, -1, -1):
            min_r = min(min_r, feasible_reuse[i])
            min_nr = min(min_nr, feasible_noreuse[i])
            window = blocks[i:j]
            for reuse, sub in ((False, min_nr), (True, min_r)):
                if sub <= 0:
                    continue  # some member cannot fuse under this mode
                cost = best[i] + cost_model.group_cost(window, sub, reuse)
                if interior:
                    cost += cost_model.boundary_cost(blocks[j - 1], reuse)
                if cost < best[j]:
                    best[j] = cost
                    choice[j] = AdaptiveGroup(i, j - 1, reuse, sub)

    groups: list[AdaptiveGroup] = []
    j = n
    while j > 0:
        g = choice[j]
        groups.append(g)
        j = g.start
    groups.reverse()
    return groups


def exhaustive_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Optimal contiguous partition under the same cost model (O(n²) DP)."""
    n = len(problem.feasible)
    best = [0.0] * (n + 1)  # best[j] = min cost of covering blocks 0..j-1
    choice = [0] * (n + 1)
    for j in range(1, n + 1):
        best[j] = float("inf")
        for i in range(j):
            cost = best[i] + problem.group_cost(i, j - 1)
            if j - 1 < n - 1:
                cost += problem.boundary_cost(j - 1)
            if cost < best[j]:
                best[j] = cost
                choice[j] = i
    groups: list[tuple[int, int]] = []
    j = n
    while j > 0:
        i = choice[j]
        groups.append((i, j - 1))
        j = i
    groups.reverse()
    return groups
