"""Layer grouping: balancing intra-layer weight reuse with inter-layer
activation reuse (paper Sec. 3, "Layer Grouping Optimizes Reuse").

A :class:`GroupingProblem` scores a partition of a contiguous block
window into groups through an injected :class:`repro.core.cost.CostModel`
— the paper's closed-form proxy (``ProxyCostModel``, the ``mbs1``/``mbs2``
objective) or the byte-accurate ``TrafficCostModel`` that the adaptive
``mbs-auto`` policy optimizes.  The optimizers only ever charge
*interior* boundaries of the window: every partition pays the window's
outer edges equally, so they cancel out of the comparison.

Greedy merging starts from groups of equal iteration count (the paper's
initial grouping) and repeatedly applies the best cost-reducing merge of
adjacent groups.  ``exhaustive_grouping`` solves the same objective
optimally with an O(n²) dynamic program (the paper's footnote 1 reports
the greedy gap at roughly 1 %).
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import CostModel, LexCost
from repro.types import ceil_div


def split_segments(feasible: list[int]) -> list[tuple[int, int] | int]:
    """Split the block sequence at unfusable blocks (feasible == 0).

    Returns a mix of ``(start, end)`` fusable segments (inclusive index
    ranges) and bare ``int`` indices for blocks that cannot fit even one
    sample; those must stream layer-by-layer and are never grouped.
    """
    out: list[tuple[int, int] | int] = []
    start: int | None = None
    for i, s in enumerate(feasible):
        if s <= 0:
            if start is not None:
                out.append((start, i - 1))
                start = None
            out.append(i)
        elif start is None:
            start = i
    if start is not None:
        out.append((start, len(feasible) - 1))
    return out


@dataclass(frozen=True)
class GroupingProblem:
    """One contiguous fusable window of a network, ready to optimize.

    ``feasible[i]``  — max sub-batch of window block *i* (>= 1;
                       unfusable blocks must be split out by the caller,
                       see :func:`split_segments`);
    ``mini_batch``   — samples per training step;
    ``cost_model``   — scores candidate groups and boundaries;
    ``blocks``       — absolute network indices of the window (defaults
                       to ``0..len(feasible)-1`` for standalone use);
    ``branch_reuse`` — provisioning mode the candidate groups run under,
                       forwarded to the cost model.

    Method indices (``start``/``end``/``idx``) are *window-relative*.
    """

    feasible: tuple[int, ...]
    mini_batch: int
    cost_model: CostModel
    blocks: tuple[int, ...] | None = None
    branch_reuse: bool = False

    def __post_init__(self) -> None:
        if self.blocks is None:
            object.__setattr__(
                self, "blocks", tuple(range(len(self.feasible)))
            )
        if len(self.blocks) != len(self.feasible):
            raise ValueError("blocks must align with feasible")
        if any(s <= 0 for s in self.feasible):
            raise ValueError("all blocks must admit a sub-batch of at least 1")
        # Memo for group_cost: greedy re-scores the same pairs every
        # round and the DP probes O(n²) windows; the traffic model walks
        # every member layer per probe, so cache by (start, end).
        object.__setattr__(self, "_group_cost_memo", {})

    def sub_batch(self, start: int, end: int) -> int:
        """Sub-batch if blocks ``start..end`` (inclusive) form a group."""
        return min(self.feasible[start : end + 1])

    def iterations(self, start: int, end: int) -> int:
        """Iteration count of the candidate group ``start..end``."""
        return ceil_div(self.mini_batch, self.sub_batch(start, end))

    def group_cost(self, start: int, end: int) -> float:
        """Cost of one candidate group under the injected model."""
        memo = self._group_cost_memo
        cost = memo.get((start, end))
        if cost is None:
            cost = memo[(start, end)] = self.cost_model.group_cost(
                self.blocks[start : end + 1],
                self.sub_batch(start, end),
                self.branch_reuse,
            )
        return cost

    def boundary_cost(self, idx: int) -> float:
        """Cost of an off-chip boundary after window block ``idx``."""
        if idx >= len(self.feasible) - 1:
            return 0.0  # the window's outer edge is not a partition choice
        return self.cost_model.boundary_cost(self.blocks[idx],
                                             self.branch_reuse)

    def partition_cost(self, groups: list[tuple[int, int]]) -> float:
        total = 0.0
        for start, end in groups:
            total += self.group_cost(start, end)
            total += self.boundary_cost(end)
        if groups:
            total -= self.boundary_cost(groups[-1][1])  # final output
        return total


def initial_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Group adjacent blocks that need the same iteration count (Fig. 4)."""
    n = len(problem.feasible)
    groups: list[tuple[int, int]] = []
    start = 0
    for i in range(1, n):
        if problem.iterations(i, i) != problem.iterations(start, start):
            groups.append((start, i - 1))
            start = i
    groups.append((start, n - 1))
    return groups


def greedy_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Greedy merge of adjacent groups while total cost decreases."""
    groups = initial_grouping(problem)
    while len(groups) > 1:
        best_gain = 0.0
        best_idx = -1
        for i in range(len(groups) - 1):
            s0, e0 = groups[i]
            s1, e1 = groups[i + 1]
            before = (
                problem.group_cost(s0, e0)
                + problem.group_cost(s1, e1)
                + problem.boundary_cost(e0)
            )
            after = problem.group_cost(s0, e1)
            gain = before - after
            if gain > best_gain:
                best_gain = gain
                best_idx = i
        if best_idx < 0:
            break
        s0, _ = groups[best_idx]
        _, e1 = groups[best_idx + 1]
        groups[best_idx : best_idx + 2] = [(s0, e1)]
    return groups


@dataclass(frozen=True)
class AdaptiveGroup:
    """One group chosen by :func:`adaptive_grouping`.

    ``branch_reuse is None`` denotes a conventional layerwise-streaming
    singleton (``sub_batch == 0``); otherwise the group fuses at
    ``sub_batch`` under the given provisioning mode.
    """

    start: int  # window-relative, inclusive
    end: int
    branch_reuse: bool | None
    sub_batch: int


def _achievable_subs(
    feasible: tuple[int, ...], b: int, mini_batch: int
) -> tuple[int, ...]:
    """Every sub-batch the DP can assign block ``b`` in fused candidates.

    A candidate window ``[i, j)`` containing ``b`` fuses at
    ``min(mini_batch, feasible[i:j])``; that value always equals either
    the prefix running-min ending at ``b`` or the suffix running-min
    starting at ``b``, so the union of the two chains (stopping at the
    first infeasible member, which kills every wider window in that
    direction) is exactly the achievable set.
    """
    subs = set()
    m = mini_batch
    for i in range(b, -1, -1):
        m = min(m, feasible[i])
        if m <= 0:
            break
        subs.add(m)
    m = mini_batch
    for i in range(b, len(feasible)):
        m = min(m, feasible[i])
        if m <= 0:
            break
        subs.add(m)
    return tuple(sorted(subs))


#: Early-exit margin for float-valued costs.  Floors, prefix sums, and
#: the DP's own accumulations each carry O(n) float roundings (relative
#: ~1e-14); requiring the bound to beat the incumbent by 1e-9 relative
#: before skipping makes a rounding-induced wrong skip impossible in
#: practice while pruning everything that is not a near-exact tie.
_PRUNE_REL_SLACK = 1e-9


def _prunes(bound, best) -> bool:
    """Conservative ``bound >= best`` for the DP's early exit.

    Integer costs compare exactly; float costs must exceed the incumbent
    by a relative margin before candidates are skipped (see
    ``_PRUNE_REL_SLACK``).  Lexicographic costs compare primaries only —
    a primary strictly above the incumbent's dominates regardless of the
    secondary, and primary ties are simply not pruned.
    """
    if isinstance(bound, LexCost):
        bound = bound.primary
    if isinstance(best, LexCost):
        best = best.primary
    if isinstance(bound, int) and isinstance(best, int):
        return bound >= best
    return bound >= best + _PRUNE_REL_SLACK * abs(best)


def adaptive_grouping(
    blocks: tuple[int, ...],
    feasible_reuse: tuple[int, ...],
    feasible_noreuse: tuple[int, ...],
    mini_batch: int,
    cost_model: CostModel,
    prune: bool = True,
) -> list[AdaptiveGroup]:
    """Optimal partition of one window with a per-group provisioning mode.

    Extends the exhaustive DP with a mode choice per group: fused with
    inter-branch provisioning (MBS2-style, requires every member's
    ``feasible_reuse >= 1``), fused without (MBS1-style), or a layerwise
    streaming singleton.  Because the search space contains every
    partition the fixed ``mbs1``/``mbs2`` policies can emit — including
    their spilled singletons — the optimum under an *exact* cost model
    (:class:`repro.core.cost.TrafficCostModel`) is never costlier than
    either, which is what fixes the tight-buffer MBS2 regression by
    construction.

    ``blocks`` are the window's absolute network indices; every block
    must satisfy ``feasible_noreuse >= 1`` (callers split unfusable
    blocks out via :func:`split_segments` first).

    With ``prune=True`` and a cost model exposing ``block_floor`` (an
    admissible per-block lower bound on fused-member prices; all
    walker-backed models do), the inner scan keeps prefix sums of the
    floors and exits early once even the most optimistic completion of
    the remaining candidates cannot beat the incumbent: every candidate
    ending the prefix at ``i' <= i`` costs at least ``best[i'] +
    (F[j] - F[i'])``, so ``min(best[i'] - F[i']) + F[j]`` bounds them
    all.  Skipped candidates are provably no better than the incumbent
    (floats carry a safety margin, ints compare exactly), so the chosen
    partition is identical to the unpruned scan's — asserted zoo-wide
    in the test suite.
    """
    n = len(blocks)
    if not (len(feasible_reuse) == len(feasible_noreuse) == n):
        raise ValueError("feasibility arrays must align with blocks")
    if any(s <= 0 for s in feasible_noreuse):
        raise ValueError("window blocks must admit a no-reuse sub-batch >= 1")

    floors = None
    floor_of = getattr(cost_model, "block_floor", None) if prune else None
    if floor_of is not None and n > 1:
        floors = []
        for b in range(n):
            f = floor_of(
                blocks[b],
                _achievable_subs(feasible_reuse, b, mini_batch),
                _achievable_subs(feasible_noreuse, b, mini_batch),
            )
            if f is None:
                floors = None  # model cannot bound this block: no pruning
                break
            floors.append(f)
    if floors is not None:
        zero = floors[0] - floors[0]  # cost-typed zero (LexCost-safe)
        prefix = [zero] * (n + 1)  # prefix[k] = floors[0] + .. + floors[k-1]
        for b in range(n):
            prefix[b + 1] = prefix[b] + floors[b]
        # min_slack[i] = min over i' <= i of (best[i'] - prefix[i'])
        min_slack = [zero] * (n + 1)

    best = [0.0] * (n + 1)  # best[j] = min cost of covering blocks 0..j-1
    choice: list[AdaptiveGroup | None] = [None] * (n + 1)
    for j in range(1, n + 1):
        best[j] = float("inf")
        interior = j - 1 < n - 1  # the window's outer edge is free
        stream_cost = best[j - 1] + cost_model.group_cost(
            blocks[j - 1 : j], 0, False, block_fused=(False,)
        )
        if interior:
            stream_cost += cost_model.boundary_cost(blocks[j - 1], False)
        if stream_cost < best[j]:
            best[j] = stream_cost
            choice[j] = AdaptiveGroup(j - 1, j - 1, None, 0)
        min_r = min_nr = mini_batch
        for i in range(j - 1, -1, -1):
            if floors is not None and _prunes(
                min_slack[i] + prefix[j], best[j]
            ):
                break  # no candidate ending a prefix at <= i can win
            min_r = min(min_r, feasible_reuse[i])
            min_nr = min(min_nr, feasible_noreuse[i])
            window = blocks[i:j]
            for reuse, sub in ((False, min_nr), (True, min_r)):
                if sub <= 0:
                    continue  # some member cannot fuse under this mode
                cost = best[i] + cost_model.group_cost(window, sub, reuse)
                if interior:
                    cost += cost_model.boundary_cost(blocks[j - 1], reuse)
                if cost < best[j]:
                    best[j] = cost
                    choice[j] = AdaptiveGroup(i, j - 1, reuse, sub)
        if floors is not None:
            slack = best[j] - prefix[j]
            min_slack[j] = (
                slack if slack < min_slack[j - 1] else min_slack[j - 1]
            )

    groups: list[AdaptiveGroup] = []
    j = n
    while j > 0:
        g = choice[j]
        # every best[j] was finalized through at least the streaming
        # candidate, so the backtrack can never meet an unset choice
        assert g is not None, f"adaptive DP left no choice at prefix {j}"
        groups.append(g)
        j = g.start
    groups.reverse()
    return groups


def exhaustive_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Optimal contiguous partition under the same cost model (O(n²) DP)."""
    n = len(problem.feasible)
    best = [0.0] * (n + 1)  # best[j] = min cost of covering blocks 0..j-1
    choice = [0] * (n + 1)
    for j in range(1, n + 1):
        best[j] = float("inf")
        for i in range(j):
            cost = best[i] + problem.group_cost(i, j - 1)
            if j - 1 < n - 1:
                cost += problem.boundary_cost(j - 1)
            if cost < best[j]:
                best[j] = cost
                choice[j] = i
    groups: list[tuple[int, int]] = []
    j = n
    while j > 0:
        i = choice[j]
        groups.append((i, j - 1))
        j = i
    groups.reverse()
    return groups
