"""Layer grouping: balancing intra-layer weight reuse with inter-layer
activation reuse (paper Sec. 3, "Layer Grouping Optimizes Reuse").

The cost model scores a partition of the block sequence into contiguous
groups by the traffic components that actually depend on the grouping:

* weight streaming — a group iterating ``I`` times reads every member
  weight ``I`` times in forward and ``I`` times for the backward data
  gradient, and touches the weight-gradient partial sums ``2I − 1`` times
  (``I`` writes, ``I − 1`` re-reads);
* group boundaries — an off-chip boundary costs one forward re-read of
  the boundary tensor plus a backward gradient write and read
  (the forward *write* is free: the tensor is checkpointed for back
  propagation regardless).

Greedy merging starts from groups of equal iteration count (the paper's
initial grouping) and repeatedly applies the best cost-reducing merge of
adjacent groups.  ``exhaustive_grouping`` solves the same objective
optimally with an O(n²) dynamic program (the paper's footnote 1 reports
the gap at roughly 1 %).
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.types import ceil_div


@dataclass(frozen=True)
class GroupingProblem:
    """Arrays describing one network for the grouping optimizer.

    ``feasible[i]``   — max sub-batch of block *i* (>= 1; unfusable blocks
                        must be split out by the caller before grouping);
    ``weight_bytes[i]`` — trainable parameter bytes of block *i*;
    ``out_bytes[i]``  — per-sample bytes of block *i*'s output tensor;
    ``mini_batch``    — samples per training step.
    """

    feasible: tuple[int, ...]
    weight_bytes: tuple[int, ...]
    out_bytes: tuple[int, ...]
    mini_batch: int

    def __post_init__(self) -> None:
        n = len(self.feasible)
        if not (len(self.weight_bytes) == len(self.out_bytes) == n):
            raise ValueError("problem arrays must have equal length")
        if any(s <= 0 for s in self.feasible):
            raise ValueError("all blocks must admit a sub-batch of at least 1")

    def iterations(self, start: int, end: int) -> int:
        """Iteration count if blocks ``start..end`` (inclusive) form a group."""
        s = min(self.feasible[start : end + 1])
        return ceil_div(self.mini_batch, s)

    def group_cost(self, start: int, end: int) -> float:
        """Weight-streaming cost of one candidate group."""
        iters = self.iterations(start, end)
        weights = sum(self.weight_bytes[start : end + 1])
        return weights * (4 * iters - 1)

    def boundary_cost(self, idx: int) -> float:
        """Cost of an off-chip boundary after block ``idx``."""
        if idx >= len(self.out_bytes) - 1:
            return 0.0  # the network output is not an inter-group boundary
        return 3.0 * self.mini_batch * self.out_bytes[idx]

    def partition_cost(self, groups: list[tuple[int, int]]) -> float:
        total = 0.0
        for start, end in groups:
            total += self.group_cost(start, end)
            total += self.boundary_cost(end)
        if groups:
            total -= self.boundary_cost(groups[-1][1])  # final output
        return total


def initial_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Group adjacent blocks that need the same iteration count (Fig. 4)."""
    n = len(problem.feasible)
    groups: list[tuple[int, int]] = []
    start = 0
    for i in range(1, n):
        if problem.iterations(i, i) != problem.iterations(start, start):
            groups.append((start, i - 1))
            start = i
    groups.append((start, n - 1))
    return groups


def greedy_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Greedy merge of adjacent groups while total cost decreases."""
    groups = initial_grouping(problem)
    while len(groups) > 1:
        best_gain = 0.0
        best_idx = -1
        for i in range(len(groups) - 1):
            s0, e0 = groups[i]
            s1, e1 = groups[i + 1]
            before = (
                problem.group_cost(s0, e0)
                + problem.group_cost(s1, e1)
                + problem.boundary_cost(e0)
            )
            after = problem.group_cost(s0, e1)
            gain = before - after
            if gain > best_gain:
                best_gain = gain
                best_idx = i
        if best_idx < 0:
            break
        s0, _ = groups[best_idx]
        _, e1 = groups[best_idx + 1]
        groups[best_idx : best_idx + 2] = [(s0, e1)]
    return groups


def exhaustive_grouping(problem: GroupingProblem) -> list[tuple[int, int]]:
    """Optimal contiguous partition under the same cost model (O(n²) DP)."""
    n = len(problem.feasible)
    best = [0.0] * (n + 1)  # best[j] = min cost of covering blocks 0..j-1
    choice = [0] * (n + 1)
    for j in range(1, n + 1):
        best[j] = float("inf")
        for i in range(j):
            cost = best[i] + problem.group_cost(i, j - 1)
            if j - 1 < n - 1:
                cost += problem.boundary_cost(j - 1)
            if cost < best[j]:
                best[j] = cost
                choice[j] = i
    groups: list[tuple[int, int]] = []
    j = n
    while j > 0:
        i = choice[j]
        groups.append((i, j - 1))
        j = i
    groups.reverse()
    return groups
