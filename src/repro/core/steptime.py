"""Simulated-step-time bridge between the scheduler and WaveCore timing.

The timing contract (paper Sec. 4.2) prices a layer at ``max(compute,
DRAM)``: local buffers are double-buffered, so a layer's off-chip
transfers overlap its computation, and with the per-PE second weight
register (ArchOpt, Fig. 8) each GEMM wave's weight fill also hides
under the previous wave's streaming.  Step time is the sum of layer
times in dependency order.

Crucially, a block's simulated time depends only on the block itself,
network-structural facts, and its owning group's facts — sub-batch,
iteration count, edge on-chip flags, provisioning mode — exactly the
locality that lets :class:`repro.core.cost.TrafficCostModel` decompose
DRAM bytes over groups.  This module exploits the same locality for
*seconds*: :func:`block_step_time` prices one block under any
schedule-like view by running the very traffic walkers and per-layer
timing the simulator runs, and :func:`schedule_step_time` accumulates
those block times in the simulator's own association, so

```python
schedule_step_time(net, sched, cfg) == simulate_step(net, sched, cfg).time_s
```

holds *bit-for-bit* (asserted zoo-wide in ``tests/test_core_steptime.py``).
That exactness is what gives the latency-objective ``mbs-auto`` its
dominance guarantee: the grouping DP optimizes the same number the
evaluator reports.

Weight double buffering is honored through the injected
:class:`~repro.wavecore.config.WaveCoreConfig`: with it on, a GEMM wave
costs ``max(m_t, k)`` cycles instead of ``m_t + k``, which shifts
conv/FC layers toward memory-boundness — extra weight re-streaming from
a smaller sub-batch may then be free in *time* while still costing
*bytes*, which is why the latency- and traffic-optimal schedules
genuinely diverge on tight buffers.
"""
from __future__ import annotations

from repro.core.schedule import Schedule
from repro.core.traffic import TrafficOptions, block_traffic
from repro.graph.network import Network
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.timing import attribute_block_dram, block_layer_timings


def block_step_time(
    net: Network,
    sched_like,
    idx: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    options: TrafficOptions | None = None,
    unlimited_bandwidth: bool = False,
) -> float:
    """Simulated time of block ``idx`` alone under a schedule-like view.

    ``sched_like`` may be any object exposing the Schedule query surface
    the traffic walkers consume (``mini_batch``, ``relu_mask``,
    ``layer_reuse_bytes``, ``iterations_of_block``, ``block_fused``,
    ``boundary_on_chip``, ``branch_reuse_of``) — the cost model passes a
    single-group view.  ``sub_batch`` is the block's *effective*
    sub-batch: 0 when it streams layerwise (unfused), the owning group's
    sub-batch otherwise.

    The per-layer accumulation order matches ``simulate_step`` exactly,
    so these block times sum to the simulated step time bit-for-bit.
    """
    traffic = block_traffic(net, sched_like, idx, options)
    dram_map = attribute_block_dram(net.blocks[idx], traffic.records)
    total = 0.0
    for lt in block_layer_timings(
        net, idx, sched_like.mini_batch, sub_batch, cfg,
        lambda name, phase: dram_map.get((name, phase), 0),
        unlimited_bandwidth=unlimited_bandwidth,
    ):
        total += lt.time_s
    return total


def schedule_step_time(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig | None = None,
    options: TrafficOptions | None = None,
    unlimited_bandwidth: bool = False,
) -> float:
    """Step time of a full schedule from per-block prices.

    Equals :func:`repro.wavecore.simulator.step_time` (and therefore
    ``simulate_step(...).time_s``) exactly — same walkers, same per-layer
    timing, same float association.
    """
    if sched.num_blocks != len(net.blocks):
        raise ValueError(
            f"schedule covers {sched.num_blocks} blocks, network has "
            f"{len(net.blocks)}"
        )
    if cfg is None:
        cfg = config_for_policy(sched.policy)
    total = 0.0
    for idx in range(len(net.blocks)):
        group = sched.group_of_block(idx)
        sub_batch = group.sub_batch if sched.block_fused(idx) else 0
        total += block_step_time(
            net, sched, idx, sub_batch, cfg, options,
            unlimited_bandwidth=unlimited_bandwidth,
        )
    return total
