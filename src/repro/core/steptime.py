"""Simulated-step-time bridge between the scheduler and WaveCore timing.

The timing contract (paper Sec. 4.2) prices a layer at ``max(compute,
DRAM)``: local buffers are double-buffered, so a layer's off-chip
transfers overlap its computation, and with the per-PE second weight
register (ArchOpt, Fig. 8) each GEMM wave's weight fill also hides
under the previous wave's streaming.  Step time is the sum of layer
times in dependency order.

Crucially, a block's simulated time depends only on the block itself,
network-structural facts, and its owning group's facts — sub-batch,
iteration count, edge on-chip flags, provisioning mode — exactly the
locality that lets :class:`repro.core.cost.TrafficCostModel` decompose
DRAM bytes over groups.  This module exploits the same locality for
*seconds*: :func:`block_step_time` prices one block under any
schedule-like view by running the very traffic walkers and per-layer
timing the simulator runs, and :func:`schedule_step_time` accumulates
those block times in the simulator's own association, so

```python
schedule_step_time(net, sched, cfg) == simulate_step(net, sched, cfg).time_s
```

holds *bit-for-bit* (asserted zoo-wide in ``tests/test_core_steptime.py``).
That exactness is what gives the latency-objective ``mbs-auto`` its
dominance guarantee: the grouping DP optimizes the same number the
evaluator reports.

Weight double buffering is honored through the injected
:class:`~repro.wavecore.config.WaveCoreConfig`: with it on, a GEMM wave
costs ``max(m_t, k)`` cycles instead of ``m_t + k``, which shifts
conv/FC layers toward memory-boundness — extra weight re-streaming from
a smaller sub-batch may then be free in *time* while still costing
*bytes*, which is why the latency- and traffic-optimal schedules
genuinely diverge on tight buffers.
"""
from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.schedule import Schedule
from repro.core.traffic import (
    Phase,
    TrafficOptions,
    block_traffic,
    walk_block_traffic,
)
from repro.graph.network import Network
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.timing import (
    attribute_block_dram,
    block_compute_profile,
    block_gbuf_bytes,
    block_layer_timings,
)


class _DramRowIndex:
    """Resolve raw traffic-record names to per-(layer, phase) row slots.

    Encodes :func:`repro.wavecore.timing.attribute_block_dram`'s
    resolution rules (real layer name / ``<layer>.out`` / block-level
    markers) as a memoized row lookup, with rows ordered exactly like
    :func:`block_compute_profile` so the dram and compute vectors align.
    """

    __slots__ = ("_names", "_first", "_last", "_by_phase", "n_rows")

    def __init__(self, block) -> None:
        layers = block.all_layers()
        self._names = {l.name for l in layers}
        self._first = layers[0].name
        self._last = layers[-1].name
        # one raw-name -> row cache per phase: the hot `row` lookup then
        # hashes a plain string instead of a (str, enum) tuple
        self._by_phase: dict[Phase, dict[str, int]] = {}
        i = 0
        for phase in (Phase.FWD, Phase.BWD):
            rows = self._by_phase[phase] = {}
            for layer in layers:
                rows[layer.name] = i
                i += 1
        self.n_rows = i

    def row(self, raw: str, phase: Phase) -> int:
        rows = self._by_phase[phase]
        got = rows.get(raw)
        if got is None:
            if raw in self._names:
                name = raw
            elif raw.endswith(".out") and raw[:-4] in self._names:
                name = raw[:-4]
            elif raw.endswith(".out"):
                name = self._last
            else:  # .in / fork / other block-level markers
                name = self._first
            got = rows[raw] = rows[name]
        return got


class _DramRowReport:
    """Duck-typed traffic report that bins bytes straight into row slots.

    Replaces ``TrafficReport`` + ``attribute_block_dram`` on the pricing
    hot path: walkers call ``add`` and the bytes land pre-attributed,
    with no per-record allocation.
    """

    __slots__ = ("total_bytes", "row_bytes", "_index")

    def __init__(self, index: _DramRowIndex) -> None:
        self._index = index
        self.total_bytes = 0
        self.row_bytes = [0] * index.n_rows

    def add(self, block, layer, kind, phase, category, nbytes) -> None:
        if nbytes > 0:
            n = int(nbytes)
            self.total_bytes += n
            self.row_bytes[self._index.row(layer, phase)] += n


class BlockPricer:
    """Caches the buffer-independent inputs of per-block pricing.

    Compute profiles, MAC totals, global-buffer byte counts, and DRAM
    row indexes depend only on ``(net, mini_batch, cfg)`` plus
    ``(idx, sub_batch)`` — never on boundary placement, reuse flags,
    ReLU masking, or the global-buffer budget — so one pricer serves
    every DP probe of every buffer-sweep point that shares a memory
    config.  The cached ``compute_s`` vectors hold exactly the values
    :func:`block_layer_timings` would yield, in the same order.
    """

    __slots__ = ("net", "mini_batch", "cfg", "_profiles", "_gbuf", "_rows")

    def __init__(self, net: Network, mini_batch: int, cfg: WaveCoreConfig):
        self.net = net
        self.mini_batch = mini_batch
        self.cfg = cfg
        self._profiles: dict[tuple[int, int], tuple] = {}
        self._gbuf: dict[tuple[int, int], int] = {}
        self._rows: dict[int, _DramRowIndex] = {}

    @classmethod
    def shared(
        cls, net: Network, mini_batch: int, cfg: WaveCoreConfig
    ) -> "BlockPricer":
        """The per-network pricer for this ``(mini_batch, cfg)`` point.

        Cached in the (immutable) network's instance ``__dict__``, so its
        lifetime is tied to the network object and repeated schedule
        searches — every point of a buffer sweep, every objective —
        share one set of compute profiles.  ``global_buffer_bytes`` is
        excluded from the key: it is the one config field a sweep varies,
        and pricing never reads it.
        """
        cache = net.__dict__.setdefault("_pricer_cache", {})
        key = (mini_batch,) + tuple(
            getattr(cfg, f.name)
            for f in dataclasses.fields(cfg)
            if f.name != "global_buffer_bytes"
        )
        got = cache.get(key)
        if got is None:
            got = cache[key] = cls(net, mini_batch, cfg)
        return got

    def profile(self, idx: int, sub_batch: int):
        """``(profile_rows, compute_s ndarray, total_macs)`` for a block."""
        key = (idx, sub_batch)
        got = self._profiles.get(key)
        if got is None:
            prof = block_compute_profile(
                self.net, idx, self.mini_batch, sub_batch, self.cfg
            )
            compute_s = np.asarray([r[5] for r in prof], dtype=np.float64)
            macs = 0
            for r in prof:
                macs += r[4]
            got = (prof, compute_s, macs)
            self._profiles[key] = got
        return got

    def gbuf_bytes(self, idx: int, sub_batch: int) -> int:
        key = (idx, sub_batch)
        got = self._gbuf.get(key)
        if got is None:
            got = block_gbuf_bytes(
                self.net, idx, self.mini_batch, sub_batch, self.cfg
            )
            self._gbuf[key] = got
        return got

    def rows(self, idx: int) -> _DramRowIndex:
        got = self._rows.get(idx)
        if got is None:
            got = _DramRowIndex(self.net.blocks[idx])
            self._rows[idx] = got
        return got


def block_step_time(
    net: Network,
    sched_like,
    idx: int,
    sub_batch: int,
    cfg: WaveCoreConfig,
    options: TrafficOptions | None = None,
    unlimited_bandwidth: bool = False,
    pricer: BlockPricer | None = None,
) -> float:
    """Simulated time of block ``idx`` alone under a schedule-like view.

    ``sched_like`` may be any object exposing the Schedule query surface
    the traffic walkers consume (``mini_batch``, ``relu_mask``,
    ``layer_reuse_bytes``, ``iterations_of_block``, ``block_fused``,
    ``boundary_on_chip``, ``branch_reuse_of``) — the cost model passes a
    single-group view.  ``sub_batch`` is the block's *effective*
    sub-batch: 0 when it streams layerwise (unfused), the owning group's
    sub-batch otherwise.

    The per-layer accumulation order matches ``simulate_step`` exactly,
    so these block times sum to the simulated step time bit-for-bit.

    ``pricer`` (a :class:`BlockPricer` built for the same ``net``,
    ``mini_batch``, and a cfg sharing this one's compute-side fields)
    switches to a vectorized path: cached compute profile, row-binned
    traffic walk, elementwise ``max`` — same values, same addition
    order, no per-record or per-``LayerTiming`` allocation.
    """
    if pricer is None:
        traffic = block_traffic(net, sched_like, idx, options)
        dram_map = attribute_block_dram(net.blocks[idx], traffic.records)
        total = 0.0
        for lt in block_layer_timings(
            net, idx, sched_like.mini_batch, sub_batch, cfg,
            lambda name, phase: dram_map.get((name, phase), 0),
            unlimited_bandwidth=unlimited_bandwidth,
        ):
            total += lt.time_s
        return total

    _prof, compute_s, _macs = pricer.profile(idx, sub_batch)
    rep = _DramRowReport(pricer.rows(idx))
    walk_block_traffic(rep, net, sched_like, idx, options)
    if unlimited_bandwidth:
        times = compute_s
    else:
        dram_s = (
            np.asarray(rep.row_bytes, dtype=np.float64) / cfg.core_bandwidth
        )
        times = np.maximum(compute_s, dram_s)
    # ordered scalar sum: bit-identical to the LayerTiming accumulation
    # (np.sum would reassociate)
    total = 0.0
    for t in times.tolist():
        total += t
    return total


def schedule_step_time(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig | None = None,
    options: TrafficOptions | None = None,
    unlimited_bandwidth: bool = False,
) -> float:
    """Step time of a full schedule from per-block prices.

    Equals :func:`repro.wavecore.simulator.step_time` (and therefore
    ``simulate_step(...).time_s``) exactly — same walkers, same per-layer
    timing, same float association.
    """
    if sched.num_blocks != len(net.blocks):
        raise ValueError(
            f"schedule covers {sched.num_blocks} blocks, network has "
            f"{len(net.blocks)}"
        )
    if cfg is None:
        cfg = config_for_policy(sched.policy)
    total = 0.0
    for idx in range(len(net.blocks)):
        group = sched.group_of_block(idx)
        sub_batch = group.sub_batch if sched.block_fused(idx) else 0
        total += block_step_time(
            net, sched, idx, sub_batch, cfg, options,
            unlimited_bandwidth=unlimited_bandwidth,
        )
    return total
