"""The supported public API: schedule pricing as a library call.

Everything that prices a schedule — the CLI ``schedule`` /
``sweep-schedule`` subcommands, the ``mbs-repro serve`` HTTP server,
and direct Python callers — goes through this facade, so all three
surfaces return **bit-identical** costs by construction (one code
path, no parallel reimplementations).  The deeper entry points
(:func:`repro.core.policies.make_schedule`, the cost models, the
walkers) remain importable but are *not* covered by the stability
promise; this module is.

Quick start::

    from repro import api

    res = api.price("resnet50", "mbs-auto", buffer_bytes=api.MIB,
                    objective="energy")
    print(res.traffic_bytes, res.step_time_s, res.step_energy_j)

``price`` accepts a zoo name, a built
:class:`~repro.graph.network.Network`, or a schema-1 wire dict
(:mod:`repro.graph.serialize`) — the same three spellings the HTTP
request body takes.  :class:`ScheduleRequest` is the wire-level
request (what ``POST /v1/schedule`` carries), :class:`ScheduleResult`
the wire-level response (what ``--json`` prints); both are frozen
dataclasses with explicit ``to_wire``/``from_wire`` codecs.

Keyword renames vs the internal spellings (``make_schedule``'s
``net=`` is ``network=`` here, its ``cfg=`` is ``hardware=``) are
shimmed: the old spellings still work but emit a one-time
``DeprecationWarning``.
"""
from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.policies import (
    DEFAULT_BUFFER_BYTES,
    HARDWARE_OBJECTIVES,
    OBJECTIVES,
    POLICIES,
    SweepCaches,
    make_schedule,
    sweep_schedules,
)
from repro.core.schedule import Schedule
from repro.core.traffic import compute_traffic
from repro.graph.network import Network
from repro.graph.serialize import (
    GraphSchemaError,
    network_fingerprint,
    network_from_dict,
)
from repro.types import MIB, WORD_BYTES
from repro.wavecore.config import WaveCoreConfig, config_for_policy
from repro.wavecore.simulator import simulate_step
from repro.zoo import build as build_zoo_network

__all__ = [
    "GroupSummary",
    "LeaseGrant",
    "MIB",
    "ScheduleRequest",
    "ScheduleResult",
    "SweepJobRequest",
    "SweepJobStatus",
    "objectives",
    "policies",
    "price",
    "request_fingerprint",
    "sweep",
]

#: Wire-schema version shared by ScheduleRequest/ScheduleResult.
SCHEMA_VERSION = 1

#: Internal keyword spellings the facade renamed; passing one still
#: works but warns once per process (satellite: deprecation shims).
_RENAMED_KWARGS = {"net": "network", "cfg": "hardware"}
_warned_kwargs: set[str] = set()


def policies() -> tuple[str, ...]:
    """All scheduling policies (the paper's Tab. 3 rows + ``mbs-auto``)."""
    return tuple(POLICIES)


def objectives() -> tuple[str, ...]:
    """All objectives the adaptive policy can optimize."""
    return tuple(OBJECTIVES)


# ---------------------------------------------------------------------------
# request / response types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduleRequest:
    """One pricing query, in wire-friendly form.

    Exactly one of ``network`` (zoo name) or ``graph`` (schema-1 wire
    dict) names the network.  Defaults mirror
    :func:`~repro.core.policies.make_schedule`.
    """

    network: str | None = None
    graph: Mapping[str, Any] | None = None
    policy: str = "mbs-auto"
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    mini_batch: int | None = None
    objective: str = "traffic"
    relu_mask: bool | str | None = None
    word_bytes: int = WORD_BYTES

    _WIRE_KEYS = ("network", "graph", "policy", "buffer_bytes",
                  "mini_batch", "objective", "relu_mask", "word_bytes")

    def __post_init__(self) -> None:
        if (self.network is None) == (self.graph is None):
            raise ValueError(
                "exactly one of 'network' (zoo name) or 'graph' "
                "(wire dict) must be given"
            )

    def resolve_network(self) -> Network:
        """Build the named zoo network or decode the inline graph."""
        if self.network is not None:
            if not isinstance(self.network, str):
                raise ValueError(
                    f"'network' must be a zoo name string, got "
                    f"{type(self.network).__name__}"
                )
            try:
                return build_zoo_network(self.network)
            except KeyError as exc:
                raise ValueError(str(exc).strip("'\"")) from exc
        return network_from_dict(self.graph)

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"schema": SCHEMA_VERSION}
        for key in self._WIRE_KEYS:
            value = getattr(self, key)
            if value is not None:
                wire[key] = dict(value) if key == "graph" else value
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "ScheduleRequest":
        """Decode and validate a request dict (HTTP body / CLI JSON)."""
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"request must be a JSON object, got {type(wire).__name__}"
            )
        schema = wire.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported request schema {schema!r}; this build "
                f"speaks schema {SCHEMA_VERSION}"
            )
        unknown = set(wire) - set(cls._WIRE_KEYS) - {"schema"}
        if unknown:
            raise ValueError(
                f"unknown request key(s) {sorted(unknown)}; allowed: "
                f"{list(cls._WIRE_KEYS)}"
            )
        kwargs = {k: wire[k] for k in cls._WIRE_KEYS if k in wire}
        req = cls(**kwargs)
        req.validate()
        return req

    def validate(self) -> None:
        """Cheap field validation (full graph decoding happens later)."""
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {POLICIES}"
            )
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; choose from "
                f"{OBJECTIVES}"
            )
        if (not isinstance(self.buffer_bytes, int)
                or isinstance(self.buffer_bytes, bool)
                or self.buffer_bytes <= 0):
            raise ValueError(
                f"buffer_bytes must be a positive integer, got "
                f"{self.buffer_bytes!r}"
            )
        if self.mini_batch is not None and (
                not isinstance(self.mini_batch, int)
                or isinstance(self.mini_batch, bool)
                or self.mini_batch <= 0):
            raise ValueError(
                f"mini_batch must be a positive integer, got "
                f"{self.mini_batch!r}"
            )
        if not (self.relu_mask is None or self.relu_mask == "auto"
                or isinstance(self.relu_mask, bool)):
            raise ValueError(
                f"relu_mask must be true, false, or 'auto', got "
                f"{self.relu_mask!r}"
            )


@dataclass(frozen=True)
class GroupSummary:
    """Wire-friendly digest of one :class:`~repro.core.schedule.GroupPlan`."""

    first_block: int
    last_block: int
    sub_batch: int
    iterations: int
    #: "fused" | "partial" | "spilled" — the describe() vocabulary.
    fused: str
    branch_reuse: bool | None = None


@dataclass(frozen=True)
class ScheduleResult:
    """The priced schedule: what every surface returns.

    ``traffic_bytes`` / ``step_time_s`` / ``step_energy_j`` are the
    same numbers ``compute_traffic`` and ``simulate_step`` report for
    the schedule — bit-for-bit, because they *are* those calls'
    outputs.  ``schedule`` carries the full
    :class:`~repro.core.schedule.Schedule` for Python callers; it is
    not part of the wire encoding (``from_wire`` leaves it ``None``).
    """

    network: str
    policy: str
    objective: str
    buffer_bytes: int
    mini_batch: int
    word_bytes: int
    relu_mask: bool
    branch_reuse: bool
    groups: tuple[GroupSummary, ...]
    traffic_bytes: int
    traffic_by_category: Mapping[str, int]
    step_time_s: float
    step_energy_j: float
    energy_dram_share: float
    degraded: bool = False
    schedule: Schedule | None = field(default=None, compare=False)

    _WIRE_KEYS = ("network", "policy", "objective", "buffer_bytes",
                  "mini_batch", "word_bytes", "relu_mask", "branch_reuse",
                  "groups", "traffic_bytes", "traffic_by_category",
                  "step_time_s", "step_energy_j", "energy_dram_share",
                  "degraded")

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"schema": SCHEMA_VERSION}
        for key in self._WIRE_KEYS:
            value = getattr(self, key)
            if key == "groups":
                value = [
                    {"first_block": g.first_block,
                     "last_block": g.last_block,
                     "sub_batch": g.sub_batch,
                     "iterations": g.iterations,
                     "fused": g.fused,
                     "branch_reuse": g.branch_reuse}
                    for g in value
                ]
            elif key == "traffic_by_category":
                value = dict(value)
            wire[key] = value
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "ScheduleResult":
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"result must be a JSON object, got {type(wire).__name__}"
            )
        missing = [k for k in cls._WIRE_KEYS if k not in wire]
        if missing:
            raise ValueError(f"result wire object missing key(s) {missing}")
        kwargs = {k: wire[k] for k in cls._WIRE_KEYS}
        kwargs["groups"] = tuple(
            GroupSummary(**g) for g in kwargs["groups"]
        )
        kwargs["traffic_by_category"] = dict(kwargs["traffic_by_category"])
        return cls(**kwargs)

    def describe(self) -> str:
        """The human-readable text block the CLI prints."""
        objective = (
            "" if self.objective == "traffic"
            else f", objective={self.objective}"
        )
        lines = [
            f"{self.policy} schedule for {self.network}: "
            f"N={self.mini_batch}, "
            f"buffer={self.buffer_bytes / MIB:.0f} MiB{objective}"
            + (" [degraded]" if self.degraded else "")
        ]
        for i, g in enumerate(self.groups, 1):
            lines.append(
                f"  group{i}: blocks {g.first_block}..{g.last_block} "
                f"sub-batch={g.sub_batch} iters={g.iterations} [{g.fused}]"
            )
        lines.append(
            f"\nDRAM traffic/step: {self.traffic_bytes / 2**30:.2f} GiB"
        )
        for cat, nbytes in sorted(self.traffic_by_category.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {cat:18s} {nbytes / 2**20:10.1f} MiB")
        lines.append(
            f"\nsimulated step time: {self.step_time_s * 1e3:.3f} ms"
        )
        lines.append(
            f"simulated step energy: {self.step_energy_j * 1e3:.3f} mJ "
            f"(DRAM share {self.energy_dram_share * 100:.1f}%)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# sweep-job wire types (the distributed /v1/jobs surface)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepJobRequest:
    """One queued sweep job, in wire-friendly form.

    What ``POST /v1/jobs`` carries and ``mbs-repro submit-sweep``
    builds: a registered experiment artifact plus the sweep axes to
    grid over.  ``axes=None`` grids the spec's declared default sweep
    axes — exactly what ``mbs-repro sweep <artifact>`` would run, in
    the same deterministic point order.  ``max_attempts`` and
    ``lease_timeout_s`` override the coordinator's defaults for this
    job only; ``None`` inherits them.
    """

    artifact: str
    axes: Mapping[str, Sequence[Any]] | None = None
    quick: bool = False
    max_attempts: int | None = None
    lease_timeout_s: float | None = None

    _WIRE_KEYS = ("artifact", "axes", "quick", "max_attempts",
                  "lease_timeout_s")

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"schema": SCHEMA_VERSION}
        for key in self._WIRE_KEYS:
            value = getattr(self, key)
            if value is None:
                continue
            if key == "axes":
                value = {k: list(v) for k, v in value.items()}
            wire[key] = value
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "SweepJobRequest":
        """Decode and validate a job submission (HTTP body / CLI JSON)."""
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"job request must be a JSON object, got "
                f"{type(wire).__name__}"
            )
        schema = wire.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported job schema {schema!r}; this build speaks "
                f"schema {SCHEMA_VERSION}"
            )
        unknown = set(wire) - set(cls._WIRE_KEYS) - {"schema"}
        if unknown:
            raise ValueError(
                f"unknown job request key(s) {sorted(unknown)}; allowed: "
                f"{list(cls._WIRE_KEYS)}"
            )
        req = cls(**{k: wire[k] for k in cls._WIRE_KEYS if k in wire})
        req.validate()
        return req

    def validate(self) -> None:
        """Field validation with path-qualified messages."""
        if not isinstance(self.artifact, str) or not self.artifact:
            raise ValueError(
                f"artifact: expected a registered experiment name, got "
                f"{self.artifact!r}"
            )
        if self.axes is not None:
            if not isinstance(self.axes, Mapping):
                raise ValueError(
                    f"axes: expected an object mapping axis name to a "
                    f"list of values, got {type(self.axes).__name__}"
                )
            for name, values in self.axes.items():
                if not isinstance(name, str) or not name:
                    raise ValueError(
                        f"axes: axis names must be non-empty strings, "
                        f"got {name!r}"
                    )
                if (isinstance(values, (str, bytes))
                        or not isinstance(values, Sequence)
                        or len(values) == 0):
                    raise ValueError(
                        f"axes.{name}: expected a non-empty array of "
                        f"values, got {values!r}"
                    )
        if not isinstance(self.quick, bool):
            raise ValueError(
                f"quick: expected a boolean, got {self.quick!r}"
            )
        if self.max_attempts is not None and (
                not isinstance(self.max_attempts, int)
                or isinstance(self.max_attempts, bool)
                or self.max_attempts < 1):
            raise ValueError(
                f"max_attempts: expected a positive integer, got "
                f"{self.max_attempts!r}"
            )
        if self.lease_timeout_s is not None and (
                isinstance(self.lease_timeout_s, bool)
                or not isinstance(self.lease_timeout_s, (int, float))
                or self.lease_timeout_s <= 0):
            raise ValueError(
                f"lease_timeout_s: expected a positive number, got "
                f"{self.lease_timeout_s!r}"
            )

    def describe(self) -> str:
        axes = (
            "its default sweep axes" if self.axes is None
            else " x ".join(
                f"{name}[{len(values)}]"
                for name, values in self.axes.items()
            )
        )
        return (
            f"sweep job: {self.artifact} over {axes}"
            + (" [quick]" if self.quick else "")
        )


@dataclass(frozen=True)
class LeaseGrant:
    """One batch of sweep points granted to a worker.

    What ``POST /v1/lease`` returns: the points (grid index +
    parameter overrides) the worker must compute before the lease
    expires, plus everything it needs to rebuild the tasks locally
    (artifact name, quick flag).  The worker extends the lease by
    heartbeating at least once per ``lease_timeout_s``; a silent
    worker's points are re-queued for someone else.
    """

    job_id: str
    lease_id: str
    worker: str
    artifact: str
    quick: bool
    lease_timeout_s: float
    points: tuple[Mapping[str, Any], ...] = ()

    _WIRE_KEYS = ("job_id", "lease_id", "worker", "artifact", "quick",
                  "lease_timeout_s", "points")

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"schema": SCHEMA_VERSION}
        for key in self._WIRE_KEYS:
            value = getattr(self, key)
            if key == "points":
                value = [
                    {"index": p["index"], "overrides": dict(p["overrides"])}
                    for p in value
                ]
            wire[key] = value
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "LeaseGrant":
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"lease grant must be a JSON object, got "
                f"{type(wire).__name__}"
            )
        missing = [k for k in cls._WIRE_KEYS if k not in wire]
        if missing:
            raise ValueError(f"lease grant missing key(s) {missing}")
        kwargs = {k: wire[k] for k in cls._WIRE_KEYS}
        points = kwargs["points"]
        if not isinstance(points, Sequence) or isinstance(points, (str, bytes)):
            raise ValueError(
                f"points: expected an array, got {type(points).__name__}"
            )
        decoded = []
        for i, p in enumerate(points):
            if not isinstance(p, Mapping):
                raise ValueError(
                    f"points[{i}]: expected an object, got "
                    f"{type(p).__name__}"
                )
            index = p.get("index")
            if not isinstance(index, int) or isinstance(index, bool) \
                    or index < 0:
                raise ValueError(
                    f"points[{i}].index: expected a non-negative "
                    f"integer, got {index!r}"
                )
            overrides = p.get("overrides")
            if not isinstance(overrides, Mapping):
                raise ValueError(
                    f"points[{i}].overrides: expected an object, got "
                    f"{type(overrides).__name__}"
                )
            decoded.append({"index": index, "overrides": dict(overrides)})
        kwargs["points"] = tuple(decoded)
        return cls(**kwargs)

    def describe(self) -> str:
        return (
            f"lease {self.lease_id} ({self.job_id}): "
            f"{len(self.points)} point(s) of {self.artifact}, "
            f"{self.lease_timeout_s:g}s lease timeout"
        )


@dataclass(frozen=True)
class SweepJobStatus:
    """Progress digest of one queued sweep job: what every poll returns.

    ``state`` is ``running`` while any point is pending or leased,
    ``done`` when every point has a manifest, and ``failed`` when the
    queue has drained but some points were poisoned (failed
    ``max_attempts`` times).
    """

    job_id: str
    artifact: str
    quick: bool
    state: str
    total: int
    pending: int
    leased: int
    done: int
    poisoned: int
    max_attempts: int
    lease_timeout_s: float

    _WIRE_KEYS = ("job_id", "artifact", "quick", "state", "total",
                  "pending", "leased", "done", "poisoned", "max_attempts",
                  "lease_timeout_s")

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"schema": SCHEMA_VERSION}
        for key in self._WIRE_KEYS:
            wire[key] = getattr(self, key)
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "SweepJobStatus":
        if not isinstance(wire, Mapping):
            raise ValueError(
                f"job status must be a JSON object, got "
                f"{type(wire).__name__}"
            )
        missing = [k for k in cls._WIRE_KEYS if k not in wire]
        if missing:
            raise ValueError(f"job status missing key(s) {missing}")
        return cls(**{k: wire[k] for k in cls._WIRE_KEYS})

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.artifact} [{self.state}] "
            f"{self.done}/{self.total} done ({self.leased} leased, "
            f"{self.pending} pending, {self.poisoned} poisoned)"
        )


# ---------------------------------------------------------------------------
# the facade calls
# ---------------------------------------------------------------------------

def _apply_renamed_kwargs(kwargs: dict[str, Any],
                          given: dict[str, Any]) -> dict[str, Any]:
    """Map deprecated internal spellings onto the facade's, warn once."""
    for old, new in _RENAMED_KWARGS.items():
        if old not in kwargs:
            continue
        if given.get(new) is not None:
            raise TypeError(
                f"got both {new!r} and its deprecated spelling {old!r}"
            )
        if old not in _warned_kwargs:
            _warned_kwargs.add(old)
            warnings.warn(
                f"keyword {old!r} is deprecated on the repro.api facade; "
                f"use {new!r}",
                DeprecationWarning, stacklevel=3,
            )
        given[new] = kwargs.pop(old)
    if kwargs:
        raise TypeError(f"unexpected keyword argument(s) {sorted(kwargs)}")
    return given


def _coerce_network(network: Network | str | Mapping | ScheduleRequest,
                    ) -> tuple[Network, str | None]:
    """Accept a Network, zoo name, or wire dict; return (net, zoo name)."""
    if isinstance(network, Network):
        return network, None
    if isinstance(network, str):
        try:
            return build_zoo_network(network), network
        except KeyError as exc:
            raise ValueError(str(exc).strip("'\"")) from exc
    if isinstance(network, Mapping):
        return network_from_dict(network), None
    raise TypeError(
        "network must be a zoo name, a repro.graph Network, or a "
        f"schema-1 wire dict, got {type(network).__name__}"
    )


def _evaluate(
    net: Network,
    sched: Schedule,
    cfg: WaveCoreConfig,
    degraded: bool = False,
) -> ScheduleResult:
    """Price a finished schedule with the evaluators (exact numbers)."""
    rep = compute_traffic(net, sched)
    step = simulate_step(net, sched, cfg, traffic=rep)
    groups = tuple(
        GroupSummary(
            first_block=g.blocks[0],
            last_block=g.blocks[-1],
            sub_batch=g.sub_batch,
            iterations=g.iterations,
            fused="fused" if all(g.block_fused) else (
                "partial" if any(g.block_fused) else "spilled"
            ),
            branch_reuse=g.branch_reuse,
        )
        for g in sched.groups
    )
    by_cat = {
        cat.value: nbytes for cat, nbytes in rep.by_category().items()
    }
    return ScheduleResult(
        network=sched.network,
        policy=sched.policy,
        objective=sched.objective,
        buffer_bytes=sched.buffer_bytes,
        mini_batch=sched.mini_batch,
        word_bytes=WORD_BYTES,
        relu_mask=sched.relu_mask,
        branch_reuse=sched.branch_reuse,
        groups=groups,
        traffic_bytes=rep.total_bytes,
        traffic_by_category=by_cat,
        step_time_s=step.time_s,
        step_energy_j=step.energy.total_j,
        energy_dram_share=step.energy.share("dram"),
        degraded=degraded,
        schedule=sched,
    )


def price(
    network: Network | str | Mapping | ScheduleRequest | None = None,
    policy: str = "mbs-auto",
    *,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    mini_batch: int | None = None,
    objective: str = "traffic",
    relu_mask: bool | str | None = None,
    word_bytes: int = WORD_BYTES,
    hardware: WaveCoreConfig | None = None,
    **deprecated: Any,
) -> ScheduleResult:
    """Build and price one schedule; the single source of truth.

    ``network`` may be a zoo name, a built
    :class:`~repro.graph.network.Network`, a schema-1 wire dict, or a
    whole :class:`ScheduleRequest` (in which case the other arguments
    must stay at their defaults).  ``hardware`` pins the accelerator
    config used both by the hardware-priced objectives' DP and by the
    evaluation; it defaults to the policy's Tab. 3 configuration at
    ``buffer_bytes`` — exactly what ``mbs-repro schedule`` has always
    simulated, so the CLI, this facade, and the HTTP server agree
    bit-for-bit.
    """
    kwargs = _apply_renamed_kwargs(deprecated, {
        "network": network, "hardware": hardware,
    })
    network, hardware = kwargs["network"], kwargs["hardware"]
    if network is None:
        raise TypeError("price() missing required argument: 'network'")
    if isinstance(network, ScheduleRequest):
        req = network
        return price(
            req.graph if req.network is None else req.network,
            req.policy, buffer_bytes=req.buffer_bytes,
            mini_batch=req.mini_batch, objective=req.objective,
            relu_mask=req.relu_mask, word_bytes=req.word_bytes,
            hardware=hardware,
        )
    net, _ = _coerce_network(network)
    cfg = hardware if hardware is not None else config_for_policy(
        policy, buffer_bytes=buffer_bytes
    )
    sched = make_schedule(
        net, policy, buffer_bytes=buffer_bytes, mini_batch=mini_batch,
        word_bytes=word_bytes, objective=objective,
        cfg=cfg if objective in HARDWARE_OBJECTIVES else None,
        relu_mask=relu_mask,
    )
    return _evaluate(net, sched, cfg)


def sweep(
    network: Network | str | Mapping | None = None,
    policy: str = "mbs-auto",
    buffer_sizes: Sequence[int] = (),
    *,
    mini_batch: int | None = None,
    objective: str = "traffic",
    relu_mask: bool | str | None = None,
    word_bytes: int = WORD_BYTES,
    hardware: WaveCoreConfig | None = None,
    caches: SweepCaches | None = None,
    **deprecated: Any,
) -> list[ScheduleResult]:
    """Price one schedule per buffer size through the batch sweep engine.

    Returns exactly what ``[price(...) for b in buffer_sizes]`` would —
    the per-point searches just share the
    :class:`~repro.core.policies.SweepCaches` pricing state, which is
    an order of magnitude faster for dense ``mbs-auto`` sweeps.  Pass
    ``caches`` to read the memo hit/miss counters afterwards.
    """
    kwargs = _apply_renamed_kwargs(deprecated, {
        "network": network, "hardware": hardware,
    })
    network, hardware = kwargs["network"], kwargs["hardware"]
    if network is None:
        raise TypeError("sweep() missing required argument: 'network'")
    if not buffer_sizes:
        raise ValueError("sweep() needs at least one buffer size")
    net, _ = _coerce_network(network)
    scheds = sweep_schedules(
        net, policy, buffer_sizes, mini_batch=mini_batch,
        word_bytes=word_bytes, objective=objective, cfg=hardware,
        relu_mask=relu_mask, caches=caches,
    )
    return [
        _evaluate(
            net, sched,
            hardware if hardware is not None
            else config_for_policy(policy, buffer_bytes=buffer_bytes),
        )
        for buffer_bytes, sched in zip(buffer_sizes, scheds)
    ]


def request_fingerprint(req: ScheduleRequest,
                        net: Network | None = None) -> str:
    """Content address of a pricing query: the serve-cache key.

    Keyed on the *graph fingerprint* (not the zoo name, so a name and
    its exported wire graph share cache entries), buffer size,
    objective, policy, mini-batch, relu mask, word width, and the
    hardware config family the policy pins.  ``net`` skips re-resolving
    when the caller already built the network.
    """
    import hashlib
    import json

    if net is None:
        net = req.resolve_network()
    cfg = config_for_policy(req.policy, buffer_bytes=req.buffer_bytes)
    blob = json.dumps(
        {
            "graph": network_fingerprint(net),
            "policy": req.policy,
            "buffer_bytes": req.buffer_bytes,
            "mini_batch": req.mini_batch,
            "objective": req.objective,
            "relu_mask": req.relu_mask,
            "word_bytes": req.word_bytes,
            "hardware": repr(cfg),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def degraded_result(req: ScheduleRequest,
                    net: Network | None = None) -> ScheduleResult:
    """The greedy fallback the server returns under load.

    Prices the request's network with the cheap greedy ``mbs2`` policy
    (closed-form proxy objective — no adaptive DP), flagged
    ``degraded: true``.  The hardware-priced objectives cannot ride a
    fixed policy, so the fallback always optimizes the paper's proxy;
    the returned costs are still the exact evaluator numbers for the
    greedy schedule.
    """
    if net is None:
        net = req.resolve_network()
    cfg = config_for_policy(req.policy, buffer_bytes=req.buffer_bytes)
    sched = make_schedule(
        net, "mbs2", buffer_bytes=req.buffer_bytes,
        mini_batch=req.mini_batch, word_bytes=req.word_bytes,
    )
    return _evaluate(net, sched, cfg, degraded=True)


def _reset_deprecation_warnings() -> None:
    """Test hook: make the warn-once shims warn again."""
    _warned_kwargs.clear()
