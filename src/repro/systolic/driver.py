"""Wave/tile orchestration on the functional array (paper Fig. 7).

The driver blocks ``C = A @ B`` into m×n output tiles, runs each tile as
``ceil(K/k)`` waves, and schedules wave starts exactly like the analytic
model of :mod:`repro.wavecore.tiling`:

* conventional mode — the weight fill of each wave is exposed: a wave's
  stream starts k cycles after the previous wave's injections end;
* double-buffered mode — the next wave's B block shifts into the idle
  bank while the current wave streams, so consecutive wave starts are
  ``max(m_t, k)`` cycles apart.

Both modes run the same functional array; the *cost model* (wave start
spacing) is the only difference between them — which is precisely the
paper's Fig. 8 claim.  Functionally the simulator rotates over several
virtual weight banks: physical hardware retires a bank PE by PE as the
drain diagonal passes (enabled by the paper's A-buffer sizing rule, "A
blocks need to be twice as large as B blocks"), which an atomic
bank-commit model reproduces by simply keeping a few more banks live.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systolic.array import SystolicArray
from repro.types import ceil_div


@dataclass(frozen=True)
class GemmRun:
    """Outcome of a functional GEMM run."""

    result: np.ndarray
    cycles: int
    macs: int
    pe_count: int

    @property
    def utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.macs / (self.cycles * self.pe_count)


def run_gemm(
    a: np.ndarray,
    b: np.ndarray,
    rows: int,
    cols: int,
    tile_rows: int,
    double_buffer: bool = True,
) -> GemmRun:
    """Compute ``a @ b`` on a rows×cols array, counting exact cycles."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible GEMM operands {a.shape} x {b.shape}")
    if tile_rows <= 0:
        raise ValueError("tile_rows must be positive")
    m_total, k_total = a.shape
    n_total = b.shape[1]
    # Virtual banks: enough that a bank is never refilled while data that
    # selected it is still draining (see SystolicArray docstring); the
    # wave schedule below is what carries the two-register cost model.
    n_banks = 8
    arr = SystolicArray(rows, cols, dtype=np.float64, banks=n_banks)
    a = a.astype(np.float64)
    b = b.astype(np.float64)

    waves = ceil_div(k_total, rows)
    col_tiles = ceil_div(n_total, cols)
    row_tiles = ceil_div(m_total, tile_rows)

    # ------------------------------------------------------------------
    # wave schedule: stream starts spaced per the mode's cost model
    # ------------------------------------------------------------------
    wave_seq: list[tuple[int, int, int, int]] = []  # (start, rt, w, ct)
    start = rows  # the first weight fill
    prev_len = None
    for ct in range(col_tiles):
        for rt in range(row_tiles):
            m_t = min(tile_rows, m_total - rt * tile_rows)
            for w in range(waves):
                if prev_len is not None:
                    if double_buffer:
                        start = start + max(prev_len, rows)
                    else:
                        start = start + prev_len + rows
                wave_seq.append((start, rt, w, ct))
                prev_len = m_t

    # injections: cycle of each A-row start → (global row, wave, col tile,
    # weight bank); loads: cycle → (bank, padded B block)
    injections: dict[int, tuple[int, int, int, int]] = {}
    loads: dict[int, tuple[int, np.ndarray]] = {}
    bank = 0
    for s, rt, w, ct in wave_seq:
        m_t = min(tile_rows, m_total - rt * tile_rows)
        block = np.zeros((rows, cols))
        k_lo, k_hi = w * rows, min(k_total, (w + 1) * rows)
        n_lo, n_hi = ct * cols, min(n_total, (ct + 1) * cols)
        block[: k_hi - k_lo, : n_hi - n_lo] = b[k_lo:k_hi, n_lo:n_hi]
        loads[s - rows] = (bank, block)
        for step in range(m_t):
            injections[s + step] = (rt * tile_rows + step, w, ct, bank)
        bank = (bank + 1) % n_banks

    last_t0 = max(injections)
    total_cycles = last_t0 + rows + cols  # final drain
    c = np.zeros((m_total, n_total))

    # ------------------------------------------------------------------
    # run the array cycle by cycle
    # ------------------------------------------------------------------
    for cycle in range(total_cycles):
        if cycle in loads:
            lbank, block = loads[cycle]
            arr.begin_weight_load(lbank, block)
        a_vec = np.zeros(rows)
        v_vec = np.zeros(rows, dtype=bool)
        sel_vec = np.zeros(rows, dtype=np.int8)
        for i in range(rows):
            t0 = cycle - i
            if t0 in injections:
                r, w, ct, wbank = injections[t0]
                k_idx = w * rows + i
                if k_idx < k_total:
                    a_vec[i] = a[r, k_idx]
                v_vec[i] = True
                sel_vec[i] = wbank
        out, out_valid = arr.step(
            a_vec if v_vec.any() else None, sel_vec, v_vec if v_vec.any() else None
        )
        for j in range(cols):
            t0 = cycle - rows - j
            if t0 in injections and out_valid[j]:
                r, w, ct, _ = injections[t0]
                n_idx = ct * cols + j
                if n_idx < n_total:
                    c[r, n_idx] += out[j]

    return GemmRun(
        result=c,
        cycles=total_cycles,
        macs=m_total * n_total * k_total,
        pe_count=rows * cols,
    )
