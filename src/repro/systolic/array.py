"""PE-grid state machine: one `step()` call is one clock cycle.

Dataflow (paper Fig. 7): the stationary operand B occupies one element
per PE (bank-selected); rows of the moving operand A enter at the left
edge — element ``A[r, i]`` is injected into array row *i* — and flow one
column per cycle; partial sums flow one row per cycle toward the bottom,
where finished dot products emerge column by column.

Each PE has *two* weight registers (paper Fig. 8a).  Every moving A
element carries a 1-bit bank select that chooses which register its
multiply uses, which is exactly the paper's "select signal propagated
along with the inputs".  Weight loading shifts a new B block in from the
top, one row per cycle, into the bank not selected by in-flight data.
"""
from __future__ import annotations

import numpy as np


class SystolicArray:
    """Functional k(rows) × n(cols) systolic array with weight banks.

    ``banks`` defaults to 2 (the paper's per-PE register pair).  The
    driver may request more *virtual* banks: physical hardware retires a
    bank's weights PE by PE as the drain diagonal passes, which an
    atomic bank-commit model cannot express — extra virtual banks give
    the same functional behaviour without altering any timing (the wave
    schedule still encodes the two-register cost model).
    """

    def __init__(self, rows: int, cols: int, dtype=np.float64,
                 banks: int = 2) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dims must be positive")
        if banks < 2:
            raise ValueError("need at least two weight banks")
        self.rows = rows
        self.cols = cols
        self.dtype = dtype
        self.weights = np.zeros((banks, rows, cols), dtype=dtype)
        # in-flight A values and their bank-select / validity side-bands
        self.a = np.zeros((rows, cols), dtype=dtype)
        self.a_sel = np.zeros((rows, cols), dtype=np.int8)
        self.a_valid = np.zeros((rows, cols), dtype=bool)
        # partial sums flowing downward (aligned with the A diagonal)
        self.psum = np.zeros((rows, cols), dtype=dtype)
        self.psum_valid = np.zeros((rows, cols), dtype=bool)
        # weight shift-in pipeline: (bank, block, cycles remaining).  The
        # shift occupies the weight path for `rows` cycles and the bank
        # commits atomically when the last row lands — the old contents
        # stay usable throughout, which the paper's A-buffer sizing rule
        # guarantees the hardware never violates.
        self._wload_queue: list[list] = []
        self.cycle = 0

    # ------------------------------------------------------------------
    def begin_weight_load(self, bank: int, block: np.ndarray) -> None:
        """Queue a B block (rows×cols, zero-padded by caller) for shifting
        into ``bank``; the shift takes ``rows`` cycles."""
        if block.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight block must be {(self.rows, self.cols)}, got {block.shape}"
            )
        self._wload_queue.append([bank, block.astype(self.dtype), self.rows])

    @property
    def loading(self) -> bool:
        return bool(self._wload_queue)

    # ------------------------------------------------------------------
    def step(
        self,
        a_in: np.ndarray | None = None,
        sel_in: np.ndarray | int = 0,
        valid_in: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance one cycle.

        ``a_in`` supplies one new A element per array row at the left
        edge (callers pre-skew rows by injecting ``A[r, i]`` at cycle
        ``t0 + i``); ``sel_in`` gives the per-row weight-bank select that
        travels with the data.  Returns the partial sums leaving the
        bottom edge this cycle and their validity mask.
        """
        # 1. A values move one column right; new values enter at column 0
        self.a[:, 1:] = self.a[:, :-1]
        self.a_sel[:, 1:] = self.a_sel[:, :-1]
        self.a_valid[:, 1:] = self.a_valid[:, :-1]
        if a_in is None:
            self.a[:, 0] = 0
            self.a_valid[:, 0] = False
        else:
            self.a[:, 0] = a_in
            self.a_sel[:, 0] = np.asarray(sel_in, dtype=np.int8)
            self.a_valid[:, 0] = (
                np.ones(self.rows, dtype=bool) if valid_in is None else valid_in
            )

        # 2. multiply-accumulate; psums flow one row down, aligned with A
        rows_idx, cols_idx = np.indices((self.rows, self.cols), sparse=True)
        w_sel = self.weights[self.a_sel, rows_idx, cols_idx]
        contrib = np.where(self.a_valid, self.a * w_sel, 0.0)
        out = self.psum[-1, :].copy()
        out_valid = self.psum_valid[-1, :].copy()
        self.psum[1:, :] = self.psum[:-1, :]
        self.psum_valid[1:, :] = self.psum_valid[:-1, :]
        self.psum[0, :] = 0.0
        self.psum_valid[0, :] = False
        self.psum += contrib
        self.psum_valid |= self.a_valid

        # 3. weight shift-in progress (one row per cycle through the
        #    dedicated weight path); the bank commits at end of cycle,
        #    after this cycle's multiplies used the old contents.
        if self._wload_queue:
            entry = self._wload_queue[0]
            entry[2] -= 1
            if entry[2] == 0:
                self.weights[entry[0]] = entry[1]
                self._wload_queue.pop(0)

        self.cycle += 1
        return out, out_valid
