"""Cycle-level functional systolic array (paper Sec. 4.1, Figs. 7 & 8).

This package exists to *validate* the analytic tiling model of
:mod:`repro.wavecore.tiling`: it simulates the PE grid cycle by cycle —
weight-stationary dataflow, per-PE double-buffered weight registers with
a propagated bank-select bit — produces bit-exact GEMM results, and
counts exactly the cycles the analytic formulas predict.
"""
from repro.systolic.array import SystolicArray
from repro.systolic.driver import GemmRun, run_gemm

__all__ = ["GemmRun", "SystolicArray", "run_gemm"]
