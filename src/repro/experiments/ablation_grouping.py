"""Footnote-1 ablation: greedy vs exhaustive (optimal) layer grouping.

The paper reports that exhaustive search improves traffic and performance
by roughly 1 % over the greedy optimization.  Note the DP is optimal for
the grouping *cost model* (weight streaming + boundary traffic); measured
end-to-end traffic can deviate from it by a sliver in either direction.
"""
from __future__ import annotations

from repro.core.policies import DEFAULT_BUFFER_BYTES, make_schedule
from repro.core.traffic import compute_traffic
from repro.experiments.common import network
from repro.experiments.tables import fmt, format_table, gib
from repro.runtime import ExperimentSpec, register
from repro.types import MIB
from repro.zoo import PAPER_NETWORKS


def run(networks: tuple[str, ...] = PAPER_NETWORKS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES) -> dict:
    rows = {}
    for name in networks:
        net = network(name)
        out = {}
        for policy in ("mbs1", "mbs2"):
            greedy = compute_traffic(
                net, make_schedule(net, policy, buffer_bytes)
            ).total_bytes
            optimal = compute_traffic(
                net, make_schedule(net, f"{policy}-opt", buffer_bytes)
            ).total_bytes
            out[policy] = {
                "greedy": greedy,
                "optimal": optimal,
                "gap": greedy / optimal - 1.0,
            }
        rows[name] = out
    return {"rows": rows}


def render(res: dict) -> None:
    table = []
    for name, out in res["rows"].items():
        table.append([
            name,
            gib(out["mbs1"]["greedy"]), gib(out["mbs1"]["optimal"]),
            fmt(out["mbs1"]["gap"] * 100, 2) + "%",
            gib(out["mbs2"]["greedy"]), gib(out["mbs2"]["optimal"]),
            fmt(out["mbs2"]["gap"] * 100, 2) + "%",
        ])
    print(format_table(
        ["network", "mbs1 greedy GiB", "mbs1 opt GiB", "gap",
         "mbs2 greedy GiB", "mbs2 opt GiB", "gap"],
        table,
        title="Grouping ablation — greedy vs exhaustive DP (paper: ~1% gap)",
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="ablation",
    title="Footnote-1 ablation — greedy vs exhaustive layer grouping",
    produce=run,
    render=render,
    sweep={"buffer_bytes": (5 * MIB, 10 * MIB, 20 * MIB)},
    artifact=("rows",),
))


if __name__ == "__main__":
    main()
