"""Terminal plotting: render figure series as ASCII charts."""
from __future__ import annotations


def sparkline(values: list[float], width: int | None = None) -> str:
    """Compact one-line chart (Unicode block elements)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values
    )


def line_plot(
    series: dict[str, list[float]],
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series ASCII line plot; all series share the x axis."""
    if not series:
        return title
    symbols = "*o+x#@"
    all_vals = [v for vs in series.values() for v in vs]
    lo, hi = min(all_vals), max(all_vals)
    span = hi - lo or 1.0
    width = max(len(vs) for vs in series.values())
    grid = [[" "] * width for _ in range(height)]
    for si, (name, vs) in enumerate(series.items()):
        sym = symbols[si % len(symbols)]
        for x, v in enumerate(vs):
            y = height - 1 - int((v - lo) / span * (height - 1))
            grid[y][x] = sym
    lines = []
    if title:
        lines.append(title)
    for yi, row in enumerate(grid):
        label = ""
        if yi == 0:
            label = f"{hi:8.3f} "
        elif yi == height - 1:
            label = f"{lo:8.3f} "
        else:
            label = " " * 9
        lines.append(label + "|" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)
