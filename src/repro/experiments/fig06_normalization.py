"""Fig. 6: training effectiveness of GN+MBS vs BN (vs no normalization).

The paper trains ResNet-50 on ImageNet; we substitute a synthetic
classification task and a deep toy CNN (see DESIGN.md) — the *relative*
claims carry over: (1) GN+MBS and BN reach the same accuracy, (2) MBS
sub-batching with GN computes bit-identical gradients to full-batch
execution, (3) un-normalized training visibly lags, and (4) normalized
pre-activation means stay near zero while un-normalized ones drift.
"""
from __future__ import annotations

import numpy as np

from repro.graph.layers import NormKind
from repro.nn import NetworkModel, synthetic_dataset, train
from repro.nn.executor import compute_gradients, mbs_gradients
from repro.runtime import ExperimentSpec, register
from repro.zoo import toy_chain


def run(
    epochs: int = 8,
    train_samples: int = 512,
    val_samples: int = 256,
    widths: tuple[int, ...] = (16, 32, 32, 64, 64),
    noise: float = 1.6,
    lr: float = 0.12,
    batch: int = 32,
    sub_batch: int = 4,
    seed: int = 3,
) -> dict:
    data = synthetic_dataset(
        train=train_samples, val=val_samples, noise=noise, seed=seed
    )
    results = {}
    for label, norm, sub in (
        ("BN", NormKind.BATCH, None),
        ("GN+MBS", NormKind.GROUP, sub_batch),
        ("no-norm", None, None),
    ):
        net = toy_chain(widths=widths, num_classes=data.num_classes, norm=norm)
        model = NetworkModel(net, seed=5, dtype=np.float32)
        results[label] = train(
            model, data, epochs=epochs, batch=batch, lr=lr,
            sub_batch=sub, label=label, seed=11,
        )

    # gradient-equivalence probe (the Sec. 3 correctness claim)
    rng = np.random.default_rng(0)
    x = data.x_train[:12]
    y = data.y_train[:12]
    diffs = {}
    for label, norm in (("GN", NormKind.GROUP), ("BN", NormKind.BATCH)):
        net = toy_chain(widths=widths[:3], num_classes=data.num_classes, norm=norm)
        m_full = NetworkModel(net, seed=9)
        m_mbs = NetworkModel(net, seed=9)
        m_full.zero_grads()
        compute_gradients(m_full, x, y)
        m_mbs.zero_grads()
        mbs_gradients(m_mbs, x, y, sub_batch=5)
        diffs[label] = float(
            np.max(np.abs(m_full.gradient_vector() - m_mbs.gradient_vector()))
        )
    return {"curves": results, "gradient_equivalence": diffs}


def render(res: dict) -> None:
    from repro.experiments.plots import line_plot

    print("Fig. 6 — validation error by epoch (synthetic ImageNet stand-in)")
    for label, r in res["curves"].items():
        errs = " ".join(f"{e * 100:5.1f}" for e in r.val_error)
        print(f"  {label:8s}: {errs}")
    print()
    print(line_plot(
        {label: r.val_error for label, r in res["curves"].items()},
        title="validation error vs epoch", y_label="top-1 error",
    ))
    print("\npre-activation means (first / last probe layer, final epoch):")
    for label, r in res["curves"].items():
        print(
            f"  {label:8s}: first={r.first_norm_mean[-1]:+.3f} "
            f"last={r.last_norm_mean[-1]:+.3f}"
        )
    d = res["gradient_equivalence"]
    print(
        f"\nMBS gradient equivalence (max |Δgrad| vs full batch): "
        f"GN={d['GN']:.2e} (exact)  BN={d['BN']:.2e} (broken — why MBS adapts GN)"
    )


def main(argv: list[str] | None = None) -> None:
    quick = argv is not None and "--quick" in argv
    render(run(**SPEC.quick) if quick else run())


SPEC = register(ExperimentSpec(
    name="fig6",
    title="Fig. 6 — GN+MBS vs BN training effectiveness",
    produce=run,
    render=render,
    quick={"epochs": 3, "train_samples": 256, "val_samples": 128},
    sweep={"sub_batch": (2, 4, 8), "seed": (3, 4)},
    artifact=("curves", "gradient_equivalence"),
))


if __name__ == "__main__":
    main()
