"""Extension experiment: multi-accelerator weak scaling (Sec. 4.2).

Not a numbered figure in the paper — the "Scalability" paragraph claims
MBS composes with data parallelism because chips only communicate for
the parameter reduction.  This driver quantifies that with a ring
all-reduce model.
"""
from __future__ import annotations

from repro.experiments.common import network
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register
from repro.wavecore.scaling import weak_scaling

CHIPS = (1, 2, 4, 8, 16, 32)


def run(networks: tuple[str, ...] = ("resnet50", "inception_v3"),
        policies: tuple[str, ...] = ("baseline", "mbs2")) -> dict:
    rows = {}
    for name in networks:
        net = network(name)
        rows[name] = {
            policy: weak_scaling(net, policy, chips=CHIPS)
            for policy in policies
        }
    return {"rows": rows, "chips": CHIPS}


def render(res: dict) -> None:
    for name, by_policy in res["rows"].items():
        table = []
        for policy, points in by_policy.items():
            for p in points:
                table.append([
                    policy, p.chips, p.global_batch,
                    f"{p.compute_s * 1e3:7.1f}", f"{p.allreduce_s * 1e3:6.2f}",
                    f"{p.samples_per_s:8.0f}",
                    fmt(p.scaling_efficiency * 100, 1) + "%",
                ])
        print(format_table(
            ["config", "chips", "batch", "compute ms", "reduce ms",
             "samples/s", "efficiency"],
            table, title=f"Weak scaling — {name} (ring all-reduce)",
        ))
        print()


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="scaling",
    title="Weak scaling — MBS under multi-chip data parallelism",
    produce=run,
    render=render,
    sweep={"policies": (("baseline", "mbs2"), ("mbs1", "mbs2"))},
    artifact=("rows", "chips"),
))


if __name__ == "__main__":
    main()
