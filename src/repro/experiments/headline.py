"""Headline numbers: the abstract's 75 % DRAM-traffic cut, 53 % speedup,
26 % energy saving (deep-CNN averages), and the Sec. 3 4.0× traffic cut —
plus what the adaptive ``mbs-auto`` policy buys on top of MBS2 under
each of its objectives (DRAM bytes, simulated step time, and simulated
step energy)."""
from __future__ import annotations

from repro.experiments.common import evaluate
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register

DEEP_CNNS = ("resnet50", "resnet101", "resnet152",
             "inception_v3", "inception_v4")


def run(networks: tuple[str, ...] = DEEP_CNNS) -> dict:
    per_net = {}
    for name in networks:
        base = evaluate(name, "baseline")
        arch = evaluate(name, "archopt")
        mbs2 = evaluate(name, "mbs2")
        auto = evaluate(name, "mbs-auto")
        auto_lat = evaluate(name, "mbs-auto", objective="latency")
        auto_en = evaluate(name, "mbs-auto", objective="energy")
        per_net[name] = {
            "traffic_saving": 1.0 - mbs2.dram_bytes / arch.dram_bytes,
            "traffic_cut_x": arch.dram_bytes / mbs2.dram_bytes,
            "speedup_vs_baseline": base.time_s / mbs2.time_s,
            "perf_improvement": base.time_s / mbs2.time_s - 1.0,
            "energy_saving": 1.0 - mbs2.energy.total_j / base.energy.total_j,
            "auto_traffic_cut_x": arch.dram_bytes / auto.dram_bytes,
            "auto_vs_mbs2_x": mbs2.dram_bytes / auto.dram_bytes,
            "auto_lat_speedup_x": base.time_s / auto_lat.time_s,
            "auto_lat_time_gain_x": auto.time_s / auto_lat.time_s,
            "auto_en_saving": (
                1.0 - auto_en.energy.total_j / base.energy.total_j
            ),
            "auto_en_vs_mbs2_x": (
                mbs2.energy.total_j / auto_en.energy.total_j
            ),
        }
    n = len(per_net)
    avg = {
        k: sum(v[k] for v in per_net.values()) / n
        for k in next(iter(per_net.values()))
    }
    return {"per_network": per_net, "average": avg}


def render(res: dict) -> None:
    def _row(name, v):
        return [
            name,
            fmt(v["traffic_saving"] * 100, 1) + "%",
            fmt(v["traffic_cut_x"]) + "x",
            fmt(v["perf_improvement"] * 100, 1) + "%",
            fmt(v["energy_saving"] * 100, 1) + "%",
            fmt(v["auto_traffic_cut_x"]) + "x",
            fmt(v["auto_vs_mbs2_x"]) + "x",
            fmt(v["auto_lat_speedup_x"]) + "x",
            fmt(v["auto_lat_time_gain_x"]) + "x",
            fmt(v["auto_en_saving"] * 100, 1) + "%",
            fmt(v["auto_en_vs_mbs2_x"]) + "x",
        ]

    rows = [_row(name, v) for name, v in res["per_network"].items()]
    rows.append(_row("AVERAGE", res["average"]))
    print(format_table(
        ["network", "DRAM saving", "traffic cut", "perf gain",
         "energy saving", "auto cut", "auto/mbs2", "lat speedup",
         "lat gain", "en(auto) saving", "en auto/mbs2"],
        rows,
        title=(
            "Headline — MBS2 vs conventional training "
            "(paper: 75% DRAM saving / 4.0x cut, 53% perf, 26% energy)"
        ),
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="headline",
    title="Headline — abstract's traffic / speedup / energy averages",
    produce=run,
    render=render,
    artifact=("per_network", "average"),
))


if __name__ == "__main__":
    main()
