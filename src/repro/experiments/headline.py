"""Headline numbers: the abstract's 75 % DRAM-traffic cut, 53 % speedup,
26 % energy saving (deep-CNN averages), and the Sec. 3 4.0× traffic cut."""
from __future__ import annotations

from repro.experiments.common import evaluate
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register

DEEP_CNNS = ("resnet50", "resnet101", "resnet152",
             "inception_v3", "inception_v4")


def run(networks: tuple[str, ...] = DEEP_CNNS) -> dict:
    per_net = {}
    for name in networks:
        base = evaluate(name, "baseline")
        arch = evaluate(name, "archopt")
        mbs2 = evaluate(name, "mbs2")
        per_net[name] = {
            "traffic_saving": 1.0 - mbs2.dram_bytes / arch.dram_bytes,
            "traffic_cut_x": arch.dram_bytes / mbs2.dram_bytes,
            "speedup_vs_baseline": base.time_s / mbs2.time_s,
            "perf_improvement": base.time_s / mbs2.time_s - 1.0,
            "energy_saving": 1.0 - mbs2.energy.total_j / base.energy.total_j,
        }
    n = len(per_net)
    avg = {
        k: sum(v[k] for v in per_net.values()) / n
        for k in next(iter(per_net.values()))
    }
    return {"per_network": per_net, "average": avg}


def render(res: dict) -> None:
    rows = [
        [
            name,
            fmt(v["traffic_saving"] * 100, 1) + "%",
            fmt(v["traffic_cut_x"]) + "x",
            fmt(v["perf_improvement"] * 100, 1) + "%",
            fmt(v["energy_saving"] * 100, 1) + "%",
        ]
        for name, v in res["per_network"].items()
    ]
    a = res["average"]
    rows.append([
        "AVERAGE",
        fmt(a["traffic_saving"] * 100, 1) + "%",
        fmt(a["traffic_cut_x"]) + "x",
        fmt(a["perf_improvement"] * 100, 1) + "%",
        fmt(a["energy_saving"] * 100, 1) + "%",
    ])
    print(format_table(
        ["network", "DRAM saving", "traffic cut", "perf gain", "energy saving"],
        rows,
        title=(
            "Headline — MBS2 vs conventional training "
            "(paper: 75% DRAM saving / 4.0x cut, 53% perf, 26% energy)"
        ),
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="headline",
    title="Headline — abstract's traffic / speedup / energy averages",
    produce=run,
    render=render,
    artifact=("per_network", "average"),
))


if __name__ == "__main__":
    main()
