"""Fig. 10: execution time (a), energy (b), and DRAM traffic (c) per
training step across six networks and six configurations (Tab. 3)."""
from __future__ import annotations

from repro.experiments.common import evaluate
from repro.experiments.tables import fmt, format_table, gib
from repro.runtime import ExperimentSpec, register
from repro.zoo import PAPER_NETWORKS

POLICIES = ("baseline", "archopt", "il", "mbs-fs", "mbs1", "mbs2")


def run(networks: tuple[str, ...] = PAPER_NETWORKS,
        memory: str = "HBM2") -> dict:
    grid: dict[str, dict[str, dict]] = {}
    for net in networks:
        grid[net] = {}
        for policy in POLICIES:
            rep = evaluate(net, policy, memory=memory)
            grid[net][policy] = {
                "time_s": rep.time_s,
                "energy_j": rep.energy.total_j,
                "dram_bytes": rep.dram_bytes,
                "utilization": rep.utilization,
            }
    return {"grid": grid, "policies": POLICIES, "memory": memory}


def render(res: dict, metrics: list[str] | None = None) -> None:
    metrics = metrics or ["time", "energy", "traffic"]
    grid = res["grid"]

    if "time" in metrics:
        rows = []
        for net, cells in grid.items():
            base = cells["baseline"]["time_s"]
            arch = cells["archopt"]["time_s"]
            rows.append(
                [net]
                + [f"{cells[p]['time_s'] * 1e3:7.1f}" for p in POLICIES]
                + [fmt(base / cells["mbs2"]["time_s"]),
                   fmt(arch / cells["mbs2"]["time_s"])]
            )
        print(format_table(
            ["network"] + [f"{p} ms" for p in POLICIES]
            + ["mbs2 vs base", "mbs2 vs archopt"],
            rows, title="Fig. 10a — execution time per training step"))
        print()

    if "energy" in metrics:
        rows = []
        for net, cells in grid.items():
            base = cells["baseline"]["energy_j"]
            rows.append(
                [net]
                + [f"{cells[p]['energy_j']:.2f}" for p in POLICIES]
                + [fmt(cells["mbs2"]["energy_j"] / base)]
            )
        print(format_table(
            ["network"] + [f"{p} J" for p in POLICIES] + ["mbs2/base"],
            rows, title="Fig. 10b — energy per training step"))
        print()

    if "traffic" in metrics:
        rows = []
        for net, cells in grid.items():
            arch = cells["archopt"]["dram_bytes"]
            rows.append(
                [net]
                + [gib(cells[p]["dram_bytes"]) for p in POLICIES]
                + [fmt(cells["mbs2"]["dram_bytes"] / arch)]
            )
        print(format_table(
            ["network"] + [f"{p} GiB" for p in POLICIES] + ["mbs2/archopt"],
            rows, title="Fig. 10c — DRAM traffic per training step (per core)"))


def main(argv: list[str] | None = None) -> None:
    argv = argv or []
    metrics = None
    if "--metric" in argv:
        metrics = [argv[argv.index("--metric") + 1]]
    render(run(), metrics)


SPEC = register(ExperimentSpec(
    name="fig10",
    title="Fig. 10 — time / energy / DRAM traffic across six networks",
    produce=run,
    render=render,
    sweep={"memory": ("HBM2", "HBM2x2", "GDDR5", "LPDDR4")},
    artifact=("grid", "policies", "memory"),
))


if __name__ == "__main__":
    main()
