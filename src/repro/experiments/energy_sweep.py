"""Energy sweep: simulated step energy vs global buffer size per policy,
including the adaptive ``mbs-auto`` under the energy objective.

The Sec. 6 companion to ``latency_sweep``: the paper reports 24–30 %
training-energy savings from the same reuse schedules that cut traffic,
because DRAM accesses dominate a memory-bound step's joules.  But the
joules-optimal schedule is not the bytes- or seconds-optimal one —
static power tracks *time* and the global buffer charges sub-batch
re-streaming even when its DRAM cost hides under compute — so
``mbs-auto --objective energy`` optimizes the exact
:class:`~repro.core.cost.EnergyCostModel` instead, and the dominance
table shows it is never costlier than mbs1/mbs2/mbs-auto(traffic or
latency) at any buffer size, by construction.
"""
from __future__ import annotations

from repro.experiments.common import evaluate_sweep
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register
from repro.types import MIB

#: label -> (Tab. 3 policy, grouping objective)
POLICY_SPECS = {
    "baseline": ("baseline", "traffic"),
    "mbs1": ("mbs1", "traffic"),
    "mbs2": ("mbs2", "traffic"),
    "mbs-auto": ("mbs-auto", "traffic"),
    "mbs-auto:lat": ("mbs-auto", "latency"),
    "mbs-auto:en": ("mbs-auto", "energy"),
}
BUFFERS_MIB = (1, 2, 5, 10, 20, 40)

#: Labels the energy objective must never exceed (the property-tested
#: dominance bound: its DP searches a superset of their partitions).
DOMINATED = ("mbs1", "mbs2", "mbs-auto", "mbs-auto:lat")


def run(
    net_name: str = "resnet50",
    buffers_mib: tuple[int, ...] = BUFFERS_MIB,
) -> dict:
    cells: dict[tuple[str, int], dict] = {}
    for label, (policy, objective) in POLICY_SPECS.items():
        reports = evaluate_sweep(
            net_name, policy, [b * MIB for b in buffers_mib],
            objective=objective,
        )
        for buf, rep in zip(buffers_mib, reports):
            cells[(label, buf)] = {
                "energy_j": rep.energy.total_j,
                "dram_share": rep.energy.share("dram"),
                "time_s": rep.time_s,
                "dram_bytes": rep.dram_bytes,
            }
    savings = {
        (label, buf): 1.0 - (
            cells[(label, buf)]["energy_j"]
            / cells[("baseline", buf)]["energy_j"]
        )
        for label, _ in POLICY_SPECS.items() if label != "baseline"
        for buf in buffers_mib
    }
    dominance = {
        buf: {
            "energy_gain": (
                min(cells[(l, buf)]["energy_j"] for l in DOMINATED)
                / cells[("mbs-auto:en", buf)]["energy_j"]
            ),
            "vs_latency_time": (
                cells[("mbs-auto:en", buf)]["time_s"]
                / cells[("mbs-auto:lat", buf)]["time_s"]
            ),
        }
        for buf in buffers_mib
    }
    return {
        "network": net_name,
        "buffers_mib": tuple(buffers_mib),
        "cells": cells,
        "savings": savings,
        "dominance": dominance,
    }


def render(res: dict) -> None:
    from repro.experiments.plots import line_plot

    labels = list(POLICY_SPECS)
    buffers = res["buffers_mib"]
    rows = []
    for buf in buffers:
        rows.append(
            [f"{buf} MiB"]
            + [fmt(res["cells"][(p, buf)]["energy_j"] * 1e3, 3)
               for p in labels]
        )
    print(format_table(
        ["buffer"] + labels, rows,
        title=(
            f"Energy sweep — {res['network']} step energy (mJ) vs "
            "global buffer size"
        ),
    ))
    print()
    rows = []
    for buf in buffers:
        rows.append(
            [f"{buf} MiB"]
            + [fmt(res["savings"][(p, buf)] * 100, 1) + "%"
               for p in labels if p != "baseline"]
        )
    print(format_table(
        ["buffer"] + [p for p in labels if p != "baseline"], rows,
        title=(
            "Energy saving vs Baseline "
            "(paper Sec. 6: MBS saves 24-30% on deep CNNs)"
        ),
    ))
    print()
    print(line_plot(
        {
            p: [res["cells"][(p, b)]["energy_j"] * 1e3 for b in buffers]
            for p in labels
        },
        title=(
            f"step energy (mJ) across buffer sizes "
            f"{buffers[0]}..{buffers[-1]} MiB"
        ),
    ))
    print()
    rows = [
        [f"{buf} MiB",
         fmt(res["dominance"][buf]["energy_gain"]) + "x",
         fmt(res["dominance"][buf]["vs_latency_time"]) + "x"]
        for buf in buffers
    ]
    print(format_table(
        ["buffer", "energy gain", "time vs mbs-auto:lat"], rows,
        title=(
            "Objective dominance — mbs-auto:en vs best other policy "
            "(gain >= 1 by construction; time is the price it may pay)"
        ),
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="energy_sweep",
    title="Energy sweep — step energy vs buffer size, energy objective",
    produce=run,
    render=render,
    quick={"buffers_mib": (1, 5, 10)},
    sweep={"net_name": ("resnet50", "resnet101", "inception_v3")},
    artifact=("network", "buffers_mib", "cells", "savings", "dominance"),
))


if __name__ == "__main__":
    main()
