"""Fig. 4 & Fig. 5: per-block footprints, minimum iterations, and the MBS
layer grouping / sub-batch schedule for ResNet-50."""
from __future__ import annotations

from repro.core.policies import DEFAULT_BUFFER_BYTES, make_schedule
from repro.core.footprint import block_space_per_sample
from repro.core.subbatch import (
    feasible_sub_batch,
    iteration_count,
    sub_batch_sequence,
)
from repro.experiments.common import network
from repro.experiments.tables import format_table, mib
from repro.runtime import ExperimentSpec, register


def run(
    net_name: str = "resnet50",
    mini_batch: int = 32,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    policy: str = "mbs2",
) -> dict:
    net = network(net_name)
    sched = make_schedule(net, policy, buffer_bytes, mini_batch)
    blocks = []
    for idx, block in enumerate(net.blocks):
        # Each row reflects the provisioning mode that actually governs
        # the block: mbs-auto mixes MBS1/MBS2-style groups per schedule.
        branch_reuse = sched.branch_reuse_of(idx)
        space = block_space_per_sample(block, branch_reuse)
        s = feasible_sub_batch(block, buffer_bytes, mini_batch, branch_reuse)
        blocks.append(
            {
                "name": block.name,
                "space_per_sample": space,
                "sub_batch": s,
                "min_iterations": iteration_count(mini_batch, s),
            }
        )
    groups = [
        {
            "blocks": g.blocks,
            "sub_batch": g.sub_batch,
            "iterations": g.iterations,
            "sequence": sub_batch_sequence(mini_batch, g.sub_batch),
        }
        for g in sched.groups
    ]
    return {
        "network": net_name,
        "mini_batch": mini_batch,
        "blocks": blocks,
        "groups": groups,
        "schedule": sched,
    }


def render(res: dict) -> None:
    group_of = {}
    for gi, g in enumerate(res["groups"], 1):
        for b in g["blocks"]:
            group_of[b] = gi
    rows = [
        [
            i,
            b["name"],
            mib(b["space_per_sample"]),
            b["sub_batch"],
            b["min_iterations"],
            group_of[i],
        ]
        for i, b in enumerate(res["blocks"])
    ]
    print(
        format_table(
            ["#", "block", "MiB/sample", "sub-batch", "min iters", "group"],
            rows,
            title=(
                f"Fig. 4 — {res['network']} per-block footprint, minimum "
                f"iterations and MBS grouping (N={res['mini_batch']})"
            ),
        )
    )
    print("\nFig. 5 — sub-batch schedule per group:")
    for gi, g in enumerate(res["groups"], 1):
        seq = ",".join(str(s) for s in g["sequence"])
        print(
            f"  group{gi}: {g['iterations']} iterations, sizes = {seq}"
        )


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="fig4",
    title="Fig. 4/5 — per-block footprint, min iterations, MBS grouping",
    produce=run,
    render=render,
    sweep={
        "policy": ("mbs1", "mbs2", "mbs-auto"),
        "mini_batch": (16, 32, 64),
    },
    artifact=("network", "mini_batch", "blocks", "groups"),
))


if __name__ == "__main__":
    main()
