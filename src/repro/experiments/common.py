"""Shared helpers for the experiment drivers.

The :func:`network` memo is per-process: each runtime pool worker
builds its own copy on first use, so produce-fns stay pure functions of
their parameters and results are identical under any ``--jobs`` count.
"""
from __future__ import annotations

from functools import lru_cache

from repro.core.policies import (
    DEFAULT_BUFFER_BYTES,
    HARDWARE_OBJECTIVES,
    make_schedule,
)
from repro.wavecore.config import config_for_policy
from repro.wavecore.report import StepReport
from repro.wavecore.simulator import simulate_step
from repro.zoo import build


@lru_cache(maxsize=None)
def network(name: str):
    return build(name)


def clear_caches() -> None:
    """Drop memoized networks (cold-path benchmarks, worker hygiene)."""
    network.cache_clear()


def evaluate(
    net_name: str,
    policy: str,
    memory: str = "HBM2",
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    unlimited_bandwidth: bool = False,
    objective: str = "traffic",
) -> StepReport:
    """Simulate one (network, Tab. 3 configuration) cell.

    ``archopt`` runs the Baseline schedule on double-buffered hardware;
    every other policy name maps 1:1 to a schedule.  ``objective``
    selects what the adaptive ``mbs-auto`` grouping minimizes (DRAM
    ``"traffic"``, simulated step ``"latency"``, the lexicographic
    ``"latency+traffic"``, or simulated ``"energy"``); fixed policies
    accept only the default.
    """
    if objective in HARDWARE_OBJECTIVES and unlimited_bandwidth:
        raise ValueError(
            f"objective={objective!r} prices bandwidth-limited hardware; "
            "under unlimited_bandwidth the reported metric is a different "
            "one, so the combination would mislead"
        )
    net = network(net_name)
    sched_policy = "baseline" if policy == "archopt" else policy
    cfg = config_for_policy(policy, memory=memory, buffer_bytes=buffer_bytes)
    sched = make_schedule(
        net, sched_policy, buffer_bytes=buffer_bytes, objective=objective,
        # the hardware-priced DPs must price the exact hardware we
        # simulate on (memory bandwidth shifts the compute/memory-bound
        # crossover; memory type shifts per-bit DRAM energy)
        cfg=cfg if objective in HARDWARE_OBJECTIVES else None,
    )
    return simulate_step(
        net, sched, cfg, unlimited_bandwidth=unlimited_bandwidth
    )
