"""Shared helpers for the experiment drivers.

The :func:`network` memo is per-process: each runtime pool worker
builds its own copy on first use, so produce-fns stay pure functions of
their parameters and results are identical under any ``--jobs`` count.
"""
from __future__ import annotations

from functools import lru_cache

from repro.core.policies import (
    DEFAULT_BUFFER_BYTES,
    HARDWARE_OBJECTIVES,
    SweepCaches,
    make_schedule,
)
from repro.wavecore.config import config_for_policy
from repro.wavecore.report import StepReport
from repro.wavecore.simulator import simulate_step
from repro.zoo import build


@lru_cache(maxsize=None)
def network(name: str):
    return build(name)


def clear_caches() -> None:
    """Drop memoized networks (cold-path benchmarks, worker hygiene)."""
    network.cache_clear()


def evaluate(
    net_name: str,
    policy: str,
    memory: str = "HBM2",
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    unlimited_bandwidth: bool = False,
    objective: str = "traffic",
) -> StepReport:
    """Simulate one (network, Tab. 3 configuration) cell.

    ``archopt`` runs the Baseline schedule on double-buffered hardware;
    every other policy name maps 1:1 to a schedule.  ``objective``
    selects what the adaptive ``mbs-auto`` grouping minimizes (DRAM
    ``"traffic"``, simulated step ``"latency"``, the lexicographic
    ``"latency+traffic"``, or simulated ``"energy"``); fixed policies
    accept only the default.
    """
    return evaluate_sweep(
        net_name, policy, (buffer_bytes,), memory=memory,
        unlimited_bandwidth=unlimited_bandwidth, objective=objective,
    )[0]


def evaluate_sweep(
    net_name: str,
    policy: str,
    buffer_sizes,
    memory: str = "HBM2",
    unlimited_bandwidth: bool = False,
    objective: str = "traffic",
) -> list[StepReport]:
    """One :func:`evaluate` per buffer size, sharing pricing work.

    Returns exactly the reports the per-point ``evaluate`` calls would
    (same schedules, same simulations), but the ``mbs-auto`` schedule
    searches of all points share one
    :class:`~repro.core.policies.SweepCaches` — compute profiles,
    walker memos, and group prices persist across points, which is what
    makes the buffer-sweep experiments cheap to densify.
    """
    if objective in HARDWARE_OBJECTIVES and unlimited_bandwidth:
        raise ValueError(
            f"objective={objective!r} prices bandwidth-limited hardware; "
            "under unlimited_bandwidth the reported metric is a different "
            "one, so the combination would mislead"
        )
    net = network(net_name)
    sched_policy = "baseline" if policy == "archopt" else policy
    caches = SweepCaches() if sched_policy == "mbs-auto" else None
    reports = []
    for buffer_bytes in buffer_sizes:
        cfg = config_for_policy(
            policy, memory=memory, buffer_bytes=buffer_bytes
        )
        sched = make_schedule(
            net, sched_policy, buffer_bytes=buffer_bytes,
            objective=objective,
            # the hardware-priced DPs must price the exact hardware we
            # simulate on (memory bandwidth shifts the compute/memory-
            # bound crossover; memory type shifts per-bit DRAM energy)
            cfg=cfg if objective in HARDWARE_OBJECTIVES else None,
            _caches=caches,
        )
        reports.append(simulate_step(
            net, sched, cfg, unlimited_bandwidth=unlimited_bandwidth
        ))
    return reports
