"""JSON export of all experiment artifacts.

``mbs-repro export results.json`` serializes every driver's ``run()``
output so EXPERIMENTS.md numbers can be regenerated and diffed.
"""
from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any


def _jsonify(obj: Any) -> Any:
    """Recursively convert experiment results to JSON-compatible data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonify(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {_key(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "tolist"):  # numpy scalars/arrays
        return _jsonify(obj.tolist())
    # schedules, reports, models: describe by repr
    return repr(obj)


def _key(k: Any) -> str:
    if isinstance(k, tuple):
        return "/".join(str(_jsonify(x)) for x in k)
    if isinstance(k, enum.Enum):
        return str(k.value)
    return str(k)


def export_all(path: str, quick: bool = True) -> dict:
    """Run every experiment and dump the results to ``path``."""
    from repro.experiments import ALL_EXPERIMENTS

    results: dict[str, Any] = {}
    for name, module in ALL_EXPERIMENTS.items():
        if name == "fig6":
            kwargs = (
                {"epochs": 3, "train_samples": 256, "val_samples": 128}
                if quick else {}
            )
            results[name] = _jsonify(module.run(**kwargs))
        else:
            results[name] = _jsonify(module.run())
    with open(path, "w") as fh:
        json.dump(results, fh, indent=1, default=repr)
    return results


def main(argv: list[str] | None = None) -> None:
    argv = argv or ["results.json"]
    results = export_all(argv[0])
    print(f"wrote {len(results)} experiment results to {argv[0]}")


if __name__ == "__main__":
    main()
