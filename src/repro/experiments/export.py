"""JSON export of all experiment artifacts.

``mbs-repro export results.json`` serializes every registered spec's
``run()`` output so EXPERIMENTS.md numbers can be regenerated and
diffed.  Export rides on the :mod:`repro.runtime` engine: results come
from the content-addressed cache when available and the misses can be
fanned out across workers with ``jobs``.
"""
from __future__ import annotations

import json
from typing import Any

from repro.runtime.serialize import jsonify

#: backwards-compatible alias — the canonical converter moved into the
#: runtime so cache manifests and exports share one encoding.
_jsonify = jsonify


def export_all(
    path: str,
    quick: bool = True,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> dict:
    """Run every experiment (cache-aware) and dump the results to ``path``."""
    from repro.experiments import ALL_EXPERIMENTS
    from repro.runtime import Task, get_spec, run_tasks

    tasks = [
        Task(get_spec(name), {}, quick=quick) for name in ALL_EXPERIMENTS
    ]
    task_results = run_tasks(
        tasks, jobs=jobs, cache=cache, use_cache=use_cache
    )
    failed = [r.spec_name for r in task_results if not r.ok]
    if failed:
        raise RuntimeError(f"experiment(s) failed: {' '.join(failed)}")
    results: dict[str, Any] = {
        r.spec_name: r.artifact for r in task_results
    }
    with open(path, "w") as fh:
        json.dump(results, fh, indent=1, default=repr)
    return results


def main(argv: list[str] | None = None) -> None:
    argv = argv or ["results.json"]
    results = export_all(argv[0])
    print(f"wrote {len(results)} experiment results to {argv[0]}")


if __name__ == "__main__":
    main()
