"""Extension ablation: storage word size (fp16 vs fp32).

The paper evaluates with 16-bit storage (Sec. 5, mixed precision).  This
ablation re-runs the MBS pipeline at 4-byte words: footprints double, so
sub-batches shrink and iterations grow — quantifying how much of MBS's
win depends on the fp16 assumption.
"""
from __future__ import annotations

from repro.core.policies import DEFAULT_BUFFER_BYTES, make_schedule
from repro.core.traffic import TrafficOptions, compute_traffic
from repro.experiments.common import network
from repro.experiments.tables import fmt, format_table, gib
from repro.runtime import ExperimentSpec, register
from repro.types import MIB


def run(networks: tuple[str, ...] = ("resnet50", "inception_v3"),
        buffer_bytes: int = DEFAULT_BUFFER_BYTES) -> dict:
    rows = {}
    for name in networks:
        net = network(name)
        per_word = {}
        for word_bytes in (2, 4):
            opts = TrafficOptions(word_bytes=word_bytes)
            base = compute_traffic(
                net,
                make_schedule(net, "baseline", buffer_bytes,
                              word_bytes=word_bytes),
                opts,
            ).total_bytes
            sched = make_schedule(net, "mbs2", buffer_bytes,
                                  word_bytes=word_bytes)
            mbs = compute_traffic(net, sched, opts).total_bytes
            per_word[word_bytes] = {
                "baseline_bytes": base,
                "mbs2_bytes": mbs,
                "cut": base / mbs,
                "min_sub_batch": min(g.sub_batch for g in sched.groups),
                "groups": len(sched.groups),
            }
        rows[name] = per_word
    return {"rows": rows}


def render(res: dict) -> None:
    table = []
    for name, per_word in res["rows"].items():
        for wb, cell in per_word.items():
            table.append([
                name, f"fp{wb * 8}", gib(cell["baseline_bytes"]),
                gib(cell["mbs2_bytes"]), fmt(cell["cut"]) + "x",
                cell["min_sub_batch"], cell["groups"],
            ])
    print(format_table(
        ["network", "storage", "baseline GiB", "mbs2 GiB", "cut",
         "min sub-batch", "groups"],
        table,
        title="Precision ablation — fp16 vs fp32 storage (10 MiB buffer)",
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="precision",
    title="Precision ablation — fp16 vs fp32 storage word size",
    produce=run,
    render=render,
    sweep={"buffer_bytes": (5 * MIB, 10 * MIB, 20 * MIB)},
    artifact=("rows",),
))


if __name__ == "__main__":
    main()
