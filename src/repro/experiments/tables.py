"""Minimal fixed-width table formatting for experiment output."""
from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def mib(nbytes: float) -> str:
    return f"{nbytes / 2**20:.1f}"


def gib(nbytes: float) -> str:
    return f"{nbytes / 2**30:.2f}"
