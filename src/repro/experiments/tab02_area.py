"""Tab. 2: WaveCore area and peak-power estimate vs other accelerators."""
from __future__ import annotations

from repro.experiments.tables import format_table
from repro.runtime import ExperimentSpec, register
from repro.wavecore.area import estimate_area, estimate_power
from repro.wavecore.config import DEFAULT_CONFIG

#: Published reference points from the paper's Tab. 2.
REFERENCES = [
    ("V100", "12 FFN", 812.0, 1.53, "125 (FP16)", 250.0),
    ("TPU v1", "28", 331.0, 0.70, "92 (INT8)", 43.0),
    ("TPU v2", "N/A", float("nan"), 0.70, "45 (FP16)", float("nan")),
]


def run() -> dict:
    cfg = DEFAULT_CONFIG
    area = estimate_area(cfg)
    power = estimate_power(cfg)
    tops = cfg.cores * cfg.peak_macs_per_s * 2 / 1e12  # MAC = 2 ops
    return {
        "area": area,
        "power_w": power,
        "tops_fp16": tops,
        "clock_ghz": cfg.clock_hz / 1e9,
        "buffer_mib": cfg.cores * cfg.global_buffer_bytes / 2**20,
    }


def render(res: dict) -> None:
    a = res["area"]
    rows = [list(r) for r in REFERENCES]
    rows.append([
        "WaveCore (ours)", "32", f"{a.total_mm2:.1f}",
        f"{res['clock_ghz']:.2f}", f"{res['tops_fp16']:.0f} (FP16)",
        f"{res['power_w']:.0f}",
    ])
    print(format_table(
        ["accelerator", "node nm", "die mm2", "clock GHz", "TOPS", "peak W"],
        rows, title="Tab. 2 — accelerator comparison",
    ))
    print(
        f"\nWaveCore breakdown: PE array {a.pe_array_mm2:.2f} mm2, "
        f"global buffers {a.global_buffer_mm2:.2f} mm2, vector units "
        f"{a.vector_mm2:.2f} mm2, uncore {a.uncore_mm2:.2f} mm2 "
        f"(paper: 534.0 mm2 total, 56 W peak)"
    )


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="tab2",
    title="Tab. 2 — WaveCore area and peak power vs other accelerators",
    produce=run,
    render=render,
    artifact=("area", "power_w", "tops_fp16"),
))


if __name__ == "__main__":
    main()
