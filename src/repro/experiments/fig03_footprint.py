"""Fig. 3: per-layer inter-layer data and parameter size of ResNet-50.

Also reproduces the Sec. 2 observation that only ~9 % of inter-layer data
is reusable with a 10 MiB buffer at mini-batch 32.
"""
from __future__ import annotations

from repro.experiments.common import network
from repro.experiments.tables import format_table, mib
from repro.graph.stats import layer_stats, reusable_fraction
from repro.runtime import ExperimentSpec, register
from repro.types import MIB


def run(net_name: str = "resnet50", mini_batch: int = 32,
        buffer_mib: int = 10) -> dict:
    net = network(net_name)
    stats = sorted(
        layer_stats(net, mini_batch),
        key=lambda s: s.inter_layer_bytes,
        reverse=True,
    )
    frac = reusable_fraction(net, buffer_mib * MIB, mini_batch)
    return {
        "network": net_name,
        "mini_batch": mini_batch,
        "layers": stats,
        "reusable_fraction": frac,
        "buffer_mib": buffer_mib,
    }


def render(res: dict) -> None:
    rows = [
        [i, s.name, s.kind, mib(s.inter_layer_bytes), mib(s.param_bytes)]
        for i, s in enumerate(res["layers"])
    ]
    print(
        format_table(
            ["#", "layer", "kind", "inter-layer MiB", "params MiB"],
            rows[:30] + [["...", f"({len(rows) - 30} more)", "", "", ""]],
            title=(
                f"Fig. 3 — {res['network']} per-layer footprint at "
                f"N={res['mini_batch']} (sorted, top 30)"
            ),
        )
    )
    print(
        f"\nreusable inter-layer data with {res['buffer_mib']} MiB buffer: "
        f"{res['reusable_fraction'] * 100:.1f}%  (paper: 9.3%)"
    )


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="fig3",
    title="Fig. 3 — per-layer footprint and reusable fraction",
    produce=run,
    render=render,
    sweep={
        "net_name": ("resnet50", "resnet101", "inception_v3"),
        "mini_batch": (16, 32, 64),
        "buffer_mib": (5, 10, 20, 40),
    },
    artifact=("network", "mini_batch", "layers", "reusable_fraction"),
))


if __name__ == "__main__":
    main()
