"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes ``run(...)`` returning plain data structures, a
``render(res)`` that prints the figure/table, and registers an
:class:`~repro.runtime.spec.ExperimentSpec` into the global runtime
registry at import time.  The ``mbs-repro`` console script
(:mod:`repro.experiments.runner`) schedules the registered specs
through the :mod:`repro.runtime` pool/cache engine.

Import order below defines the canonical experiment ordering (the
registry preserves registration order).  ``ALL_EXPERIMENTS`` is kept as
a name → module compatibility view of the registry for callers that
still dispatch to ``module.main(argv)`` directly.
"""
import sys

from repro.experiments import (  # noqa: F401  (imports register the specs)
    fig03_footprint,
    fig04_grouping,
    fig06_normalization,
    fig10_main,
    fig11_buffer_sweep,
    fig12_memory_types,
    fig13_gpu_comparison,
    fig14_utilization,
    tab02_area,
    ablation_grouping,
    ablation_precision,
    headline,
    latency_sweep,
    energy_sweep,
    scalability,
    export,
)
from repro.runtime import all_specs

ALL_EXPERIMENTS = {
    spec.name: sys.modules[spec.module] for spec in all_specs()
}

__all__ = ["ALL_EXPERIMENTS"]
