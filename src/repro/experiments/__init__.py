"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes ``run(...)`` returning plain data structures and a
``main(argv)`` that prints the same rows/series the paper reports.  The
``mbs-repro`` console script (see :mod:`repro.experiments.runner`)
dispatches to them by artifact name.
"""
from repro.experiments import (
    ablation_grouping,
    ablation_precision,
    export,
    fig03_footprint,
    fig04_grouping,
    fig06_normalization,
    fig10_main,
    fig11_buffer_sweep,
    fig12_memory_types,
    fig13_gpu_comparison,
    fig14_utilization,
    headline,
    scalability,
    tab02_area,
)

ALL_EXPERIMENTS = {
    "fig3": fig03_footprint,
    "fig4": fig04_grouping,
    "fig6": fig06_normalization,
    "fig10": fig10_main,
    "fig11": fig11_buffer_sweep,
    "fig12": fig12_memory_types,
    "fig13": fig13_gpu_comparison,
    "fig14": fig14_utilization,
    "tab2": tab02_area,
    "ablation": ablation_grouping,
    "precision": ablation_precision,
    "headline": headline,
    "scaling": scalability,
}

__all__ = ["ALL_EXPERIMENTS"]
