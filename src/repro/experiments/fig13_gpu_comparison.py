"""Fig. 13: NVIDIA V100 vs WaveCore+MBS2 across memory types."""
from __future__ import annotations

from repro.experiments.common import evaluate, network
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register
from repro.wavecore.gpu import simulate_gpu_step

NETWORKS = ("resnet50", "resnet101", "resnet152", "inception_v3")
MEMORIES = ("HBM2x2", "HBM2", "GDDR5", "LPDDR4")


def run(networks: tuple[str, ...] = NETWORKS) -> dict:
    rows = {}
    for name in networks:
        v100_s = simulate_gpu_step(network(name))
        wave = {
            mem: evaluate(name, "mbs2", memory=mem).time_s for mem in MEMORIES
        }
        rows[name] = {
            "v100_s": v100_s,
            "wavecore_s": wave,
            "speedup": {mem: v100_s / t for mem, t in wave.items()},
        }
    return {"rows": rows}


def render(res: dict) -> None:
    table = []
    for name, row in res["rows"].items():
        table.append(
            [name, f"{row['v100_s'] * 1e3:7.1f}"]
            + [
                f"{row['wavecore_s'][m] * 1e3:7.1f} ({fmt(row['speedup'][m])}x)"
                for m in MEMORIES
            ]
        )
    print(format_table(
        ["network", "V100 ms"] + [f"WaveCore {m}" for m in MEMORIES],
        table,
        title=(
            "Fig. 13 — measured-model V100 vs WaveCore+MBS2 per-step time "
            "(mini-batch 64 per device)"
        ),
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="fig13",
    title="Fig. 13 — V100 vs WaveCore+MBS2 across memory types",
    produce=run,
    render=render,
    artifact=("rows",),
))


if __name__ == "__main__":
    main()
