"""Latency sweep: simulated step time vs global buffer size per policy,
including the adaptive ``mbs-auto`` under both objectives.

The Fig. 11 companion for the paper's *actual* end goal (Fig. 10/13):
wall-clock step time.  Because per-layer time is ``max(compute, DRAM)``
under weight double buffering, extra traffic on compute-bound layers is
free in time — so the bytes-optimal ``mbs-auto`` and the time-optimal
``mbs-auto --objective latency`` genuinely diverge on tight buffers.
The divergence table quantifies the trade: step-time gain of the
latency objective against the DRAM bytes it spends to get it.
"""
from __future__ import annotations

from repro.experiments.common import evaluate_sweep
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register
from repro.types import MIB

#: label -> (Tab. 3 policy, grouping objective).  ``mbs-auto:lat+tra``
#: is the lexicographic composite: bit-identical step time to
#: ``mbs-auto:lat``, never more DRAM bytes — the certificate that the
#: latency optimum's bytes are all load-bearing (none hide for free).
POLICY_SPECS = {
    "il": ("il", "traffic"),
    "mbs1": ("mbs1", "traffic"),
    "mbs2": ("mbs2", "traffic"),
    "mbs-auto": ("mbs-auto", "traffic"),
    "mbs-auto:lat": ("mbs-auto", "latency"),
    "mbs-auto:lat+tra": ("mbs-auto", "latency+traffic"),
}
BUFFERS_MIB = (1, 2, 5, 10, 20, 40)


def run(
    net_name: str = "resnet50",
    buffers_mib: tuple[int, ...] = BUFFERS_MIB,
) -> dict:
    cells: dict[tuple[str, int], dict] = {}
    for label, (policy, objective) in POLICY_SPECS.items():
        reports = evaluate_sweep(
            net_name, policy, [b * MIB for b in buffers_mib],
            objective=objective,
        )
        for buf, rep in zip(buffers_mib, reports):
            cells[(label, buf)] = {
                "time_s": rep.time_s,
                "dram_bytes": rep.dram_bytes,
            }
    ref = cells[("il", buffers_mib[0])]
    norm = {
        k: {
            "time": v["time_s"] / ref["time_s"],
            "traffic": v["dram_bytes"] / ref["dram_bytes"],
        }
        for k, v in cells.items()
    }
    divergence = {
        buf: {
            "time_gain": (
                cells[("mbs-auto", buf)]["time_s"]
                / cells[("mbs-auto:lat", buf)]["time_s"]
            ),
            "traffic_cost": (
                cells[("mbs-auto:lat", buf)]["dram_bytes"]
                / cells[("mbs-auto", buf)]["dram_bytes"]
            ),
            # bytes the lexicographic tie-break strips at equal time
            # (1.0 when every byte of the latency optimum is load-bearing)
            "tiebreak_bytes": (
                cells[("mbs-auto:lat+tra", buf)]["dram_bytes"]
                / cells[("mbs-auto:lat", buf)]["dram_bytes"]
            ),
        }
        for buf in buffers_mib
    }
    return {
        "network": net_name,
        "buffers_mib": tuple(buffers_mib),
        "cells": cells,
        "normalized": norm,
        "divergence": divergence,
    }


def render(res: dict) -> None:
    from repro.experiments.plots import line_plot

    labels = list(POLICY_SPECS)
    buffers = res["buffers_mib"]
    for metric in ("time", "traffic"):
        rows = []
        for buf in buffers:
            rows.append(
                [f"{buf} MiB"]
                + [fmt(res["normalized"][(p, buf)][metric]) for p in labels]
            )
        print(format_table(
            ["buffer"] + labels, rows,
            title=(
                f"Latency sweep — {res['network']} normalized {metric} vs "
                f"global buffer size (1.0 = IL at {buffers[0]} MiB)"
            ),
        ))
        print()
        print(line_plot(
            {
                p: [res["normalized"][(p, b)][metric] for b in buffers]
                for p in labels
            },
            title=(
                f"normalized {metric} across buffer sizes "
                f"{buffers[0]}..{buffers[-1]} MiB"
            ),
        ))
        print()
    rows = [
        [f"{buf} MiB",
         fmt(res["divergence"][buf]["time_gain"]) + "x",
         fmt(res["divergence"][buf]["traffic_cost"]) + "x",
         fmt(res["divergence"][buf]["tiebreak_bytes"]) + "x"]
        for buf in buffers
    ]
    print(format_table(
        ["buffer", "step-time gain", "traffic spent", "lat+tra bytes"],
        rows,
        title=(
            "Objective divergence — mbs-auto:lat vs mbs-auto "
            "(gain >= 1 by construction; bytes are the price; the "
            "lat+tra column <= 1 certifies none of them are free)"
        ),
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="latency_sweep",
    title="Latency sweep — step time vs buffer size, both objectives",
    produce=run,
    render=render,
    quick={"buffers_mib": (1, 5, 10)},
    sweep={"net_name": ("resnet50", "resnet101", "inception_v3")},
    artifact=("network", "buffers_mib", "cells", "normalized", "divergence"),
))


if __name__ == "__main__":
    main()
