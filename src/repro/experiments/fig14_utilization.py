"""Fig. 14: systolic-array utilization with unlimited DRAM bandwidth."""
from __future__ import annotations

from repro.experiments.common import evaluate
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register
from repro.zoo import PAPER_NETWORKS

POLICIES = ("baseline", "archopt", "mbs-fs", "mbs1", "mbs2")


def run(networks: tuple[str, ...] = PAPER_NETWORKS) -> dict:
    grid: dict[str, dict[str, float]] = {}
    for net in networks:
        grid[net] = {
            p: evaluate(net, p, unlimited_bandwidth=True).utilization
            for p in POLICIES
        }
    avg = {
        p: sum(grid[n][p] for n in networks) / len(networks) for p in POLICIES
    }
    return {"grid": grid, "average": avg}


def render(res: dict) -> None:
    rows = [
        [net] + [fmt(res["grid"][net][p], 3) for p in POLICIES]
        for net in res["grid"]
    ]
    rows.append(["AVG"] + [fmt(res["average"][p], 3) for p in POLICIES])
    print(format_table(
        ["network"] + list(POLICIES), rows,
        title="Fig. 14 — systolic array utilization (unlimited DRAM BW)",
    ))
    print("\npaper averages: baseline 0.538, archopt 0.815, "
          "mbs-fs 0.667, mbs1/mbs2 0.786")


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="fig14",
    title="Fig. 14 — systolic-array utilization, unlimited DRAM bandwidth",
    produce=run,
    render=render,
    artifact=("grid", "average"),
))


if __name__ == "__main__":
    main()
