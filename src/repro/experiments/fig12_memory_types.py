"""Fig. 12: ResNet-50 training-time sensitivity to the memory type, with
the execution-time breakdown by layer type (Conv / FC / Norm / Pool / Sum)."""
from __future__ import annotations

from repro.experiments.common import evaluate
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register

POLICIES = ("baseline", "archopt", "il", "mbs2")
MEMORIES = ("HBM2x2", "GDDR5", "LPDDR4")
KINDS = ("conv", "fc", "norm", "pool", "add")


def run(net_name: str = "resnet50") -> dict:
    cells: dict[tuple[str, str], dict] = {}
    for policy in POLICIES:
        for mem in MEMORIES:
            rep = evaluate(net_name, policy, memory=mem)
            cells[(policy, mem)] = {
                "time_s": rep.time_s,
                "by_kind": rep.time_by_kind(),
            }
    base = cells[("baseline", "HBM2x2")]["time_s"]
    speedup = {k: base / v["time_s"] for k, v in cells.items()}
    return {"network": net_name, "cells": cells, "speedup": speedup}


def render(res: dict) -> None:
    rows = []
    for policy in POLICIES:
        for mem in MEMORIES:
            cell = res["cells"][(policy, mem)]
            by_kind = cell["by_kind"]
            rows.append(
                [policy, mem, f"{cell['time_s'] * 1e3:7.1f}",
                 fmt(res["speedup"][(policy, mem)])]
                + [f"{by_kind.get(k, 0.0) * 1e3:6.1f}" for k in KINDS]
            )
    print(format_table(
        ["config", "memory", "total ms", "speedup"]
        + [f"{k} ms" for k in KINDS],
        rows,
        title=(
            f"Fig. 12 — {res['network']} training time by memory type "
            "(speedup normalized to Baseline + HBM2x2)"
        ),
    ))


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="fig12",
    title="Fig. 12 — memory-type sensitivity with per-kind breakdown",
    produce=run,
    render=render,
    sweep={"net_name": ("resnet50", "inception_v3")},
    artifact=("network", "cells", "speedup"),
))


if __name__ == "__main__":
    main()
