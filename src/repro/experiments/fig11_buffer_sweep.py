"""Fig. 11: ResNet-50 time and DRAM traffic vs global buffer size
(5–40 MiB), normalized to IL at 5 MiB.

Extends the paper's four configurations with the adaptive ``mbs-auto``
policy, whose traffic is never above ``min(mbs1, mbs2)`` at any buffer
size by construction (it optimizes the byte-accurate cost model the
evaluator is built from)."""
from __future__ import annotations

from repro.experiments.common import evaluate_sweep
from repro.experiments.tables import fmt, format_table
from repro.runtime import ExperimentSpec, register
from repro.types import MIB

POLICIES = ("il", "mbs-fs", "mbs1", "mbs2", "mbs-auto")
BUFFER_MIB = (5, 10, 20, 30, 40)


def run(net_name: str = "resnet50") -> dict:
    cells: dict[tuple[str, int], dict] = {}
    for policy in POLICIES:
        reports = evaluate_sweep(
            net_name, policy, [b * MIB for b in BUFFER_MIB]
        )
        for buf, rep in zip(BUFFER_MIB, reports):
            cells[(policy, buf)] = {
                "time_s": rep.time_s,
                "dram_bytes": rep.dram_bytes,
            }
    ref = cells[("il", 5)]
    norm = {
        k: {
            "time": v["time_s"] / ref["time_s"],
            "traffic": v["dram_bytes"] / ref["dram_bytes"],
        }
        for k, v in cells.items()
    }
    return {"network": net_name, "cells": cells, "normalized": norm}


def render(res: dict) -> None:
    from repro.experiments.plots import line_plot

    for metric in ("time", "traffic"):
        rows = []
        for buf in BUFFER_MIB:
            rows.append(
                [f"{buf} MiB"]
                + [fmt(res["normalized"][(p, buf)][metric]) for p in POLICIES]
            )
        print(format_table(
            ["buffer"] + list(POLICIES), rows,
            title=(
                f"Fig. 11 — {res['network']} normalized {metric} vs global "
                "buffer size (1.0 = IL at 5 MiB)"
            ),
        ))
        print()
        print(line_plot(
            {
                p: [res["normalized"][(p, b)][metric] for b in BUFFER_MIB]
                for p in POLICIES
            },
            title=f"normalized {metric} across buffer sizes 5..40 MiB",
        ))
        print()


def main(argv: list[str] | None = None) -> None:
    render(run())


SPEC = register(ExperimentSpec(
    name="fig11",
    title="Fig. 11 — time and traffic vs global buffer size",
    produce=run,
    render=render,
    sweep={"net_name": ("resnet50", "resnet101", "inception_v3")},
    artifact=("network", "cells", "normalized"),
))


if __name__ == "__main__":
    main()
