"""``mbs-repro`` command-line entry point.

Usage::

    mbs-repro <artifact> [driver args]
    mbs-repro all
    mbs-repro schedule <network> [policy] [buffer MiB]

Artifacts: fig3 fig4 fig6 fig10 fig11 fig12 fig13 fig14 tab2 ablation
headline scaling.
"""
from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS


def _schedule_command(rest: list[str]) -> int:
    """Inspect the MBS schedule of any zoo network from the shell."""
    from repro.core.policies import make_schedule
    from repro.core.traffic import compute_traffic
    from repro.types import MIB
    from repro.zoo import build

    if not rest:
        print("usage: mbs-repro schedule <network> [policy] [buffer MiB]")
        return 2
    net = build(rest[0])
    policy = rest[1] if len(rest) > 1 else "mbs2"
    buffer_mib = int(rest[2]) if len(rest) > 2 else 10
    sched = make_schedule(net, policy, buffer_bytes=buffer_mib * MIB)
    print(sched.describe())
    rep = compute_traffic(net, sched)
    print(f"\nDRAM traffic/step: {rep.total_bytes / 2**30:.2f} GiB")
    for cat, nbytes in sorted(rep.by_category().items(), key=lambda kv: -kv[1]):
        print(f"  {cat.value:18s} {nbytes / 2**20:10.1f} MiB")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    name = argv[0]
    rest = argv[1:]
    if name == "schedule":
        return _schedule_command(rest)
    if name == "export":
        from repro.experiments.export import main as export_main
        export_main(rest or None)
        return 0
    if name == "all":
        for key, module in ALL_EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            args = ["--quick"] if key == "fig6" else []
            module.main(args)
        return 0
    if name not in ALL_EXPERIMENTS:
        print(f"unknown artifact {name!r}; choose from "
              f"{' '.join(ALL_EXPERIMENTS)} or 'all'")
        return 2
    ALL_EXPERIMENTS[name].main(rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
