"""``mbs-repro`` command-line entry point.

Experiments are declarative :class:`~repro.runtime.spec.ExperimentSpec`
entries scheduled through the :mod:`repro.runtime` engine: parameter
grids are sharded across a process pool (``--jobs N``) and every result
is written to a content-addressed cache keyed on spec name + parameters
+ code fingerprint, so an unchanged experiment is never recomputed.

Subcommands::

    mbs-repro run <artifact> [--set k=v ...] [--quick] [--no-cache]
    mbs-repro all [--jobs N] [--only a,b] [--full] [--out DIR]
    mbs-repro all --render-from-cache [--only a,b] [--out DIR]
    mbs-repro sweep <artifact> [--set axis=v1,v2,... ...] [--jobs N]
                    [--shard I/N] [--resume]
    mbs-repro merge DIR [DIR ...] --out DIR [--check REF]
    mbs-repro bench [--only a,b] [--json PATH] [--profile]
    mbs-repro schedule (<network> | --graph FILE.json) [policy]
                       [buffer MiB] [--objective OBJ] [--json]
    mbs-repro sweep-schedule <network> [policy] [--buffers MiB,..]
                             [--objective OBJ]
    mbs-repro serve [--host H] [--port P] [--workers N] [--timeout S]
                    [--lease-timeout S] [--max-attempts N]
    mbs-repro submit-sweep <artifact> [--set axis=v1,v2 ...] [--quick]
                           [--coordinator URL] [--wait] [--out DIR]
    mbs-repro work --coordinator URL [--jobs N] [--batch M]
    mbs-repro export [results.json] [--full] [--jobs N]
    mbs-repro fingerprint [--spec NAME]
    mbs-repro list

``all --render-from-cache`` replays the stored manifests without any
recomputation (a spec whose manifest is missing is reported, not run);
with ``--out DIR`` it *diffs* each stored manifest against
``DIR/<spec>.json`` instead of overwriting, so regenerated figure dumps
can be checked for staleness.

Common flags: ``--jobs N`` worker processes (default 1 = serial),
``--no-cache`` force recomputation, ``--cache-dir DIR`` cache root
(default ``.mbs-cache`` or ``$MBS_REPRO_CACHE``), ``--out DIR`` copy
result manifests to DIR, ``--timeout S`` per-task budget.

``sweep --shard I/N`` runs the I-th of N deterministic partitions of
the grid (point j lands on shard ``j mod N``), so N machines can split
one sweep; ``--resume`` skips points whose manifest already exists
before dispatching anything, making an interrupted sweep cheap to
restart.  ``merge`` unions the ``--out`` manifest dumps of several
shard runs into one directory, failing on any byte-level conflict;
``--check REF`` additionally verifies the union is byte-identical to a
reference dump (e.g. a single-process run) — see ``docs/caching.md``
for the full shard/resume/merge workflow.

``fingerprint`` prints the package-wide code fingerprint (CI uses it
in the ``actions/cache`` key for ``.mbs-cache``); ``fingerprint --spec
NAME`` prints the dependency-scoped fingerprint that spec's cache keys
actually use — the digest of its producing module's import closure.
``schedule --objective latency|latency+traffic|energy`` builds the
adaptive schedule that minimizes simulated step time / time-then-bytes
lexicographic / simulated step energy instead of DRAM bytes.

``schedule`` and ``sweep-schedule`` are thin shells over the
:mod:`repro.api` facade — the same calls the ``serve`` HTTP endpoints
make, so the CLI, the Python API, and the server print bit-identical
costs.  ``schedule --graph FILE.json`` prices an arbitrary schema-1
wire graph (:mod:`repro.graph.serialize`) instead of a zoo network;
``--json`` emits the exact :class:`~repro.api.ScheduleResult` wire
object.  ``serve`` runs the scheduling-as-a-service HTTP server
(:mod:`repro.serve`): request dedup, buffer-size batching, a
persistent result cache, and greedy degradation under load.
``sweep-schedule`` shares one set of pricing caches across the whole
sweep and reports the group-price memo hit rate that makes dense
sweeps cheap.  ``bench --profile`` runs each produce-fn under
:mod:`cProfile` and prints the top cumulative-time functions instead
of wall-clock rows.

``submit-sweep`` and ``work`` are the dynamic-queue alternative to
static ``--shard`` partitioning: ``submit-sweep`` enqueues one sweep
job on a running ``serve`` coordinator (``--wait`` polls it to
completion, ``--out DIR`` downloads the manifests into a
``merge``-compatible dump), and ``work`` leases point batches from the
coordinator, computes them through the normal cached engine, and
uploads manifests until every job is terminal — see
``docs/distributed.md`` for lease/retry semantics and how the queue
composes with ``--shard`` and ``--resume``.

Legacy form ``mbs-repro <artifact> [driver args]`` still dispatches to
the driver module directly (always recomputes).

Artifacts: fig3 fig4 fig6 fig10 fig11 fig12 fig13 fig14 tab2 ablation
precision headline scaling latency_sweep energy_sweep.
"""
from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS
from repro.runtime import (
    ResultCache,
    Task,
    code_fingerprint,
    get_spec,
    manifest_bytes,
    run_tasks,
    task_key,
)

SUBCOMMANDS = ("run", "all", "sweep", "merge", "bench", "schedule",
               "sweep-schedule", "serve", "submit-sweep", "work",
               "export", "fingerprint", "list")


def _schedule_command(rest: list[str]) -> int:
    """Inspect the MBS schedule of any network from the shell.

    A thin shell over :func:`repro.api.price` — the same facade the
    HTTP server and Python callers use, so every surface prints the
    same costs bit-for-bit.
    """
    import json

    from repro import api
    from repro.graph.serialize import GraphSchemaError, loads_network
    from repro.types import MIB

    has_graph = any(a == "--graph" or a.startswith("--graph=")
                    for a in rest)
    parser = argparse.ArgumentParser(
        prog="mbs-repro schedule", add_help=False,
        usage="mbs-repro schedule (<network> | --graph FILE.json) "
              "[policy] [buffer MiB] [--objective OBJ] [--json]",
    )
    if not has_graph:
        parser.add_argument("network", nargs="?")
    parser.add_argument("policy", nargs="?", default="mbs2")
    parser.add_argument("buffer_mib", nargs="?", type=int, default=10)
    parser.add_argument("--objective", choices=api.objectives(),
                        default="traffic")
    parser.add_argument("--graph", metavar="FILE.json")
    parser.add_argument("--json", action="store_true", dest="as_json")
    try:
        args = parser.parse_args(rest)
    except SystemExit:
        return 2
    if not has_graph and not args.network:
        print("usage: mbs-repro schedule (<network> | --graph FILE.json) "
              "[policy] [buffer MiB] "
              f"[--objective {'|'.join(api.objectives())}] [--json]")
        print(f"policies: {' '.join(api.policies())}  (default: mbs2)")
        return 2
    if has_graph:
        # Malformed graph input is a data error (exit 1), not a usage
        # error: the command line itself was fine.
        try:
            text = Path(args.graph).read_text()
        except OSError as exc:
            print(f"cannot read --graph file: {exc}", file=sys.stderr)
            return 1
        try:
            network = loads_network(text)
        except GraphSchemaError as exc:
            print(f"--graph {args.graph}: {exc}", file=sys.stderr)
            return 1
    else:
        network = args.network
    try:
        result = api.price(
            network, args.policy, buffer_bytes=args.buffer_mib * MIB,
            objective=args.objective,
        )
    except ValueError as exc:
        # unknown network / policy / objective combination: usage error
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(result.to_wire(), indent=1))
    else:
        print(result.describe())
    return 0


def _sweep_schedule_command(rest: list[str]) -> int:
    """Build one schedule per buffer size through the batch sweep engine.

    A thin shell over :func:`repro.api.sweep`; the per-point rows are
    :class:`~repro.api.ScheduleResult` digests.
    """
    from repro import api
    from repro.core.policies import SweepCaches
    from repro.experiments.tables import format_table
    from repro.types import MIB

    parser = argparse.ArgumentParser(
        prog="mbs-repro sweep-schedule", add_help=False,
        usage="mbs-repro sweep-schedule <network> [policy] "
              "[--buffers MiB,..] [--objective OBJ]",
    )
    parser.add_argument("network", nargs="?")
    parser.add_argument("policy", nargs="?", default="mbs-auto")
    parser.add_argument("--buffers", default="1,2,5,10,20,40",
                        metavar="MiB,..")
    parser.add_argument("--objective", choices=api.objectives(),
                        default="traffic")
    try:
        args = parser.parse_args(rest)
    except SystemExit:
        return 2
    if not args.network:
        print("usage: mbs-repro sweep-schedule <network> [policy] "
              "[--buffers MiB,..] "
              f"[--objective {'|'.join(api.objectives())}]")
        print(f"policies: {' '.join(api.policies())}  (default: mbs-auto)")
        return 2
    try:
        buffers_mib = tuple(float(v) for v in args.buffers.split(",") if v)
    except ValueError:
        print(f"--buffers expects comma-separated MiB values, got "
              f"{args.buffers!r}", file=sys.stderr)
        return 2
    buffer_sizes = [int(b * MIB) for b in buffers_mib]
    caches = SweepCaches()
    try:
        results = api.sweep(
            args.network, args.policy, buffer_sizes,
            objective=args.objective, caches=caches,
        )
    except ValueError as exc:
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    rows = []
    for buf, res in zip(buffers_mib, results):
        subs = [g.sub_batch for g in res.groups]
        rows.append([
            f"{buf:g} MiB", str(len(res.groups)),
            f"{min(subs)}..{max(subs)}" if subs else "-",
            str(res.relu_mask),
            f"{res.traffic_bytes / 2**30:.3f}",
        ])
    print(format_table(
        ["buffer", "groups", "sub-batch", "relu mask", "DRAM GiB/step"],
        rows,
        title=(f"sweep-schedule — {args.network} {args.policy} "
               f"objective={args.objective}"),
    ))
    total = caches.hits + caches.misses
    if total:
        print(f"\ngroup-price memo: {caches.hits} hits / "
              f"{caches.misses} misses "
              f"({100.0 * caches.hits / total:.1f}% hit rate)")
    return 0


def _serve_command(rest: list[str]) -> int:
    """Run the scheduling-as-a-service HTTP server until interrupted."""
    import asyncio

    from repro.runtime.journal import JournalError
    from repro.serve import run_server

    parser = argparse.ArgumentParser(
        prog="mbs-repro serve", add_help=False,
        usage="mbs-repro serve [--host H] [--port P] [--workers N] "
              "[--timeout S] [--max-pending N] [--cache-dir DIR] "
              "[--no-cache] [--cache-max-entries N] "
              "[--cache-max-bytes B] [--lease-timeout S] "
              "[--max-attempts N] [--state-dir DIR]",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    # Bounded by default: a long-lived server must not grow its result
    # store without limit.  0 disables a bound (unbounded).
    parser.add_argument("--cache-max-entries", type=int, default=4096)
    parser.add_argument("--cache-max-bytes", type=int, default=0)
    # work-queue defaults for hosted sweep jobs (/v1/jobs)
    parser.add_argument("--lease-timeout", type=float, default=60.0)
    parser.add_argument("--max-attempts", type=int, default=3)
    # journal + snapshots: a restart on the same dir resumes the queue
    parser.add_argument("--state-dir", default=None)
    try:
        args = parser.parse_args(rest)
    except SystemExit:
        return 2
    if (args.workers < 0 or args.timeout <= 0 or args.max_pending < 0
            or args.cache_max_entries < 0 or args.cache_max_bytes < 0):
        print("serve: --workers/--max-pending/--cache-max-* must be "
              ">= 0 and --timeout > 0", file=sys.stderr)
        return 2
    if args.lease_timeout <= 0 or args.max_attempts < 1:
        print("serve: --lease-timeout must be > 0 and --max-attempts "
              ">= 1", file=sys.stderr)
        return 2
    cache = None if args.no_cache else (
        ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    )
    try:
        asyncio.run(run_server(
            host=args.host, port=args.port, workers=args.workers,
            timeout_s=args.timeout, max_pending=args.max_pending,
            cache=cache,
            cache_max_entries=args.cache_max_entries or None,
            cache_max_bytes=args.cache_max_bytes or None,
            lease_timeout_s=args.lease_timeout,
            max_attempts=args.max_attempts,
            state_dir=args.state_dir,
        ))
    except JournalError as exc:
        print(f"serve: cannot restore state: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\nserve: interrupted, shutting down")
    return 0


def _submit_sweep_command(rest: list[str]) -> int:
    """Enqueue one sweep job on a running coordinator.

    A thin shell over :class:`repro.api.SweepJobRequest` +
    :class:`~repro.serve.worker.CoordinatorClient`.  A submission the
    coordinator rejects (unknown artifact, malformed axis) prints the
    server's path-qualified message and exits 1.
    """
    import time as _time

    from repro import api
    from repro.runtime import manifest_bytes as _manifest_bytes
    from repro.serve.worker import CoordinatorClient, CoordinatorError

    parser = argparse.ArgumentParser(
        prog="mbs-repro submit-sweep", add_help=False,
        usage="mbs-repro submit-sweep <artifact> [--set axis=v1,v2 ...] "
              "[--quick] [--coordinator URL] [--lease-timeout S] "
              "[--max-attempts N] [--wait] [--poll S] [--out DIR]",
    )
    parser.add_argument("artifact", nargs="?")
    parser.add_argument("--set", action="append", default=[],
                        metavar="axis=v1,v2")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--coordinator", default="http://127.0.0.1:8787")
    parser.add_argument("--lease-timeout", type=float, default=None)
    parser.add_argument("--max-attempts", type=int, default=None)
    parser.add_argument("--wait", action="store_true")
    parser.add_argument("--poll", type=float, default=1.0)
    parser.add_argument("--out", metavar="DIR", default=None)
    try:
        args = parser.parse_args(rest)
    except SystemExit:
        return 2
    if not args.artifact:
        print("usage: mbs-repro submit-sweep <artifact> "
              "[--set axis=v1,v2 ...] [--quick] [--coordinator URL] "
              "[--wait] [--out DIR]")
        return 2
    try:
        axes = _parse_sets(args.set, multi=True)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    request = api.SweepJobRequest(
        artifact=args.artifact,
        axes=axes or None,
        quick=args.quick,
        max_attempts=args.max_attempts,
        lease_timeout_s=args.lease_timeout,
    )
    try:
        client = CoordinatorClient(args.coordinator)
    except ValueError as exc:
        print(f"submit-sweep: {exc}", file=sys.stderr)
        return 2
    try:
        status = client.submit(request)
    except CoordinatorError as exc:
        print(f"submit-sweep: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"submit-sweep: cannot reach {args.coordinator}: {exc}",
              file=sys.stderr)
        return 1
    print(status.describe())
    if args.wait:
        while status.state == "running":
            _time.sleep(args.poll)
            status = client.job(status.job_id)
        print(status.describe())
    if args.out:
        wire = client.manifests(status.job_id)
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        for manifest in wire["manifests"]:
            name = f"{manifest['spec']}--{manifest['key']}.json"
            (out / name).write_bytes(_manifest_bytes(manifest))
        print(f"wrote {len(wire['manifests'])} manifest(s) to {out}")
    return 0 if status.state != "failed" else 1


def _work_command(rest: list[str]) -> int:
    """Run one sweep worker against a coordinator until jobs drain."""
    from repro.serve.worker import (
        CoordinatorClient,
        CoordinatorError,
        work_loop,
    )

    parser = argparse.ArgumentParser(
        prog="mbs-repro work", add_help=False,
        usage="mbs-repro work --coordinator URL [--jobs N] [--batch M] "
              "[--poll S] [--cache-dir DIR] [--no-cache] "
              "[--worker-id ID] [--timeout S] [--max-leases N] "
              "[--reconnect S]",
    )
    parser.add_argument("--coordinator", default="http://127.0.0.1:8787")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--poll", type=float, default=1.0)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--timeout", type=float, default=None)
    # fault-injection hook: sleep after each lease grant before
    # computing (the kill tests use it to die while holding a lease)
    parser.add_argument("--stall", type=float, default=0.0)
    parser.add_argument("--max-leases", type=int, default=None)
    # how long the coordinator may stay unreachable before the worker
    # gives up (a bounce within this budget looks like a slow poll)
    parser.add_argument("--reconnect", type=float, default=60.0)
    try:
        args = parser.parse_args(rest)
    except SystemExit:
        return 2
    if args.jobs < 1 or (args.batch is not None and args.batch < 1):
        print("work: --jobs and --batch must be >= 1", file=sys.stderr)
        return 2
    if args.reconnect < 0:
        print("work: --reconnect must be >= 0", file=sys.stderr)
        return 2
    try:
        client = CoordinatorClient(args.coordinator)
    except ValueError as exc:
        print(f"work: {exc}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        work_loop(
            client,
            worker=args.worker_id,
            jobs=args.jobs,
            batch=args.batch,
            poll_s=args.poll,
            cache=cache,
            use_cache=not args.no_cache,
            timeout_s=args.timeout,
            stall_s=args.stall,
            max_leases=args.max_leases,
            reconnect_s=args.reconnect,
        )
    except KeyboardInterrupt:
        print("\nwork: interrupted", file=sys.stderr)
        return 1
    except (CoordinatorError, OSError) as exc:
        print(f"work: {exc}", file=sys.stderr)
        return 1
    return 0


def _parse_value(text: str):
    """``--set`` values: Python literals when possible, else strings."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_sets(pairs: list[str], multi: bool = False) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects k=v, got {pair!r}")
        key, _, raw = pair.partition("=")
        if multi:
            out[key] = tuple(_parse_value(v) for v in raw.split(","))
        else:
            out[key] = _parse_value(raw)
    return out


def _add_engine_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default: 1, serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute even when a cached result exists")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="cache root (default: .mbs-cache or $MBS_REPRO_CACHE)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="also write result manifests under DIR")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-task wall-clock budget in seconds "
                        "(enforced in pool mode, --jobs >= 2)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mbs-repro",
        description="MBS paper-artifact runner (parallel, cached).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one experiment and print its figure")
    p.add_argument("artifact")
    p.add_argument("--set", action="append", default=[], metavar="k=v",
                   help="override one produce-fn parameter")
    p.add_argument("--quick", action="store_true",
                   help="use the spec's cheaper CI parameters")
    _add_engine_flags(p)

    p = sub.add_parser("all", help="run every registered experiment")
    p.add_argument("--only", metavar="a,b", default=None,
                   help="comma-separated subset of artifacts")
    p.add_argument("--full", action="store_true",
                   help="disable the specs' --quick parameter overrides")
    p.add_argument("--summary", action="store_true",
                   help="suppress rendered figures, print the table only")
    p.add_argument("--render-from-cache", action="store_true",
                   help="replay stored manifests without recomputation; "
                        "with --out, diff against DIR instead of writing")
    _add_engine_flags(p)

    p = sub.add_parser("sweep", help="run an experiment's parameter grid")
    p.add_argument("artifact")
    p.add_argument("--set", action="append", default=[],
                   metavar="axis=v1,v2",
                   help="override one sweep axis (comma-separated values)")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--shard", metavar="I/N", default=None,
                   help="run only the I-th of N deterministic grid "
                        "partitions (grid index mod N == I)")
    p.add_argument("--resume", action="store_true",
                   help="skip points whose manifest already exists in "
                        "the cache (presence check, nothing reloaded)")
    _add_engine_flags(p)

    p = sub.add_parser(
        "merge",
        help="union shard --out manifest dumps into one directory",
    )
    p.add_argument("dirs", nargs="+", metavar="DIR",
                   help="manifest dump directories (sweep --out)")
    p.add_argument("--out", metavar="DIR", required=True,
                   help="directory receiving the merged manifests")
    p.add_argument("--check", metavar="REF", default=None,
                   help="verify the merged set is byte-identical to "
                        "this reference dump (non-zero exit otherwise)")

    p = sub.add_parser("bench", help="time each experiment produce-fn")
    p.add_argument("--only", metavar="a,b", default=None)
    p.add_argument("--full", action="store_true")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write timings as JSON")
    p.add_argument("--profile", action="store_true",
                   help="run each produce-fn under cProfile and print "
                        "the top cumulative-time functions")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="where fresh manifests land (cache is bypassed)")

    p = sub.add_parser("export", help="dump every artifact to one JSON file")
    p.add_argument("path", nargs="?", default="results.json")
    p.add_argument("--full", action="store_true")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default: 1, serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute even when a cached result exists")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="cache root (default: .mbs-cache or $MBS_REPRO_CACHE)")

    p = sub.add_parser(
        "fingerprint",
        help="print the package code fingerprint (CI cache key for "
             ".mbs-cache), or one spec's dependency-scoped fingerprint",
    )
    p.add_argument("--spec", metavar="NAME", default=None,
                   help="print NAME's per-spec fingerprint (the import-"
                        "closure digest its cache keys use) instead of "
                        "the package-wide digest")

    sub.add_parser("list", help="list registered experiments")
    return parser


def _make_cache(args) -> ResultCache:
    return ResultCache(args.cache_dir) if args.cache_dir else ResultCache()


def _write_out(results, out_dir: str, per_spec_names: bool) -> None:
    """Copy manifests to ``--out``: deterministic bytes, no timings."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for r in results:
        if r.manifest is None:
            continue
        name = (f"{r.spec_name}.json" if per_spec_names
                else f"{r.spec_name}--{r.key}.json")
        (out / name).write_bytes(manifest_bytes(r.manifest))


def _summary_table(results) -> str:
    from repro.experiments.tables import format_table

    rows = [
        [r.spec_name, r.status, f"{r.seconds:6.2f}", r.key,
         r.manifest_path or "-"]
        for r in results
    ]
    return format_table(
        ["artifact", "status", "secs", "key", "manifest"], rows,
        title="runtime summary",
    )


def _print_failures(results) -> None:
    for r in results:
        if not r.ok:
            print(f"\n[{r.spec_name}] {r.status}:\n{r.error}",
                  file=sys.stderr)


def _cmd_run(args) -> int:
    try:
        spec = get_spec(args.artifact)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        overrides = _parse_sets(args.set)
        task = Task(spec, overrides, quick=args.quick)
        task.params()
    except (KeyError, SystemExit) as exc:
        print(exc, file=sys.stderr)
        return 2
    results = run_tasks(
        [task], jobs=args.jobs, cache=_make_cache(args),
        use_cache=not args.no_cache, timeout_s=args.timeout,
    )
    r = results[0]
    if not r.ok:
        _print_failures(results)
        return 1
    print(r.rendered, end="")
    if args.out:
        _write_out(results, args.out, per_spec_names=False)
    print(f"\n[{r.spec_name}] {r.status}  key={r.key}  "
          f"manifest={r.manifest_path}")
    return 0


def _select_specs(only: str | None):
    names = list(ALL_EXPERIMENTS)
    if only:
        requested = [n.strip() for n in only.split(",") if n.strip()]
        unknown = [n for n in requested if n not in ALL_EXPERIMENTS]
        if unknown:
            raise SystemExit(
                f"unknown artifact(s) {' '.join(unknown)}; choose from "
                f"{' '.join(ALL_EXPERIMENTS)}"
            )
        names = requested
    return [get_spec(n) for n in names]


def _render_from_cache(specs, args) -> int:
    """Replay cached manifests; optionally diff them against ``--out``.

    Never recomputes: a spec without a stored manifest for the current
    parameters + dependency-scoped fingerprint is reported as
    ``missing``.  With
    ``--out DIR`` each manifest's canonical bytes are compared against
    ``DIR/<spec>.json`` (``match`` / ``differs`` / ``no-file``) instead
    of overwriting — the staleness check behind EXPERIMENTS.md
    regeneration.  Exit code is 0 only when everything is cached and,
    if diffing, everything matches.
    """
    from repro.experiments.tables import format_table

    cache = _make_cache(args)
    out_dir = Path(args.out) if args.out else None
    rows = []
    ok = True
    for spec in specs:
        params = Task(spec, {}, quick=not args.full).params()
        key = task_key(spec, params)
        manifest = cache.lookup(spec.name, key)
        if manifest is None:
            rows.append([spec.name, "missing", key, "-"])
            ok = False
            continue
        if not args.summary:
            print(f"\n{'=' * 72}\n== {spec.name}\n{'=' * 72}")
            print(manifest.get("rendered", ""), end="")
        diff = "-"
        if out_dir is not None:
            target = out_dir / f"{spec.name}.json"
            if not target.exists():
                diff = "no-file"
                ok = False
            elif target.read_bytes() == manifest_bytes(manifest):
                diff = "match"
            else:
                diff = "differs"
                ok = False
        rows.append([spec.name, "cached", key, diff])
    print()
    print(format_table(
        ["artifact", "status", "key", "diff vs --out"], rows,
        title="render-from-cache summary",
    ))
    return 0 if ok else 1


def _cmd_all(args) -> int:
    try:
        specs = _select_specs(args.only)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.render_from_cache:
        if args.no_cache:
            print("--render-from-cache contradicts --no-cache: the mode "
                  "never recomputes", file=sys.stderr)
            return 2
        return _render_from_cache(specs, args)
    tasks = [Task(spec, {}, quick=not args.full) for spec in specs]
    results = run_tasks(
        tasks, jobs=args.jobs, cache=_make_cache(args),
        use_cache=not args.no_cache, timeout_s=args.timeout,
    )
    if not args.summary:
        for r in results:
            print(f"\n{'=' * 72}\n== {r.spec_name}\n{'=' * 72}")
            print(r.rendered, end="")
    if args.out:
        _write_out(results, args.out, per_spec_names=True)
    print()
    print(_summary_table(results))
    _print_failures(results)
    return 0 if all(r.ok for r in results) else 1


def _parse_shard(text: str) -> tuple[int, int]:
    """``--shard I/N`` → (index, count); raises SystemExit on nonsense."""
    index, sep, count = text.partition("/")
    try:
        i, n = int(index), int(count)
    except ValueError:
        i, n = -1, 0
    if not sep or n < 1 or not (0 <= i < n):
        raise SystemExit(
            f"--shard expects I/N with 0 <= I < N, got {text!r}"
        )
    return i, n


def _cmd_sweep(args) -> int:
    from repro.runtime import expand_grid, task_key

    try:
        spec = get_spec(args.artifact)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    axes = dict(spec.sweep)
    try:
        axes.update(_parse_sets(args.set, multi=True))
        shard = _parse_shard(args.shard) if args.shard else None
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if not axes:
        print(f"{spec.name} declares no sweep axes; use --set axis=v1,v2",
              file=sys.stderr)
        return 2
    try:
        tasks = [
            Task(spec, point, quick=args.quick)
            for point in expand_grid(axes)
        ]
        for t in tasks:
            t.params()
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    total = len(tasks)
    if shard is not None:
        # Deterministic round-robin partition over the grid enumeration
        # order: point j belongs to shard j mod N.  Every shard sees the
        # same grid, so N machines each running one shard cover it all.
        index, count = shard
        tasks = tasks[index::count]
    cache = _make_cache(args)
    skipped: list[Task] = []
    if args.resume:
        # Presence check only — nothing is reloaded or recomputed, so a
        # restarted sweep pays one stat() per already-finished point.
        pending = []
        for t in tasks:
            key = task_key(t.spec, t.params())
            if cache.path(t.spec.name, key).is_file():
                skipped.append(t)
            else:
                pending.append(t)
        tasks = pending
    shard_note = (f"  shard {shard[0]}/{shard[1]}" if shard else "")
    print(f"sweep {spec.name}: {len(tasks)} of {total} point(s) over "
          f"{', '.join(axes)}  (jobs={args.jobs}){shard_note}"
          + (f"  resume-skipped={len(skipped)}" if args.resume else ""))
    # Per-point progress, in the same spelling a queue worker logs —
    # long shards are no longer silent until the end table.
    from repro.runtime import format_point_line

    for t in skipped:
        print(format_point_line(t.spec.name, t.overrides, "skipped"))
    results = run_tasks(
        tasks, jobs=args.jobs, cache=cache,
        use_cache=not args.no_cache, timeout_s=args.timeout,
        on_result=lambda t, r: print(
            format_point_line(r.spec_name, t.overrides, r.status)
        ),
    )
    if args.out:
        _write_out(results, args.out, per_spec_names=False)
    from repro.experiments.tables import format_table

    def point_label(t: Task) -> str:
        return " ".join(
            f"{k}={v}" for k, v in sorted(t.overrides.items())
        ) or "(defaults)"

    rows = [
        [point_label(t), r.status, f"{r.seconds:6.2f}", r.key]
        for t, r in zip(tasks, results)
    ] + [
        [point_label(t), "skipped", f"{0.0:6.2f}",
         task_key(t.spec, t.params())]
        for t in skipped
    ]
    print(format_table(["point", "status", "secs", "key"], rows,
                       title=f"sweep {spec.name}"))
    _print_failures(results)
    return 0 if all(r.ok for r in results) else 1


def _cmd_merge(args) -> int:
    """Union shard manifest dumps; verify byte-level agreement.

    Manifests are canonical, timestamp-free JSON, so the same point
    produced by any shard (or any worker count) must be byte-identical
    — a name collision with different bytes means nondeterminism or
    mixed code versions, and fails the merge.  ``--check REF`` then
    compares the merged set against a reference dump (typically a
    single-process run) name-by-name and byte-by-byte.
    """
    merged: dict[str, bytes] = {}
    sources: dict[str, str] = {}
    duplicates = 0
    for d in args.dirs:
        root = Path(d)
        if not root.is_dir():
            print(f"merge: not a directory: {d}", file=sys.stderr)
            return 2
        for path in sorted(root.glob("*.json")):
            data = path.read_bytes()
            if path.name in merged:
                duplicates += 1
                if merged[path.name] != data:
                    print(f"merge: conflict on {path.name}: "
                          f"{sources[path.name]} and {d} disagree "
                          f"byte-for-byte", file=sys.stderr)
                    return 1
                continue
            merged[path.name] = data
            sources[path.name] = d
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for name, data in merged.items():
        (out / name).write_bytes(data)
    print(f"merged {len(merged)} manifest(s) from {len(args.dirs)} "
          f"dump(s) into {out}  ({duplicates} duplicate(s) verified "
          f"identical)")
    if args.check is None:
        return 0
    ref = Path(args.check)
    ref_names = {p.name for p in ref.glob("*.json")} if ref.is_dir() else None
    if ref_names is None:
        print(f"merge: --check is not a directory: {args.check}",
              file=sys.stderr)
        return 2
    missing = sorted(ref_names - merged.keys())
    extra = sorted(merged.keys() - ref_names)
    differ = sorted(
        name for name in merged.keys() & ref_names
        if (ref / name).read_bytes() != merged[name]
    )
    if not (missing or extra or differ):
        print(f"check vs {ref}: {len(ref_names)} manifest(s) "
              f"byte-identical")
        return 0
    for name in missing:
        print(f"check: missing from merge: {name}", file=sys.stderr)
    for name in extra:
        print(f"check: not in reference: {name}", file=sys.stderr)
    for name in differ:
        print(f"check: bytes differ: {name}", file=sys.stderr)
    return 1


def _cmd_bench(args) -> int:
    """Cold-start timing of every produce-fn.

    Serial by design: each task runs inline with the memoized-network
    cache cleared first, so timings are comparable across artifacts
    (a shared worker or warm memo would hide each spec's build cost).
    """
    from repro.experiments.common import clear_caches

    try:
        specs = _select_specs(args.only)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.profile:
        return _bench_profile(specs, full=args.full)
    cache = _make_cache(args)
    results = []
    for spec in specs:
        clear_caches()
        results.extend(run_tasks(
            [Task(spec, {}, quick=not args.full)],
            jobs=1, cache=cache, use_cache=False,
        ))
    from repro.experiments.tables import format_table

    rows = [[r.spec_name, r.status, f"{r.seconds:8.3f}"] for r in results]
    print(format_table(["artifact", "status", "secs"], rows,
                       title="bench (cold start, serial, cache bypassed)"))
    if args.json:
        import json

        payload = [
            {"artifact": r.spec_name, "status": r.status,
             "seconds": r.seconds, "key": r.key}
            for r in results
        ]
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.json}")
    _print_failures(results)
    return 0 if all(r.ok for r in results) else 1


def _bench_profile(specs, full: bool) -> int:
    """``bench --profile``: cProfile each produce-fn, print hot spots.

    Each spec runs inline (serial, cache bypassed, memoized networks
    cleared) so the profile covers exactly one cold produce call; the
    top functions by cumulative time show where a slow artifact spends
    it — typically the schedule search or the per-layer pricing loops.
    """
    import cProfile
    import pstats

    from repro.experiments.common import clear_caches

    for spec in specs:
        clear_caches()
        params = Task(spec, {}, quick=not full).params()
        prof = cProfile.Profile()
        prof.enable()
        spec.produce(**params)
        prof.disable()
        print(f"\n{'=' * 72}\n== {spec.name} (cProfile, cumulative)\n"
              f"{'=' * 72}")
        stats = pstats.Stats(prof, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    return 0


def _cmd_export(args) -> int:
    from repro.experiments.export import export_all

    results = export_all(
        args.path, quick=not args.full, jobs=args.jobs,
        cache=_make_cache(args), use_cache=not args.no_cache,
    )
    print(f"wrote {len(results)} experiment results to {args.path}")
    return 0


def _cmd_fingerprint(args) -> int:
    if args.spec is None:
        print(code_fingerprint())
        return 0
    from repro.runtime import spec_fingerprint

    try:
        spec = get_spec(args.spec)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(spec_fingerprint(spec))
    return 0


def _cmd_list(args) -> int:
    from repro.experiments.tables import format_table

    rows = []
    for name in ALL_EXPERIMENTS:
        spec = get_spec(name)
        rows.append([
            name, spec.title,
            ", ".join(spec.sweep) or "-",
            "yes" if spec.quick else "-",
        ])
    print(format_table(
        ["artifact", "title", "sweep axes", "quick"], rows,
        title="registered experiments",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] == "schedule":
        return _schedule_command(argv[1:])
    if argv[0] == "sweep-schedule":
        return _sweep_schedule_command(argv[1:])
    if argv[0] == "serve":
        return _serve_command(argv[1:])
    if argv[0] == "submit-sweep":
        return _submit_sweep_command(argv[1:])
    if argv[0] == "work":
        return _work_command(argv[1:])
    if argv[0] in ALL_EXPERIMENTS:
        # legacy direct dispatch: always recompute, print the figure
        ALL_EXPERIMENTS[argv[0]].main(argv[1:])
        return 0
    if argv[0] not in SUBCOMMANDS:
        print(f"unknown artifact or command {argv[0]!r}; choose from "
              f"{' '.join(SUBCOMMANDS)} or {' '.join(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse --help (0) or usage error (2)
        return int(exc.code or 0)
    handler = {
        "run": _cmd_run,
        "all": _cmd_all,
        "sweep": _cmd_sweep,
        "merge": _cmd_merge,
        "bench": _cmd_bench,
        "export": _cmd_export,
        "fingerprint": _cmd_fingerprint,
        "list": _cmd_list,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
