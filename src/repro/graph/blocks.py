"""Blocks: the scheduling atoms of the MBS IR.

A :class:`Block` is either a single chain of layers (one branch, no merge)
or a multi-branch module.  Branches are *trees*: a branch may fork into
children after its own chain, which is how Inception v3/v4 modules end in
parallel 1×3 / 3×1 tails that share a stem.  The concatenated/added block
output and shared block input are exactly the quantities Eq. 1 and Eq. 2
of the paper provision buffer space for.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.graph.layers import EltwiseAdd, Layer
from repro.types import Shape


class MergeKind(enum.Enum):
    ADD = "add"
    CONCAT = "concat"


@dataclass(frozen=True)
class Branch:
    """A chain of layers optionally forking into child branches at the end.

    An empty branch (no layers, no children) is an identity path — the
    ResNet shortcut without a projection.
    """

    layers: tuple[Layer, ...] = ()
    children: tuple["Branch", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "layers", tuple(self.layers))
        object.__setattr__(self, "children", tuple(self.children))

    def tail_shape(self, in_shape: Shape) -> Shape:
        """Shape after this branch's own chain (before any fork)."""
        # per-instance cache keyed by the (cheaply hashable) input shape:
        # the schedulers query branch shapes tens of thousands of times
        cache = self.__dict__.setdefault("_tail_cache", {})
        got = cache.get(in_shape)
        if got is not None:
            return got
        shape = in_shape
        for layer in self.layers:
            if layer.in_shape != shape:
                raise ValueError(
                    f"branch mis-wired at {layer.name}: expected input "
                    f"{shape}, layer declares {layer.in_shape}"
                )
            shape = layer.out_shape
        cache[in_shape] = shape
        return shape

    def leaf_shapes(self, in_shape: Shape) -> list[Shape]:
        """Output shapes contributed to the block merge, in order."""
        cache = self.__dict__.setdefault("_leaf_cache", {})
        got = cache.get(in_shape)
        if got is None:
            tail = self.tail_shape(in_shape)
            if not self.children:
                got = [tail]
            else:
                got = []
                for child in self.children:
                    got.extend(child.leaf_shapes(tail))
            cache[in_shape] = got
        return list(got)

    @cached_property
    def _walked(self) -> tuple[Layer, ...]:
        out = list(self.layers)
        for child in self.children:
            out.extend(child.walk())
        return tuple(out)

    def walk(self) -> list[Layer]:
        """All layers in execution order (own chain, then each child)."""
        return list(self._walked)

    @property
    def is_identity(self) -> bool:
        return not self.layers and not self.children


@dataclass(frozen=True)
class Block:
    """One scheduling atom: a layer chain or a multi-branch module.

    ``post_merge`` holds layers applied after the merge point (e.g. the
    ReLU that follows a residual addition).
    """

    name: str
    in_shape: Shape
    branches: tuple[Branch, ...]
    merge: MergeKind | None = None
    post_merge: tuple[Layer, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(self.branches))
        object.__setattr__(self, "post_merge", tuple(self.post_merge))
        if not self.branches:
            raise ValueError(f"{self.name}: block needs at least one branch")
        if len(self.branches) > 1 and self.merge is None:
            raise ValueError(f"{self.name}: multi-branch block needs a merge kind")
        if len(self.branches) == 1 and not self.branches[0].children and self.merge:
            raise ValueError(f"{self.name}: single-chain block must not merge")
        _ = self.out_shape  # validate wiring eagerly

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    @cached_property
    def merged_shape(self) -> Shape:
        """Shape right after the merge (before ``post_merge``)."""
        leaf_lists = [b.leaf_shapes(self.in_shape) for b in self.branches]
        leaves = [s for lst in leaf_lists for s in lst]
        if self.merge is None:
            if len(leaves) != 1:
                raise ValueError(f"{self.name}: unmerged block with forked output")
            return leaves[0]
        if self.merge is MergeKind.ADD:
            first = leaves[0]
            for s in leaves[1:]:
                if s != first:
                    raise ValueError(
                        f"{self.name}: ADD merge with mismatched shapes "
                        f"{first} vs {s}"
                    )
            return first
        # CONCAT: channels accumulate, spatial dims must agree.
        first = leaves[0]
        channels = 0
        for s in leaves:
            if (s.h, s.w) != (first.h, first.w):
                raise ValueError(
                    f"{self.name}: CONCAT merge with mismatched spatial dims "
                    f"{first} vs {s}"
                )
            channels += s.c
        return Shape(channels, first.h, first.w)

    @cached_property
    def out_shape(self) -> Shape:
        shape = self.merged_shape
        for layer in self.post_merge:
            if layer.in_shape != shape:
                raise ValueError(
                    f"{self.name}: post-merge mis-wired at {layer.name}: "
                    f"expected {shape}, declared {layer.in_shape}"
                )
            shape = layer.out_shape
        return shape

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def is_module(self) -> bool:
        """True for multi-branch blocks (residual / inception modules)."""
        return len(self.branches) > 1 or any(b.children for b in self.branches)

    @cached_property
    def merge_layer(self) -> EltwiseAdd | None:
        """Synthetic element-wise layer representing an ADD merge."""
        if self.merge is MergeKind.ADD:
            return EltwiseAdd(name=f"{self.name}.add", in_shape=self.merged_shape)
        return None

    @cached_property
    def _all_layers(self) -> tuple[Layer, ...]:
        out: list[Layer] = []
        for branch in self.branches:
            out.extend(branch.walk())
        merge = self.merge_layer
        if merge is not None:
            out.append(merge)
        out.extend(self.post_merge)
        return tuple(out)

    def all_layers(self) -> list[Layer]:
        """Every layer in execution order, including merge and post-merge."""
        return list(self._all_layers)

    @property
    def param_count(self) -> int:
        return sum(l.param_count for l in self.all_layers())

    @property
    def macs_per_sample(self) -> int:
        return sum(l.macs_per_sample for l in self.all_layers())


def chain_block(name: str, in_shape: Shape, layers: list[Layer]) -> Block:
    """Convenience constructor for a single-chain block."""
    return Block(name=name, in_shape=in_shape, branches=(Branch(tuple(layers)),))
