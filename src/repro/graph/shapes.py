"""Spatial shape arithmetic for convolution and pooling windows."""
from __future__ import annotations

from repro.types import Shape


def window_out(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output extent of a sliding window along one spatial dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window produces non-positive extent: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def conv_out_shape(
    in_shape: Shape,
    out_channels: int,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> Shape:
    """Shape produced by a 2-D convolution over ``in_shape``."""
    return Shape(
        out_channels,
        window_out(in_shape.h, kernel[0], stride[0], padding[0]),
        window_out(in_shape.w, kernel[1], stride[1], padding[1]),
    )


def pool_out_shape(
    in_shape: Shape,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> Shape:
    """Shape produced by a pooling window over ``in_shape``."""
    return Shape(
        in_shape.c,
        window_out(in_shape.h, kernel[0], stride[0], padding[0]),
        window_out(in_shape.w, kernel[1], stride[1], padding[1]),
    )
