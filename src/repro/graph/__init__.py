"""CNN graph intermediate representation.

The IR is deliberately structured the way the MBS paper reasons about
networks: a network is a *sequence of blocks*; a block is either a single
layer or a multi-branch module (residual or inception style) whose
branches are trees of layers.  Blocks are the atoms the scheduler
manipulates ("MBS essentially treats such a block as a layer", Sec. 3).
"""
from repro.graph.layers import (
    Activation,
    Conv2D,
    EltwiseAdd,
    FullyConnected,
    Layer,
    Norm,
    Pool,
)
from repro.graph.blocks import Block, Branch, MergeKind
from repro.graph.network import Network
from repro.graph.serialize import (
    GraphSchemaError,
    dumps_network,
    loads_network,
    network_fingerprint,
)
from repro.graph import render, stats

__all__ = [
    "Activation",
    "Block",
    "Branch",
    "Conv2D",
    "EltwiseAdd",
    "FullyConnected",
    "GraphSchemaError",
    "Layer",
    "MergeKind",
    "Network",
    "Norm",
    "Pool",
    "dumps_network",
    "loads_network",
    "network_fingerprint",
    "stats",
]
