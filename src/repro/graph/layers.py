"""Layer specifications.

Layers are immutable descriptions — they carry shapes and hyper-parameters
but no weights.  (Trainable numerics live in :mod:`repro.nn`.)  Shape
inference happens at construction: every layer knows its input shape and
derives its output shape, so a mis-wired network fails loudly when built.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.graph import shapes as _shapes
from repro.types import WORD_BYTES, Shape


class LayerKind(enum.Enum):
    """Classification used by the scheduler and the timing model."""

    CONV = "conv"
    FC = "fc"
    NORM = "norm"
    ACT = "act"
    POOL = "pool"
    ADD = "add"


@dataclass(frozen=True)
class Layer:
    """Base class for all layer specs."""

    name: str
    in_shape: Shape

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    @property
    def out_shape(self) -> Shape:
        raise NotImplementedError

    @property
    def param_count(self) -> int:
        """Number of trainable scalars."""
        return 0

    def param_bytes(self, word_bytes: int = WORD_BYTES) -> int:
        return self.param_count * word_bytes

    @property
    def macs_per_sample(self) -> int:
        """Multiply-accumulate operations per sample (forward pass)."""
        return 0

    @property
    def is_systolic(self) -> bool:
        """True when the layer maps to the systolic array (conv / FC)."""
        return self.kind in (LayerKind.CONV, LayerKind.FC)


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    return (int(v[0]), int(v[1]))


@dataclass(frozen=True)
class Conv2D(Layer):
    """2-D convolution (no bias — networks in the zoo follow the usual
    conv/norm pairing where the norm layer supplies the affine terms)."""

    out_channels: int = 0
    kernel: tuple[int, int] = (1, 1)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[int, int] = (0, 0)
    bias: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        if self.out_channels <= 0:
            raise ValueError(f"{self.name}: out_channels must be positive")
        # Validate eagerly so construction of a bad layer raises here.
        _ = self.out_shape

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV

    # cached: the timing/traffic models query out_shape tens of thousands
    # of times per schedule search (works on a frozen dataclass — the
    # cache writes the instance __dict__ directly, and dataclass
    # eq/hash/repr only consider declared fields)
    @cached_property
    def out_shape(self) -> Shape:
        return _shapes.conv_out_shape(
            self.in_shape, self.out_channels, self.kernel, self.stride, self.padding
        )

    @property
    def param_count(self) -> int:
        w = self.out_channels * self.in_shape.c * self.kernel[0] * self.kernel[1]
        return w + (self.out_channels if self.bias else 0)

    @property
    def macs_per_sample(self) -> int:
        o = self.out_shape
        return o.c * o.h * o.w * self.in_shape.c * self.kernel[0] * self.kernel[1]


@dataclass(frozen=True)
class FullyConnected(Layer):
    """Dense layer; the input is flattened (``in_shape.elems`` features)."""

    out_features: int = 0
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ValueError(f"{self.name}: out_features must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FC

    @property
    def out_shape(self) -> Shape:
        return Shape(self.out_features, 1, 1)

    @property
    def param_count(self) -> int:
        return self.in_shape.elems * self.out_features + (
            self.out_features if self.bias else 0
        )

    @property
    def macs_per_sample(self) -> int:
        return self.in_shape.elems * self.out_features


class NormKind(enum.Enum):
    BATCH = "batch"
    GROUP = "group"


@dataclass(frozen=True)
class Norm(Layer):
    """Feature normalization.

    ``BATCH`` normalizes across the mini-batch (incompatible with MBS);
    ``GROUP`` normalizes across channel groups within a sample (the
    adaptation MBS uses, Sec. 3.1).  Both carry a per-channel scale and
    shift, so their parameter footprint is identical.
    """

    norm: NormKind = NormKind.GROUP
    groups: int = 32

    def __post_init__(self) -> None:
        if self.norm is NormKind.GROUP:
            if self.groups <= 0:
                raise ValueError(f"{self.name}: groups must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.NORM

    @property
    def out_shape(self) -> Shape:
        return self.in_shape

    @property
    def param_count(self) -> int:
        return 2 * self.in_shape.c


@dataclass(frozen=True)
class Activation(Layer):
    """Element-wise activation (ReLU in all evaluated networks)."""

    fn: str = "relu"

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ACT

    @property
    def out_shape(self) -> Shape:
        return self.in_shape


class PoolKind(enum.Enum):
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class Pool(Layer):
    """Spatial pooling; ``global_pool`` collapses H×W to 1×1."""

    pool: PoolKind = PoolKind.MAX
    kernel: tuple[int, int] = (2, 2)
    stride: tuple[int, int] = (2, 2)
    padding: tuple[int, int] = (0, 0)
    global_pool: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        _ = self.out_shape

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POOL

    @cached_property
    def out_shape(self) -> Shape:  # cached — see Conv2D.out_shape
        if self.global_pool:
            return Shape(self.in_shape.c, 1, 1)
        return _shapes.pool_out_shape(
            self.in_shape, self.kernel, self.stride, self.padding
        )


@dataclass(frozen=True)
class EltwiseAdd(Layer):
    """Element-wise sum at a residual merge point.

    Modeled as a layer so the timing model can charge it to the vector
    units (the "Sum" category in the paper's Fig. 12 breakdown).
    """

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ADD

    @property
    def out_shape(self) -> Shape:
        return self.in_shape
