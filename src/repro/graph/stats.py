"""Per-layer and per-block statistics (the raw material for Figs. 3 & 4)."""
from __future__ import annotations

from dataclasses import dataclass

from repro.graph.network import Network
from repro.types import WORD_BYTES


@dataclass(frozen=True)
class LayerStat:
    """Footprint record for one layer at a given mini-batch size."""

    name: str
    kind: str
    inter_layer_bytes: int  # input + output features for the whole batch
    param_bytes: int
    macs: int  # whole-batch forward MACs


def layer_stats(
    net: Network, mini_batch: int | None = None, word_bytes: int = WORD_BYTES
) -> list[LayerStat]:
    """Per-layer inter-layer data and parameter sizes (paper Fig. 3).

    "Inter-layer data" of a layer is the sum of its input and output
    feature maps across the mini-batch — the live set a conventional
    schedule must hold to pass data between adjacent layers on chip.
    """
    n = net.default_mini_batch if mini_batch is None else mini_batch
    out = []
    for layer in net.all_layers():
        inter = (layer.in_shape.bytes(word_bytes) + layer.out_shape.bytes(word_bytes)) * n
        out.append(
            LayerStat(
                name=layer.name,
                kind=layer.kind.value,
                inter_layer_bytes=inter,
                param_bytes=layer.param_bytes(word_bytes),
                macs=layer.macs_per_sample * n,
            )
        )
    return out


@dataclass(frozen=True)
class BlockStat:
    """Per-block record used by the grouping figure (paper Fig. 4)."""

    name: str
    is_module: bool
    in_bytes_per_sample: int
    out_bytes_per_sample: int
    param_bytes: int
    macs_per_sample: int


def block_stats(net: Network, word_bytes: int = WORD_BYTES) -> list[BlockStat]:
    out = []
    for block in net.blocks:
        out.append(
            BlockStat(
                name=block.name,
                is_module=block.is_module,
                in_bytes_per_sample=block.in_shape.bytes(word_bytes),
                out_bytes_per_sample=block.out_shape.bytes(word_bytes),
                param_bytes=sum(
                    l.param_bytes(word_bytes) for l in block.all_layers()
                ),
                macs_per_sample=block.macs_per_sample,
            )
        )
    return out


def reusable_fraction(
    net: Network,
    buffer_bytes: int,
    mini_batch: int | None = None,
    word_bytes: int = WORD_BYTES,
) -> float:
    """Fraction of inter-layer data that fits in an on-chip buffer.

    Reproduces the paper's §2 observation that only ~9.3 % of ResNet-50's
    inter-layer data can be reused with a 10 MiB buffer at N = 32.
    """
    stats = layer_stats(net, mini_batch, word_bytes)
    total = sum(s.inter_layer_bytes for s in stats)
    reusable = sum(
        s.inter_layer_bytes for s in stats if s.inter_layer_bytes <= buffer_bytes
    )
    return reusable / total if total else 0.0
