"""JSON wire schema for networks (versioned, round-trip exact).

The serving layer and the ``mbs-repro schedule --graph`` CLI accept
arbitrary user-submitted network graphs; this module defines the wire
contract they share.  A network is encoded as a versioned envelope::

    {
      "schema": 1,
      "name": "toy_chain",
      "in_shape": [3, 32, 32],
      "default_mini_batch": 16,
      "blocks": [
        {
          "name": "stage0",
          "branches": [
            {"layers": [ {"kind": "conv", ...}, ... ], "children": []}
          ],
          "merge": null,            # or "add" / "concat"
          "post_merge": []
        },
        ...
      ]
    }

Layers are tagged unions keyed on ``"kind"`` (``conv`` / ``fc`` /
``norm`` / ``act`` / ``pool`` / ``add``) carrying exactly the fields of
the corresponding :mod:`repro.graph.layers` dataclass, so
``loads_network(dumps_network(net)) == net`` holds field-for-field for
every network the zoo can build (locked in
``tests/test_graph_serialize.py``).

Malformed input raises :class:`GraphSchemaError` with the JSON path of
the offending element — the server maps it to HTTP 400 and the CLI to
exit status 1, never a traceback.  Structural validation is the graph
IR's own: the ``Layer``/``Block``/``Network`` constructors re-check
shape flow on load, so a wire graph can never bypass an invariant the
Python constructors enforce.

:func:`network_fingerprint` digests the canonical encoding; it is the
graph component of the serve-cache key, so a zoo name and its exported
wire graph address the same cached schedules.
"""
from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.graph.blocks import Block, Branch, MergeKind
from repro.graph.layers import (
    Activation,
    Conv2D,
    EltwiseAdd,
    FullyConnected,
    Layer,
    Norm,
    NormKind,
    Pool,
    PoolKind,
)
from repro.graph.network import Network
from repro.types import Shape

#: Current wire-schema version; bumped only on incompatible changes.
SCHEMA_VERSION = 1


class GraphSchemaError(ValueError):
    """Raised for any malformed or invalid wire-format network."""


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def _shape_to_list(shape: Shape) -> list[int]:
    return [shape.c, shape.h, shape.w]


def _layer_to_dict(layer: Layer) -> dict[str, Any]:
    common = {"name": layer.name, "in_shape": _shape_to_list(layer.in_shape)}
    if isinstance(layer, Conv2D):
        return {
            "kind": "conv", **common,
            "out_channels": layer.out_channels,
            "kernel": list(layer.kernel),
            "stride": list(layer.stride),
            "padding": list(layer.padding),
            "bias": layer.bias,
        }
    if isinstance(layer, FullyConnected):
        return {
            "kind": "fc", **common,
            "out_features": layer.out_features,
            "bias": layer.bias,
        }
    if isinstance(layer, Norm):
        return {
            "kind": "norm", **common,
            "norm": layer.norm.value,
            "groups": layer.groups,
        }
    if isinstance(layer, Activation):
        return {"kind": "act", **common, "fn": layer.fn}
    if isinstance(layer, Pool):
        return {
            "kind": "pool", **common,
            "pool": layer.pool.value,
            "kernel": list(layer.kernel),
            "stride": list(layer.stride),
            "padding": list(layer.padding),
            "global_pool": layer.global_pool,
        }
    if isinstance(layer, EltwiseAdd):
        return {"kind": "add", **common}
    raise GraphSchemaError(
        f"layer {layer.name!r} has unserializable type "
        f"{type(layer).__name__}"
    )


def _branch_to_dict(branch: Branch) -> dict[str, Any]:
    return {
        "layers": [_layer_to_dict(l) for l in branch.layers],
        "children": [_branch_to_dict(c) for c in branch.children],
    }


def _block_to_dict(block: Block) -> dict[str, Any]:
    return {
        "name": block.name,
        "in_shape": _shape_to_list(block.in_shape),
        "branches": [_branch_to_dict(b) for b in block.branches],
        "merge": block.merge.value if block.merge is not None else None,
        "post_merge": [_layer_to_dict(l) for l in block.post_merge],
    }


def network_to_dict(net: Network) -> dict[str, Any]:
    """Wire-format dict (schema-1 envelope) for ``net``."""
    return {
        "schema": SCHEMA_VERSION,
        "name": net.name,
        "in_shape": _shape_to_list(net.in_shape),
        "default_mini_batch": net.default_mini_batch,
        "blocks": [_block_to_dict(b) for b in net.blocks],
    }


def dumps_network(net: Network, indent: int | None = 1) -> str:
    """Canonical JSON text of ``net`` (sorted keys, stable bytes)."""
    return json.dumps(network_to_dict(net), sort_keys=True, indent=indent)


def network_fingerprint(net: Network) -> str:
    """Content digest of the canonical wire encoding.

    Networks that serialize identically — a zoo build and its re-loaded
    wire graph — share the fingerprint; it keys the serve-side schedule
    cache together with the pricing parameters.
    """
    blob = json.dumps(network_to_dict(net), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------

def _expect_mapping(obj: Any, path: str) -> Mapping:
    if not isinstance(obj, Mapping):
        raise GraphSchemaError(
            f"{path}: expected a JSON object, got {type(obj).__name__}"
        )
    return obj


def _expect_list(obj: Any, path: str) -> list:
    if not isinstance(obj, list):
        raise GraphSchemaError(
            f"{path}: expected a JSON array, got {type(obj).__name__}"
        )
    return obj


def _get(obj: Mapping, key: str, path: str) -> Any:
    if key not in obj:
        raise GraphSchemaError(f"{path}: missing required key {key!r}")
    return obj[key]


def _int(obj: Mapping, key: str, path: str) -> int:
    v = _get(obj, key, path)
    if isinstance(v, bool) or not isinstance(v, int):
        raise GraphSchemaError(f"{path}.{key}: expected an integer, got {v!r}")
    return v


def _str(obj: Mapping, key: str, path: str) -> str:
    v = _get(obj, key, path)
    if not isinstance(v, str):
        raise GraphSchemaError(f"{path}.{key}: expected a string, got {v!r}")
    return v


def _bool(obj: Mapping, key: str, path: str, default: bool) -> bool:
    v = obj.get(key, default)
    if not isinstance(v, bool):
        raise GraphSchemaError(f"{path}.{key}: expected a boolean, got {v!r}")
    return v


def _shape(obj: Mapping, key: str, path: str) -> Shape:
    v = _expect_list(_get(obj, key, path), f"{path}.{key}")
    if len(v) != 3 or any(isinstance(d, bool) or not isinstance(d, int)
                          for d in v):
        raise GraphSchemaError(
            f"{path}.{key}: expected [c, h, w] integers, got {v!r}"
        )
    try:
        return Shape(*v)
    except ValueError as exc:
        raise GraphSchemaError(f"{path}.{key}: {exc}") from exc


def _pair(obj: Mapping, key: str, path: str,
          default: tuple[int, int]) -> tuple[int, int]:
    v = obj.get(key)
    if v is None:
        return default
    v = _expect_list(v, f"{path}.{key}")
    if len(v) != 2 or any(isinstance(d, bool) or not isinstance(d, int)
                          for d in v):
        raise GraphSchemaError(
            f"{path}.{key}: expected a pair of integers, got {v!r}"
        )
    return (v[0], v[1])


def _enum(kind, value: str, path: str):
    try:
        return kind(value)
    except ValueError:
        choices = ", ".join(repr(m.value) for m in kind)
        raise GraphSchemaError(
            f"{path}: unknown value {value!r}; choose from {choices}"
        ) from None


def _layer_from_dict(obj: Any, path: str) -> Layer:
    obj = _expect_mapping(obj, path)
    kind = _str(obj, "kind", path)
    name = _str(obj, "name", path)
    in_shape = _shape(obj, "in_shape", path)
    try:
        if kind == "conv":
            return Conv2D(
                name=name, in_shape=in_shape,
                out_channels=_int(obj, "out_channels", path),
                kernel=_pair(obj, "kernel", path, (1, 1)),
                stride=_pair(obj, "stride", path, (1, 1)),
                padding=_pair(obj, "padding", path, (0, 0)),
                bias=_bool(obj, "bias", path, False),
            )
        if kind == "fc":
            return FullyConnected(
                name=name, in_shape=in_shape,
                out_features=_int(obj, "out_features", path),
                bias=_bool(obj, "bias", path, True),
            )
        if kind == "norm":
            return Norm(
                name=name, in_shape=in_shape,
                norm=_enum(NormKind, _str(obj, "norm", path),
                           f"{path}.norm"),
                groups=_int(obj, "groups", path) if "groups" in obj else 32,
            )
        if kind == "act":
            fn = obj.get("fn", "relu")
            if not isinstance(fn, str):
                raise GraphSchemaError(
                    f"{path}.fn: expected a string, got {fn!r}"
                )
            return Activation(name=name, in_shape=in_shape, fn=fn)
        if kind == "pool":
            return Pool(
                name=name, in_shape=in_shape,
                pool=_enum(PoolKind, _str(obj, "pool", path),
                           f"{path}.pool"),
                kernel=_pair(obj, "kernel", path, (2, 2)),
                stride=_pair(obj, "stride", path, (2, 2)),
                padding=_pair(obj, "padding", path, (0, 0)),
                global_pool=_bool(obj, "global_pool", path, False),
            )
        if kind == "add":
            return EltwiseAdd(name=name, in_shape=in_shape)
    except GraphSchemaError:
        raise
    except ValueError as exc:
        raise GraphSchemaError(f"{path}: {exc}") from exc
    raise GraphSchemaError(
        f"{path}.kind: unknown layer kind {kind!r}; choose from "
        "'conv', 'fc', 'norm', 'act', 'pool', 'add'"
    )


def _branch_from_dict(obj: Any, path: str) -> Branch:
    obj = _expect_mapping(obj, path)
    layers = tuple(
        _layer_from_dict(l, f"{path}.layers[{i}]")
        for i, l in enumerate(_expect_list(obj.get("layers", []),
                                           f"{path}.layers"))
    )
    children = tuple(
        _branch_from_dict(c, f"{path}.children[{i}]")
        for i, c in enumerate(_expect_list(obj.get("children", []),
                                           f"{path}.children"))
    )
    return Branch(layers=layers, children=children)


def _block_from_dict(obj: Any, path: str) -> Block:
    obj = _expect_mapping(obj, path)
    name = _str(obj, "name", path)
    in_shape = _shape(obj, "in_shape", path)
    branches = tuple(
        _branch_from_dict(b, f"{path}.branches[{i}]")
        for i, b in enumerate(_expect_list(_get(obj, "branches", path),
                                           f"{path}.branches"))
    )
    merge_raw = obj.get("merge")
    merge = None
    if merge_raw is not None:
        if not isinstance(merge_raw, str):
            raise GraphSchemaError(
                f"{path}.merge: expected null, 'add', or 'concat', got "
                f"{merge_raw!r}"
            )
        merge = _enum(MergeKind, merge_raw, f"{path}.merge")
    post_merge = tuple(
        _layer_from_dict(l, f"{path}.post_merge[{i}]")
        for i, l in enumerate(_expect_list(obj.get("post_merge", []),
                                           f"{path}.post_merge"))
    )
    try:
        return Block(name=name, in_shape=in_shape, branches=branches,
                     merge=merge, post_merge=post_merge)
    except ValueError as exc:
        raise GraphSchemaError(f"{path}: {exc}") from exc


def network_from_dict(obj: Any) -> Network:
    """Decode and *validate* a schema-1 wire dict into a ``Network``.

    Every structural invariant the graph IR enforces at construction
    (shape flow, merge arity, positive dims) re-runs here, so malformed
    user graphs fail with a :class:`GraphSchemaError` naming the JSON
    path, never a deep traceback.
    """
    obj = _expect_mapping(obj, "$")
    schema = _get(obj, "schema", "$")
    if schema != SCHEMA_VERSION:
        raise GraphSchemaError(
            f"$.schema: unsupported version {schema!r}; this build "
            f"speaks schema {SCHEMA_VERSION}"
        )
    name = _str(obj, "name", "$")
    in_shape = _shape(obj, "in_shape", "$")
    mini_batch = (_int(obj, "default_mini_batch", "$")
                  if "default_mini_batch" in obj else 32)
    blocks = tuple(
        _block_from_dict(b, f"$.blocks[{i}]")
        for i, b in enumerate(_expect_list(_get(obj, "blocks", "$"),
                                           "$.blocks"))
    )
    try:
        return Network(name=name, in_shape=in_shape, blocks=blocks,
                       default_mini_batch=mini_batch)
    except ValueError as exc:
        raise GraphSchemaError(f"$: {exc}") from exc


def loads_network(text: str) -> Network:
    """Parse JSON text into a validated ``Network``."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphSchemaError(f"not valid JSON: {exc}") from exc
    return network_from_dict(obj)
