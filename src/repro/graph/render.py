"""Text rendering of networks: summaries and per-block diagrams."""
from __future__ import annotations

from repro.graph.blocks import Block, Branch
from repro.graph.network import Network


def _layer_line(layer) -> str:
    extra = ""
    if hasattr(layer, "kernel"):
        k = getattr(layer, "kernel")
        s = getattr(layer, "stride", (1, 1))
        extra = f" {k[0]}x{k[1]}"
        if s != (1, 1):
            extra += f"/{s[0]}"
    return (
        f"{layer.name} [{layer.kind.value}{extra}] "
        f"{layer.in_shape} -> {layer.out_shape}"
    )


def _render_branch(branch: Branch, indent: str, lines: list[str]) -> None:
    if branch.is_identity:
        lines.append(f"{indent}(identity)")
        return
    for layer in branch.layers:
        lines.append(indent + _layer_line(layer))
    for ci, child in enumerate(branch.children):
        lines.append(f"{indent}fork[{ci}]:")
        _render_branch(child, indent + "  ", lines)


def render_block(block: Block) -> str:
    """Multi-line diagram of one block."""
    lines = [f"{block.name}: {block.in_shape} -> {block.out_shape}"]
    if not block.is_module:
        for layer in block.branches[0].layers:
            lines.append("  " + _layer_line(layer))
    else:
        for bi, branch in enumerate(block.branches):
            lines.append(f"  branch[{bi}]:")
            _render_branch(branch, "    ", lines)
        merge = block.merge.value if block.merge else "none"
        lines.append(f"  merge: {merge}")
        for layer in block.post_merge:
            lines.append("  " + _layer_line(layer))
    return "\n".join(lines)


def render_network(net: Network, detail: bool = False) -> str:
    """Network summary: one line per block, or full layer diagrams."""
    header = (
        f"{net.name}: input {net.in_shape}, {len(net)} blocks, "
        f"{net.param_count:,} params, "
        f"{net.macs_per_sample / 1e9:.2f} GMACs/sample"
    )
    lines = [header]
    for block in net.blocks:
        if detail:
            lines.append(render_block(block))
        else:
            tag = "module" if block.is_module else "chain"
            n_layers = len(block.all_layers())
            lines.append(
                f"  {block.name:16s} [{tag:6s}] {str(block.in_shape):>12s} ->"
                f" {str(block.out_shape):>12s}  {n_layers:3d} layers"
                f"  {block.param_count:>12,} params"
            )
    return "\n".join(lines)


def summary_table(net: Network) -> list[dict]:
    """Machine-readable per-block summary (name, shapes, params, MACs)."""
    return [
        {
            "name": b.name,
            "is_module": b.is_module,
            "in_shape": str(b.in_shape),
            "out_shape": str(b.out_shape),
            "layers": len(b.all_layers()),
            "params": b.param_count,
            "macs_per_sample": b.macs_per_sample,
        }
        for b in net.blocks
    ]
