"""A network is an input shape plus an ordered sequence of blocks."""
from __future__ import annotations

from dataclasses import dataclass

from repro.graph.blocks import Block
from repro.graph.layers import Layer
from repro.types import Shape


@dataclass(frozen=True)
class Network:
    """Validated sequence of blocks with consistent shape flow.

    ``default_mini_batch`` records the per-core mini-batch size the paper
    evaluates the network with (32 for the deep CNNs, 64 for AlexNet).
    """

    name: str
    in_shape: Shape
    blocks: tuple[Block, ...]
    default_mini_batch: int = 32

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocks", tuple(self.blocks))
        if not self.blocks:
            raise ValueError(f"{self.name}: network needs at least one block")
        if self.default_mini_batch <= 0:
            raise ValueError(f"{self.name}: mini-batch must be positive")
        shape = self.in_shape
        for block in self.blocks:
            if block.in_shape != shape:
                raise ValueError(
                    f"{self.name}: block {block.name} expects input "
                    f"{block.in_shape}, predecessor produces {shape}"
                )
            shape = block.out_shape

    @property
    def out_shape(self) -> Shape:
        return self.blocks[-1].out_shape

    def all_layers(self) -> list[Layer]:
        """Every layer of the network in execution order."""
        out: list[Layer] = []
        for block in self.blocks:
            out.extend(block.all_layers())
        return out

    @property
    def param_count(self) -> int:
        return sum(b.param_count for b in self.blocks)

    @property
    def macs_per_sample(self) -> int:
        """Forward-pass multiply-accumulates per sample."""
        return sum(b.macs_per_sample for b in self.blocks)

    def block_named(self, name: str) -> Block:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"{self.name}: no block named {name!r}")

    def __len__(self) -> int:
        return len(self.blocks)
