"""Durable coordinator state: an fsync'd event log plus snapshots.

``mbs-repro serve --state-dir DIR`` keeps the work queue's bookkeeping
(:class:`~repro.runtime.queue.JobQueue`) recoverable across coordinator
crashes.  The layout under ``DIR`` is two files:

``journal.jsonl``
    One JSON object per line, appended and fsync'd before the mutation
    it records is acknowledged to any worker.  Events are the queue's
    own transitions — ``submit`` / ``lease`` / ``heartbeat`` /
    ``complete`` / ``fail`` / ``expire`` — each tagged with a
    monotonically increasing sequence number ``n``.

``snapshot.json``
    A periodic full dump of the queue state
    (:meth:`~repro.runtime.queue.JobQueue.dump_state`), written
    atomically (temp file + rename) and stamped with the sequence
    number of the last event it folds in.  After a snapshot lands the
    journal is truncated, so neither file grows without bound.

Recovery (:meth:`~repro.runtime.queue.JobQueue.restore`) loads the
snapshot, replays every journal event with ``n`` past the snapshot's
stamp, and conservatively expires any lease that was outstanding at
crash time — its points re-queue under the normal retry budget.  The
sequence-number stamp makes the compaction crash-safe: if the process
dies between the snapshot rename and the journal truncation, replay
simply skips the already-folded events.

A torn final line (the crash happened mid-append) is ignored; a corrupt
line anywhere *before* the tail — or an unreadable snapshot — raises
:class:`JournalError` loudly rather than restoring a silently wrong
queue.
"""
from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

#: version stamp of both the snapshot envelope and the event lines
JOURNAL_SCHEMA = 1


class JournalError(RuntimeError):
    """The on-disk state is unreadable or internally inconsistent."""


class Journal:
    """Append-only event log with periodic compacted snapshots.

    ``fsync=False`` trades crash durability for speed (tests, benches
    that want to isolate serialization cost); the default always
    syncs, so an acknowledged event survives power loss.
    """

    def __init__(self, state_dir: str | os.PathLike, *,
                 snapshot_every: int = 256, fsync: bool = True):
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every: expected a positive integer, got "
                f"{snapshot_every!r}"
            )
        self.root = Path(state_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self._fh = None
        self._seq = 0
        self._since_compact = 0
        # monitoring counters
        self.events_recorded = 0
        self.compactions = 0

    # -- reading -------------------------------------------------------

    def load(self) -> tuple[dict[str, Any] | None, list[dict[str, Any]]]:
        """Read ``(snapshot_state, events newer than the snapshot)``.

        Returns ``(None, [])`` for a fresh state dir.  Also advances
        the internal sequence counter past everything on disk, so a
        journal that is loaded and then written to never reuses a
        sequence number.
        """
        state = None
        last_n = 0
        if self.snapshot_path.exists():
            try:
                snap = json.loads(self.snapshot_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise JournalError(
                    f"{self.snapshot_path}: unreadable snapshot: {exc}"
                ) from None
            if not isinstance(snap, dict) \
                    or snap.get("schema") != JOURNAL_SCHEMA \
                    or not isinstance(snap.get("n"), int) \
                    or not isinstance(snap.get("state"), dict):
                raise JournalError(
                    f"{self.snapshot_path}: not a schema-"
                    f"{JOURNAL_SCHEMA} queue snapshot"
                )
            state = snap["state"]
            last_n = snap["n"]
        events = self._read_events(last_n)
        self._seq = max(self._seq, last_n)
        return state, events

    def _read_events(self, last_n: int) -> list[dict[str, Any]]:
        try:
            raw = self.journal_path.read_text(encoding="utf-8",
                                              errors="replace")
        except FileNotFoundError:
            return []
        events = []
        lines = raw.split("\n")
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                # A torn tail write is the normal crash signature and
                # is dropped; garbage *before* intact events is not.
                if any(tail.strip() for tail in lines[lineno:]):
                    raise JournalError(
                        f"{self.journal_path}:{lineno}: corrupt event "
                        f"line before end of journal"
                    ) from None
                break
            n = event.get("n")
            if not isinstance(n, int) or n <= 0:
                raise JournalError(
                    f"{self.journal_path}:{lineno}: event has no valid "
                    f"sequence number: {line[:80]!r}"
                )
            self._seq = max(self._seq, n)
            if n <= last_n:
                continue  # already folded into the snapshot
            events.append(event)
        return events

    # -- writing -------------------------------------------------------

    def record(self, event: Mapping[str, Any]) -> int:
        """Append one event durably; returns its sequence number."""
        self._seq += 1
        line = json.dumps({"n": self._seq, **event}, sort_keys=True)
        if self._fh is None:
            self._fh = open(self.journal_path, "a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._since_compact += 1
        self.events_recorded += 1
        return self._seq

    @property
    def compaction_due(self) -> bool:
        return self._since_compact >= self.snapshot_every

    def compact(self, state: Mapping[str, Any]) -> None:
        """Snapshot ``state`` (as of the last recorded event) atomically,
        then truncate the journal.

        Crash-safe in both halves: the snapshot lands via temp file +
        rename, and a crash before the truncation only leaves events
        the snapshot already covers — replay skips them by sequence
        number.
        """
        blob = json.dumps(
            {"schema": JOURNAL_SCHEMA, "n": self._seq, "state": state},
            sort_keys=True,
        )
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.journal_path, "w", encoding="utf-8")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
            self._sync_dir()
        self._since_compact = 0
        self.compactions += 1

    def _sync_dir(self) -> None:
        """Best-effort fsync of the state dir (rename durability)."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
