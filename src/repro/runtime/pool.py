"""Process-pool sweep engine with caching and deterministic ordering.

:func:`run_tasks` takes a list of :class:`Task` (spec + parameter
overrides), resolves each task's content address, satisfies what it can
from the :class:`~repro.runtime.cache.ResultCache`, and fans the misses
out across ``jobs`` worker processes.  Results come back in *input*
order regardless of completion order, and fresh manifests are written
in that same order — so ``--jobs 4`` and ``--jobs 1`` produce
byte-identical cache state.

``jobs=1`` executes inline (no subprocess), which doubles as the serial
reference path.  Workers re-derive everything from the pickled spec
(module-level produce-fns pickle by reference), so a worker crash or
timeout poisons only its own task.
"""
from __future__ import annotations

import concurrent.futures
import contextlib
import io
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.runtime.cache import (
    ResultCache,
    build_manifest,
    spec_fingerprint,
    task_key,
)
from repro.runtime.serialize import jsonify
from repro.runtime.spec import ExperimentSpec

#: engine-wide default per-task budget; generous — a full (non-quick)
#: fig6 training run finishes well inside a minute on one core.
DEFAULT_TIMEOUT_S = 600.0


class WorkerPool:
    """Reusable process-pool wrapper shared by the sweep engine and the
    ``mbs-repro serve`` schedule engine.

    Wraps :class:`concurrent.futures.ProcessPoolExecutor` with the two
    behaviors both callers need: lazy spawn (constructing a pool is
    free until the first submit — the serve path builds one at startup
    whether or not traffic arrives) and a :meth:`shutdown` that can
    *terminate* busy workers (the executor itself cannot cancel a
    running task, and non-daemon workers would otherwise be joined at
    interpreter exit, hanging the process on a stuck function).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None

    @property
    def executor(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._executor

    def submit(self, fn, /, *args, **kwargs) -> concurrent.futures.Future:
        return self.executor.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False,
                 terminate: bool = False) -> None:
        """Release the workers; ``terminate=True`` kills busy ones.

        Snapshot the worker handles first — ``shutdown(wait=False)``
        drops the executor's ``_processes`` reference.
        """
        if self._executor is None:
            return
        workers = dict(getattr(self._executor, "_processes", None) or {})
        self._executor.shutdown(wait=wait, cancel_futures=cancel_futures)
        if terminate:
            for proc in workers.values():
                proc.terminate()
        self._executor = None


@dataclass(frozen=True)
class Task:
    """One produce-fn invocation: a spec plus parameter overrides."""

    spec: ExperimentSpec
    overrides: Mapping[str, Any] = field(default_factory=dict)
    quick: bool = False

    def params(self) -> dict[str, Any]:
        return self.spec.resolve_params(self.overrides, quick=self.quick)


@dataclass
class TaskResult:
    spec_name: str
    params: dict[str, Any]
    key: str
    status: str  # "ran" | "cached" | "error" | "timeout"
    seconds: float = 0.0
    manifest: dict[str, Any] | None = None
    manifest_path: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("ran", "cached")

    @property
    def rendered(self) -> str:
        return (self.manifest or {}).get("rendered", "")

    @property
    def artifact(self) -> Any:
        return (self.manifest or {}).get("artifact")


def _produce(spec: ExperimentSpec, params: dict[str, Any]):
    """Run one produce-fn; returns (jsonified artifact, rendered text)."""
    result = spec.produce(**params)
    missing = spec.missing_artifact_keys(result)
    if missing:
        raise ValueError(
            f"{spec.name}: artifact missing required key(s) {missing}"
        )
    rendered = io.StringIO()
    if spec.render is not None:
        with contextlib.redirect_stdout(rendered):
            spec.render(result)
    return jsonify(result), rendered.getvalue()


def _worker(spec: ExperimentSpec, params: dict[str, Any]):
    """Pool entry point: never raises, so one bad task can't kill a run.

    Times itself so TaskResult.seconds reflects the produce-fn, not the
    pool's collection order.
    """
    started = time.perf_counter()
    try:
        artifact, rendered = _produce(spec, params)
        return ("ok", artifact, rendered, time.perf_counter() - started)
    except (KeyboardInterrupt, SystemExit):
        # On the inline path this is the user's Ctrl-C — it must abort
        # the whole run, not be recorded as one task's failure.
        raise
    except BaseException:
        return ("error", traceback.format_exc(), "",
                time.perf_counter() - started)


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    timeout_s: float | None = None,
    fingerprint: str | None = None,
    on_result: Callable[[Task, TaskResult], None] | None = None,
) -> list[TaskResult]:
    """Execute ``tasks``, returning one TaskResult per task, in order.

    ``cache=None`` with ``use_cache=True`` uses the default cache dir;
    pass ``use_cache=False`` to force recomputation (results are still
    written back so later runs can hit).

    Each task's cache key is scoped to its spec's dependency-closure
    fingerprint (:func:`~repro.runtime.cache.spec_fingerprint`) unless
    an explicit ``fingerprint`` overrides it for the whole run.

    Task budgets (``timeout_s`` / spec.timeout_s) are enforced only in
    pool mode (``jobs >= 2``), where a stuck worker can be terminated;
    the inline path runs each produce-fn to completion.

    ``on_result`` is invoked once per task as its result finalizes
    (cache hits immediately, fresh runs as they are absorbed) — the
    hook behind per-point progress lines and per-point uploads.  In
    pool mode the callback order is the *collection* order (input
    order), not completion order.
    """
    cache = cache if cache is not None else ResultCache()
    fps = [fingerprint or spec_fingerprint(task.spec) for task in tasks]

    results: list[TaskResult | None] = [None] * len(tasks)
    misses: list[int] = []
    for i, task in enumerate(tasks):
        params = task.params()
        key = task_key(task.spec, params, fingerprint=fps[i])
        manifest = cache.lookup(task.spec.name, key) if use_cache else None
        if manifest is not None:
            results[i] = TaskResult(
                spec_name=task.spec.name, params=params, key=key,
                status="cached", manifest=manifest,
                manifest_path=str(cache.path(task.spec.name, key)),
            )
            if on_result is not None:
                on_result(task, results[i])
        else:
            results[i] = TaskResult(
                spec_name=task.spec.name, params=params, key=key,
                status="error",
            )
            misses.append(i)

    if misses:
        if jobs <= 1:
            for i in misses:
                outcome = _worker(tasks[i].spec, results[i].params)
                _absorb(results[i], tasks[i], outcome, fps[i], cache)
                if on_result is not None:
                    on_result(tasks[i], results[i])
        else:
            _run_pool(tasks, results, misses, jobs, timeout_s, fps, cache,
                      on_result)

    return [r for r in results if r is not None]


def _run_pool(tasks, results, misses, jobs, timeout_s, fps, cache,
              on_result=None):
    pool = WorkerPool(min(jobs, len(misses)))
    timed_out = False
    try:
        futures = {
            i: pool.submit(_worker, tasks[i].spec, results[i].params)
            for i in misses
        }
        for i in misses:
            # Tighten-only: a spec's own budget and the caller's flag
            # both cap the task; whichever is smaller wins.
            limits = [t for t in (tasks[i].spec.timeout_s, timeout_s)
                      if t is not None]
            budget = min(limits) if limits else DEFAULT_TIMEOUT_S
            # Each task gets its full budget measured from when the
            # collection loop reaches it — waits spent on earlier tasks
            # only ever grant later ones *extra* time, so a task is
            # never charged for sitting in the executor queue behind a
            # slow sibling.
            try:
                outcome = futures[i].result(timeout=budget)
            except concurrent.futures.TimeoutError:
                never_started = futures[i].cancel()
                timed_out = True
                results[i].status = "timeout"
                results[i].error = (
                    f"cancelled while queued: no worker free within the "
                    f"{budget:.1f}s task budget"
                    if never_started else
                    f"timed out after {budget:.1f}s (task budget)"
                )
            except concurrent.futures.process.BrokenProcessPool as exc:
                results[i].status = "error"
                results[i].error = f"worker process died: {exc}"
            else:
                _absorb(results[i], tasks[i], outcome, fps[i], cache)
            if on_result is not None:
                on_result(tasks[i], results[i])
    finally:
        # Every future is resolved or cancelled by now, so any worker
        # still busy is grinding a timed-out task — terminate it rather
        # than joining at interpreter exit.
        pool.shutdown(wait=not timed_out, cancel_futures=True,
                      terminate=timed_out)


def _absorb(result: TaskResult, task: Task, outcome, fp, cache):
    """Fold a worker outcome into the TaskResult; persist on success."""
    status, payload, rendered, result.seconds = outcome
    if status != "ok":
        result.status = "error"
        result.error = payload
        return
    manifest = build_manifest(
        task.spec, result.params, result.key, fp, payload, rendered
    )
    result.status = "ran"
    result.manifest = manifest
    result.manifest_path = str(cache.store(manifest))
