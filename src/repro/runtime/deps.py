"""Static import-closure analysis for dependency-scoped cache keys.

:class:`ImportGraph` maps one on-disk package tree (no module execution,
no imports — pure :mod:`ast` parsing) into a module-level dependency
graph, and digests the *transitive source closure* of any module into a
fingerprint.  The result cache keys each
:class:`~repro.runtime.spec.ExperimentSpec` on the closure of its
producing module, so editing one leaf experiment file invalidates that
spec alone while every unrelated cached manifest keeps hitting.

Closure semantics (documented contract, see ``docs/caching.md``):

* every ``import``/``from`` statement anywhere in a module — including
  ones nested in functions for lazy imports — contributes an edge when
  it targets a module inside the package;
* ``from pkg.mod import name`` depends on ``pkg.mod.name`` when that
  resolves to a submodule file, else on ``pkg.mod`` itself;
* edges are followed transitively; cycles are fine (visited-set walk);
* ancestor package ``__init__.py`` files of every closure member are
  hashed *shallowly* — their bytes are part of the digest (they execute
  on import of any member) but their own imports are not followed.
  This is what keeps ``repro/experiments/__init__.py``'s registration
  imports of every sibling driver from dragging all experiments into
  each other's closures: sibling import side effects only register
  specs, they never change what an unrelated produce-fn computes.  A
  module that *explicitly* imports a package does follow its
  ``__init__`` fully.

Modules outside the package root are not resolvable here; callers
(:func:`repro.runtime.cache.module_fingerprint`) fall back to the
package-wide digest for those — coarse, but never under-invalidating.
"""
from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Iterable


class ImportGraph:
    """AST-level import graph of one package source tree.

    ``root`` is the directory of the package itself (the one holding
    its ``__init__.py``); ``package`` is the package's import name.
    All module names handled here are fully qualified
    (``repro.core.traffic``).  Parsing and closures are memoized per
    instance; build a fresh instance to observe edited files.
    """

    def __init__(self, root: str | Path, package: str = "repro"):
        self.root = Path(root)
        self.package = package
        self._direct: dict[str, frozenset[str]] = {}
        self._closures: dict[str, frozenset[str]] = {}

    # -- module name <-> file resolution -------------------------------

    def module_path(self, module: str) -> Path | None:
        """Source file of an in-package module name, or None."""
        if module != self.package and not module.startswith(
            self.package + "."
        ):
            return None
        rel = module[len(self.package) :].lstrip(".")
        base = self.root.joinpath(*rel.split(".")) if rel else self.root
        if base.is_dir():
            init = base / "__init__.py"
            return init if init.is_file() else None
        path = base.with_suffix(".py")
        return path if path.is_file() else None

    def covers(self, module: str) -> bool:
        return self.module_path(module) is not None

    def _is_package(self, module: str) -> bool:
        path = self.module_path(module)
        return path is not None and path.name == "__init__.py"

    # -- edges ----------------------------------------------------------

    def direct_imports(self, module: str) -> frozenset[str]:
        """In-package modules ``module`` imports anywhere in its source."""
        cached = self._direct.get(module)
        if cached is not None:
            return cached
        path = self.module_path(module)
        deps: set[str] = set()
        if path is not None:
            tree = ast.parse(path.read_bytes(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        deps.add(alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = self._from_base(module, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            deps.add(base)
                            continue
                        sub = f"{base}.{alias.name}"
                        deps.add(sub if self.covers(sub) else base)
        out = frozenset(d for d in deps if self.covers(d))
        self._direct[module] = out
        return out

    def _from_base(self, module: str, node: ast.ImportFrom) -> str | None:
        """Resolve a ``from ... import`` statement's base module name."""
        if node.level == 0:
            return node.module
        # Relative import: anchor at the containing package, then climb
        # one extra level per additional dot.
        anchor = module.split(".")
        if not self._is_package(module):
            anchor = anchor[:-1]
        climb = node.level - 1
        if climb >= len(anchor):
            return None  # escapes the package tree
        if climb:
            anchor = anchor[:-climb]
        return ".".join(anchor + node.module.split(".")) if node.module \
            else ".".join(anchor)

    # -- closures and digests -------------------------------------------

    def closure(self, module: str) -> frozenset[str]:
        """Transitive import closure, including ``module`` itself.

        Ancestor package ``__init__`` modules of every member are
        included (shallowly — see the module docstring).
        """
        cached = self._closures.get(module)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [module]
        while stack:
            m = stack.pop()
            if m in seen or not self.covers(m):
                continue
            seen.add(m)
            stack.extend(self.direct_imports(m))
        for m in list(seen):
            parts = m.split(".")
            for i in range(1, len(parts)):
                ancestor = ".".join(parts[:i])
                if self.covers(ancestor):
                    seen.add(ancestor)
        out = frozenset(seen)
        self._closures[module] = out
        return out

    def fingerprint(self, modules: str | Iterable[str]) -> str:
        """Digest of the union of the given modules' source closures.

        Same shape as the package-wide fingerprint (16 hex chars) and
        computed the same way — relative path + file bytes — just over
        the closure's files instead of every ``.py`` in the package.
        """
        if isinstance(modules, str):
            modules = (modules,)
        files: set[Path] = set()
        for module in modules:
            for member in self.closure(module):
                path = self.module_path(member)
                if path is not None:
                    files.add(path)
        h = hashlib.sha256()
        for path in sorted(files):
            h.update(path.relative_to(self.root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        return h.hexdigest()[:16]
