"""Experiment orchestration runtime.

The runtime turns the per-figure driver modules into declarative,
schedulable units:

- :mod:`repro.runtime.spec` — :class:`ExperimentSpec` (name, parameter
  space, produce-fn, artifact schema) plus the global registry the
  modules in :mod:`repro.experiments` register into.
- :mod:`repro.runtime.serialize` — canonical JSON conversion for
  artifacts and manifests.
- :mod:`repro.runtime.deps` — static import-closure analyzer behind the
  dependency-scoped cache fingerprints.
- :mod:`repro.runtime.cache` — content-addressed result cache keyed on
  spec name + parameters + the spec's dependency-closure fingerprint.
- :mod:`repro.runtime.pool` — process-pool sweep engine with
  deterministic result ordering and per-task timeouts.
- :mod:`repro.runtime.queue` — coordinator-side work queue for
  distributed sweeps: leases, bounded retries, poison-point
  quarantine, manifest-key validation.
- :mod:`repro.runtime.journal` — fsync'd event log + compacted
  snapshots behind ``serve --state-dir``: a restarted coordinator
  replays it to resume half-drained jobs.

The ``mbs-repro`` CLI (:mod:`repro.experiments.runner`) is a thin shell
over these pieces; future scaling work (sharded sweeps, multi-backend,
serving) should build on them rather than on the drivers directly.
"""
from repro.runtime.cache import (
    ResultCache,
    code_fingerprint,
    default_cache_dir,
    manifest_bytes,
    module_fingerprint,
    reset_fingerprint_caches,
    spec_fingerprint,
    task_key,
)
from repro.runtime.deps import ImportGraph
from repro.runtime.journal import Journal, JournalError
from repro.runtime.pool import Task, TaskResult, WorkerPool, run_tasks
from repro.runtime.queue import (
    JobQueue,
    Lease,
    QueueError,
    SweepJob,
    SweepPoint,
    format_point_line,
    point_label,
)
from repro.runtime.serialize import canonical_dumps, jsonify
from repro.runtime.spec import (
    ExperimentSpec,
    all_specs,
    expand_grid,
    get_spec,
    register,
    spec_names,
)

__all__ = [
    "ExperimentSpec",
    "ImportGraph",
    "JobQueue",
    "Journal",
    "JournalError",
    "Lease",
    "QueueError",
    "ResultCache",
    "SweepJob",
    "SweepPoint",
    "Task",
    "TaskResult",
    "WorkerPool",
    "all_specs",
    "canonical_dumps",
    "code_fingerprint",
    "default_cache_dir",
    "expand_grid",
    "format_point_line",
    "get_spec",
    "jsonify",
    "manifest_bytes",
    "module_fingerprint",
    "point_label",
    "register",
    "reset_fingerprint_caches",
    "run_tasks",
    "spec_fingerprint",
    "spec_names",
    "task_key",
]
